#!/usr/bin/env python
"""Perf benchmark harness: canonical scenarios under the wall-clock profiler.

The ROADMAP's "fast as the hardware allows" goal needs a trajectory:
every optimization PR must be able to prove a speedup against numbers a
previous PR recorded.  This harness runs the canonical simulation
scenarios — a Figure-6 steady-state point, the dynamic Figure-8 mid-run
policy switch, a Figure-2 hash-imbalance point, the fault sweep's
quarantine variant, the tail-attribution run with every request
span-traced, figure_order's SRPT queueing-discipline point,
figure_adaptive's closed-loop SignalBus run, figure_fleet's
rack-scale power-of-two steering run, figure_canary's shadow/canary
promotion pipeline, the figure6_steady workload rerun with the full
observability stack on, and figure_interference's blame-driven
tenant-shed run — each
under :mod:`repro.obs.profile`, and writes ``BENCH_results.json``:

    {
      "schema_version": 1,
      "mode": "full" | "smoke",
      "scenarios": {
        "<name>": {
          "wall_s": ...,             # wall-clock seconds for machine.run()
          "sim_us": ...,             # simulated microseconds advanced
          "sim_us_per_wall_s": ...,  # the headline throughput number
          "events": ...,             # engine events dispatched
          "events_per_s": ...,
          "profile": {"<section>": {"wall_s", "inclusive_s", "calls"}},
          "sim_metrics": {...}       # p99s / drops — a correctness anchor
        }, ...
      },
      "obs_overhead": {              # when figure6_steady + _obs both ran
        "base_wall_s": ..., "obs_wall_s": ...,
        "overhead_ratio": ...,       # obs wall over base wall, same seed
        "sim_metrics_match": true    # obs never perturbed the simulation
      }
    }

Wall-clock fields vary run to run; ``sim_metrics`` are seeded and exact,
so a perf regression and a behavior regression are distinguishable from
the same file.  Validate any results document with
:func:`validate_results` (the tier-1 smoke test does).

Every run (unless ``--no-history``) is also appended to the
``benchmarks/history/`` trajectory — one file per run, named by UTC
timestamp + git sha — so the perf record accumulates across PRs instead
of being overwritten.

Usage::

    python tools/bench.py                  # full scenarios
    python tools/bench.py --smoke          # seconds-fast variant (CI)
    python tools/bench.py --scenario figure6_steady --out -   # stdout
"""

import argparse
import json
import os
import platform
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.obs.export import open_destination          # noqa: E402
from repro.obs.profile import WallClockProfiler, attach, profile_run  # noqa: E402

__all__ = [
    "DEFAULT_HISTORY_DIR",
    "DEFAULT_OUT",
    "SCENARIOS",
    "SCHEMA_VERSION",
    "BenchSchemaError",
    "append_history",
    "main",
    "run_benchmarks",
    "validate_results",
]

SCHEMA_VERSION = 1
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_results.json")
DEFAULT_HISTORY_DIR = os.path.join(REPO_ROOT, "benchmarks", "history")


# ----------------------------------------------------------------------
# Scenarios: each builder stages a machine (load scheduled, nothing run)
# and returns (machine, collect) where collect() reads the sim metrics
# after the run.  The harness owns timing, so builders must not run.
# ----------------------------------------------------------------------
def _figure6_steady(smoke):
    """Figure 6 steady state: SCAN Avoid under 99.5% GET / 0.5% SCAN."""
    from repro.core.hooks import Hook
    from repro.experiments.runner import RocksDbTestbed
    from repro.policies.builtin import SCAN_AVOID
    from repro.workload.mixes import GET_SCAN_995_005

    load = 60_000 if smoke else 150_000
    duration_us = 40_000.0 if smoke else 300_000.0
    warmup_us = duration_us * 0.2
    testbed = RocksDbTestbed(
        policy=(SCAN_AVOID, Hook.SOCKET_SELECT, {"NUM_THREADS": 6}),
        mark_scans=True, num_threads=6, seed=3,
    )
    gen = testbed.drive(load, GET_SCAN_995_005, duration_us, warmup_us)
    gen.start()

    def collect():
        return {
            "load_rps": load,
            "p99_us": gen.latency.p99(),
            "drop_pct": 100.0 * gen.drop_fraction(),
            "goodput_rps": gen.goodput_rps(duration_us),
        }

    return testbed.machine, collect


def _figure6_steady_obs(smoke):
    """The figure6_steady workload with the FULL observability stack on.

    Same load, mix, policy, and seed as ``figure6_steady`` but with
    metrics, the flight recorder, span sampling, streaming sketches,
    and per-tenant accounting (the generator tagged ``tenant="bench"``)
    all enabled.  Two purposes: (a) the shared ``p99_us`` / ``drop_pct``
    / ``goodput_rps`` sim metrics must equal ``figure6_steady``'s
    exactly — observability is measurement, never perturbation — and
    (b) the wall-clock ratio between the two scenarios is the measured
    cost of full observability, recorded as the results document's
    top-level ``obs_overhead`` block when both scenarios run.
    """
    from repro.core.hooks import Hook
    from repro.experiments.runner import RocksDbTestbed
    from repro.policies.builtin import SCAN_AVOID
    from repro.workload.mixes import GET_SCAN_995_005

    load = 60_000 if smoke else 150_000
    duration_us = 40_000.0 if smoke else 300_000.0
    warmup_us = duration_us * 0.2
    testbed = RocksDbTestbed(
        policy=(SCAN_AVOID, Hook.SOCKET_SELECT, {"NUM_THREADS": 6}),
        mark_scans=True, num_threads=6, seed=3,
        metrics=True, timeseries=5_000.0, spans=16, accounting=True,
    )
    gen = testbed.drive(load, GET_SCAN_995_005, duration_us, warmup_us,
                        tenant="bench")
    gen.start()

    def collect():
        machine = testbed.machine
        ledger = machine.obs.acct.ledgers.get("bench")
        return {
            "load_rps": load,
            "p99_us": gen.latency.p99(),
            "drop_pct": 100.0 * gen.drop_fraction(),
            "goodput_rps": gen.goodput_rps(duration_us),
            "metric_series": len(machine.obs.registry.series()),
            "spans_sampled": machine.obs.spans.sampled,
            "tenant_completed": ledger.completed if ledger else 0,
            "tenant_wait_us": (
                round(ledger.total_wait_us(), 1) if ledger else 0.0
            ),
        }

    return testbed.machine, collect


def _figure8_dynamic(smoke):
    """Figure 8 dynamics: Vanilla -> SCAN Avoid deployed mid-run."""
    from repro.experiments.figure8 import run_figure8_dynamic
    from repro.workload.requests import GET, SCAN

    load = 3_000 if smoke else 6_000
    duration_us = 60_000.0 if smoke else 600_000.0
    testbed, gen = run_figure8_dynamic(
        load=load, duration_us=duration_us, seed=5, run=False,
    )

    def collect():
        return {
            "load_rps": load,
            "get_p99_us": gen.latency.p99(tag=GET),
            "scan_p99_us": gen.latency.p99(tag=SCAN),
            "drop_pct": 100.0 * gen.drop_fraction(),
            "goodput_rps": gen.goodput_rps(duration_us),
        }

    return testbed.machine, collect


def _figure2_imbalance(smoke):
    """Figure 2 imbalance: Vanilla hash selection in the drop regime."""
    from repro.experiments.runner import RocksDbTestbed
    from repro.workload.mixes import GET_ONLY

    load = 150_000 if smoke else 360_000
    duration_us = 40_000.0 if smoke else 200_000.0
    warmup_us = duration_us * 0.2
    testbed = RocksDbTestbed(policy=None, num_threads=6, seed=2)
    gen = testbed.drive(load, GET_ONLY, duration_us, warmup_us)
    gen.start()

    def collect():
        return {
            "load_rps": load,
            "p99_us": gen.latency.p99(),
            "drop_pct": 100.0 * gen.drop_fraction(),
            "goodput_rps": gen.goodput_rps(duration_us),
        }

    return testbed.machine, collect


def _figure_faults(smoke):
    """Fault sweep's quarantine variant: injected VmFaults vs lifecycle."""
    from repro.core.health import HealthPolicy
    from repro.core.hooks import Hook
    from repro.experiments.runner import RocksDbTestbed
    from repro.faults import FaultPlan
    from repro.policies.builtin import SCAN_AVOID
    from repro.workload.mixes import GET_SCAN_995_005

    load = 60_000 if smoke else 100_000
    duration_us = 40_000.0 if smoke else 300_000.0
    warmup_us = duration_us * 0.2
    plan = FaultPlan(seed=11).vmfault(
        0.02, app="rocksdb", hook=Hook.SOCKET_SELECT
    )
    testbed = RocksDbTestbed(
        policy=(SCAN_AVOID, Hook.SOCKET_SELECT, {"NUM_THREADS": 6}),
        mark_scans=True, num_threads=6, seed=3, metrics=True,
        faults=plan,
        health=HealthPolicy(window_us=20_000.0, max_faults=8),
    )
    gen = testbed.drive(load, GET_SCAN_995_005, duration_us, warmup_us)
    gen.start()

    def collect():
        health_rows = testbed.machine.syrupd.health()
        return {
            "load_rps": load,
            "p99_us": gen.latency.p99(),
            "drop_pct": 100.0 * gen.drop_fraction(),
            "runtime_faults": sum(
                r.get("runtime_faults", 0) for r in health_rows
            ),
            "quarantined": sum(
                1 for r in health_rows if r["state"] == "quarantined"
            ),
        }

    return testbed.machine, collect


def _figure_tail(smoke):
    """Tail attribution's RSS point: every request span-traced."""
    from repro.experiments.runner import RocksDbTestbed
    from repro.obs.tail import critical_path
    from repro.workload.mixes import GET_SCAN_995_005

    load = 60_000 if smoke else 120_000
    duration_us = 40_000.0 if smoke else 300_000.0
    warmup_us = duration_us * 0.2
    testbed = RocksDbTestbed(
        policy=None, num_threads=6, seed=7, mark_scans=True,
        spans=1, spans_capacity=1 << 18,
    )
    gen = testbed.drive(load, GET_SCAN_995_005, duration_us, warmup_us)
    gen.start()

    def collect():
        trees = [
            t for t in testbed.machine.obs.spans.trees(complete=True)
            if t["start"] >= warmup_us
        ]
        analysis = critical_path(trees)
        shares = {
            row["span"]: 100.0 * row["gap_share"]
            for row in analysis["rows"]
        }
        return {
            "load_rps": load,
            "p99_us": gen.latency.p99(),
            "sampled_trees": len(trees),
            "socket_wait_gap_share_pct": shares.get("socket_wait", 0.0),
        }

    return testbed.machine, collect


def _figure_fleet(smoke):
    """figure_fleet's power-of-two point: a rack of aggregate machines.

    100 machines (40 in smoke) under a diurnal open-loop load from a
    million sampled users, power-of-two-choices steering at the ToR
    switch reading sync-bus-replicated load, and a mid-run machine kill
    (with reboot) exercising the failover path.
    """
    from repro.cluster.fleet import Fleet
    from repro.faults import FaultPlan

    machines = 40 if smoke else 100
    rps = 450_000 if smoke else 1_200_000
    duration_us = 40_000.0 if smoke else 120_000.0
    warmup_us = duration_us * 0.2
    plan = FaultPlan(seed=11).machine_kill(
        machines // 3, at_us=duration_us * 0.4,
        restore_at_us=duration_us * 0.75,
    )
    fleet = Fleet(
        num_machines=machines, seed=7, steering="power_of_two",
        faults=plan, warmup_us=warmup_us,
    )
    fleet.drive(
        duration_us=duration_us, rps=rps, num_users=1_000_000,
        diurnal_period_us=duration_us, diurnal_depth=0.4,
    )

    def collect():
        return {
            "load_rps": rps,
            "machines": machines,
            "offered": fleet.generator.offered,
            "completed": fleet.completed,
            "dropped": fleet.dropped,
            "resteers": fleet.switch.resteers,
            "p99_us": fleet.latency.p99(),
        }

    return fleet, collect


def _figure_adaptive(smoke):
    """figure_adaptive's closed loop: SignalBus controllers past the knee.

    The adaptive variant at a load where the static policies violate the
    SLO — streaming sketches and SLO burn rates sampled every 2 ms of
    sim time, shed/threshold/blame controllers actuating through Maps.
    Exercises the whole signal plane (sketch updates per request, SLO
    bins, controller ticks) under the profiler.
    """
    from repro.experiments.figure_adaptive import _build, _wire_adaptive
    from repro.workload.mixes import GET_SCAN_995_005
    from repro.workload.requests import GET

    load = 200_000 if smoke else 280_000
    duration_us = 40_000.0 if smoke else 300_000.0
    warmup_us = duration_us * 0.2
    testbed = _build("adaptive", 3)
    gen = testbed.drive(load, GET_SCAN_995_005, duration_us, warmup_us)
    gen.start()
    loop = _wire_adaptive(testbed, gen, duration_us, shedding=True)

    def collect():
        return {
            "load_rps": load,
            "get_p99_us": gen.latency.p99(tag=GET),
            "drop_pct": 100.0 * gen.drop_fraction(),
            "shed_level": loop["shed"].level,
            "srpt_thresh_us": loop["thresh_map"].lookup(0),
            "signal_ticks": testbed.machine.signals.ticks,
        }

    return testbed.machine, collect


def _figure_order_qdisc(smoke):
    """figure_order's SRPT point: the PIFO qdisc on every socket backlog."""
    from repro.experiments.runner import RocksDbTestbed
    from repro.qdisc.policies import SRPT_BY_SIZE
    from repro.workload.mixes import GET_SCAN_995_005
    from repro.workload.requests import GET

    load = 160_000 if smoke else 240_000
    duration_us = 40_000.0 if smoke else 300_000.0
    warmup_us = duration_us * 0.2
    testbed = RocksDbTestbed(
        qdisc=(SRPT_BY_SIZE, "socket", "pifo"), mark_sizes=True,
        num_threads=6, seed=3,
    )
    gen = testbed.drive(load, GET_SCAN_995_005, duration_us, warmup_us)
    gen.start()

    def collect():
        rows = testbed.machine.syrupd.qdiscs()
        return {
            "load_rps": load,
            "get_p99_us": gen.latency.p99(tag=GET),
            "drop_pct": 100.0 * gen.drop_fraction(),
            "qdisc_enqueues": sum(r["enqueues"] for r in rows),
            "qdisc_drops": sum(
                r["sched_drops"] + r["overflow_drops"] for r in rows
            ),
        }

    return testbed.machine, collect


def _figure_canary_promotion(smoke):
    """figure_canary's promotion pipeline: shadow tap on the hot path.

    The broken candidate from figure_canary shadow-executes on every
    socket-qdisc rank decision (decision diff + cohort stamping), then
    enforces on the 10% flow cohort until the canary p99 gate rejects
    it.  Exercises the ShadowTap dispatch overhead, the controller's
    per-completion cohort sketches, and the SignalBus gauge publishing.
    ``outcome_stage`` anchors the verdict (3 == rejected at full scale;
    the smoke window ends mid-canary, 1).
    """
    from repro.core.promote import STAGE_CODES
    from repro.experiments.figure_canary import (
        CANDIDATES,
        GATES,
        SHORT_US,
        _build,
        _wire,
    )
    from repro.workload.mixes import GET_SCAN_995_005
    from repro.workload.requests import GET

    load = 200_000 if smoke else 260_000
    duration_us = 60_000.0 if smoke else 300_000.0
    warmup_us = duration_us * 0.2
    testbed = _build(3)
    gen = testbed.drive(load, GET_SCAN_995_005, duration_us, warmup_us)
    gen.start()
    holder = {}
    _wire(testbed, gen, duration_us, holder)

    def deploy():
        holder["record"] = testbed.app.deploy_shadow(
            CANDIDATES["broken"], layer="socket",
            constants={"SHORT_US": SHORT_US}, name="broken", **GATES,
        )

    testbed.machine.engine.at(duration_us * 0.25, deploy)

    def collect():
        record = holder["record"]
        return {
            "load_rps": load,
            "get_p99_us": gen.latency.p99(tag=GET),
            "drop_pct": 100.0 * gen.drop_fraction(),
            "outcome_stage": STAGE_CODES[record.stage],
            "shadow_decisions": record.diff.decisions,
            "agreement": round(record.diff.agreement(), 4),
            "canary_enforced": record.canary_enforced,
        }

    return testbed.machine, collect


def _figure_interference_blame(smoke):
    """figure_interference's closed loop: blame-driven tenant shedding.

    Victim + identical-looking aggressor on one machine, per-tenant
    accounting charging every queueing span, the blame matrix fed on
    each dequeue, the NoisyNeighborDetector windowing it on the
    SignalBus cadence, and the TenantShedController actuating the
    per-tenant valve.  Exercises the whole attribution plane (ledger
    seams, occupancy mirrors, pro-rata blame splits) under the profiler.
    """
    from repro.experiments.figure_interference import stage_variant
    from repro.workload.requests import GET

    victim = 60_000
    aggressor = 300_000 if smoke else 420_000
    duration_us = 40_000.0 if smoke else 200_000.0
    warmup_us = duration_us * 0.2
    testbed, gen_alpha, gen_bravo, detector = stage_variant(
        "blame_shed", victim, aggressor, duration_us, warmup_us, seed=3,
    )

    def collect():
        blame = testbed.machine.obs.acct.blame
        top = blame.top_aggressor("alpha")
        return {
            "victim_rps": victim,
            "aggressor_rps": aggressor,
            "alpha_p99_us": gen_alpha.latency.p99(tag=GET),
            "alpha_drop_pct": 100.0 * gen_alpha.drop_fraction(),
            "bravo_drop_pct": 100.0 * gen_bravo.drop_fraction(),
            "blame_cells": len(blame),
            "aggressor_share_pct": (
                round(100.0 * top[3], 2) if top is not None else 0.0
            ),
            "noisy_flags": len(detector.noisy),
        }

    return testbed.machine, collect


def _figure_oversub_elastic(smoke):
    """figure_oversub's elastic variant: the core-arbitration plane live.

    A ghOSt enclave (search) and CFS (batch) competing for the
    arbitrated pool under anti-correlated flash crowds, per-class
    pressure signals on the bus, and the ElasticCoreController moving
    cores — prices grants/revocations (CFS queue migration, ghost
    commit-epoch aborts) plus occupancy bookkeeping under the profiler.
    """
    from repro.experiments.figure_oversub import stage_variant

    duration_us = 60_000.0 if smoke else 400_000.0
    warmup_us = duration_us * 0.1
    machine, gen_search, gen_batch, _controller = stage_variant(
        "elastic", 25_000, 10.0, duration_us, warmup_us, seed=5,
    )

    def collect():
        arbiter = machine.arbiter
        arbiter.settle()
        elapsed = max(machine.now, 1e-9)
        return {
            "search_p99_us": gen_search.latency.p99(),
            "batch_p99_us": gen_batch.latency.p99(),
            "search_drop_pct": 100.0 * gen_search.drop_fraction(),
            "batch_drop_pct": 100.0 * gen_batch.drop_fraction(),
            "core_moves": arbiter.moves,
            "search_occ_cores": arbiter.occupancy_us("search") / elapsed,
            "batch_occ_cores": arbiter.occupancy_us("batch") / elapsed,
        }

    return machine, collect


SCENARIOS = {
    "figure6_steady": _figure6_steady,
    "figure6_steady_obs": _figure6_steady_obs,
    "figure_interference_blame": _figure_interference_blame,
    "figure8_dynamic": _figure8_dynamic,
    "figure2_imbalance": _figure2_imbalance,
    "figure_adaptive_loop": _figure_adaptive,
    "figure_faults_quarantine": _figure_faults,
    "figure_tail_spans": _figure_tail,
    "figure_order_qdisc": _figure_order_qdisc,
    "figure_fleet_steering": _figure_fleet,
    "figure_canary_promotion": _figure_canary_promotion,
    "figure_oversub_elastic": _figure_oversub_elastic,
}


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_benchmarks(names=None, smoke=False, echo=print):
    """Run scenarios under the profiler; returns the results document."""
    names = list(names) if names else sorted(SCENARIOS)
    scenarios = {}
    for name in names:
        builder = SCENARIOS[name]
        machine, collect = builder(smoke)
        profiler = WallClockProfiler()
        attach(machine, profiler)
        stats = profile_run(machine, profiler=profiler)
        row = stats.as_dict()
        row["sim_metrics"] = collect()
        scenarios[name] = row
        echo(
            f"{name}: wall {row['wall_s']:.3f}s, "
            f"{row['sim_us_per_wall_s']:,.0f} sim-us/wall-s, "
            f"{row['events_per_s']:,.0f} events/s"
        )
    results = {
        "schema_version": SCHEMA_VERSION,
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "created_unix": time.time(),
        "scenarios": scenarios,
    }
    overhead = _obs_overhead(scenarios)
    if overhead is not None:
        results["obs_overhead"] = overhead
        echo(
            f"obs_overhead: {overhead['overhead_ratio']:.3f}x wall "
            f"(sim_metrics_match={overhead['sim_metrics_match']})"
        )
    return results


#: sim metrics the base and full-obs figure6 scenarios must agree on —
#: the executable form of "observability never perturbs the simulation".
_OBS_SHARED_METRICS = ("load_rps", "p99_us", "drop_pct", "goodput_rps")


def _obs_overhead(scenarios):
    """The observability cost block, when both figure6 variants ran.

    ``overhead_ratio`` is full-obs wall time over base wall time for
    the *identical* seeded workload (>1 means obs costs that factor);
    ``sim_metrics_match`` asserts the shared latency/drop/goodput
    metrics are exactly equal — the no-perturbation guarantee measured,
    not assumed.  Returns None unless both scenarios are present.
    """
    base = scenarios.get("figure6_steady")
    obs = scenarios.get("figure6_steady_obs")
    if base is None or obs is None:
        return None
    match = all(
        base["sim_metrics"].get(key) == obs["sim_metrics"].get(key)
        for key in _OBS_SHARED_METRICS
    )
    return {
        "base_wall_s": base["wall_s"],
        "obs_wall_s": obs["wall_s"],
        "overhead_ratio": (
            obs["wall_s"] / base["wall_s"] if base["wall_s"] > 0 else 0.0
        ),
        "sim_metrics_match": match,
    }


# ----------------------------------------------------------------------
# History: the accumulating perf trajectory (benchmarks/history/)
# ----------------------------------------------------------------------
def _git_sha():
    """Short HEAD sha, or ``"nogit"`` outside a repository."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return "nogit"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "nogit"


def append_history(results, history_dir=DEFAULT_HISTORY_DIR, sha=None):
    """Append one results document to the perf trajectory.

    ``BENCH_results.json`` is overwritten every run; the trajectory the
    ROADMAP asks for lives in ``history_dir`` instead — one file per
    run, named ``<UTC-timestamp>_<git-sha>.json`` so entries sort
    chronologically and each one pins the commit it measured.  The sha
    is also recorded inside the document (``git_sha``).  Returns the
    path written.
    """
    sha = sha if sha is not None else _git_sha()
    stamp = time.strftime(
        "%Y%m%dT%H%M%SZ", time.gmtime(results["created_unix"])
    )
    os.makedirs(history_dir, exist_ok=True)
    entry = dict(results)
    entry["git_sha"] = sha
    path = os.path.join(history_dir, f"{stamp}_{sha}.json")
    suffix = 1
    while os.path.exists(path):  # same commit, same second: still append
        path = os.path.join(history_dir, f"{stamp}_{sha}.{suffix}.json")
        suffix += 1
    with open(path, "w") as fh:
        json.dump(entry, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# Schema validation (no external jsonschema dependency)
# ----------------------------------------------------------------------
class BenchSchemaError(ValueError):
    """A BENCH_results.json document violates the expected schema."""


_TOP_FIELDS = {
    "schema_version": int,
    "mode": str,
    "python": str,
    "platform": str,
    "created_unix": (int, float),
    "scenarios": dict,
}
_SCENARIO_FIELDS = {
    "wall_s": (int, float),
    "sim_us": (int, float),
    "sim_us_per_wall_s": (int, float),
    "events": int,
    "events_per_s": (int, float),
    "profile": dict,
    "sim_metrics": dict,
}
_PROFILE_FIELDS = {
    "wall_s": (int, float),
    "inclusive_s": (int, float),
    "calls": int,
}
_OBS_OVERHEAD_FIELDS = {
    "base_wall_s": (int, float),
    "obs_wall_s": (int, float),
    "overhead_ratio": (int, float),
    "sim_metrics_match": bool,
}


def _require(doc, fields, origin):
    for field, kind in fields.items():
        if field not in doc:
            raise BenchSchemaError(f"{origin}: missing field {field!r}")
        if not isinstance(doc[field], kind):
            raise BenchSchemaError(
                f"{origin}.{field}: expected {kind}, "
                f"got {type(doc[field]).__name__}"
            )


def validate_results(doc):
    """Validate a results document; raises BenchSchemaError, returns doc."""
    if not isinstance(doc, dict):
        raise BenchSchemaError(f"document must be a dict, got {type(doc).__name__}")
    _require(doc, _TOP_FIELDS, "results")
    if doc["schema_version"] != SCHEMA_VERSION:
        raise BenchSchemaError(
            f"schema_version {doc['schema_version']} != {SCHEMA_VERSION}"
        )
    if doc["mode"] not in ("full", "smoke"):
        raise BenchSchemaError(f"mode must be full|smoke, got {doc['mode']!r}")
    if not doc["scenarios"]:
        raise BenchSchemaError("scenarios must be non-empty")
    for name, row in doc["scenarios"].items():
        origin = f"scenarios[{name!r}]"
        if not isinstance(row, dict):
            raise BenchSchemaError(f"{origin}: expected dict")
        _require(row, _SCENARIO_FIELDS, origin)
        if row["wall_s"] <= 0 or row["sim_us"] <= 0 or row["events"] <= 0:
            raise BenchSchemaError(
                f"{origin}: wall_s/sim_us/events must be positive"
            )
        for section, record in row["profile"].items():
            _require(record, _PROFILE_FIELDS, f"{origin}.profile[{section!r}]")
        for metric, value in row["sim_metrics"].items():
            if not isinstance(value, (int, float)):
                raise BenchSchemaError(
                    f"{origin}.sim_metrics[{metric!r}]: expected a number, "
                    f"got {type(value).__name__}"
                )
    overhead = doc.get("obs_overhead")
    if overhead is not None:
        _require(overhead, _OBS_OVERHEAD_FIELDS, "obs_overhead")
        if overhead["base_wall_s"] <= 0 or overhead["obs_wall_s"] <= 0:
            raise BenchSchemaError(
                "obs_overhead: base_wall_s/obs_wall_s must be positive"
            )
        if not isinstance(overhead["sim_metrics_match"], bool):
            raise BenchSchemaError(
                "obs_overhead.sim_metrics_match: expected a bool"
            )
    return doc


# ----------------------------------------------------------------------
def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="bench",
        description=(
            "Run the canonical Syrup simulation scenarios under the "
            "wall-clock profiler and write BENCH_results.json."
        ),
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-fast variant of every scenario (CI smoke test)",
    )
    parser.add_argument(
        "--scenario", action="append", choices=sorted(SCENARIOS),
        default=None, help="run only this scenario (repeatable)",
    )
    parser.add_argument(
        "--out", type=str, default=DEFAULT_OUT,
        help="output path for the results JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--history-dir", type=str, default=DEFAULT_HISTORY_DIR,
        metavar="DIR",
        help="where the per-run trajectory accumulates",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip appending this run to the history trajectory",
    )
    args = parser.parse_args(argv)

    results = run_benchmarks(
        names=args.scenario, smoke=args.smoke,
        echo=lambda msg: print(msg, file=sys.stderr),
    )
    validate_results(results)
    destination = sys.stdout if args.out == "-" else args.out
    with open_destination(destination) as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if args.out != "-":
        print(f"wrote {args.out}", file=sys.stderr)
    if not args.no_history:
        path = append_history(results, history_dir=args.history_dir)
        print(f"appended {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
