#!/usr/bin/env python
"""Compare a fresh bench run against the committed baseline.

``tools/bench.py`` records absolute throughput numbers; this tool turns
them into a regression gate.  It loads a fresh ``BENCH_results.json``
and the committed ``benchmarks/baseline.json``, checks that the two
documents are comparable (same schema, same mode, overlapping
scenarios), and for each baseline scenario computes the fresh/baseline
ratio of the two throughput columns:

- ``events_per_s`` — engine events dispatched per wall-clock second,
- ``sim_us_per_wall_s`` — simulated microseconds per wall-clock second.

A scenario *regresses* when either ratio falls below ``--min-ratio``.
The default threshold is deliberately loose (0.4): the baseline was
recorded on some other host, and CI runners vary wildly in absolute
speed, so the gate only catches order-of-magnitude collapses (an
accidentally quadratic queue, a debug loop left in the hot path) rather
than percent-level noise.  Tighten it for same-host A/B comparisons.

``sim_metrics`` are seeded and exact, so they are compared for *exact*
equality when both runs share a mode — a silent behavior change fails
the gate even if speed is fine.

Exit status: 0 when every scenario passes, 1 on any regression or
mismatch.  ``--report`` writes the full comparison as JSON (uploaded as
a CI artifact).

Usage::

    python tools/bench.py --smoke --out BENCH_results.json
    python tools/bench_compare.py --report bench_compare_report.json
"""

import argparse
import importlib.util
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def _load_bench():
    """Import tools/bench.py as a module (tools/ is not a package)."""
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench.py")
    spec = importlib.util.spec_from_file_location("bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


bench = _load_bench()

__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_MIN_RATIO",
    "compare",
    "main",
]

DEFAULT_BASELINE = os.path.join(REPO_ROOT, "benchmarks", "baseline.json")
DEFAULT_MIN_RATIO = 0.4

#: The throughput columns gated per scenario.
_THROUGHPUT_FIELDS = ("events_per_s", "sim_us_per_wall_s")


def compare(fresh, baseline, min_ratio=DEFAULT_MIN_RATIO):
    """Compare two validated results documents; returns the report dict.

    The report has one row per baseline scenario with the fresh/baseline
    ratio for each throughput field, a ``sim_metrics_match`` flag, and a
    top-level ``ok``.  Scenarios present only in the fresh run are
    listed under ``extra_scenarios`` and do not gate.
    """
    bench.validate_results(fresh)
    bench.validate_results(baseline)
    problems = []
    if fresh["mode"] != baseline["mode"]:
        problems.append(
            f"mode mismatch: fresh={fresh['mode']!r} "
            f"baseline={baseline['mode']!r}"
        )
    rows = {}
    for name, base_row in sorted(baseline["scenarios"].items()):
        fresh_row = fresh["scenarios"].get(name)
        if fresh_row is None:
            problems.append(f"scenario {name!r} missing from fresh results")
            continue
        ratios = {}
        row_ok = True
        for field in _THROUGHPUT_FIELDS:
            base_value = base_row[field]
            ratio = fresh_row[field] / base_value if base_value else 0.0
            ratios[field] = {
                "baseline": base_value,
                "fresh": fresh_row[field],
                "ratio": ratio,
                "ok": ratio >= min_ratio,
            }
            if ratio < min_ratio:
                row_ok = False
                problems.append(
                    f"{name}.{field} regressed: {fresh_row[field]:,.0f} vs "
                    f"baseline {base_value:,.0f} "
                    f"(ratio {ratio:.2f} < {min_ratio})"
                )
        metrics_match = fresh_row["sim_metrics"] == base_row["sim_metrics"]
        if not metrics_match and fresh["mode"] == baseline["mode"]:
            row_ok = False
            problems.append(
                f"{name}.sim_metrics changed: {fresh_row['sim_metrics']} vs "
                f"baseline {base_row['sim_metrics']}"
            )
        rows[name] = {
            "ok": row_ok,
            "throughput": ratios,
            "sim_metrics_match": metrics_match,
        }
    return {
        "ok": not problems,
        "min_ratio": min_ratio,
        "mode": {"fresh": fresh["mode"], "baseline": baseline["mode"]},
        "scenarios": rows,
        "extra_scenarios": sorted(
            set(fresh["scenarios"]) - set(baseline["scenarios"])
        ),
        "problems": problems,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="bench_compare",
        description=(
            "Gate a fresh BENCH_results.json against the committed "
            "benchmarks/baseline.json; exit 1 on regression."
        ),
    )
    parser.add_argument(
        "--results", type=str, default=bench.DEFAULT_OUT,
        help="fresh results file (default: BENCH_results.json)",
    )
    parser.add_argument(
        "--baseline", type=str, default=DEFAULT_BASELINE,
        help="committed baseline file",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=DEFAULT_MIN_RATIO,
        help=(
            "fail when fresh/baseline throughput falls below this "
            "(loose by default; CI hosts differ)"
        ),
    )
    parser.add_argument(
        "--report", type=str, default=None, metavar="PATH",
        help="also write the full comparison report as JSON",
    )
    args = parser.parse_args(argv)

    with open(args.results) as fh:
        fresh = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    report = compare(fresh, baseline, min_ratio=args.min_ratio)
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.report}", file=sys.stderr)
    for name, row in sorted(report["scenarios"].items()):
        ratios = ", ".join(
            f"{field} x{entry['ratio']:.2f}"
            for field, entry in sorted(row["throughput"].items())
        )
        status = "ok" if row["ok"] else "REGRESSED"
        print(f"{name}: {status} ({ratios})")
    for problem in report["problems"]:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
