#!/usr/bin/env python
"""Doc hygiene: every ``repro.*`` symbol named in the docs must resolve.

Documentation rots silently: a module gets renamed, a function moves, and
the docs keep naming the old path until a reader hits it.  This script
scans markdown files for dotted ``repro.*`` names — inside fenced code
blocks and inline code spans — and verifies each one resolves via
importlib: the longest importable module prefix is imported and the
remaining parts are resolved with ``getattr``.

Run standalone (exit 1 on failures)::

    python tools/check_doc_symbols.py            # docs/*.md + README.md
    python tools/check_doc_symbols.py docs/x.md  # specific files

or via the test suite (``tests/test_doc_hygiene.py``), which keeps CI
honest.  File-path-style references (``repro/ebpf/vm.py``) are out of
scope — only dotted symbols are checked.
"""

import importlib
import pathlib
import re
import sys

__all__ = ["check_file", "check_text", "default_targets", "main", "resolve"]

#: A dotted name rooted at the repro package: ``repro.x``, ``repro.x.y``...
SYMBOL = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")

FENCE = re.compile(r"^(```|~~~)")
INLINE_CODE = re.compile(r"`([^`\n]+)`")


def _iter_code_text(text):
    """Yield (line_number, code_text) for fenced blocks and inline spans."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            yield lineno, line
        else:
            for match in INLINE_CODE.finditer(line):
                yield lineno, match.group(1)


def resolve(symbol):
    """Resolve a dotted ``repro.*`` name; raise on failure.

    Tries the longest module prefix first, then walks the rest with
    getattr — so ``repro.core.syrupd.Syrupd.status`` resolves via the
    ``repro.core.syrupd`` module, the ``Syrupd`` class, and its
    ``status`` method.
    """
    parts = symbol.split(".")
    last_error = None
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ImportError as exc:
            last_error = exc
            continue
        for attr in parts[split:]:
            try:
                obj = getattr(obj, attr)
            except AttributeError as exc:
                raise AttributeError(
                    f"{symbol}: module {module_name!r} has no "
                    f"attribute path {'.'.join(parts[split:])!r}"
                ) from exc
        return obj
    raise ImportError(f"{symbol}: no importable module prefix ({last_error})")


def check_text(text, origin="<text>"):
    """Return a list of error strings for unresolvable symbols in ``text``."""
    errors = []
    seen = set()
    for lineno, code in _iter_code_text(text):
        for match in SYMBOL.finditer(code):
            symbol = match.group(0)
            if symbol in seen:
                continue
            seen.add(symbol)
            try:
                resolve(symbol)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                errors.append(f"{origin}:{lineno}: {symbol} -> {exc}")
    return errors


def check_file(path):
    path = pathlib.Path(path)
    return check_text(path.read_text(), origin=str(path))


def default_targets(root=None):
    """docs/*.md plus README.md, relative to the repo root."""
    root = pathlib.Path(root) if root else pathlib.Path(__file__).parent.parent
    targets = sorted((root / "docs").glob("*.md"))
    readme = root / "README.md"
    if readme.exists():
        targets.append(readme)
    return targets


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    targets = [pathlib.Path(a) for a in argv] or default_targets()
    errors = []
    checked = 0
    for target in targets:
        errors.extend(check_file(target))
        checked += 1
    if errors:
        print(f"doc hygiene: {len(errors)} unresolvable symbol(s) "
              f"in {checked} file(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"doc hygiene: OK ({checked} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
