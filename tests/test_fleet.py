"""Tests for the fleet tier: sync staleness, steering, failover, qdiscs."""

import pytest

from repro.cluster import (
    FLEET_MIX,
    STEERING_FACTORIES,
    STEER_LOCALITY,
    STEER_POWER_OF_TWO,
    STEER_TAIL_P2C,
    Fleet,
    FleetRequest,
    JsqSteering,
    MapSyncBus,
    PowerOfKSteering,
)
from repro.constants import DROP
from repro.experiments.figure_fleet import run_figure_fleet
from repro.faults import FaultKind, FaultPlan
from repro.net.packet import APP_USER_OFF, PacketView, UDP_HEADER_LEN
from repro.qdisc import LAYER_SOCKET, Qdisc
from repro.sim.engine import Engine
from repro.workload.requests import GET


# ----------------------------------------------------------------------
# MapSyncBus: the staleness model
# ----------------------------------------------------------------------
class TestMapSyncBus:
    def test_snapshot_applies_after_propagation_delay(self):
        engine = Engine()
        truth = {"v": 1}
        replica = {}
        bus = MapSyncBus(engine, interval_us=50.0, delay_us=25.0,
                         active=lambda: engine.now < 200.0)
        bus.add_channel("v", snapshot=lambda: truth["v"],
                        apply=lambda value, stamp: replica.update(
                            v=value, stamp=stamp))
        bus.arm()
        # Tick at t=50 snapshots v=1; the apply lands at t=75.
        engine.run(until=60.0)
        assert replica == {}
        engine.run(until=80.0)
        assert replica == {"v": 1, "stamp": 50.0}

    def test_replica_sees_the_past_within_the_staleness_window(self):
        engine = Engine()
        truth = {"v": 0}
        replica = {"v": 0}
        bus = MapSyncBus(engine, interval_us=50.0, delay_us=25.0,
                         active=lambda: engine.now < 500.0)
        bus.add_channel("v", snapshot=lambda: truth["v"],
                        apply=lambda value, _stamp: replica.update(v=value))
        bus.arm()
        engine.schedule(60.0, lambda: truth.update(v=7))
        # At t=100 the latest applied snapshot was taken at t=50 (v=0):
        # the write at t=60 is invisible until the t=100 snapshot lands
        # at t=125.
        engine.run(until=110.0)
        assert replica["v"] == 0
        assert bus.staleness_us() == engine.now - 50.0
        engine.run(until=130.0)
        assert replica["v"] == 7

    def test_applies_preserve_registration_then_fifo_order(self):
        engine = Engine()
        order = []
        bus = MapSyncBus(engine, interval_us=10.0, delay_us=5.0,
                         active=lambda: engine.now < 25.0)
        bus.add_channel("a", snapshot=lambda: 0,
                        apply=lambda *_: order.append("a"))
        bus.add_channel("b", snapshot=lambda: 0,
                        apply=lambda *_: order.append("b"))
        bus.arm()
        engine.run()
        # Same-instant applies land in registration order, every tick.
        assert order[:2] == ["a", "b"] and order[2:4] == ["a", "b"]

    def test_bus_stops_rearming_when_inactive(self):
        engine = Engine()
        bus = MapSyncBus(engine, interval_us=10.0, delay_us=1.0,
                         active=lambda: False)
        bus.add_channel("x", snapshot=lambda: 0, apply=lambda *_: None)
        bus.arm()
        engine.run()
        assert bus.ticks == 1           # one tick, no re-arm, run ended
        assert engine.now == 11.0       # tick at 10 + last apply at 11

    def test_rejects_bad_intervals(self):
        engine = Engine()
        with pytest.raises(ValueError):
            MapSyncBus(engine, interval_us=0.0)
        with pytest.raises(ValueError):
            MapSyncBus(engine, delay_us=-1.0)


# ----------------------------------------------------------------------
# PacketView: the lazy packet facade
# ----------------------------------------------------------------------
class TestPacketView:
    def test_lazy_materialization_matches_wire_layout(self):
        view = PacketView(GET, user_id=42, rid=9, dst_port=5000)
        assert view._data is None               # nothing built yet
        assert view.load(APP_USER_OFF, 8) == 42
        assert view._data is not None           # built on first load
        assert view.load(UDP_HEADER_LEN, 8) == GET

    def test_bounds_checked_like_a_real_packet(self):
        view = PacketView(GET)
        with pytest.raises(IndexError):
            view.load(view.length - 4, 8)


# ----------------------------------------------------------------------
# Steering policies
# ----------------------------------------------------------------------
class _FakeSwitch:
    def __init__(self, loads, down=()):
        self.num_machines = len(loads)
        self.load_view = list(loads)
        self.delay_view = [float(v) for v in loads]
        self._down = set(down)
        self._alive = [i for i in range(len(loads)) if i not in self._down]

    def alive_machines(self):
        return self._alive

    def is_alive(self, index):
        return index not in self._down


class TestSteering:
    def test_jsq_joins_the_shortest_replicated_queue(self):
        switch = _FakeSwitch([5, 2, 9, 2])
        request = FleetRequest(1, GET, 100.0, user_id=3)
        assert JsqSteering().pick(request, switch) == 1  # lowest index ties

    def test_jsq_skips_down_machines(self):
        switch = _FakeSwitch([5, 0, 9], down={1})
        request = FleetRequest(1, GET, 100.0)
        assert JsqSteering().pick(request, switch) == 0

    def test_power_of_k_drops_when_rack_is_dark(self):
        switch = _FakeSwitch([1, 1], down={0, 1})

        class _Rng:
            def randrange(self, n):  # pragma: no cover - never reached
                raise AssertionError("no candidates to sample")

        assert PowerOfKSteering(_Rng()).pick(
            FleetRequest(1, GET, 100.0), switch) == DROP

    def test_factories_cover_every_registered_name(self):
        fleet = Fleet(num_machines=4, seed=1, steering=None)
        for name, factory in STEERING_FACTORIES.items():
            policy = factory(fleet)
            assert hasattr(policy, "pick"), name


# ----------------------------------------------------------------------
# Programs at the ToR
# ----------------------------------------------------------------------
class TestSwitchPrograms:
    def test_power_of_two_program_reads_replicated_load_map(self):
        fleet = Fleet(num_machines=8, seed=3, steering="program_p2c")
        fleet.drive(duration_us=10_000.0, rps=150_000, num_users=1_000)
        fleet.run()
        assert fleet.completed == fleet.generator.offered > 0
        # The program's map is the switch's replica, refreshed by the bus.
        assert fleet.switch.load_map.lookup(0) is not None

    def test_locality_program_homes_users_until_overload(self):
        fleet = Fleet(num_machines=4, seed=3, steering=None)
        policy = fleet.deploy_steering_program(STEER_LOCALITY,
                                               name="locality_prog")
        fleet.install_steering(policy)
        # Load replica all-zero: every user must land on user_id % 4.
        for user in range(8):
            request = FleetRequest(user + 1, GET, 100.0, user_id=user)
            assert fleet.switch.pick(request) == user % 4

    def test_tail_program_prefers_the_lower_cost_machine(self):
        fleet = Fleet(num_machines=4, seed=3, steering=None,
                      latency_signals=True)
        policy = fleet.deploy_steering_program(STEER_TAIL_P2C,
                                               name="tail_prog")
        fleet.install_steering(policy)
        # Make machine 2 the obvious tail offender on the replica: the
        # two-choice draw picks it only when both candidates are it, so
        # its share collapses from 1/4 toward 1/16.
        fleet.switch.apply_p99([0, 0, 50_000, 0])
        picks = [fleet.switch.pick(FleetRequest(1, GET, 100.0))
                 for _ in range(400)]
        assert picks.count(2) / len(picks) < 0.15

    def test_tenant_isolation_at_the_switch(self):
        fleet = Fleet(num_machines=4, seed=3)
        fleet.install_steering(JsqSteering(), port=7000, owner="tenant_a")
        with pytest.raises(PermissionError):
            fleet.install_steering(JsqSteering(), port=7000,
                                   owner="tenant_b")


# ----------------------------------------------------------------------
# Failure semantics
# ----------------------------------------------------------------------
class TestFailover:
    def test_machine_kill_resteers_orphans_without_loss(self):
        plan = FaultPlan(seed=9).machine_kill(2, at_us=5_000.0)
        fleet = Fleet(num_machines=8, seed=5, steering="power_of_two",
                      metrics=True, faults=plan)
        fleet.drive(duration_us=20_000.0, rps=200_000, num_users=10_000)
        fleet.run()
        assert fleet.completed == fleet.generator.offered
        assert fleet.outstanding == 0
        assert fleet.switch.resteers > 0
        assert not fleet.machines[2].alive
        assert not fleet.switch.is_alive(2)
        # Injections are observable, like every single-machine fault.
        snapshot = {
            (r["app"], r["scope"], r["metric"]): r["value"]
            for r in fleet.obs.snapshot()
        }
        assert snapshot[("fleet", "faults", FaultKind.MACHINE_KILL)] == 1

    def test_restore_rejoins_the_candidate_set(self):
        plan = FaultPlan(seed=9).machine_kill(1, at_us=4_000.0,
                                              restore_at_us=10_000.0)
        fleet = Fleet(num_machines=4, seed=5, steering="power_of_two",
                      faults=plan)
        fleet.drive(duration_us=25_000.0, rps=120_000, num_users=1_000)
        fleet.run()
        assert fleet.machines[1].alive
        assert fleet.switch.is_alive(1)
        # The rebooted machine served traffic after its restore.
        assert fleet.machines[1].served > 0
        assert fleet.completed == fleet.generator.offered

    def test_link_down_excludes_immediately_and_buffers_responses(self):
        plan = FaultPlan(seed=9).link_down(0, at_us=5_000.0,
                                           duration_us=5_000.0)
        fleet = Fleet(num_machines=3, seed=5, steering="jsq", faults=plan)
        fleet.drive(duration_us=20_000.0, rps=60_000, num_users=1_000)
        fleet.run()
        # The machine never died: no re-steers, no losses — responses
        # finished behind the dead link were buffered, then flushed.
        assert fleet.switch.resteers == 0
        assert fleet.completed == fleet.generator.offered
        assert fleet.machines[0].link_up
        assert fleet.switch.is_alive(0)

    def test_fleet_plan_is_inert_on_a_single_machine(self):
        # The same plan object can drive a Machine and a Fleet: the
        # machine-side injector skips fleet-scoped kinds entirely.
        from repro.machine import Machine

        plan = (FaultPlan(seed=9)
                .machine_kill(0, at_us=1_000.0)
                .link_down(1, at_us=1_000.0, duration_us=500.0))
        machine = Machine(seed=3, faults=plan)
        machine.run()
        assert machine.faults.injected == 0
        assert machine.engine.events_dispatched == 0


# ----------------------------------------------------------------------
# Qdisc composition
# ----------------------------------------------------------------------
class TestQdiscComposition:
    def test_per_machine_qdisc_orders_the_backlog(self):
        from repro.ebpf import load_program
        from repro.qdisc import compile_rank

        # Rank by request type: SCANs (type 2) sort after GETs (type 1),
        # read out of the PacketView bytes like any Syrup program.
        source = '''
def rank(pkt):
    if pkt_len(pkt) < 16:
        return PASS
    return load_u64(pkt, 8)
'''
        loaded = load_program(compile_rank(source, name="by_type"))

        def qdisc_factory(index):
            return Qdisc("fleet", LAYER_SOCKET, backend="pifo",
                         program=loaded)

        fleet = Fleet(num_machines=2, workers_per_machine=1, seed=5,
                      steering="jsq", qdisc_factory=qdisc_factory)
        fleet.drive(duration_us=30_000.0, rps=40_000, num_users=100,
                    mix=FLEET_MIX)
        fleet.run()
        assert fleet.completed == fleet.generator.offered > 0
        ranked = sum(m.qdisc.enqueues for m in fleet.machines)
        assert ranked > 0
        for machine in fleet.machines:
            assert machine.qdisc.runtime_faults == 0

    def test_queue_cap_sheds_with_fifo_droptail(self):
        fleet = Fleet(num_machines=1, workers_per_machine=1, seed=5,
                      steering="jsq", queue_cap=2)
        fleet.drive(duration_us=20_000.0, rps=30_000, num_users=10)
        fleet.run()
        assert fleet.dropped > 0
        assert fleet.completed + fleet.dropped == fleet.generator.offered


# ----------------------------------------------------------------------
# Latency signals: per-machine sketches feeding the ToR p99 replica
# ----------------------------------------------------------------------
class TestLatencySignals:
    def _run(self, **overrides):
        kwargs = dict(num_machines=8, workers_per_machine=2, seed=7,
                      steering="program_tail", latency_signals=True)
        kwargs.update(overrides)
        fleet = Fleet(**kwargs)
        fleet.drive(duration_us=100_000.0, rps=60_000, num_users=5_000)
        fleet.run()
        return fleet

    def test_signals_are_off_by_default(self):
        fleet = Fleet(num_machines=4, seed=3, steering="power_of_two")
        fleet.drive(duration_us=10_000.0, rps=60_000, num_users=500)
        fleet.run()
        assert fleet.machine_sketches is None
        assert fleet.switch.p99_view == [0, 0, 0, 0]
        assert fleet.completed > 0

    def test_completions_populate_sketches_and_the_replica(self):
        fleet = self._run()
        assert fleet.completed == fleet.generator.offered > 0
        # every machine saw traffic, every sketch saw completions
        assert all(s.count > 0 for s in fleet.machine_sketches)
        # the sync bus pushed per-machine p99s to the switch replica
        assert all(v > 0 for v in fleet.switch.p99_view)
        for index, sketch in enumerate(fleet.machine_sketches):
            assert fleet.machine_sketches[index].vmax \
                >= fleet.switch.p99_view[index] > 0
        # the replica trails the truth by at most the sync staleness
        assert fleet.sync.staleness_us() <= 2 * fleet.sync.interval_us

    def test_tail_steering_is_deterministic(self):
        a, b = self._run(), self._run()
        assert a.latency._samples == b.latency._samples
        assert a.switch.p99_view == b.switch.p99_view
        assert [m.served for m in a.machines] \
            == [m.served for m in b.machines]
        assert a.engine.events_dispatched == b.engine.events_dispatched


# ----------------------------------------------------------------------
# Determinism and observability
# ----------------------------------------------------------------------
def _run_once(**overrides):
    kwargs = dict(num_machines=16, seed=5, steering="power_of_two",
                  faults=FaultPlan(seed=9).machine_kill(
                      3, at_us=8_000.0, restore_at_us=16_000.0))
    kwargs.update(overrides)
    fleet = Fleet(**kwargs)
    fleet.drive(duration_us=25_000.0, rps=220_000, num_users=50_000,
                diurnal_period_us=25_000.0, diurnal_depth=0.4)
    fleet.run()
    return fleet


class TestDeterminismAndObs:
    def test_paired_runs_are_bit_identical(self):
        a, b = _run_once(), _run_once()
        assert a.completed == b.completed
        assert a.switch.resteers == b.switch.resteers
        assert a.latency._samples == b.latency._samples
        assert [m.served for m in a.machines] \
            == [m.served for m in b.machines]
        assert a.engine.events_dispatched == b.engine.events_dispatched

    def test_observability_does_not_change_results(self):
        plain = _run_once()
        observed = _run_once(metrics=True, timeseries=True, spans=10)
        assert plain.latency._samples == observed.latency._samples
        assert [m.served for m in plain.machines] \
            == [m.served for m in observed.machines]

    def test_fleet_spans_cover_the_request_path(self):
        fleet = _run_once(spans=25)
        trees = fleet.obs.spans.trees(complete=True)
        assert trees
        names = {s["name"] for t in trees for s in t["spans"]}
        assert {"switch_steer", "xnet_wait", "service"} <= names
        steer = next(s for t in trees for s in t["spans"]
                     if s["name"] == "switch_steer")
        assert steer["attrs"]["policy"] == "power_of_k"
        assert "machine" in steer["attrs"]

    def test_flight_recorder_probe_publishes_fleet_load(self):
        fleet = _run_once(metrics=True, timeseries=2_000.0)
        recorder = fleet.obs.recorder
        assert recorder.points("fleet", "machine", "load_0")
        assert recorder.points("fleet", "sync", "staleness_us")
        assert recorder.points("fleet", "fleet", "outstanding")

    def test_fleet_view_is_json_safe(self):
        import json

        fleet = _run_once()
        view = fleet.fleet_view()
        json.dumps(view)
        assert view["machines"] == 16
        assert view["completed"] == fleet.completed
        assert view["steering"] == "power_of_two"


# ----------------------------------------------------------------------
# The experiment harness (miniature figure_fleet)
# ----------------------------------------------------------------------
def test_figure_fleet_miniature():
    table = run_figure_fleet(
        variants=("random", "power_of_two", "sed"),
        num_machines=12, rps=140_000, num_users=20_000,
        duration_us=40_000.0, warmup_us=8_000.0, seed=7,
    )
    rows = {r["steering"]: r for r in table}
    assert set(rows) == {"random", "power_of_two", "sed"}
    for row in table:
        assert row["completed"] == row["offered"] > 0
        assert row["resteers"] > 0          # the mid-run kill fired
    assert rows["power_of_two"]["p99_us"] < rows["random"]["p99_us"]
