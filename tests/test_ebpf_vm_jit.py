"""Interpreter/JIT agreement and execution semantics."""

import random
import struct

import pytest

from repro.constants import PASS
from repro.ebpf.compiler import compile_policy
from repro.ebpf.maps import ArrayMap, HashMap
from repro.ebpf.program import load_program
from repro.ebpf.vm import execute
from repro.net.packet import FiveTuple, Packet, build_payload


FLOW = FiveTuple(0x0A000002, 40000, 0x0A000001, 8080, 17)


def make_packet(rtype=1, user=0, key_hash=0):
    return Packet(FLOW, build_payload(rtype, user, key_hash, 1))


def both(source, packet=None, constants=None, maps=None):
    """Run via interpreter and JIT on *independent* loads; assert equal."""
    program = compile_policy(source, constants=constants)

    def fresh_maps():
        if maps is None:
            return None
        return {k: _clone_map(v) for k, v in maps.items()}

    interp = load_program(program, maps=fresh_maps())
    jitted = load_program(program, maps=fresh_maps())
    a = interp.run_interp(packet).value
    b = jitted.run_jit(packet)
    assert a == b, f"interp={a} jit={b}"
    return a


def _clone_map(m):
    clone = type(m)(m.name, m.max_entries)
    for k, v in m.items():
        clone.update(k, v)
    return clone


# ----------------------------------------------------------------------
def test_packet_loads_agree():
    src = """
def schedule(pkt):
    if pkt_len(pkt) < 32:
        return PASS
    return load_u64(pkt, 8) * 1000 + load_u64(pkt, 16)
"""
    assert both(src, make_packet(rtype=2, user=7)) == 2 * 1000 + 7


def test_short_packet_takes_guard():
    src = """
def schedule(pkt):
    if pkt_len(pkt) < 64:
        return 111
    return load_u64(pkt, 8)
"""
    assert both(src, make_packet()) == 111


def test_load_widths():
    src_template = """
def schedule(pkt):
    if pkt_len(pkt) < 8:
        return PASS
    return load_u{width}(pkt, 0)
"""
    packet = make_packet()
    for width in (8, 16, 32, 64):
        value = both(src_template.format(width=width), packet)
        raw = int.from_bytes(packet.data[: width // 8], "little")
        assert value == raw


def test_globals_evolve_identically():
    src = """
counter = 5

def schedule(pkt):
    global counter
    counter = counter * 3 + 1
    return counter
"""
    program = compile_policy(src)
    interp = load_program(program)
    jitted = load_program(program)
    for _ in range(5):
        a = interp.run_interp(None).value
        b = jitted.run_jit(None)
        assert a == b
    assert interp.globals == jitted.globals


def test_map_side_effects_agree():
    src = """
m = syr_map("m", 64)

def schedule(pkt):
    for i in range(8):
        atomic_add(m, i % 3, i)
    return map_lookup(m, 0) * 10000 + map_lookup(m, 1) * 100 + map_lookup(m, 2)
"""
    assert both(src) == both(src)


def test_random_uses_given_rng():
    src = "def schedule(pkt):\n    return get_random() % 100\n"
    program = compile_policy(src)
    a = load_program(program, rng=random.Random(9))
    b = load_program(program, rng=random.Random(9))
    assert [a.run_interp(None).value for _ in range(5)] == [
        b.run_jit(None) for _ in range(5)
    ]


def test_profile_then_jit_transition():
    src = """
idx = 0

def schedule(pkt):
    global idx
    idx += 1
    return idx % 7
"""
    loaded = load_program(compile_policy(src), profile_runs=3)
    values = [loaded.run(None) for _ in range(10)]
    assert values == [(i + 1) % 7 for i in range(10)]
    assert loaded.cycle_estimate > 0
    assert loaded.invocations == 10


def test_cycle_accounting_monotone_in_work():
    short = compile_policy("def schedule(pkt):\n    return 1\n")
    long = compile_policy(
        "def schedule(pkt):\n    t = 0\n    for i in range(20):\n"
        "        t += i * i\n    return t\n",
        unroll_limit=64,
    )
    a = load_program(short).run_interp(None)
    b = load_program(long).run_interp(None)
    assert b.cycles > a.cycles
    assert b.insns_executed > a.insns_executed


def test_executed_insns_bounded_by_program_length():
    src = """
def schedule(pkt):
    t = 0
    for i in range(10):
        t += 1
    return t
"""
    program = compile_policy(src)
    result = load_program(program).run_interp(None)
    assert result.insns_executed <= program.n_insns


def test_array_map_binding():
    src = """
arr = syr_map("arr_array", 8)

def schedule(pkt):
    map_update(arr, 3, 99)
    return map_lookup(arr, 3)
"""
    loaded = load_program(compile_policy(src))
    assert isinstance(loaded.maps[0], ArrayMap)
    assert loaded.run_interp(None).value == 99


def test_out_of_range_array_update_is_helper_error_not_crash():
    src = """
arr = syr_map("arr_array", 4)

def schedule(pkt):
    return map_update(arr, 100, 1)
"""
    value = both(src)
    assert value == (1 << 64) - 1  # helper error code


def test_shared_map_between_programs():
    shared = HashMap("shared", 16)
    writer = load_program(
        compile_policy(
            's = syr_map("shared", 16)\n\ndef schedule(pkt):\n'
            "    map_update(s, 1, 77)\n    return 0\n"
        ),
        maps={"shared": shared},
    )
    reader = load_program(
        compile_policy(
            's = syr_map("shared", 16)\n\ndef schedule(pkt):\n'
            "    return map_lookup(s, 1)\n"
        ),
        maps={"shared": shared},
    )
    writer.run(None)
    assert reader.run(None) == 77


def test_vm_requires_packet_for_pkt_ops():
    from repro.ebpf.errors import VmFault

    src = "def schedule(pkt):\n    return pkt_len(pkt)\n"
    loaded = load_program(compile_policy(src))
    with pytest.raises(VmFault):
        loaded.run_interp(None)


def test_paper_sita_policy_end_to_end():
    from repro.policies.builtin import SITA

    loaded = load_program(
        compile_policy(SITA, constants={"NUM_THREADS": 6, "SCAN_TYPE": 2})
    )
    scan_target = loaded.run(make_packet(rtype=2))
    assert scan_target == 0
    get_targets = {loaded.run(make_packet(rtype=1)) for _ in range(50)}
    assert get_targets == {1, 2, 3, 4, 5}


def test_paper_round_robin_cycles_through_all():
    from repro.policies.builtin import ROUND_ROBIN

    loaded = load_program(
        compile_policy(ROUND_ROBIN, constants={"NUM_THREADS": 4})
    )
    assert [loaded.run(None) for _ in range(8)] == [1, 2, 3, 0, 1, 2, 3, 0]


def test_paper_token_policy_drops_on_empty_bucket():
    from repro.constants import DROP
    from repro.policies.builtin import TOKEN_BASED

    loaded = load_program(
        compile_policy(TOKEN_BASED, constants={"NUM_THREADS": 6})
    )
    token_map = loaded.map_by_name("token_map")
    token_map.update(1, 2)
    packet = make_packet(rtype=1, user=1)
    first = loaded.run(packet)
    second = loaded.run(packet)
    third = loaded.run(packet)
    assert first != DROP and second != DROP
    assert third == DROP
    assert token_map.lookup(1) == 0
