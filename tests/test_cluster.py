"""Tests for the rack-scale extension (§6.1)."""

import pytest

from repro.cluster import (
    Cluster,
    HashFlowPolicy,
    LeastOutstandingPolicy,
    ProgramPolicy,
    ProgrammableSwitch,
    RoundRobinPolicy,
)
from repro.constants import DROP
from repro.ebpf.compiler import compile_policy
from repro.ebpf.program import load_program
from repro.net.packet import FiveTuple, Packet, build_payload
from repro.policies.builtin import ROUND_ROBIN
from repro.sim.engine import Engine
from repro.workload.mixes import GET_ONLY, GET_SCAN_995_005
from repro.workload.requests import GET, Request


class FakeMachine:
    def __init__(self):
        self.received = []
        self.nic = self

    def receive(self, packet):
        self.received.append(packet)


def make_switch(n=4):
    engine = Engine()
    machines = [FakeMachine() for _ in range(n)]
    switch = ProgrammableSwitch(engine, machines, forward_us=1.0, wire_us=2.0)
    return engine, machines, switch


def make_packet(port=8080, src_port=40000, rid=1):
    flow = FiveTuple(0x0A000002, src_port, 0x0A0000FF, port, 17)
    request = Request(rid, GET, 10.0)
    return Packet(flow, build_payload(GET, 0, 0, rid), request=request)


# ----------------------------------------------------------------------
# Switch unit tests
# ----------------------------------------------------------------------
def test_default_hash_has_flow_affinity():
    engine, machines, switch = make_switch()
    for rid in range(5):
        switch.receive(make_packet(rid=rid))
    engine.run()
    hits = [len(m.received) for m in machines]
    assert max(hits) == 5  # same flow, same server


def test_round_robin_spreads():
    engine, machines, switch = make_switch()
    switch.install(8080, RoundRobinPolicy())
    for rid in range(8):
        switch.receive(make_packet(rid=rid))
    engine.run()
    assert [len(m.received) for m in machines] == [2, 2, 2, 2]


def test_least_outstanding_avoids_loaded_servers():
    import random

    engine, machines, switch = make_switch()
    switch.install(8080, LeastOutstandingPolicy(random.Random(1), d=4))
    switch.outstanding = [10, 10, 0, 10]
    switch.receive(make_packet())
    engine.run()
    assert len(machines[2].received) == 1


def test_outstanding_tracks_responses():
    engine, machines, switch = make_switch()
    pkt = make_packet()
    switch.receive(pkt)
    assert sum(switch.outstanding) == 1
    switch.response_passed(pkt.request)
    assert sum(switch.outstanding) == 0
    # unknown request: harmless
    switch.response_passed(Request(99, GET, 1.0))


def test_per_port_rules_isolate_tenants():
    engine, machines, switch = make_switch()
    switch.install(8080, RoundRobinPolicy(), owner="alice")
    with pytest.raises(PermissionError):
        switch.install(8080, RoundRobinPolicy(), owner="bob")
    switch.install(9090, RoundRobinPolicy(), owner="bob")  # fine


def test_verified_program_runs_at_switch():
    """Portability across the whole stack: the same RR source that picks
    sockets picks servers."""
    engine, machines, switch = make_switch()
    loaded = load_program(compile_policy(ROUND_ROBIN,
                                         constants={"NUM_THREADS": 4}))
    switch.install(8080, ProgramPolicy(loaded))
    for rid in range(8):
        switch.receive(make_packet(rid=rid))
    engine.run()
    assert [len(m.received) for m in machines] == [2, 2, 2, 2]


def test_program_policy_drop():
    engine, machines, switch = make_switch()
    loaded = load_program(compile_policy("def schedule(pkt):\n    return DROP\n"))
    switch.install(8080, ProgramPolicy(loaded))
    switch.receive(make_packet())
    engine.run()
    assert switch.dropped == 1
    assert all(not m.received for m in machines)


def test_program_policy_pass_falls_to_default():
    engine, machines, switch = make_switch()
    loaded = load_program(compile_policy("def schedule(pkt):\n    return PASS\n"))
    switch.install(8080, ProgramPolicy(loaded))
    pkt = make_packet()
    switch.receive(pkt)
    engine.run()
    assert sum(len(m.received) for m in machines) == 1


# ----------------------------------------------------------------------
# Full-rack integration
# ----------------------------------------------------------------------
def run_rack(policy_factory, rate=600_000, duration=60_000):
    cluster = Cluster(num_servers=4, seed=5)
    cluster.install_policy(policy_factory(cluster))
    gen = cluster.drive(rate, GET_ONLY, duration_us=duration,
                        warmup_us=duration / 4).start()
    cluster.run()
    return cluster, gen


def test_rack_serves_load_end_to_end():
    cluster, gen = run_rack(lambda c: RoundRobinPolicy())
    assert gen.drop_fraction() == 0.0
    assert sum(gen.per_server_completed) == gen.completed.total()
    # all four servers did real work
    assert all(n > 0 for n in gen.per_server_completed)
    # rack latency includes the extra switch hop both ways
    assert gen.latency.p50() > 4 * cluster.switch.wire_us


def test_rack_outstanding_drains():
    cluster, gen = run_rack(
        lambda c: LeastOutstandingPolicy(c.streams.get("sw"), d=2)
    )
    assert all(o == 0 for o in cluster.switch.outstanding)


def test_least_outstanding_beats_hash_on_variable_service():
    results = {}
    for name, factory in (
        ("hash", lambda c: HashFlowPolicy()),
        ("p2c", lambda c: LeastOutstandingPolicy(c.streams.get("sw"), d=2)),
    ):
        cluster = Cluster(num_servers=4, seed=6)
        cluster.install_policy(factory(cluster))
        gen = cluster.drive(800_000, GET_SCAN_995_005, duration_us=80_000,
                            warmup_us=20_000).start()
        cluster.run()
        results[name] = gen.latency.p99()
    assert results["p2c"] < results["hash"] / 1.5
