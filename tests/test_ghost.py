"""Tests for the ghOSt substrate: messages, enclaves, agent, scheduler."""

from collections import deque

import pytest

from repro.config import CostModel
from repro.ghost.agent import GhostAgent, SchedStatus
from repro.ghost.enclave import Enclave, EnclaveViolation
from repro.ghost.messages import Message, MessageKind
from repro.ghost.sched import GhostScheduler
from repro.kernel.cpu import Core
from repro.kernel.threads import BLOCKED, KThread, RUNNABLE
from repro.sim.engine import Engine


class ListSource:
    def __init__(self, engine, items=()):
        self.engine = engine
        self.items = deque(items)
        self.completed = []

    def pull(self):
        return self.items.popleft() if self.items else None

    def complete(self, token):
        self.completed.append((token, self.engine.now))


class FifoPolicy:
    def schedule(self, status):
        return [
            (t, c.cid)
            for t, c in zip(status.runnable, status.idle_cores())
        ]


def make_ghost(n_cores=2, policy=None, app="app"):
    eng = Engine()
    cores = [Core(i) for i in range(n_cores)]
    costs = CostModel(ctx_switch_us=1.0, ghost_msg_us=0.5,
                      ghost_commit_us=1.0, ghost_ipi_us=2.0)
    sched = GhostScheduler(eng, cores, costs)
    enclave = Enclave(app)
    agent = GhostAgent(eng, sched, enclave, policy or FifoPolicy(), costs)
    return eng, cores, sched, enclave, agent


def add_thread(eng, sched, enclave, items, tid, app="app"):
    thread = KThread(tid=tid, app=app)
    thread.source = ListSource(eng, items)
    enclave.register(thread)
    sched.attach(thread)
    return thread


# ----------------------------------------------------------------------
# Messages / enclave
# ----------------------------------------------------------------------
def test_message_kinds_validated():
    thread = KThread(tid=1)
    with pytest.raises(ValueError):
        Message("bogus", thread)
    assert Message(MessageKind.THREAD_WAKEUP, thread).kind == "thread_wakeup"


def test_enclave_rejects_foreign_threads():
    enclave = Enclave("a")
    foreign = KThread(tid=1, app="b")
    with pytest.raises(EnclaveViolation):
        enclave.register(foreign)
    with pytest.raises(EnclaveViolation):
        enclave.check(foreign)


def test_enclave_membership():
    enclave = Enclave("a")
    mine = KThread(tid=1, app="a")
    enclave.register(mine)
    assert mine in enclave
    assert len(enclave) == 1
    enclave.remove(mine)
    assert mine not in enclave


# ----------------------------------------------------------------------
# Agent + scheduler end-to-end
# ----------------------------------------------------------------------
def test_agent_schedules_woken_thread():
    eng, cores, sched, enclave, agent = make_ghost()
    thread = add_thread(eng, sched, enclave, [(10.0, "a")], tid=1)
    thread.wake()
    eng.run()
    assert thread.source.completed and thread.source.completed[0][0] == "a"
    assert agent.commits == 1
    # dispatch latency: 2 msgs (created + wakeup) + commit + ipi + ctx + work
    done_at = thread.source.completed[0][1]
    assert done_at == pytest.approx(2 * 0.5 + 1.0 + 2.0 + 1.0 + 10.0)


def test_agent_ignores_foreign_app_messages():
    eng, cores, sched, enclave, agent = make_ghost()
    foreign = KThread(tid=99, app="other")
    foreign.source = ListSource(eng, [(5.0, "f")])
    sched.attach(foreign)  # attached to ghost but NOT in the enclave
    foreign.wake()
    eng.run()
    assert agent.commits == 0
    assert foreign.source.completed == []  # invisible => never scheduled


def test_agent_fills_multiple_cores():
    eng, cores, sched, enclave, agent = make_ghost(n_cores=3)
    threads = [
        add_thread(eng, sched, enclave, [(10.0, f"t{i}")], tid=i)
        for i in range(3)
    ]
    for t in threads:
        t.wake()
    eng.run()
    assert all(t.source.completed for t in threads)
    assert agent.commits == 3


def test_more_threads_than_cores_queue_up():
    eng, cores, sched, enclave, agent = make_ghost(n_cores=1)
    t0 = add_thread(eng, sched, enclave, [(10.0, "a")], tid=0)
    t1 = add_thread(eng, sched, enclave, [(10.0, "b")], tid=1)
    t0.wake()
    t1.wake()
    eng.run()
    assert t0.source.completed and t1.source.completed
    finish = sorted([t0.source.completed[0][1], t1.source.completed[0][1]])
    assert finish[1] > finish[0] + 9.0  # serialized on the single core


def test_thread_keeps_core_between_requests():
    eng, cores, sched, enclave, agent = make_ghost(n_cores=1)
    thread = add_thread(eng, sched, enclave, [(5.0, "a"), (5.0, "b")], tid=0)
    thread.wake()
    eng.run()
    assert agent.commits == 1  # one placement covers both items
    assert [t for t, _ in thread.source.completed] == ["a", "b"]


class PreemptPolicy:
    """Always place the highest-tid runnable, preempting if needed."""

    def schedule(self, status):
        if not status.runnable:
            return []
        thread = max(status.runnable, key=lambda t: t.tid)
        idle = status.idle_cores()
        if idle:
            return [(thread, idle[0].cid)]
        victims = [c for c in status.cores if c.thread and not c.pending]
        if victims:
            return [(thread, victims[0].cid)]
        return []


def test_agent_preemption_generates_message_and_requeues():
    eng, cores, sched, enclave, agent = make_ghost(
        n_cores=1, policy=PreemptPolicy()
    )
    low = add_thread(eng, sched, enclave, [(100.0, "low")], tid=1)
    high = add_thread(eng, sched, enclave, [(10.0, "high")], tid=2)
    low.wake()
    eng.run(until=20.0)
    assert low.state.__eq__("running") or cores[0].thread is low
    high.wake()
    eng.run()
    assert agent.preemptions >= 1
    # both eventually complete; high finishes first
    assert high.source.completed[0][1] < low.source.completed[0][1]


def test_failed_commit_counted_not_fatal():
    eng, cores, sched, enclave, agent = make_ghost()
    thread = add_thread(eng, sched, enclave, [(5.0, "a")], tid=1)
    # commit a thread that was never woken (not runnable) -> abort
    assert sched.commit(thread, cores[0]) is False


def test_status_snapshot_shapes():
    status = SchedStatus(5.0, [], [])
    assert status.idle_cores() == []
    assert "runnable=0" in repr(status)
