"""Failure-injection tests: buggy policies hurt only their owners.

Paper §3.2: "A bad-performing or buggy policy will only affect the
application that deployed it."  These tests inject the failure modes an
untrusted policy can actually produce and check the blast radius.
"""

import pytest

from repro import Hook, Machine, set_a
from repro.apps.rocksdb import RocksDbServer
from repro.policies.builtin import ROUND_ROBIN
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import GET_ONLY


class CrashingThreadPolicy:
    def __init__(self):
        self.calls = 0

    def schedule(self, status):
        self.calls += 1
        raise RuntimeError("policy bug")


class ForeignSchedulingPolicy:
    """Tries to schedule a thread from outside its enclave."""

    def __init__(self, foreign_thread):
        self.foreign_thread = foreign_thread

    def schedule(self, status):
        idle = status.idle_cores()
        if idle:
            return [(self.foreign_thread, idle[0].cid)]
        return []


def test_crashing_thread_policy_is_contained():
    machine = Machine(set_a(), seed=31, scheduler="ghost")
    app = machine.register_app("victim-of-self", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    policy = CrashingThreadPolicy()
    deployed = app.deploy_policy(policy, Hook.THREAD_SCHED)
    gen = OpenLoopGenerator(machine, 8080, 10_000, GET_ONLY,
                            duration_us=10_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run(until=50_000)
    # the policy crashed (repeatedly) but the simulation survived;
    # only this app's requests are starved
    assert deployed.agent.policy_errors > 0
    assert policy.calls == deployed.agent.policy_errors
    assert gen.completed_in_window() == 0


def test_enclave_blocks_foreign_scheduling():
    machine = Machine(set_a(), seed=32, scheduler="ghost")
    attacker = machine.register_app("attacker", ports=[8080])
    RocksDbServer(machine, attacker, 8080, 2)
    # a thread belonging to nobody's enclave (another app's)
    from repro.kernel.threads import KThread

    foreign = KThread(tid=999, app="other-app")
    policy = ForeignSchedulingPolicy(foreign)
    deployed = app_deploy = attacker.deploy_policy(policy, Hook.THREAD_SCHED)
    foreign.state = "runnable"
    # force a decision cycle
    gen = OpenLoopGenerator(machine, 8080, 5_000, GET_ONLY, duration_us=5_000)
    gen.start()
    machine.run(until=20_000)
    # the EnclaveViolation is swallowed as a policy error, not executed
    assert deployed.agent.policy_errors > 0
    assert foreign.state == "runnable"  # never dispatched


def test_drop_everything_policy_starves_only_owner():
    machine = Machine(set_a(), seed=33)
    bad = machine.register_app("bad", ports=[8080])
    good = machine.register_app("good", ports=[9090])
    bad_server = RocksDbServer(machine, bad, 8080, 3)
    good_server = RocksDbServer(machine, good, 9090, 3)
    bad.deploy_policy("def schedule(pkt):\n    return DROP\n",
                      Hook.SOCKET_SELECT)
    good.deploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                       constants={"NUM_THREADS": 3})
    gens = []
    for port, server, stream in ((8080, bad_server, "bad"),
                                 (9090, good_server, "good")):
        gen = OpenLoopGenerator(machine, port, 30_000, GET_ONLY,
                                duration_us=20_000, stream=stream)
        server.response_sink = gen.deliver_response
        gens.append(gen.start())
    machine.run()
    assert gens[0].completed_in_window() == 0
    assert gens[1].drop_fraction() == 0.0


def test_infinite_index_policy_degrades_to_default_not_crash():
    """A policy returning garbage indices degrades to PASS (fallback)."""
    machine = Machine(set_a(), seed=34)
    app = machine.register_app("garbage", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 3)
    app.deploy_policy(
        "idx = 0\n\ndef schedule(pkt):\n    global idx\n    idx += 7\n"
        "    return idx * 1000\n",
        Hook.SOCKET_SELECT,
    )
    gen = OpenLoopGenerator(machine, 8080, 30_000, GET_ONLY,
                            duration_us=20_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    assert gen.drop_fraction() == 0.0
    site = machine.netstack.socket_select_hook
    assert site.pass_decisions > 0


def test_live_policy_update_takes_effect():
    """Paper §3.1: apps can update policies while running."""
    machine = Machine(set_a(), seed=35)
    app = machine.register_app("updater", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 4)
    # start with everything pinned to socket 0
    app.deploy_policy("def schedule(pkt):\n    return 0\n",
                      Hook.SOCKET_SELECT)
    gen = OpenLoopGenerator(machine, 8080, 40_000, GET_ONLY,
                            duration_us=60_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run(until=30_000)
    first_phase = [s.enqueued for s in server.sockets]
    assert first_phase[0] > 0 and sum(first_phase[1:]) == 0
    # live-update to round robin
    app.deploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": 4})
    machine.run()
    second_phase = [s.enqueued - f for s, f in zip(server.sockets, first_phase)]
    assert all(count > 0 for count in second_phase)
    assert gen.drop_fraction() == 0.0
