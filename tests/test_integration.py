"""End-to-end integration tests reproducing the paper's claims in miniature."""

import pytest

from repro import DROP, Hook, Machine, PASS, set_a, set_b
from repro.apps.mica import MicaServer
from repro.apps.rocksdb import RocksDbServer
from repro.policies.builtin import ROUND_ROBIN, SCAN_AVOID, SITA, TOKEN_BASED
from repro.policies.thread_policies import GetPriorityPolicy
from repro.policies.token_agent import TokenAgent
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import GET_ONLY, GET_SCAN_50_50, GET_SCAN_995_005, MICA_50_50
from repro.workload.requests import GET, SCAN


def rocksdb_run(policy=None, constants=None, mix=GET_ONLY, rate=300_000,
                duration=60_000, seed=11, num_threads=6, mark_scans=False):
    machine = Machine(set_a(), seed=seed)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, num_threads,
                           mark_scans=mark_scans)
    if policy is not None:
        app.deploy_policy(policy, Hook.SOCKET_SELECT, constants=constants)
    gen = OpenLoopGenerator(machine, 8080, rate, mix, duration_us=duration,
                            warmup_us=duration / 4)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    return machine, server, gen


# ----------------------------------------------------------------------
# Headline claims
# ----------------------------------------------------------------------
def test_round_robin_beats_vanilla_at_high_load():
    _m, _s, vanilla = rocksdb_run(policy=None, rate=440_000, duration=100_000)
    _m2, _s2, rr = rocksdb_run(policy=ROUND_ROBIN,
                               constants={"NUM_THREADS": 6}, rate=440_000,
                               duration=100_000)
    assert rr.latency.p99() < vanilla.latency.p99() / 3
    assert rr.drop_fraction() == 0.0
    assert vanilla.drop_fraction() > 0.01


def test_round_robin_spreads_exactly():
    _m, server, gen = rocksdb_run(policy=ROUND_ROBIN,
                                  constants={"NUM_THREADS": 6}, rate=60_000,
                                  duration=30_000)
    counts = [s.enqueued for s in server.sockets]
    assert max(counts) - min(counts) <= 1


def test_scan_avoid_beats_round_robin_on_mixed_load():
    mix = GET_SCAN_995_005
    _m, _s, rr = rocksdb_run(policy=ROUND_ROBIN,
                             constants={"NUM_THREADS": 6},
                             mix=mix, rate=120_000, duration=120_000)
    _m2, _s2, sa = rocksdb_run(policy=SCAN_AVOID,
                               constants={"NUM_THREADS": 6},
                               mix=mix, rate=120_000, duration=120_000,
                               mark_scans=True)
    assert sa.latency.p99(tag=GET) < rr.latency.p99(tag=GET) / 3


def test_sita_isolates_scans_to_socket_zero():
    _m, server, gen = rocksdb_run(
        policy=SITA, constants={"NUM_THREADS": 6, "SCAN_TYPE": SCAN},
        mix=GET_SCAN_50_50, rate=5_000, duration=60_000,
    )
    assert server.stats.completed.get(SCAN) > 0
    # all SCAN service happened on thread 0
    assert server.threads[0].items_completed >= server.stats.completed.get(SCAN)


def test_token_policy_enforces_admission():
    machine = Machine(set_a(), seed=12)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    app.deploy_policy(TOKEN_BASED, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": 6})
    token_map = app.map_open(app.map_path("token_map"))
    agent = TokenAgent(machine, token_map, ls_user=1, be_user=2,
                       rate_per_sec=100_000, epoch_us=100.0)
    gen = OpenLoopGenerator(machine, 8080, 300_000, GET_ONLY,
                            duration_us=50_000, user_id=1)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run(until=80_000)
    agent.stop()
    machine.run()
    # offered 300K, admitted ~100K: ~2/3 dropped
    assert 0.5 < gen.drop_fraction() < 0.8
    # goodput close to the token rate
    assert gen.goodput_rps(50_000) < 130_000


# ----------------------------------------------------------------------
# Multi-tenancy
# ----------------------------------------------------------------------
def test_two_apps_isolated_policies():
    """Each app's policy only sees its own traffic (paper §4.3)."""
    machine = Machine(set_a(), seed=13)
    alice = machine.register_app("alice", ports=[8080])
    bob = machine.register_app("bob", ports=[9090])
    a_server = RocksDbServer(machine, alice, 8080, 3)
    b_server = RocksDbServer(machine, bob, 9090, 3)
    alice.deploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                        constants={"NUM_THREADS": 3})
    # bob deploys a DROP-everything policy; it must not affect alice
    bob.deploy_policy("def schedule(pkt):\n    return DROP\n",
                      Hook.SOCKET_SELECT)
    a_gen = OpenLoopGenerator(machine, 8080, 50_000, GET_ONLY,
                              duration_us=30_000, stream="a")
    b_gen = OpenLoopGenerator(machine, 9090, 50_000, GET_ONLY,
                              duration_us=30_000, stream="b")
    a_server.response_sink = a_gen.deliver_response
    b_server.response_sink = b_gen.deliver_response
    a_gen.start()
    b_gen.start()
    machine.run()
    assert a_gen.drop_fraction() == 0.0
    assert b_gen.completed_in_window() == 0
    assert machine.netstack.drops["select_drop"] == b_gen.sent_in_window()


def test_buggy_policy_only_hurts_its_owner():
    """An out-of-range executor index degrades to PASS for that app only."""
    machine = Machine(set_a(), seed=14)
    alice = machine.register_app("alice", ports=[8080])
    a_server = RocksDbServer(machine, alice, 8080, 3)
    alice.deploy_policy("def schedule(pkt):\n    return 999\n",
                        Hook.SOCKET_SELECT)
    gen = OpenLoopGenerator(machine, 8080, 20_000, GET_ONLY,
                            duration_us=20_000)
    a_server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    # falls back to the default policy; traffic still served
    assert gen.drop_fraction() == 0.0


# ----------------------------------------------------------------------
# Cross-layer
# ----------------------------------------------------------------------
def test_cross_layer_get_priority_preempts_scans():
    machine = Machine(set_a(), seed=15, scheduler="ghost")
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 12, mark_scans=True,
                           mark_types=True)
    app.deploy_policy(SCAN_AVOID, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": 12})
    deployed = app.deploy_policy(GetPriorityPolicy(server.type_map),
                                 Hook.THREAD_SCHED)
    gen = OpenLoopGenerator(machine, 8080, 6_000, GET_SCAN_50_50,
                            duration_us=200_000, warmup_us=50_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    assert gen.latency.p99(tag=GET) < 200.0
    assert deployed.agent.commits > 0


def test_ghost_agent_core_reserved():
    machine = Machine(set_a(), seed=15, scheduler="ghost")
    assert machine.agent_core is not None
    assert len(machine.scheduler.cores) == machine.config.num_app_cores - 1


# ----------------------------------------------------------------------
# MICA portability end-to-end
# ----------------------------------------------------------------------
def test_mica_hw_beats_sw_beats_baseline_at_high_load():
    results = {}
    for mode in ("sw_redirect", "syrup_sw", "syrup_hw"):
        machine = Machine(set_b(8), seed=16)
        app = machine.register_app("mica", ports=[9090])
        server = MicaServer(machine, app, 9090, num_threads=8, mode=mode)
        server.deploy_policy()
        gen = OpenLoopGenerator(machine, 9090, 2_200_000, MICA_50_50,
                                duration_us=20_000, warmup_us=5_000,
                                num_flows=64)
        server.response_sink = gen.deliver_response
        gen.start()
        machine.run()
        results[mode] = gen.latency.p999()
    assert results["syrup_hw"] < results["syrup_sw"]
    assert results["syrup_sw"] < results["sw_redirect"] / 3
