"""Unit tests for repro.qdisc: backends, rank compilation, the Qdisc.

Locks the subsystem's determinism contracts at the smallest scope:
exact-PIFO tie-breaks, the bucketed queue's coarsening/clamping, the
drop-lowest-rank overflow policy (and its collapse to drop-tail when
every rank is equal), per-app port isolation, and rank-fault containment
(the element survives with the FIFO rank; the listener hears about it).
"""

import pytest

from repro.constants import DROP, PASS
from repro.ebpf.errors import CompileError, VmFault
from repro.ebpf.program import load_program
from repro.kernel.sockets import UdpSocket
from repro.net.packet import FiveTuple, Packet, build_payload
from repro.qdisc import (
    BucketQueue,
    PifoQueue,
    OfferResult,
    Qdisc,
    ThreadCtx,
    compile_rank,
    make_backend,
    qdisc_hook,
)
from repro.qdisc.discipline import FIFO


def make_packet(req_type, port=8080, user_id=0):
    flow = FiveTuple("10.0.0.1", 1234, "10.0.0.2", port, 17)
    return Packet(flow, build_payload(req_type, user_id=user_id))


class RankByType:
    """Stand-in loaded program: rank = the packet's u64 request type."""

    name = "rank_by_type"

    def run(self, pkt):
        return pkt.load(8, 8)


class AlwaysFault:
    name = "always_fault"

    def run(self, pkt):
        raise VmFault("injected")


class Decide:
    """Stand-in program returning a canned decision."""

    name = "decide"

    def __init__(self, decision):
        self.decision = decision

    def run(self, pkt):
        return self.decision


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
def test_pifo_orders_by_rank():
    q = PifoQueue()
    for rank, item in [(5, "e"), (1, "a"), (3, "c"), (2, "b")]:
        q.push(rank, item)
    assert [q.pop() for _ in range(4)] == ["a", "b", "c", "e"]
    assert q.pop() is None


def test_pifo_ties_break_by_arrival():
    q = PifoQueue()
    for item in "abcd":
        q.push(7, item)
    assert [q.pop() for _ in range(4)] == list("abcd")


def test_pifo_worst_removes_largest_rank():
    q = PifoQueue()
    q.push(1, "keep")
    q.push(9, "victim")
    q.push(5, "mid")
    rank, item = q.worst()
    assert (rank, item) == (9, "victim")
    assert len(q) == 2
    assert [q.pop(), q.pop()] == ["keep", "mid"]


def test_pifo_worst_all_equal_is_drop_tail():
    q = PifoQueue()
    for item in "abc":
        q.push(0, item)
    _rank, item = q.worst()
    assert item == "c"  # newest arrival sheds first
    assert [q.pop(), q.pop()] == ["a", "b"]


def test_bucket_orders_by_bucket_fifo_within():
    q = BucketQueue(num_buckets=8, bucket_width=10)
    q.push(25, "scan1")
    q.push(3, "get1")
    q.push(7, "get2")  # same bucket as get1, later arrival
    q.push(21, "scan2")
    assert [q.pop() for _ in range(4)] == ["get1", "get2", "scan1", "scan2"]
    assert len(q) == 0 and q.pop() is None


def test_bucket_clamps_past_horizon():
    q = BucketQueue(num_buckets=4, bucket_width=10)
    q.push(1_000_000, "huge")
    q.push(39, "edge")  # also the last bucket (index 3)
    q.push(0, "front")
    assert q.pop() == "front"
    # huge clamped into bucket 3; FIFO with "edge" by arrival
    assert [q.pop(), q.pop()] == ["huge", "edge"]


def test_bucket_worst_takes_highest_bucket_newest():
    q = BucketQueue(num_buckets=8, bucket_width=10)
    q.push(5, "low")
    q.push(45, "old_high")
    q.push(41, "new_high")  # same bucket, newest
    rank, item = q.worst()
    assert (rank, item) == (41, "new_high")
    assert q.pop() == "low"


def test_bucket_rejects_bad_geometry():
    with pytest.raises(ValueError):
        BucketQueue(num_buckets=0)
    with pytest.raises(ValueError):
        BucketQueue(bucket_width=0)


def test_make_backend():
    assert isinstance(make_backend("pifo"), PifoQueue)
    bucket = make_backend("bucket", num_buckets=16, bucket_width=4)
    assert bucket.num_buckets == 16 and bucket.bucket_width == 4
    with pytest.raises(ValueError, match="unknown qdisc backend"):
        make_backend("cbq")


# ----------------------------------------------------------------------
# compile_rank
# ----------------------------------------------------------------------
RANK_BY_TYPE_SRC = """
def rank(pkt):
    if pkt_len(pkt) < 16:
        return PASS
    return load_u64(pkt, 8)
"""


def test_compile_rank_runs_through_policy_pipeline():
    program = compile_rank(RANK_BY_TYPE_SRC)
    assert program.name == "rank"
    loaded = load_program(program)
    assert loaded.run(make_packet(42)) == 42


def test_compile_rank_requires_rank_function():
    with pytest.raises(CompileError, match="rank"):
        compile_rank("def schedule(pkt):\n    return 0\n")


def test_compile_rank_accepts_callable():
    def rank(pkt):
        return 7

    loaded = load_program(compile_rank(rank))
    assert loaded.run(make_packet(1)) == 7


def test_qdisc_hook_labels():
    assert qdisc_hook("socket") == "qdisc:socket"
    assert qdisc_hook("nic_rx") == "qdisc:nic_rx"
    with pytest.raises(ValueError, match="unknown qdisc layer"):
        qdisc_hook("tc")


def test_thread_ctx_is_packet_shaped():
    ctx = ThreadCtx(99)
    assert ctx.length == 16
    assert ctx.load(0, 8) == 99
    assert ctx.load(8, 8) == 0
    with pytest.raises(IndexError):
        ctx.load(12, 8)


# ----------------------------------------------------------------------
# Qdisc
# ----------------------------------------------------------------------
def test_qdisc_dequeues_in_rank_order():
    q = Qdisc("app", "socket", program=RankByType())
    for rtype in (700, 10, 300):
        assert q.offer(make_packet(rtype)).accepted
    out = [q.take().load(8, 8) for _ in range(3)]
    assert out == [10, 300, 700]
    assert q.enqueues == 3 and q.dequeues == 3
    assert (q.rank_min, q.rank_max) == (10, 700)


def test_qdisc_pass_and_drop_decisions():
    q = Qdisc("app", "socket", program=Decide(PASS))
    result = q.offer(make_packet(1))
    assert result.accepted and result.rank == FIFO

    q = Qdisc("app", "socket", program=Decide(DROP))
    result = q.offer(make_packet(1))
    assert not result.accepted and result.reason == "sched_drop"
    assert q.sched_drops == 1 and len(q) == 0


def test_qdisc_overflow_sheds_lowest_priority():
    q = Qdisc("app", "socket", program=RankByType())
    q.offer(make_packet(700))
    q.offer(make_packet(10))
    # Full (capacity 2): a low-rank arrival evicts the queued 700.
    result = q.offer(make_packet(20), capacity=2)
    assert result.accepted and result.reason == "overflow"
    assert result.evicted.load(8, 8) == 700
    assert q.evictions == 1 and q.overflow_drops == 1
    assert [q.take().load(8, 8), q.take().load(8, 8)] == [10, 20]


def test_qdisc_overflow_rejects_worst_arrival():
    q = Qdisc("app", "socket", program=RankByType())
    q.offer(make_packet(10))
    q.offer(make_packet(20))
    result = q.offer(make_packet(700), capacity=2)
    assert not result.accepted and result.reason == "overflow"
    assert q.evictions == 0 and q.overflow_drops == 1
    assert len(q) == 2


def test_qdisc_overflow_all_equal_collapses_to_drop_tail():
    q = Qdisc("app", "socket", program=Decide(PASS))
    first, second = make_packet(1), make_packet(2)
    q.offer(first)
    q.offer(second)
    result = q.offer(make_packet(3), capacity=2)
    # the arrival is the newest equal-rank entry, so it is the victim
    assert not result.accepted and result.reason == "overflow"
    assert q.take() is first and q.take() is second


def test_qdisc_port_isolation_skips_foreign_traffic():
    q = Qdisc("app", "socket", program=RankByType(), ports=[8080])
    mine = q.offer(make_packet(500, port=8080))
    foreign = q.offer(make_packet(500, port=9999))
    assert mine.rank == 500
    assert foreign.rank == FIFO  # ranked FIFO without running the program


def test_qdisc_fault_containment():
    heard = []
    q = Qdisc("app", "socket", program=AlwaysFault())
    q.fault_listener = lambda qdisc, exc: heard.append((qdisc, exc))
    packet = make_packet(1)
    result = q.offer(packet)
    assert result.accepted and result.rank == FIFO  # element never lost
    assert q.runtime_faults == 1
    assert len(heard) == 1 and heard[0][0] is q
    assert isinstance(heard[0][1], VmFault)
    assert q.take() is packet


def test_qdisc_revert_to_fifo_keeps_queued_ranks():
    q = Qdisc("app", "socket", program=RankByType())
    q.offer(make_packet(700))
    q.offer(make_packet(10))
    q.revert_to_fifo()
    assert q.state == "fifo"
    # queued elements drain in their assigned rank order ...
    assert q.take().load(8, 8) == 10
    # ... while new arrivals rank FIFO (ahead of the queued 700)
    q.offer(make_packet(999))
    assert q.take().load(8, 8) == 999
    assert q.take().load(8, 8) == 700


def test_qdisc_order_sorts_snapshot_without_owning():
    q = Qdisc("app", "runqueue", program=RankByType())
    q.offer(make_packet(5))  # queued state must survive order()
    snapshot = [make_packet(30), make_packet(10), make_packet(20)]
    ordered = q.order(snapshot)
    assert [p.load(8, 8) for p in ordered] == [10, 20, 30]
    assert len(q) == 1
    assert q.order([snapshot[0]]) == [snapshot[0]]  # <2: untouched


def test_qdisc_order_with_ctx_factory():
    class RankByTid:
        name = "rank_by_tid"

        def run(self, ctx):
            return ctx.load(0, 8)

    class FakeThread:
        def __init__(self, tid):
            self.tid = tid

    q = Qdisc("app", "runqueue", program=RankByTid())
    threads = [FakeThread(3), FakeThread(1), FakeThread(2)]
    ordered = q.order(threads, ctx_factory=lambda t: ThreadCtx(t.tid))
    assert [t.tid for t in ordered] == [1, 2, 3]


def test_qdisc_snapshot_row():
    q = Qdisc("app", "socket", backend="bucket", program=RankByType())
    q.target = "sid:1"
    q.offer(make_packet(10))
    row = q.snapshot()
    assert row["backend"] == "bucket" and row["target"] == "sid:1"
    assert row["state"] == "active" and row["depth"] == 1
    assert row["rank_mean"] == 10 and row["program"] == "rank_by_type"


def test_offer_result_repr_smoke():
    assert "accepted=True" in repr(OfferResult(True, rank=3))


# ----------------------------------------------------------------------
# Socket backlog under a discipline (the overflow-policy satellite)
# ----------------------------------------------------------------------
def test_socket_qdisc_overflow_drop_policy():
    socket = UdpSocket(8080, app="app", backlog=2)
    socket.set_qdisc(Qdisc("app", "socket", program=RankByType()))
    assert socket.enqueue(make_packet(700))
    assert socket.enqueue(make_packet(10))
    # Backlog full: the low-rank arrival displaces the queued SCAN.
    assert socket.enqueue(make_packet(20))
    assert socket.drops == 1 and len(socket) == 2
    assert [socket.pop().load(8, 8), socket.pop().load(8, 8)] == [10, 20]
    # Refill; a worst-rank arrival is itself shed (still one drop each).
    socket.enqueue(make_packet(10))
    socket.enqueue(make_packet(20))
    assert not socket.enqueue(make_packet(700))
    assert socket.drops == 2 and len(socket) == 2


def test_socket_fifo_discipline_matches_drop_tail():
    plain = UdpSocket(8080, app="app", backlog=2)
    disciplined = UdpSocket(8080, app="app", backlog=2)
    disciplined.set_qdisc(Qdisc("app", "socket", program=Decide(PASS)))
    arrivals = [make_packet(i) for i in range(1, 5)]
    accepted_plain = [plain.enqueue(p) for p in arrivals]
    accepted_disc = [disciplined.enqueue(p) for p in arrivals]
    assert accepted_plain == accepted_disc == [True, True, False, False]
    assert plain.drops == disciplined.drops == 2
    order_plain = [plain.pop().load(8, 8) for _ in range(2)]
    order_disc = [disciplined.pop().load(8, 8) for _ in range(2)]
    assert order_plain == order_disc == [1, 2]


def test_socket_clear_qdisc_drains_into_fifo_backlog():
    socket = UdpSocket(8080, app="app", backlog=8)
    socket.set_qdisc(Qdisc("app", "socket", program=RankByType()))
    for rtype in (700, 10, 300):
        socket.enqueue(make_packet(rtype))
    qdisc = socket.clear_qdisc()
    assert socket.qdisc is None and len(qdisc) == 0
    # drained in rank order into the plain deque; nothing stranded
    assert [socket.pop().load(8, 8) for _ in range(3)] == [10, 300, 700]
    assert socket.pop() is None


def test_socket_late_binding_queue_drains_first():
    socket = UdpSocket(8080, app="app", backlog=8)
    socket.set_qdisc(Qdisc("app", "socket", program=RankByType()))
    socket.enqueue(make_packet(10))
    direct = make_packet(999)
    socket.queue.append(direct)  # late-binding handoff path
    assert socket.pop() is direct
    assert socket.pop().load(8, 8) == 10
