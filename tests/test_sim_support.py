"""Tests for RNG streams, timers, and generator processes."""

import pytest

from repro.sim.engine import Engine
from repro.sim.process import Process, Waiter, spawn
from repro.sim.rng import RngStreams
from repro.sim.timers import PeriodicTimer


# ----------------------------------------------------------------------
# RngStreams
# ----------------------------------------------------------------------
def test_same_name_same_stream():
    streams = RngStreams(seed=1)
    assert streams.get("a") is streams.get("a")


def test_streams_deterministic_across_instances():
    a = RngStreams(seed=42).get("arrivals")
    b = RngStreams(seed=42).get("arrivals")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    streams = RngStreams(seed=42)
    a = [streams.get("a").random() for _ in range(5)]
    b = [streams.get("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RngStreams(seed=1).get("x").random()
    b = RngStreams(seed=2).get("x").random()
    assert a != b


def test_fork_creates_independent_space():
    root = RngStreams(seed=5)
    child = root.fork("worker")
    assert child.get("x").random() != root.get("x").random()


# ----------------------------------------------------------------------
# PeriodicTimer
# ----------------------------------------------------------------------
def test_timer_fires_at_period():
    eng = Engine()
    times = []
    PeriodicTimer(eng, 10.0, lambda: times.append(eng.now))
    eng.run(until=35.0)
    assert times == [10.0, 20.0, 30.0]


def test_timer_stop():
    eng = Engine()
    count = [0]
    timer = PeriodicTimer(eng, 10.0, lambda: count.__setitem__(0, count[0] + 1))
    eng.schedule(25.0, timer.stop)
    eng.run(until=100.0)
    assert count[0] == 2


def test_timer_stop_from_callback():
    eng = Engine()
    fired = []

    def cb():
        fired.append(eng.now)
        if len(fired) == 2:
            timer.stop()

    timer = PeriodicTimer(eng, 5.0, cb)
    eng.run(until=100.0)
    assert fired == [5.0, 10.0]


def test_timer_rejects_nonpositive_period():
    with pytest.raises(ValueError):
        PeriodicTimer(Engine(), 0.0, lambda: None)


# ----------------------------------------------------------------------
# Processes
# ----------------------------------------------------------------------
def test_process_sleeps():
    eng = Engine()
    trace = []

    def proc():
        trace.append(eng.now)
        yield 5.0
        trace.append(eng.now)
        yield 10.0
        trace.append(eng.now)

    spawn(eng, proc())
    eng.run()
    assert trace == [0.0, 5.0, 15.0]


def test_process_result():
    eng = Engine()

    def proc():
        yield 1.0
        return "done"

    p = spawn(eng, proc())
    eng.run()
    assert p.alive is False
    assert p.result == "done"


def test_process_waiter_wakeup_value():
    eng = Engine()
    waiter = Waiter()
    got = []

    def sleeper():
        value = yield waiter
        got.append((eng.now, value))

    spawn(eng, sleeper())
    eng.schedule(8.0, waiter.wake, "payload")
    eng.run()
    assert got == [(8.0, "payload")]


def test_waiter_wake_before_yield():
    eng = Engine()
    waiter = Waiter()
    waiter.wake("early")
    got = []

    def sleeper():
        value = yield waiter
        got.append(value)

    spawn(eng, sleeper())
    eng.run()
    assert got == ["early"]


def test_process_kill():
    eng = Engine()
    trace = []

    def proc():
        trace.append("start")
        yield 10.0
        trace.append("never")

    p = spawn(eng, proc())
    eng.schedule(5.0, p.kill)
    eng.run()
    assert trace == ["start"]
    assert p.alive is False


def test_process_bad_yield_type():
    eng = Engine()

    def proc():
        yield "nonsense"

    spawn(eng, proc())
    with pytest.raises(TypeError):
        eng.run()
