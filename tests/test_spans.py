"""Tests for causal span tracing, queue telemetry, and tail analysis.

Covers the off-by-default null-object discipline, the span tree schema
at every seam (NIC, softirq, decision, socket wait, thread scheduling),
the paired-run determinism contract (spans on/off gives bit-identical
simulations), the Chrome Trace Event Format exporter, queue-state gauges
agreeing with the sockets' own drop counters at saturation, the
critical-path analyzer math, the syrupctl spans/tail/events surfaces,
OpenMetrics label escaping, and the figure_tail harness.
"""

import io
import json

import pytest

from repro import Hook, Machine, set_a
from repro.apps.rocksdb import RocksDbServer
from repro.experiments.figure_tail import run_figure_tail
from repro.experiments.runner import RocksDbTestbed
from repro.obs.spans import NULL_SPANS, NullSpanTracer, SpanTracer
from repro.obs.tail import critical_path, percentile, render_critical_path
from repro.policies.builtin import SCAN_AVOID
from repro.policies.thread_policies import GetPriorityPolicy
from repro.syrupctl import render_events, render_spans, render_stats, render_tail
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import GET_ONLY, GET_SCAN_50_50, GET_SCAN_995_005


def _traced_machine(spans=1, seed=101, load=60_000, duration_us=20_000,
                    **machine_kwargs):
    machine = Machine(set_a(), seed=seed, spans=spans, **machine_kwargs)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6, mark_scans=True)
    app.deploy_policy(SCAN_AVOID, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": 6})
    gen = OpenLoopGenerator(machine, 8080, load, GET_SCAN_995_005,
                            duration_us=duration_us)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    return machine, gen


# ----------------------------------------------------------------------
# Null-object discipline
# ----------------------------------------------------------------------
def test_spans_off_by_default():
    machine = Machine(set_a())
    assert machine.obs.spans is NULL_SPANS
    assert not machine.obs.spans.enabled
    assert machine.obs.spans.trees() == []
    assert len(machine.obs.spans) == 0
    assert machine.obs.spans.to_chrome_trace(io.StringIO()) == 0


def test_null_tracer_seams_are_noops():
    null = NullSpanTracer()
    null.nic_arrival(None)
    null.decision(None, "socket_select", "pass")
    null.drop(None, "whatever")
    null.thread_runnable(None)
    null.service_begin(None, None)
    assert null.seen == 0 and null.sampled == 0


def test_sample_every_validation():
    with pytest.raises(ValueError):
        SpanTracer(sample_every=0)


# ----------------------------------------------------------------------
# Span tree schema across the seams
# ----------------------------------------------------------------------
def test_span_tree_structure():
    machine, _gen = _traced_machine(spans=1, metrics=True)
    tracer = machine.obs.spans
    assert tracer.enabled and tracer.sampled > 0
    assert tracer.live == 0  # every sampled request resolved by drain
    trees = tracer.trees(complete=True)
    assert trees
    tree = trees[5]
    names = [s["name"] for s in tree["spans"]]
    assert names[0] == "nic_queue"
    assert "softirq" in names
    assert "decision:socket_select" in names
    assert "socket_wait" in names
    assert names[-1] == "service"
    # spans are closed, ordered, and inside the tree window
    for span in tree["spans"]:
        assert span["end"] is not None
        assert tree["start"] <= span["start"] <= span["end"] <= tree["end"]
    by_name = {s["name"]: s for s in tree["spans"]}
    # socket_wait carries the backlog depth at enqueue
    wait = by_name["socket_wait"]
    assert wait["attrs"]["depth"] >= 0
    assert wait["attrs"]["sid"] > 0
    # the decision span links outcome, deployed fd, and event seq
    decision = by_name["decision:socket_select"]
    assert decision["start"] == decision["end"]
    assert decision["attrs"]["outcome"] in ("pass", "steer")
    assert decision["attrs"]["fd"] == machine.syrupd.status()[0]["fd"]
    assert decision["attrs"]["seq"] >= 1
    assert by_name["service"]["attrs"]["thread"].startswith("rocksdb-worker")


def test_head_sampling_is_counter_based():
    m_all, _ = _traced_machine(spans=1)
    m_half, _ = _traced_machine(spans=2)
    t_all, t_half = m_all.obs.spans, m_half.obs.spans
    assert t_all.seen == t_half.seen
    assert t_all.sampled == t_all.seen
    # every 2nd request-bearing packet: first is sampled, so ceil(n/2)
    assert t_half.sampled == (t_half.seen + 1) // 2
    assert t_half.completed_count + t_half.aborted_count == t_half.sampled


def test_spans_true_means_every_request():
    machine, _gen = _traced_machine(spans=True)
    tracer = machine.obs.spans
    assert tracer.sample_every == 1
    assert tracer.sampled == tracer.seen


def test_runqueue_wait_on_cfs():
    machine, _gen = _traced_machine(spans=1, scheduler="cfs")
    names = set()
    for tree in machine.obs.spans.trees(complete=True):
        names.update(s["name"] for s in tree["spans"])
    assert "runqueue_wait" in names
    assert "placement" not in names  # ghOSt-only


def test_ghost_placement_spans():
    testbed = RocksDbTestbed(
        policy=(SCAN_AVOID, Hook.SOCKET_SELECT, {"NUM_THREADS": 36}),
        num_threads=36, scheduler="ghost", seed=3, mark_scans=True,
        mark_types=True,
        thread_policy_factory=lambda srv: GetPriorityPolicy(srv.type_map),
        spans=1, spans_capacity=1 << 16,
    )
    gen = testbed.drive(6_000, GET_SCAN_50_50, 40_000, 5_000).start()
    testbed.machine.run()
    placed = [
        t for t in testbed.machine.obs.spans.trees(complete=True)
        if any(s["name"] == "placement" for s in t["spans"])
    ]
    assert placed
    tree = placed[0]
    by_name = {s["name"]: s for s in tree["spans"]}
    placement = by_name["placement"]
    assert placement["attrs"]["core"] >= 0
    assert placement["end"] > placement["start"]  # commit + IPI latency
    # runqueue_wait ends where the placement transaction begins
    assert by_name["runqueue_wait"]["end"] == placement["start"]


def test_saturated_socket_trees_abort():
    # Figure-2 drop regime: vanilla hash selection at an overload point
    machine = Machine(set_a(), seed=2, spans=1, spans_capacity=1 << 16)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    gen = OpenLoopGenerator(machine, 8080, 360_000, GET_ONLY,
                            duration_us=30_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    tracer = machine.obs.spans
    aborted = tracer.trees(complete=False)
    assert tracer.aborted_count == len(aborted) > 0
    reasons = {t["abort_reason"] for t in aborted}
    assert "socket_overflow" in reasons
    # aborted trees are excluded from the cohort analysis
    assert critical_path(aborted)["count"] == 0


# ----------------------------------------------------------------------
# Determinism contract
# ----------------------------------------------------------------------
def _fingerprint(machine, gen):
    return (
        gen.latency.count,
        round(gen.latency.p99(), 9),
        round(gen.latency.mean(), 9),
        machine.engine.events_dispatched,
    )


def test_spans_do_not_change_results():
    """Paired runs: span tracing on/off is observationally inert."""
    off = _fingerprint(*_traced_machine(spans=None))
    on = _fingerprint(*_traced_machine(spans=1))
    sampled = _fingerprint(*_traced_machine(spans=7))
    assert off == on == sampled


def _normalized_trees(machine):
    """Trees with socket ids erased: ``UdpSocket`` sids are allocated from
    a process-global counter, so they differ across machines in one test
    process even though each simulation is bit-identical."""
    trees = []
    for tree in machine.obs.spans.trees():
        tree = json.loads(json.dumps(tree))
        for span in tree["spans"]:
            span.get("attrs", {}).pop("sid", None)
        trees.append(tree)
    return trees


def test_spans_deterministic_across_runs():
    """Same seed, spans on: identical trees (the analyzer input is stable)."""
    m1, _ = _traced_machine(spans=3)
    m2, _ = _traced_machine(spans=3)
    assert _normalized_trees(m1) == _normalized_trees(m2)
    a1 = critical_path(m1.obs.spans.trees(complete=True))
    a2 = critical_path(m2.obs.spans.trees(complete=True))
    assert a1 == a2


# ----------------------------------------------------------------------
# Queue-state telemetry (flight-recorder probes)
# ----------------------------------------------------------------------
def test_queue_gauges_recorded():
    machine, _gen = _traced_machine(spans=None, metrics=True,
                                    timeseries=2_000.0)
    recorder = machine.obs.recorder
    keys = recorder.keys()
    assert ("(root)", "nic", "rx_in_flight") in keys
    assert ("(root)", "sched", "runnable_threads") in keys
    softirq = [k for k in keys if k[1] == "softirq"]
    assert len(softirq) == len(machine.netstack.softirq)
    backlogs = [k for k in keys if k[1] == "sockets" and ".backlog" in k[2]]
    assert len(backlogs) == 6  # one gauge per worker socket
    assert all(k[0] == "rocksdb" for k in backlogs)
    # gauges sample instantaneous depths: non-negative, bounded by backlog
    for key in backlogs:
        values = recorder.series(*key).values()
        assert values and all(0 <= v <= 256 for v in values)


def test_backlog_gauges_agree_with_drop_counters_at_saturation():
    """When a socket pins at its backlog limit, its own drop counter and
    the sampled gauge must tell the same story."""
    machine = Machine(set_a(), seed=2, metrics=True, timeseries=1_000.0)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    gen = OpenLoopGenerator(machine, 8080, 360_000, GET_ONLY,
                            duration_us=40_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    recorder = machine.obs.recorder
    saturated = [s for s in server.sockets if s.drops > 0]
    assert saturated, "the figure-2 overload point must drop"
    for socket in saturated:
        values = recorder.series(
            "rocksdb", "sockets", f"s{socket.sid}.backlog"
        ).values()
        # a dropping socket must have been sampled at its backlog limit
        assert max(values) == socket.backlog
    for socket in server.sockets:
        if socket.drops == 0 and socket.enqueued > 0:
            values = recorder.series(
                "rocksdb", "sockets", f"s{socket.sid}.backlog"
            ).values()
            assert max(values) <= socket.backlog


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
def test_chrome_trace_schema(tmp_path):
    machine, _gen = _traced_machine(spans=4)
    tracer = machine.obs.spans
    path = tmp_path / "trace.json"
    n = tracer.to_chrome_trace(path)
    document = json.loads(path.read_text())  # well-formed JSON
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    assert len(events) == n > 0
    expected = len(tracer.trees()) + sum(
        len(t["spans"]) for t in tracer.trees()
    )
    assert n == expected
    for event in events:
        assert event["ph"] == "X"
        assert isinstance(event["ts"], float)
        assert event["dur"] >= 0.0
        assert event["pid"] == 1
        assert isinstance(event["tid"], int)
        assert isinstance(event["name"], str)
    request_events = [e for e in events if e["name"] == "request"]
    assert len(request_events) == len(tracer.trees())
    assert all("rid" in e["args"] for e in request_events)


def test_chrome_trace_accepts_path_and_file(tmp_path):
    machine, _gen = _traced_machine(spans=8)
    tracer = machine.obs.spans
    path = tmp_path / "trace.json"
    n_path = tracer.to_chrome_trace(path)
    buffer = io.StringIO()
    n_file = tracer.to_chrome_trace(buffer)
    assert n_path == n_file
    assert json.loads(buffer.getvalue()) == json.loads(path.read_text())
    buffer.write("still open")  # file-like destinations stay open


# ----------------------------------------------------------------------
# Critical-path analyzer math
# ----------------------------------------------------------------------
def _synthetic_tree(rid, wait_us, service_us):
    start = 100.0 * rid
    return {
        "rid": rid, "rtype": 0, "start": start,
        "end": start + wait_us + service_us, "complete": True,
        "abort_reason": None,
        "spans": [
            {"name": "socket_wait", "start": start,
             "end": start + wait_us},
            {"name": "service", "start": start + wait_us,
             "end": start + wait_us + service_us},
        ],
    }


def test_percentile_nearest_rank():
    values = list(range(1, 101))
    assert percentile(values, 50.0) == 50
    assert percentile(values, 99.0) == 99
    assert percentile(values, 100.0) == 100
    assert percentile([7.0], 99.0) == 7.0
    assert percentile([], 99.0) == 0.0


def test_critical_path_attributes_the_gap():
    # 49 fast requests (no wait, distinct service times 10..14.8us) plus
    # one slow request stuck waiting 90us; with n=50 the nearest-rank
    # p99 edge is the maximum, so the hi cohort is exactly the slow one
    trees = [_synthetic_tree(i, 0.0, 10.0 + 0.1 * i) for i in range(49)]
    trees.append(_synthetic_tree(49, 90.0, 10.0))
    analysis = critical_path(trees)
    assert analysis["count"] == 50
    assert analysis["lo_us"] == pytest.approx(12.4)
    assert analysis["hi_us"] == pytest.approx(100.0)
    assert analysis["lo_count"] == 25
    assert analysis["hi_count"] == 1
    lo_service_mean = sum(10.0 + 0.1 * i for i in range(25)) / 25
    assert analysis["gap_us"] == pytest.approx(100.0 - lo_service_mean)
    top = analysis["rows"][0]
    assert top["span"] == "socket_wait"
    assert top["gap_us"] == pytest.approx(90.0)
    assert top["gap_share"] == pytest.approx(90.0 / analysis["gap_us"])
    service = next(r for r in analysis["rows"] if r["span"] == "service")
    assert service["gap_us"] == pytest.approx(10.0 - lo_service_mean)


def test_critical_path_empty_and_incomplete():
    assert critical_path([])["count"] == 0
    incomplete = dict(_synthetic_tree(0, 0.0, 10.0), complete=False)
    assert critical_path([incomplete])["count"] == 0


def test_render_critical_path_table():
    trees = [_synthetic_tree(i, 0.0, 10.0) for i in range(20)]
    trees.append(_synthetic_tree(20, 50.0, 10.0))
    text = render_critical_path(critical_path(trees), title="t")
    assert "socket_wait" in text and "gap_share_pct" in text
    assert "21 sampled requests" in text


# ----------------------------------------------------------------------
# Operator surfaces
# ----------------------------------------------------------------------
def test_render_spans_and_tail():
    machine, _gen = _traced_machine(spans=1)
    spans_text = render_spans(machine, last=3)
    assert "== syrup spans ==" in spans_text
    assert "service" in spans_text and "rid=" in spans_text
    tail_text = render_tail(machine)
    assert "syrup tail" in tail_text
    assert "socket_wait" in tail_text


def test_render_spans_disabled_message():
    machine = Machine(set_a())
    assert "span tracing disabled" in render_spans(machine)
    assert "span tracing disabled" in render_tail(machine)


def test_render_events_since_and_limit():
    machine, _gen = _traced_machine(spans=None, metrics=True)
    halfway = machine.now / 2
    text = render_events(machine, last=5, since=halfway)
    lines = text.splitlines()
    assert 0 < len(lines) <= 5
    assert all(json.loads(line)["ts"] >= halfway for line in lines)
    # kind + since compose
    text = render_events(machine, last=3, kind="decision", since=halfway)
    for line in text.splitlines():
        event = json.loads(line)
        assert event["kind"] == "decision" and event["ts"] >= halfway


def test_events_since_filter():
    machine, _gen = _traced_machine(spans=None, metrics=True)
    events = machine.obs.events
    cutoff = machine.now * 0.75
    since = events.events(since=cutoff)
    assert since and all(e["ts"] >= cutoff for e in since)
    assert len(since) < len(events.events())


def test_stats_footer_says_dropped():
    machine, _gen = _traced_machine(spans=None, metrics=True)
    footer = render_stats(machine).splitlines()[-1]
    assert "dropped" in footer
    assert "overwritten" not in footer


def test_syrupctl_spans_cli(capsys, tmp_path):
    from repro.syrupctl import main

    trace = tmp_path / "demo_trace.json"
    assert main(["tail", "--load", "60000", "--duration-ms", "20",
                 "--export-trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "syrup tail" in out
    assert json.loads(trace.read_text())["traceEvents"]
    assert main(["spans", "--load", "60000", "--duration-ms", "20",
                 "--last", "2"]) == 0
    assert "== syrup spans ==" in capsys.readouterr().out


# ----------------------------------------------------------------------
# figure_tail harness
# ----------------------------------------------------------------------
def test_figure_tail_contrasts_policies(tmp_path):
    export = tmp_path / "spans"
    table = run_figure_tail(loads=[120_000], duration_us=60_000.0,
                            warmup_us=15_000.0, export_dir=str(export))
    rows = {(r["policy"], r["span"]): r for r in table.rows}

    def share(policy):
        return rows[(policy, "socket_wait")]["gap_share_pct"]

    # the headline: SCAN-Avoid collapses socket_wait's share of the tail
    assert share("rss") > 2 * share("scan_avoid")
    assert share("rss") > 50.0
    # exports: one chrome trace + one analysis dict per policy/load
    for policy in ("rss", "scan_avoid"):
        trace = json.loads((export / f"spans_{policy}_120000.json").read_text())
        assert trace["traceEvents"]
        analysis = json.loads((export / f"tail_{policy}_120000.json").read_text())
        assert analysis["count"] > 0 and analysis["rows"]


def test_repro_cli_figure_tail(capsys, tmp_path):
    from repro.cli import main

    export = tmp_path / "artifacts"
    assert main(["figure_tail", "--loads", "60000", "--duration-ms", "40",
                 "--export-spans", str(export)]) == 0
    out = capsys.readouterr().out
    assert "Tail attribution" in out and "socket_wait" in out
    assert (export / "spans_rss_60000.json").exists()


# ----------------------------------------------------------------------
# OpenMetrics label escaping (repro.obs.export)
# ----------------------------------------------------------------------
def test_openmetrics_label_escaping_round_trip():
    from repro.obs.export import to_openmetrics
    from repro.obs.registry import MetricsRegistry

    reg = MetricsRegistry()
    nasty = 'app"with\\quotes\nand newline'
    reg.counter(nasty, "scope", "hits").inc(3)
    reg.histogram(nasty, "scope", "lat").observe(2.0)
    reg.sketch(nasty, "scope", "svc").observe(5.0)
    text = to_openmetrics(reg)
    assert '\\"' in text            # quote escaped
    assert "\\\\" in text           # backslash escaped
    assert "\\n" in text            # newline escaped
    escaped = 'app\\"with\\\\quotes\\nand newline'
    assert f'app="{escaped}"' in text
    # round-trip: unescaping the label value recovers the original
    import re

    match = re.search(r'app="((?:[^"\\]|\\.)*)"', text)
    assert match
    recovered = re.sub(
        r"\\(.)",
        lambda m: {"n": "\n", '"': '"', "\\": "\\"}[m.group(1)],
        match.group(1),
    )
    assert recovered == nasty
    # histogram bucket lines route through the same escaping
    bucket_lines = [l for l in text.splitlines() if "_bucket" in l]
    assert bucket_lines
    assert all(f'app="{escaped}"' in l for l in bucket_lines)
    assert any('le="+Inf"' in l for l in bucket_lines)
    # sketch summary quantile series route through the same escaping
    assert "# TYPE syrup_svc summary" in text
    quantile_lines = [l for l in text.splitlines() if "quantile=" in l]
    assert len(quantile_lines) == 3  # SUMMARY_QUANTILES
    assert all(f'app="{escaped}"' in l for l in quantile_lines)
    assert any('quantile="0.99"' in l for l in quantile_lines)
    assert 'syrup_svc_count{app="' in text and 'syrup_svc_sum{app="' in text
    # simple labels stay byte-identical to the historical format
    reg2 = MetricsRegistry()
    reg2.counter("rocksdb", "socket_select", "pass").inc()
    assert ('syrup_pass_total{app="rocksdb",scope="socket_select"} 1'
            in to_openmetrics(reg2))
