"""Tests for TCP connection scheduling and RFS locality."""

import pytest

from repro import Hook, Machine
from repro.apps.netperf import EchoServer, RFS_TABLE_SIZE
from repro.apps.rocksdb import RocksDbServer
from repro.config import set_a, with_costs
from repro.net.packet import FiveTuple, Packet, build_payload
from repro.policies import RFS_STEERING, ROUND_ROBIN
from repro.workload.requests import GET, Request
from repro.workload.tcp_rr import TcpRRGenerator

TCP_FLOW = FiveTuple(0x0A000002, 40000, 0x0A000001, 8080, 6)


def tcp_packet(flow=TCP_FLOW, rid=1):
    request = Request(rid, GET, 1.0)
    return Packet(flow, build_payload(GET, 0, 0, rid), request=request)


# ----------------------------------------------------------------------
# Connection-level scheduling
# ----------------------------------------------------------------------
def test_tcp_connection_pins_to_first_socket():
    machine = Machine(set_a(), seed=41)
    app = machine.register_app("srv", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 4)
    for rid in range(5):
        machine.netstack.deliver_from_nic(0, tcp_packet(rid=rid))
    machine.run()
    counts = [s.enqueued for s in server.sockets]
    assert sorted(counts, reverse=True)[0] == 5  # all on one socket
    assert TCP_FLOW in machine.netstack.tcp_connections


def test_tcp_round_robin_is_per_connection_not_per_packet():
    machine = Machine(set_a(), seed=41)
    app = machine.register_app("srv", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 4)
    app.deploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": 4})
    flows = [TCP_FLOW._replace(src_port=50000 + i) for i in range(4)]
    # 3 packets per connection, interleaved
    for rid in range(3):
        for flow in flows:
            machine.netstack.deliver_from_nic(0, tcp_packet(flow, rid))
    machine.run()
    # each connection's packets stayed together: each socket saw one conn
    assert [s.enqueued for s in server.sockets] == [3, 3, 3, 3]
    assigned = {machine.netstack.tcp_connections[f].sid for f in flows}
    assert len(assigned) == 4


def test_udp_flows_are_not_pinned():
    machine = Machine(set_a(), seed=41)
    app = machine.register_app("srv", ports=[8080])
    RocksDbServer(machine, app, 8080, 4)
    udp_flow = TCP_FLOW._replace(proto=17)
    machine.netstack.deliver_from_nic(0, tcp_packet(udp_flow))
    machine.run()
    assert udp_flow not in machine.netstack.tcp_connections


# ----------------------------------------------------------------------
# RFS
# ----------------------------------------------------------------------
def run_tcp_rr(rfs, connections=32, duration=60_000):
    config = with_costs(set_a(), remote_softirq_us=7.0)
    machine = Machine(config, seed=42)
    app = machine.register_app("netperf", ports=[5201])
    server = EchoServer(machine, app, 5201, num_threads=6, rfs=rfs)
    if rfs:
        app.deploy_policy(RFS_STEERING, Hook.CPU_REDIRECT)
    gen = TcpRRGenerator(machine, 5201, num_connections=connections,
                         duration_us=duration, warmup_us=duration / 4).start()
    server.response_sink = gen.deliver_response
    machine.run()
    return machine, server, gen


def test_echo_server_publishes_rfs_table():
    machine, server, gen = run_tcp_rr(rfs=True, connections=8,
                                      duration=10_000)
    assert server.rfs_map is not None
    entries = server.rfs_map.items()
    assert 0 < len(entries) <= 8
    softirq_cores = len(machine.netstack.softirq)
    assert all(0 <= core < softirq_cores for _k, core in entries)


def test_rfs_improves_tcp_rr_throughput():
    _m1, _s1, base = run_tcp_rr(rfs=False)
    _m2, _s2, rfs = run_tcp_rr(rfs=True)
    assert rfs.transactions_per_sec() > 1.5 * base.transactions_per_sec()
    assert rfs.latency.p99() < base.latency.p99()


def test_rfs_steers_processing_to_buddy_cores():
    machine, server, _gen = run_tcp_rr(rfs=True, connections=6,
                                       duration=20_000)
    # after warm-up, flows are processed on the consuming thread's buddy:
    # served counts concentrate where the connections' threads live
    served = [q.served for q in machine.netstack.softirq]
    assert sum(served) > 0


def test_locality_penalty_charged_only_when_remote():
    config = with_costs(set_a(), remote_softirq_us=5.0)
    machine = Machine(config, seed=43)
    app = machine.register_app("srv", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 2)
    request = Request(1, GET, 10.0)
    local = tcp_packet()
    local.softirq_core = server.threads[0].home_core
    remote = tcp_packet()
    remote.softirq_core = server.threads[0].home_core + 1
    base = server.request_cost(request, local, 0)
    penalized = server.request_cost(request, remote, 0)
    assert penalized == pytest.approx(base + 5.0)


def test_no_penalty_when_disabled():
    machine = Machine(set_a(), seed=43)  # remote_softirq_us = 0
    app = machine.register_app("srv", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 2)
    request = Request(1, GET, 10.0)
    remote = tcp_packet()
    remote.softirq_core = 1
    assert server.request_cost(request, remote, 0) == pytest.approx(12.0)


def test_tcp_rr_closed_loop_conserves_inflight():
    _m, _s, gen = run_tcp_rr(rfs=False, connections=16, duration=20_000)
    assert gen.in_flight == 0  # fully drained
    assert gen.transactions > 0
