"""Unit tests for the policy library (network sources + thread policies)."""

import pytest

from repro.constants import DROP, PASS
from repro.ebpf.compiler import compile_policy
from repro.ebpf.program import load_program
from repro.ghost.agent import CoreView, SchedStatus
from repro.kernel.threads import KThread
from repro.net.packet import FiveTuple, Packet, build_payload
from repro.policies.builtin import (
    HASH_BY_FLOW,
    MICA_HASH,
    ROUND_ROBIN,
    SCAN_AVOID,
    SITA,
    TOKEN_BASED,
)
from repro.policies.thread_policies import FifoThreadPolicy, GetPriorityPolicy
from repro.workload.requests import GET, SCAN

FLOW = FiveTuple(0x0A000002, 40000, 0x0A000001, 8080, 17)


def pkt(rtype=GET, user=0, key_hash=0):
    return Packet(FLOW, build_payload(rtype, user, key_hash))


def load(source, **constants):
    return load_program(compile_policy(source, constants=constants))


# ----------------------------------------------------------------------
# Network policies
# ----------------------------------------------------------------------
def test_hash_by_flow_stable_and_in_range():
    loaded = load(HASH_BY_FLOW, NUM_EXECUTORS=6)
    values = {loaded.run(pkt()) for _ in range(10)}
    assert len(values) == 1
    assert 0 <= values.pop() < 6


def test_round_robin_covers_all_executors():
    loaded = load(ROUND_ROBIN, NUM_THREADS=5)
    seen = [loaded.run(pkt()) for _ in range(10)]
    assert sorted(set(seen)) == [0, 1, 2, 3, 4]


def test_scan_avoid_prefers_unmarked_sockets():
    loaded = load(SCAN_AVOID, NUM_THREADS=4)
    scan_map = loaded.map_by_name("scan_map")
    # mark all but socket 2 as serving SCANs
    for i in (0, 1, 3):
        scan_map.update(i, 1)
    scan_map.update(2, 0)
    picks = [loaded.run(pkt()) for _ in range(400)]
    # bounded random probing (paper Fig. 5c): strongly prefers the free
    # socket but may give up after NUM_THREADS probes ((3/4)^4 ~ 32%)
    frac_free = picks.count(2) / len(picks)
    assert frac_free > 0.55
    assert max(picks.count(i) for i in (0, 1, 3)) < picks.count(2)


def test_scan_avoid_gives_up_after_bounded_probes():
    loaded = load(SCAN_AVOID, NUM_THREADS=4)
    scan_map = loaded.map_by_name("scan_map")
    for i in range(4):
        scan_map.update(i, 1)  # everyone busy
    value = loaded.run(pkt())
    assert 0 <= value < 4  # still returns SOME socket, never hangs


def test_sita_split():
    loaded = load(SITA, NUM_THREADS=6, SCAN_TYPE=SCAN)
    assert loaded.run(pkt(rtype=SCAN)) == 0
    gets = {loaded.run(pkt(rtype=GET)) for _ in range(32)}
    assert gets == {1, 2, 3, 4, 5}


def test_sita_short_packet_passes():
    loaded = load(SITA, NUM_THREADS=6, SCAN_TYPE=SCAN)
    short = Packet(FLOW, b"1234")
    assert loaded.run(short) == PASS


def test_token_policy_per_user_buckets():
    loaded = load(TOKEN_BASED, NUM_THREADS=6)
    tokens = loaded.map_by_name("token_map")
    tokens.update(1, 1)
    tokens.update(2, 0)
    assert loaded.run(pkt(user=1)) != DROP
    assert loaded.run(pkt(user=1)) == DROP   # bucket drained
    assert loaded.run(pkt(user=2)) == DROP   # always empty
    tokens.update(2, 3)
    assert loaded.run(pkt(user=2)) != DROP


def test_mica_hash_is_home_steering():
    loaded = load(MICA_HASH, NUM_EXECUTORS=8)
    for key_hash in (0, 7, 8, 123456789):
        assert loaded.run(pkt(key_hash=key_hash)) == key_hash % 8


# ----------------------------------------------------------------------
# Thread policies
# ----------------------------------------------------------------------
class FakeMap:
    def __init__(self, values):
        self.values = values

    def lookup(self, key):
        return self.values.get(key)


def make_status(runnable, core_threads, pending=()):
    cores = [
        CoreView(i, t, i in pending) for i, t in enumerate(core_threads)
    ]
    return SchedStatus(0.0, runnable, cores)


def thread(tid):
    return KThread(tid=tid, app="a")


def test_fifo_policy_matches_idle_cores():
    t1, t2, t3 = thread(1), thread(2), thread(3)
    status = make_status([t1, t2, t3], [None, None])
    placements = FifoThreadPolicy().schedule(status)
    assert placements == [(t1, 0), (t2, 1)]


def test_fifo_policy_no_idle_cores():
    t1 = thread(1)
    status = make_status([t1], [thread(9)])
    assert FifoThreadPolicy().schedule(status) == []


def test_get_priority_places_gets_first():
    tg, ts = thread(1), thread(2)
    type_map = FakeMap({1: GET, 2: SCAN})
    status = make_status([ts, tg], [None])
    placements = GetPriorityPolicy(type_map).schedule(status)
    assert placements == [(tg, 0)]


def test_get_priority_preempts_scan_cores():
    tg = thread(1)
    scan_runner = thread(5)
    type_map = FakeMap({1: GET, 5: SCAN})
    status = make_status([tg], [scan_runner])
    placements = GetPriorityPolicy(type_map).schedule(status)
    assert placements == [(tg, 0)]


def test_get_priority_never_preempts_get_cores():
    tg = thread(1)
    get_runner = thread(5)
    type_map = FakeMap({1: GET, 5: GET})
    status = make_status([tg], [get_runner])
    assert GetPriorityPolicy(type_map).schedule(status) == []


def test_get_priority_skips_pending_cores():
    tg = thread(1)
    scan_runner = thread(5)
    type_map = FakeMap({1: GET, 5: SCAN})
    status = make_status([tg], [scan_runner], pending={0})
    assert GetPriorityPolicy(type_map).schedule(status) == []


def test_get_priority_scan_threads_take_idle_cores():
    ts = thread(2)
    type_map = FakeMap({2: SCAN})
    status = make_status([ts], [None])
    assert GetPriorityPolicy(type_map).schedule(status) == [(ts, 0)]


# ----------------------------------------------------------------------
# Token agent
# ----------------------------------------------------------------------
def test_token_agent_refills_and_gifts():
    from repro import Machine, set_a
    from repro.policies.token_agent import TokenAgent

    machine = Machine(set_a())
    app = machine.register_app("a", ports=[8080])
    token_map = app.create_map("token_map", size=16)
    agent = TokenAgent(machine, token_map, ls_user=1, be_user=2,
                       rate_per_sec=100_000, epoch_us=100.0)
    assert token_map.lookup(1) == 10  # initial grant
    # LS consumes 4 tokens this epoch
    token_map.bpf_map.update(1, 6)
    machine.run(until=150.0)
    agent.stop()
    machine.run()
    assert token_map.lookup(1) == 10  # refilled
    assert token_map.lookup(2) == 6   # leftovers gifted
    assert agent.epochs >= 1


def test_token_agent_rejects_zero_rate():
    from repro import Machine, set_a
    from repro.policies.token_agent import TokenAgent

    machine = Machine(set_a())
    app = machine.register_app("a", ports=[8080])
    token_map = app.create_map("token_map", size=16)
    with pytest.raises(ValueError):
        TokenAgent(machine, token_map, 1, 2, rate_per_sec=100, epoch_us=1.0)
