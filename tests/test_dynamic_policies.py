"""Dynamic reconfiguration: run-time executor counts, connection teardown."""

import pytest

from repro import Hook, Machine, set_a
from repro.apps.rocksdb import RocksDbServer
from repro.net.packet import FiveTuple, Packet, build_payload
from repro.policies import DYNAMIC_ROUND_ROBIN
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import GET_ONLY
from repro.workload.requests import GET, Request


def test_dynamic_round_robin_scales_with_map():
    """§5.2: the executor count 'can alternatively be read dynamically
    from a Map at run time'."""
    machine = Machine(set_a(), seed=91)
    app = machine.register_app("dyn", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    app.deploy_policy(DYNAMIC_ROUND_ROBIN, Hook.SOCKET_SELECT)
    count_map = app.map_open(app.map_path("executor_count"))
    count_map.update(0, 3)  # only the first 3 sockets for now

    gen = OpenLoopGenerator(machine, 8080, 60_000, GET_ONLY,
                            duration_us=60_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run(until=30_000)
    first = [s.enqueued for s in server.sockets]
    assert all(c > 0 for c in first[:3])
    assert all(c == 0 for c in first[3:])

    count_map.update(0, 6)  # scale up at run time, no redeploy
    machine.run()
    second = [s.enqueued - f for s, f in zip(server.sockets, first)]
    assert all(c > 0 for c in second)
    assert gen.drop_fraction() == 0.0


def test_dynamic_round_robin_zero_count_passes():
    machine = Machine(set_a(), seed=92)
    app = machine.register_app("dyn", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 4)
    app.deploy_policy(DYNAMIC_ROUND_ROBIN, Hook.SOCKET_SELECT)
    # count never set: policy PASSes, default hash still delivers
    gen = OpenLoopGenerator(machine, 8080, 20_000, GET_ONLY,
                            duration_us=10_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    assert gen.drop_fraction() == 0.0


def test_tcp_connection_teardown_reschedules():
    machine = Machine(set_a(), seed=93)
    app = machine.register_app("srv", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 4)
    flow = FiveTuple(0x0A000002, 40000, 0x0A000001, 8080, 6)

    def send(rid):
        request = Request(rid, GET, 1.0)
        machine.netstack.deliver_from_nic(
            0, Packet(flow, build_payload(GET, 0, 0, rid), request=request)
        )

    send(1)
    machine.run()
    first_socket = machine.netstack.tcp_connections[flow]
    assert machine.netstack.close_connection(flow) is True
    assert machine.netstack.close_connection(flow) is False
    assert flow not in machine.netstack.tcp_connections
    send(2)
    machine.run()
    # re-established (possibly on the same socket via the default hash,
    # but through a fresh scheduling decision)
    assert flow in machine.netstack.tcp_connections
