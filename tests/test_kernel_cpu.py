"""Tests for FifoServer and Core."""

import pytest

from repro.kernel.cpu import Core, FifoServer
from repro.sim.engine import Engine


def test_fifo_serves_in_order_with_costs():
    eng = Engine()
    server = FifoServer(eng, "s")
    done = []
    server.submit(5.0, lambda: done.append(("a", eng.now)))
    server.submit(3.0, lambda: done.append(("b", eng.now)))
    eng.run()
    assert done == [("a", 5.0), ("b", 8.0)]
    assert server.served == 2
    assert server.busy_us == pytest.approx(8.0)


def test_fifo_idle_then_busy_again():
    eng = Engine()
    server = FifoServer(eng, "s")
    done = []
    server.submit(2.0, lambda: done.append(eng.now))
    eng.run()
    eng.schedule(10.0, lambda: server.submit(4.0, lambda: done.append(eng.now)))
    eng.run()
    assert done == [2.0, 16.0]


def test_fifo_capacity_refuses_when_full():
    eng = Engine()
    server = FifoServer(eng, "s", capacity=2)
    assert server.submit(1.0, lambda: None)   # starts service, q drains to 1
    assert server.submit(1.0, lambda: None)
    # queue now holds 2 entries (one in service); capacity counts queued
    ok = server.submit(1.0, lambda: None)
    refused = server.submit(1.0, lambda: None)
    assert ok is True or ok is False  # depends on in-service accounting
    assert refused is False
    eng.run()


def test_fifo_utilization():
    eng = Engine()
    server = FifoServer(eng, "s")
    server.submit(5.0, lambda: None)
    eng.run(until=10.0)
    assert server.utilization(eng.now) == pytest.approx(0.5)


def test_fifo_submission_from_callback():
    eng = Engine()
    server = FifoServer(eng, "s")
    done = []

    def first():
        done.append(("first", eng.now))
        server.submit(2.0, lambda: done.append(("second", eng.now)))

    server.submit(3.0, first)
    eng.run()
    assert done == [("first", 3.0), ("second", 5.0)]


def test_core_initial_state():
    core = Core(3)
    assert core.cid == 3
    assert core.idle
    assert core.thread is None
    assert core.utilization(100.0) == 0.0


def test_core_not_idle_with_pending_commit():
    core = Core(0)
    core.pending_commit = object()
    assert not core.idle
