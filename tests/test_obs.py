"""Tests for the observability layer (repro.obs + syrupctl stats).

Covers metric semantics (counter/gauge/histogram), label-cardinality
enforcement, the no-op disabled mode, the event-trace ring, end-to-end
instrumentation of a deployed SOCKET_SELECT policy, the determinism
contract (metrics on/off gives identical results), ghOSt agent counters,
and the syrupctl rendering surface.
"""

import json

import pytest

from repro import Hook, Machine, set_a
from repro.apps.rocksdb import RocksDbServer
from repro.core.syrupd import IsolationError
from repro.ebpf.errors import VerifierError
from repro.obs import (
    DISABLED,
    NULL_EVENTS,
    NULL_METRIC,
    NULL_REGISTRY,
    CardinalityError,
    EventTrace,
    MetricsRegistry,
    Observability,
)
from repro.policies.builtin import SCAN_AVOID
from repro.syrupctl import render_stats, run_stats_demo
from repro.trace import RequestTracer
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import GET_SCAN_995_005


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
def test_counter_semantics():
    now = [0.0]
    reg = MetricsRegistry(clock=lambda: now[0])
    c = reg.counter("app", "hook", "x")
    assert c.value == 0 and c.updated_at is None
    c.inc()
    now[0] = 5.0
    c.inc(3)
    assert c.value == 4
    assert c.updated_at == 5.0
    # same key returns the same object
    assert reg.counter("app", "hook", "x") is c
    assert reg.value("app", "hook", "x") == 4
    assert reg.value("app", "hook", "missing") is None


def test_gauge_semantics():
    reg = MetricsRegistry()
    g = reg.gauge("app", "hook", "size")
    g.set(42)
    g.set(7)
    assert g.value == 7


def test_histogram_semantics():
    reg = MetricsRegistry()
    h = reg.histogram("app", "maps", "lat")
    for v in [1.0, 2.0, 3.0, 100.0]:
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(106.0)
    assert h.vmin == 1.0 and h.vmax == 100.0
    assert h.mean == pytest.approx(26.5)
    # percentiles are bucket upper edges, monotone, capped at max
    assert h.percentile(50.0) <= h.percentile(99.0) <= h.vmax
    assert h.percentile(100.0) == 100.0
    summary = h.summary()
    assert summary["count"] == 4 and summary["max"] == 100.0
    # sub-1.0 observations land in bucket 0
    h2 = reg.histogram("app", "maps", "small")
    h2.observe(0.25)
    assert h2.percentile(99.0) <= 1.0


def test_kind_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("a", "b", "c")
    with pytest.raises(TypeError):
        reg.gauge("a", "b", "c")


def test_cardinality_cap():
    reg = MetricsRegistry(max_series=3)
    for i in range(3):
        reg.counter("app", "hook", f"m{i}")
    reg.counter("app", "hook", "m0")  # existing series: fine
    with pytest.raises(CardinalityError):
        reg.counter("app", "hook", "m3")


def test_cardinality_cap_error_is_diagnosable():
    reg = MetricsRegistry(max_series=2)
    reg.counter("app", "hook", "ok")
    reg.histogram("app", "maps", "lat")
    with pytest.raises(CardinalityError) as excinfo:
        reg.gauge("app", "hook", "overflow")
    # the error names the limit and the offending key
    message = str(excinfo.value)
    assert "2" in message and "overflow" in message
    # the registry stays usable: existing series unharmed, no partial entry
    assert len(reg) == 2
    assert reg.get("app", "hook", "overflow") is None
    reg.counter("app", "hook", "ok").inc()
    assert reg.value("app", "hook", "ok") == 1
    # CardinalityError is a RuntimeError, catchable generically
    assert issubclass(CardinalityError, RuntimeError)


def test_histogram_percentile_empty():
    h = MetricsRegistry().histogram("app", "maps", "lat")
    assert h.count == 0
    for q in (0.0, 50.0, 99.0, 100.0):
        assert h.percentile(q) == 0.0
    assert h.mean == 0.0
    summary = h.summary()
    assert summary["min"] == 0.0 and summary["max"] == 0.0


def test_histogram_percentile_single_sample():
    h = MetricsRegistry().histogram("app", "maps", "lat")
    h.observe(37.0)
    # one sample: every percentile is that sample (bucket edge capped at max)
    for q in (1.0, 50.0, 99.0, 100.0):
        assert h.percentile(q) == 37.0
    assert h.vmin == h.vmax == 37.0


def test_histogram_bucket_zero_values():
    h = MetricsRegistry().histogram("app", "maps", "lat")
    for v in (0.0, 0.1, 0.5, 0.999):
        h.observe(v)
    assert h.buckets[0] == 4
    # bucket-0 upper edge is 1.0, but percentiles never exceed the true max
    assert h.percentile(99.0) == pytest.approx(0.999)
    assert h.percentile(1.0) <= 1.0
    assert h.vmin == 0.0


def test_snapshot_rows_are_json_safe_and_sorted():
    reg = MetricsRegistry(clock=lambda: 1.5)
    reg.counter("b", "s", "n").inc()
    reg.gauge("a", "s", "g").set(2)
    reg.histogram("a", "s", "h").observe(3.0)
    rows = reg.snapshot()
    assert [r["app"] for r in rows] == ["a", "a", "b"]
    json.dumps(rows)  # must not raise
    kinds = {r["metric"]: r["kind"] for r in rows}
    assert kinds == {"n": "counter", "g": "gauge", "h": "histogram"}
    assert reg.values_for("a", "s")["g"] == 2


# ----------------------------------------------------------------------
# Disabled (no-op) mode
# ----------------------------------------------------------------------
def test_null_registry_noops():
    assert NULL_REGISTRY.enabled is False
    c = NULL_REGISTRY.counter("a", "b", "c")
    assert c is NULL_METRIC
    c.inc()
    c.set(5)
    c.observe(1.0)
    assert c.value == 0
    assert NULL_REGISTRY.snapshot() == []
    assert NULL_REGISTRY.values_for("a", "b") == {}
    assert len(NULL_REGISTRY) == 0


def test_null_events_noops(tmp_path):
    assert NULL_EVENTS.enabled is False
    assert NULL_EVENTS.emit("decision", app="x") is None
    assert NULL_EVENTS.events() == []
    out = tmp_path / "events.jsonl"
    assert NULL_EVENTS.to_jsonl(out) == 0


def test_machine_defaults_to_disabled_observability():
    machine = Machine(set_a(), seed=1)
    assert machine.obs.enabled is False
    assert machine.obs.registry is NULL_REGISTRY
    assert machine.obs.events is NULL_EVENTS
    assert DISABLED.enabled is False


# ----------------------------------------------------------------------
# Event trace
# ----------------------------------------------------------------------
def test_event_ring_bounds_and_export(tmp_path):
    now = [0.0]
    trace = EventTrace(clock=lambda: now[0], capacity=4)
    for i in range(6):
        now[0] = float(i)
        trace.emit("decision", app="a", hook="h", value=i)
    assert len(trace) == 4
    assert trace.emitted == 6
    assert trace.dropped == 2
    values = [e["value"] for e in trace.events()]
    assert values == [2, 3, 4, 5]  # oldest overwritten
    assert [e["value"] for e in trace.tail(2)] == [4, 5]
    out = tmp_path / "events.jsonl"
    assert trace.to_jsonl(out) == 4
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert lines[0]["kind"] == "decision" and lines[0]["ts"] == 2.0


def test_event_filtering():
    trace = EventTrace()
    trace.emit("deploy", app="a")
    trace.emit("decision", app="a")
    trace.emit("decision", app="b")
    assert len(trace.events(kind="decision")) == 2
    assert len(trace.events(kind="decision", app="b")) == 1
    trace.clear()
    assert len(trace) == 0


# ----------------------------------------------------------------------
# End-to-end: a deployed SOCKET_SELECT policy increments its counters
# ----------------------------------------------------------------------
def _busy_machine(metrics):
    machine = Machine(set_a(), seed=101, metrics=metrics)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6, mark_scans=True)
    app.deploy_policy(SCAN_AVOID, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": 6})
    gen = OpenLoopGenerator(machine, 8080, 60_000, GET_SCAN_995_005,
                            duration_us=20_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    return machine, gen


def test_deployed_policy_increments_hook_counters():
    machine, _gen = _busy_machine(metrics=True)
    reg = machine.obs.registry
    sched = reg.value("rocksdb", "socket_select", "schedule_calls")
    assert sched > 0
    # SCAN Avoid always returns an executor index
    assert reg.value("rocksdb", "socket_select", "steer") == sched
    assert reg.value("rocksdb", "socket_select", "pass") == 0
    assert reg.value("rocksdb", "socket_select", "drop") == 0
    # PASS/DROP totals + steer account for every schedule() call
    outcomes = sum(
        reg.value("rocksdb", "socket_select", name)
        for name in ("pass", "drop", "steer", "index_miss")
    )
    assert outcomes == sched
    # program-level counters from the VM/JIT dispatch path
    assert reg.value("rocksdb", "socket_select", "invocations") == sched
    assert reg.value("rocksdb", "socket_select", "insns_interp") > 0
    assert reg.value("rocksdb", "socket_select", "jit_runs") > 0
    # the server's userspace map traffic is metered
    assert reg.value("rocksdb", "maps", "scan_map.updates") > 0
    # control plane
    assert reg.value("rocksdb", "syrupd", "deploys") == 1
    # sim-time stamps
    metric = reg.get("rocksdb", "socket_select", "schedule_calls")
    assert 0.0 < metric.updated_at <= machine.now
    # decision events recorded with the schema fields
    decisions = machine.obs.events.events(kind="decision", app="rocksdb")
    assert decisions
    event = decisions[-1]
    assert event["hook"] == "socket_select"
    assert event["port"] == 8080
    assert event["outcome"] == "steer"
    assert 0.0 < event["ts"] <= machine.now


def test_metrics_do_not_change_results():
    """The determinism contract: metrics on/off is observationally inert."""
    _m_off, gen_off = _busy_machine(metrics=False)
    _m_on, gen_on = _busy_machine(metrics=True)
    assert gen_off.latency.p99() == gen_on.latency.p99()
    assert gen_off.latency.count == gen_on.latency.count


def test_status_rows_carry_metrics_when_enabled():
    machine, _gen = _busy_machine(metrics=True)
    row = machine.syrupd.status()[0]
    assert row["metrics"]["schedule_calls"] > 0
    machine_off, _gen = _busy_machine(metrics=False)
    assert "metrics" not in machine_off.syrupd.status()[0]


def test_isolation_denial_counted():
    machine, _gen = _busy_machine(metrics=True)
    with pytest.raises(IsolationError):
        machine.register_app("intruder", ports=[8080])
    reg = machine.obs.registry
    assert reg.value("(root)", "syrupd", "isolation_denials") == 1
    denials = machine.obs.events.events(kind="isolation_denial")
    assert denials and "8080" in denials[0]["detail"]


def test_verifier_rejection_counted():
    machine = Machine(set_a(), seed=5, metrics=True)
    app = machine.register_app("bad", ports=[9000])
    bad_policy = """
def schedule(pkt):
    return load_u64(pkt, 0)    # unguarded load: verifier must reject
"""
    with pytest.raises(VerifierError):
        app.deploy_policy(bad_policy, Hook.SOCKET_SELECT)
    assert machine.obs.registry.value("bad", "syrupd",
                                      "verifier_rejections") == 1
    assert machine.obs.events.events(kind="verifier_reject")


def test_request_tracer_bridges_into_event_trace():
    machine = Machine(set_a(), seed=101, metrics=True)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    tracer = RequestTracer(machine, server)
    gen = OpenLoopGenerator(machine, 8080, 40_000, GET_SCAN_995_005,
                            duration_us=10_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    requests = machine.obs.events.events(kind="request")
    assert requests
    event = requests[0]
    for field in ("wire_nic", "stack", "socket_wait", "service", "total"):
        assert field in event
    assert event["total"] == pytest.approx(
        event["wire_nic"] + event["stack"] + event["socket_wait"]
        + event["service"]
    )
    assert tracer.stages["total"].count == len(requests)


def test_ghost_agent_counters():
    from collections import deque

    from repro.config import CostModel
    from repro.ghost.agent import GhostAgent
    from repro.ghost.enclave import Enclave
    from repro.ghost.sched import GhostScheduler
    from repro.kernel.cpu import Core
    from repro.kernel.threads import KThread
    from repro.sim.engine import Engine

    class ListSource:
        def __init__(self, items):
            self.items = deque(items)

        def pull(self):
            return self.items.popleft() if self.items else None

        def complete(self, token):
            pass

    class Fifo:
        def schedule(self, status):
            return [
                (t, c.cid)
                for t, c in zip(status.runnable, status.idle_cores())
            ]

    eng = Engine()
    reg = MetricsRegistry(clock=lambda: eng.now)
    events = EventTrace(clock=lambda: eng.now)
    metrics = {
        name: reg.counter("ghostapp", "thread_sched", name)
        for name in ("messages", "preemptions", "commits",
                     "failed_commits", "policy_errors")
    }
    cores = [Core(i) for i in range(2)]
    costs = CostModel(ctx_switch_us=1.0, ghost_msg_us=0.5,
                      ghost_commit_us=1.0, ghost_ipi_us=2.0)
    sched = GhostScheduler(eng, cores, costs)
    enclave = Enclave("ghostapp")
    agent = GhostAgent(eng, sched, enclave, Fifo(), costs,
                       metrics=metrics, events=events)
    for tid in range(2):
        thread = KThread(tid=tid, app="ghostapp")
        thread.source = ListSource([(10.0, f"w{tid}")])
        enclave.register(thread)
        sched.attach(thread)
        thread.wake()
    eng.run()
    assert agent.commits >= 2
    assert reg.value("ghostapp", "thread_sched", "messages") > 0
    assert reg.value("ghostapp", "thread_sched", "commits") == agent.commits


# ----------------------------------------------------------------------
# syrupctl surface
# ----------------------------------------------------------------------
def test_render_stats_disabled_message():
    machine = Machine(set_a(), seed=1)
    assert "observability disabled" in render_stats(machine)


def test_render_stats_enabled_table():
    machine, _gen = _busy_machine(metrics=True)
    text = render_stats(machine)
    assert "syrup stats" in text
    assert "schedule_calls" in text
    assert "rocksdb" in text
    assert "socket_select" in text
    assert "events:" in text


def test_stats_demo_and_cli(capsys, tmp_path):
    from repro.syrupctl import main as syrupctl_main

    machine = run_stats_demo(load=40_000, duration_ms=10.0, seed=2)
    assert machine.obs.registry.value(
        "rocksdb", "socket_select", "schedule_calls") > 0
    out = tmp_path / "events.jsonl"
    rc = syrupctl_main([
        "stats", "--load", "40000", "--duration-ms", "10",
        "--export-events", str(out),
    ])
    assert rc == 0
    captured = capsys.readouterr()
    assert "schedule_calls" in captured.out
    assert out.exists() and out.read_text().strip()


def test_repro_cli_stats_subcommand(capsys):
    from repro.cli import main as cli_main

    rc = cli_main(["stats", "--loads", "40000", "--duration-ms", "10"])
    assert rc == 0
    assert "schedule_calls" in capsys.readouterr().out


def test_openmetrics_export_format():
    from repro.obs.export import to_openmetrics

    reg = MetricsRegistry()
    reg.counter("rocksdb", "socket_select", "schedule_calls").inc(7)
    reg.gauge("rocksdb", "syrupd", "prog_n_insns").set(42)
    h = reg.histogram("rocksdb", "maps", "op-latency")  # '-' needs sanitizing
    h.observe(0.5)
    h.observe(3.0)
    text = to_openmetrics(reg)
    lines = text.splitlines()
    assert lines[-1] == "# EOF"
    assert ("syrup_schedule_calls_total"
            '{app="rocksdb",scope="socket_select"} 7') in lines
    assert 'syrup_prog_n_insns{app="rocksdb",scope="syrupd"} 42' in lines
    # metric names are sanitized into the OpenMetrics grammar
    assert "# TYPE syrup_op_latency histogram" in lines
    assert ('syrup_op_latency_bucket{app="rocksdb",scope="maps",le="1.0"} 1'
            in lines)
    assert ('syrup_op_latency_bucket{app="rocksdb",scope="maps",le="+Inf"} 2'
            in lines)
    assert 'syrup_op_latency_count{app="rocksdb",scope="maps"} 2' in lines
    assert 'syrup_op_latency_sum{app="rocksdb",scope="maps"} 3.5' in lines
    # every exposition line belongs to a # TYPE'd family
    assert lines[0].startswith("# TYPE ")


def test_openmetrics_histogram_buckets_are_cumulative():
    from repro.obs.export import to_openmetrics

    reg = MetricsRegistry()
    h = reg.histogram("a", "s", "lat")
    for v in (1.5, 3.0, 3.5, 40.0):
        h.observe(v)
    text = to_openmetrics(reg)
    counts = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("syrup_lat_bucket")
    ]
    assert counts == sorted(counts)  # cumulative => monotone
    assert counts[-1] == 4  # +Inf bucket holds everything


def test_write_openmetrics_accepts_path_and_file(tmp_path):
    import io

    from repro.obs.export import write_openmetrics

    reg = MetricsRegistry()
    reg.counter("a", "s", "n").inc()
    path = tmp_path / "metrics.prom"
    n_lines = write_openmetrics(reg, path)
    text = path.read_text()
    assert text.endswith("# EOF\n")
    assert n_lines == text.count("\n")
    # same contract with an open file object: written to, left open
    buf = io.StringIO()
    write_openmetrics(reg, buf)
    assert buf.getvalue() == text


def test_to_jsonl_accepts_path_and_file(tmp_path):
    """S2: every exporter takes a path or an open file object."""
    import io

    trace = EventTrace(clock=lambda: 1.0)
    trace.emit("decision", verdict="PASS")
    path = tmp_path / "events.jsonl"
    assert trace.to_jsonl(path) == 1
    from_path = path.read_text()
    buf = io.StringIO()
    assert trace.to_jsonl(buf) == 1
    assert buf.getvalue() == from_path
    assert json.loads(from_path)["kind"] == "decision"


def test_open_destination_contract(tmp_path):
    import io

    from repro.obs.export import open_destination

    path = tmp_path / "out.txt"
    with open_destination(path) as fh:
        fh.write("via path\n")
    assert path.read_text() == "via path\n"
    buf = io.StringIO()
    with open_destination(buf) as fh:
        assert fh is buf
        fh.write("via file\n")
    buf.write("still open\n")  # caller keeps ownership; not closed
    assert buf.getvalue() == "via file\nstill open\n"


def test_observability_handle_repr():
    enabled = Observability(enabled=True)
    assert "enabled" in repr(enabled)
    assert "disabled" in repr(DISABLED)
