"""Tier-1 smoke of tools/bench.py: the perf harness must stay runnable.

Runs ``--smoke`` end-to-end (all three canonical scenarios), validates
the written results document against the schema, and exercises the
schema checker's rejection paths.
"""

import importlib.util
import json
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent
TOOL = REPO_ROOT / "tools" / "bench.py"

spec = importlib.util.spec_from_file_location("bench", TOOL)
bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench)


@pytest.fixture(scope="module")
def bench_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("bench")


@pytest.fixture(scope="module")
def smoke_results(bench_dir):
    """One --smoke run shared by the assertions below (it costs seconds)."""
    out = bench_dir / "BENCH_results.json"
    assert bench.main([
        "--smoke", "--out", str(out),
        "--history-dir", str(bench_dir / "history"),
    ]) == 0
    with open(out) as fh:
        return json.load(fh)


def test_smoke_covers_all_scenarios(smoke_results):
    assert set(smoke_results["scenarios"]) == set(bench.SCENARIOS)
    assert len(smoke_results["scenarios"]) >= 3
    assert smoke_results["mode"] == "smoke"


def test_smoke_results_validate(smoke_results):
    assert bench.validate_results(smoke_results) is smoke_results


def test_smoke_rows_are_plausible(smoke_results):
    for name, row in smoke_results["scenarios"].items():
        assert row["wall_s"] > 0, name
        assert row["sim_us"] > 0, name
        assert row["events"] > 0, name
        assert row["sim_us_per_wall_s"] == pytest.approx(
            row["sim_us"] / row["wall_s"]
        )
        # the engine section always profiles
        assert "engine" in row["profile"], name
        assert row["profile"]["engine"]["calls"] >= 1
        assert row["sim_metrics"], name
    # policy-bearing scenarios additionally attribute hook dispatch
    for name in ("figure6_steady", "figure8_dynamic"):
        assert "hook_dispatch" in smoke_results["scenarios"][name]["profile"]


def test_figure8_scenario_metrics(smoke_results):
    metrics = smoke_results["scenarios"]["figure8_dynamic"]["sim_metrics"]
    # the dynamic scenario reports both request classes
    assert metrics["get_p99_us"] > 0
    assert metrics["scan_p99_us"] > metrics["get_p99_us"]


def test_history_appends_trajectory(smoke_results, bench_dir):
    """Each run lands one sha-stamped, schema-valid file in history/."""
    entries = sorted((bench_dir / "history").glob("*.json"))
    assert len(entries) == 1
    stamp, _, sha = entries[0].stem.partition("_")
    assert len(stamp) == 16 and stamp.endswith("Z")  # YYYYMMDDTHHMMSSZ
    assert sha  # short git sha, or "nogit" outside a checkout
    with open(entries[0]) as fh:
        entry = json.load(fh)
    assert entry["git_sha"] == sha
    assert bench.validate_results(entry)
    assert entry["scenarios"].keys() == smoke_results["scenarios"].keys()
    # a second run appends rather than overwrites
    second = dict(smoke_results, created_unix=smoke_results["created_unix"] + 1)
    bench.append_history(second, history_dir=str(bench_dir / "history"))
    assert len(sorted((bench_dir / "history").glob("*.json"))) == 2


def test_repo_history_entries_validate_if_present():
    """Committed trajectory entries must match the current schema."""
    entries = sorted((REPO_ROOT / "benchmarks" / "history").glob("*.json"))
    for path in entries:
        with open(path) as fh:
            doc = json.load(fh)
        bench.validate_results(doc)
        assert "git_sha" in doc, path.name


def test_scenario_selection():
    doc = bench.run_benchmarks(
        names=["figure8_dynamic"], smoke=True, echo=lambda _msg: None
    )
    assert list(doc["scenarios"]) == ["figure8_dynamic"]
    bench.validate_results(doc)


def test_validate_rejects_bad_documents(smoke_results):
    with pytest.raises(bench.BenchSchemaError):
        bench.validate_results([])
    with pytest.raises(bench.BenchSchemaError):
        bench.validate_results({})
    good = json.loads(json.dumps(smoke_results))

    bad = json.loads(json.dumps(good))
    bad["schema_version"] = 99
    with pytest.raises(bench.BenchSchemaError, match="schema_version"):
        bench.validate_results(bad)

    bad = json.loads(json.dumps(good))
    bad["mode"] = "partial"
    with pytest.raises(bench.BenchSchemaError, match="mode"):
        bench.validate_results(bad)

    bad = json.loads(json.dumps(good))
    bad["scenarios"] = {}
    with pytest.raises(bench.BenchSchemaError, match="non-empty"):
        bench.validate_results(bad)

    bad = json.loads(json.dumps(good))
    del bad["scenarios"]["figure8_dynamic"]["wall_s"]
    with pytest.raises(bench.BenchSchemaError, match="wall_s"):
        bench.validate_results(bad)

    bad = json.loads(json.dumps(good))
    bad["scenarios"]["figure8_dynamic"]["sim_us"] = -1.0
    with pytest.raises(bench.BenchSchemaError, match="positive"):
        bench.validate_results(bad)

    bad = json.loads(json.dumps(good))
    bad["scenarios"]["figure8_dynamic"]["sim_metrics"]["get_p99_us"] = "fast"
    with pytest.raises(bench.BenchSchemaError, match="number"):
        bench.validate_results(bad)


def test_repo_results_file_validates_if_present():
    """A committed BENCH_results.json must match the current schema."""
    path = REPO_ROOT / "BENCH_results.json"
    if not path.exists():
        pytest.skip("no BENCH_results.json committed")
    with open(path) as fh:
        bench.validate_results(json.load(fh))
