"""Streaming sketch tests (repro.obs.sketch).

The satellite's property suite: DDSketch relative error stays within the
configured ``alpha`` against an exact nearest-rank oracle across
uniform, heavy-tailed, and constant distributions; merged sketches equal
the sketch of the concatenated stream; and the registry/recorder/
OpenMetrics integrations treat the new ``sketch`` kind natively.
"""

import math
import random

import pytest

from repro.obs import FlightRecorder, MetricsRegistry
from repro.obs.export import to_openmetrics
from repro.obs.registry import NULL_METRIC, NullRegistry
from repro.obs.sketch import DDSketch, DEFAULT_ALPHA, Ewma, WindowedRate
from repro.sim.engine import Engine

QUANTILES = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0]


def exact_nearest_rank(samples, p):
    """The oracle: the ceil(p*n)-th smallest sample (rank floored at 1)."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(p * len(ordered)))
    return ordered[rank - 1]


def _uniform(rng, n):
    return [rng.uniform(1.0, 1000.0) for _ in range(n)]


def _heavy_tailed(rng, n):
    # Pareto alpha=1.2: infinite variance, the tail DDSketch exists for.
    return [rng.paretovariate(1.2) for _ in range(n)]


def _constant(_rng, n):
    return [42.5] * n


@pytest.mark.parametrize("make", [_uniform, _heavy_tailed, _constant])
@pytest.mark.parametrize("alpha", [0.01, 0.05])
def test_relative_error_within_alpha(make, alpha):
    rng = random.Random(17)
    samples = make(rng, 5000)
    sketch = DDSketch(alpha=alpha)
    for value in samples:
        sketch.add(value)
    for p in QUANTILES:
        true = exact_nearest_rank(samples, p)
        est = sketch.quantile(p)
        assert abs(est - true) <= alpha * true + 1e-9, (p, est, true)


def test_merge_equals_concatenated_stream():
    rng = random.Random(23)
    samples = [rng.expovariate(1 / 120.0) for _ in range(4000)]
    concat = DDSketch()
    for value in samples:
        concat.add(value)
    odd, even = DDSketch(), DDSketch()
    for index, value in enumerate(samples):
        (odd if index % 2 else even).add(value)
    merged = even.merge(odd)
    assert merged is even
    assert merged.count == concat.count
    assert merged.sum == pytest.approx(concat.sum)
    assert merged.vmin == concat.vmin
    assert merged.vmax == concat.vmax
    assert merged.zero_count == concat.zero_count
    assert merged.buckets == concat.buckets
    for p in QUANTILES:
        assert merged.quantile(p) == concat.quantile(p)


def test_merge_requires_same_alpha_and_type():
    sketch = DDSketch(alpha=0.01)
    with pytest.raises(ValueError, match="alpha"):
        sketch.merge(DDSketch(alpha=0.02))
    with pytest.raises(TypeError):
        sketch.merge([1, 2, 3])


def test_empty_and_invalid_inputs():
    sketch = DDSketch()
    assert sketch.quantile(0.99) == 0.0
    assert sketch.mean == 0.0
    assert len(sketch) == 0
    assert sketch.summary()["count"] == 0
    with pytest.raises(ValueError):
        sketch.quantile(1.5)
    with pytest.raises(ValueError):
        DDSketch(alpha=0.0)
    with pytest.raises(ValueError):
        DDSketch(alpha=1.0)


def test_zero_and_negative_values_use_the_zero_bucket():
    sketch = DDSketch()
    for _ in range(10):
        sketch.add(0.0)
    assert sketch.zero_count == 10
    assert sketch.quantile(0.5) == 0.0
    assert sketch.quantile(1.0) == 0.0
    sketch.add(100.0, n=90)
    # 10% of the mass is exactly zero; the median is in the 100us bucket
    assert sketch.quantile(0.05) == 0.0
    assert sketch.quantile(0.5) == pytest.approx(100.0, rel=DEFAULT_ALPHA)


def test_weighted_add_matches_repeated_add():
    repeated, weighted = DDSketch(), DDSketch()
    for _ in range(7):
        repeated.add(33.0)
    weighted.add(33.0, n=7)
    assert weighted.buckets == repeated.buckets
    assert weighted.count == repeated.count
    assert weighted.sum == pytest.approx(repeated.sum)


def test_estimates_clamped_to_observed_extremes():
    sketch = DDSketch(alpha=0.05)
    sketch.add(10.0)
    sketch.add(10.5)
    assert sketch.quantile(0.0) >= sketch.vmin
    assert sketch.quantile(1.0) <= sketch.vmax


def test_summary_and_mean():
    sketch = DDSketch()
    for value in [10.0, 20.0, 30.0]:
        sketch.add(value)
    s = sketch.summary()
    assert s["count"] == 3
    assert s["mean"] == pytest.approx(20.0)
    assert s["min"] == 10.0 and s["max"] == 30.0
    assert s["p50"] == pytest.approx(20.0, rel=DEFAULT_ALPHA)


# ----------------------------------------------------------------------
# Windowed estimators
# ----------------------------------------------------------------------
def test_windowed_rate_ages_out_old_events():
    clock = {"now": 0.0}
    rate = WindowedRate(lambda: clock["now"], window_us=100.0, buckets=10)
    for t in (5.0, 15.0, 25.0):
        clock["now"] = t
        rate.observe()
    assert rate.events_in_window() == 3
    assert rate.rate_per_s() == pytest.approx(3 * 1e6 / 25.0)
    clock["now"] = 120.0   # first bins now beyond the window
    assert rate.events_in_window() == 0
    with pytest.raises(ValueError):
        WindowedRate(lambda: 0.0, window_us=0)


def test_ewma_halflife_decay():
    clock = {"now": 0.0}
    ewma = Ewma(lambda: clock["now"], halflife_us=100.0)
    assert ewma.read(default=-1.0) == -1.0
    ewma.update(10.0)
    assert ewma.read() == 10.0
    clock["now"] = 100.0   # exactly one half-life later
    ewma.update(20.0)
    assert ewma.read() == pytest.approx(15.0)
    with pytest.raises(ValueError):
        Ewma(lambda: 0.0, halflife_us=0)


# ----------------------------------------------------------------------
# Registry / recorder / exporter integration
# ----------------------------------------------------------------------
def test_registry_sketch_kind_and_get_or_create():
    clock = {"now": 7.0}
    registry = MetricsRegistry(clock=lambda: clock["now"])
    sketch = registry.sketch("app", "scope", "svc")
    assert registry.sketch("app", "scope", "svc") is sketch
    assert sketch.kind == "sketch"
    assert sketch.updated_at is None
    sketch.observe(50.0)
    assert sketch.updated_at == 7.0
    # value/snapshot treat sketches like histograms
    assert registry.value("app", "scope", "svc") == 1
    (row,) = registry.snapshot()
    assert row["kind"] == "sketch" and row["p99"] > 0


def test_null_registry_sketch_is_null_metric():
    null = NullRegistry()
    assert null.sketch("a", "b", "c") is NULL_METRIC
    assert NULL_METRIC.quantile(0.99) == 0.0


def test_recorder_samples_sketch_like_histogram():
    engine = Engine()
    registry = MetricsRegistry(clock=lambda: engine.now)
    recorder = FlightRecorder(registry, engine, interval_us=10.0)
    sketch = registry.sketch("app", "scope", "lat")

    def feed():
        sketch.observe(100.0)
        sketch.observe(200.0)

    engine.schedule(5.0, feed)
    recorder.arm()
    engine.run()
    series = recorder.series("app", "scope", "lat")
    assert series.kind == "sketch"
    _when, sample = series.samples[0]
    assert sample["count"] == 2
    assert sample["p99"] == pytest.approx(200.0, rel=DEFAULT_ALPHA)


def test_openmetrics_summary_family():
    registry = MetricsRegistry()
    sketch = registry.sketch("rocksdb", "client", "get_latency_us")
    for value in (10.0, 20.0, 1000.0):
        sketch.observe(value)
    text = to_openmetrics(registry)
    assert "# TYPE syrup_get_latency_us summary" in text
    for q in ("0.5", "0.9", "0.99"):
        assert (f'syrup_get_latency_us{{app="rocksdb",scope="client",'
                f'quantile="{q}"}}') in text
    assert "syrup_get_latency_us_sum" in text
    assert ('syrup_get_latency_us_count{app="rocksdb",scope="client"} 3'
            in text)
