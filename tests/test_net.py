"""Tests for packets, RSS, and the NIC model."""

import pytest

from repro.config import CostModel, NicSpec
from repro.net.nic import Nic
from repro.net.packet import (
    APP_TYPE_OFF,
    APP_USER_OFF,
    FiveTuple,
    Packet,
    build_payload,
)
from repro.net.rss import rss_hash, rss_queue
from repro.sim.engine import Engine

FLOW = FiveTuple(0x0A000002, 40000, 0x0A000001, 8080, 17)


# ----------------------------------------------------------------------
# Packet
# ----------------------------------------------------------------------
def test_packet_header_fields():
    pkt = Packet(FLOW, b"payload")
    assert pkt.load(0, 2) == FLOW.src_port
    assert pkt.load(2, 2) == FLOW.dst_port
    assert pkt.load(4, 2) == 8 + 7  # UDP length
    assert pkt.dst_port == 8080


def test_packet_payload_layout():
    payload = build_payload(2, user_id=9, key_hash=77, req_id=123)
    pkt = Packet(FLOW, payload)
    assert pkt.load(APP_TYPE_OFF, 8) == 2
    assert pkt.load(APP_USER_OFF, 8) == 9
    assert pkt.load(24, 8) == 77
    assert pkt.load(32, 8) == 123
    assert pkt.length == 8 + 32


def test_packet_out_of_bounds_raises():
    pkt = Packet(FLOW, b"abc")
    with pytest.raises(IndexError):
        pkt.load(8, 8)
    with pytest.raises(IndexError):
        pkt.load(-1, 1)


def test_packet_partial_widths():
    pkt = Packet(FLOW, bytes(range(16)))
    assert pkt.load(8, 1) == 0
    assert pkt.load(9, 1) == 1
    assert pkt.load(8, 2) == 0x0100


# ----------------------------------------------------------------------
# RSS
# ----------------------------------------------------------------------
def test_rss_deterministic_per_flow():
    assert rss_hash(FLOW) == rss_hash(FLOW)
    assert rss_queue(FLOW, 8) == rss_queue(FLOW, 8)


def test_rss_salt_changes_mapping():
    flows = [FLOW._replace(src_port=40000 + i) for i in range(64)]
    a = [rss_queue(f, 8, salt=1) for f in flows]
    b = [rss_queue(f, 8, salt=2) for f in flows]
    assert a != b


def test_rss_roughly_uniform_over_many_flows():
    flows = [FLOW._replace(src_port=30000 + i, src_ip=i) for i in range(4000)]
    buckets = [0] * 8
    for f in flows:
        buckets[rss_queue(f, 8)] += 1
    assert min(buckets) > 350  # ~500 expected per bucket


def test_rss_small_pools_are_imbalanced_sometimes():
    """The Figure-2 premise: 50 flows into 6 buckets is frequently lopsided."""
    worst = 0
    for salt in range(30):
        flows = [FLOW._replace(src_port=40000 + i) for i in range(50)]
        buckets = [0] * 6
        for f in flows:
            buckets[rss_queue(f, 6, salt=salt)] += 1
        worst = max(worst, max(buckets))
    assert worst >= 12  # >=40% above the fair share of 8.33


# ----------------------------------------------------------------------
# NIC
# ----------------------------------------------------------------------
def make_nic(**spec_kwargs):
    engine = Engine()
    spec = NicSpec(num_queues=4, **spec_kwargs)
    nic = Nic(engine, spec, CostModel(), salt=7)
    return engine, nic


def test_nic_delivers_after_delay():
    engine, nic = make_nic()
    seen = []
    nic.deliver = lambda q, p: seen.append((engine.now, q, p))
    pkt = Packet(FLOW, b"x")
    nic.receive(pkt)
    engine.run()
    assert len(seen) == 1
    t, q, delivered = seen[0]
    assert t == pytest.approx(nic.spec.rx_process_us + nic.costs.irq_delay_us)
    assert q == rss_queue(FLOW, 4, salt=7)
    assert delivered.rx_queue == q


def test_nic_without_handler_counts_drop():
    _engine, nic = make_nic()
    nic.receive(Packet(FLOW, b"x"))
    assert nic.drops["no_handler"] == 1


def test_nic_offload_requires_capability():
    _engine, nic = make_nic(supports_offload=False)
    with pytest.raises(ValueError):
        nic.attach_classifier(object())


class _StaticClassifier:
    def __init__(self, action, target=None):
        self.action = action
        self.target = target

    def decide(self, packet):
        return (self.action, self.target)

    def cost_us(self, packet):
        return 0.0


def test_nic_offload_classifier_steers():
    engine, nic = make_nic(supports_offload=True)
    nic.attach_classifier(_StaticClassifier("target", 2))
    seen = []
    nic.deliver = lambda q, p: seen.append(q)
    nic.receive(Packet(FLOW, b"x"))
    engine.run()
    assert seen == [2]


def test_nic_offload_drop():
    engine, nic = make_nic(supports_offload=True)
    nic.attach_classifier(_StaticClassifier("drop"))
    nic.deliver = lambda q, p: (_ for _ in ()).throw(AssertionError)
    nic.receive(Packet(FLOW, b"x"))
    engine.run()
    assert nic.drops["offload_drop"] == 1


def test_nic_offload_pass_falls_back_to_rss():
    engine, nic = make_nic(supports_offload=True)
    nic.attach_classifier(_StaticClassifier("pass"))
    seen = []
    nic.deliver = lambda q, p: seen.append(q)
    nic.receive(Packet(FLOW, b"x"))
    engine.run()
    assert seen == [rss_queue(FLOW, 4, salt=7)]
