"""Tests for thread/scheduler mechanics: pinned, CFS, preemption."""

from collections import deque

import pytest

from repro.config import CostModel
from repro.kernel.cfs import CfsScheduler
from repro.kernel.cpu import Core
from repro.kernel.sched import PinnedScheduler
from repro.kernel.threads import BLOCKED, KThread, RUNNABLE, RUNNING
from repro.sim.engine import Engine


class ListSource:
    """Work source backed by a list of (cost, token) items."""

    def __init__(self, engine, items=()):
        self.engine = engine
        self.items = deque(items)
        self.completed = []

    def pull(self):
        return self.items.popleft() if self.items else None

    def complete(self, token):
        self.completed.append((token, self.engine.now))


def make_pinned(n_cores=2, costs=None):
    eng = Engine()
    cores = [Core(i) for i in range(n_cores)]
    sched = PinnedScheduler(eng, cores, costs or CostModel(ctx_switch_us=1.0))
    return eng, cores, sched


def add_thread(eng, sched, items, tid=0, home=None):
    thread = KThread(tid=tid, home_core=home)
    thread.source = ListSource(eng, items)
    sched.attach(thread)
    return thread


# ----------------------------------------------------------------------
# Pinned
# ----------------------------------------------------------------------
def test_pinned_runs_items_to_completion():
    eng, _cores, sched = make_pinned()
    thread = add_thread(eng, sched, [(10.0, "a"), (5.0, "b")])
    thread.wake()
    eng.run()
    # ctx switch 1.0 + 10 then back-to-back 5
    assert thread.source.completed == [("a", 11.0), ("b", 16.0)]
    assert thread.state == BLOCKED
    assert thread.items_completed == 2


def test_pinned_threads_round_robin_over_cores():
    eng, _cores, sched = make_pinned(n_cores=2)
    t0 = add_thread(eng, sched, [(10.0, "x")], tid=0)
    t1 = add_thread(eng, sched, [(10.0, "y")], tid=1)
    t2 = add_thread(eng, sched, [(10.0, "z")], tid=2)
    assert (t0.home_core, t1.home_core, t2.home_core) == (0, 1, 0)


def test_pinned_parallel_threads_run_concurrently():
    eng, _cores, sched = make_pinned(n_cores=2)
    t0 = add_thread(eng, sched, [(10.0, "x")], tid=0)
    t1 = add_thread(eng, sched, [(10.0, "y")], tid=1)
    t0.wake()
    t1.wake()
    eng.run()
    assert t0.source.completed[0][1] == 11.0
    assert t1.source.completed[0][1] == 11.0


def test_wake_while_running_is_noop_but_work_gets_pulled():
    eng, _cores, sched = make_pinned(n_cores=1)
    thread = add_thread(eng, sched, [(10.0, "a")])
    thread.wake()
    # add more work mid-run; wake() is a no-op (RUNNING) but the thread
    # pulls the item before blocking
    eng.schedule(5.0, lambda: (thread.source.items.append((3.0, "b")),
                               thread.wake()))
    eng.run()
    assert [t for t, _ in thread.source.completed] == ["a", "b"]


def test_wake_without_work_stays_blocked():
    eng, _cores, sched = make_pinned()
    thread = add_thread(eng, sched, [])
    thread.wake()
    eng.run()
    assert thread.state == BLOCKED
    assert eng.now == 0.0


def test_preempt_preserves_progress():
    eng, cores, sched = make_pinned(n_cores=1)
    thread = add_thread(eng, sched, [(100.0, "long")])
    thread.wake()
    eng.run(until=51.0)  # 1.0 ctx + 50 executed
    victim = sched.preempt(cores[0])
    assert victim is thread
    assert thread.state == RUNNABLE
    assert thread.remaining == pytest.approx(50.0)
    assert cores[0].thread is None
    # resume: re-dispatch manually
    sched._dispatch(cores[0], thread, 1.0)
    eng.run()
    assert thread.source.completed == [("long", pytest.approx(102.0))]


def test_preempt_idle_core_returns_none():
    _eng, cores, sched = make_pinned()
    assert sched.preempt(cores[0]) is None


def test_preempt_during_context_switch_loses_no_progress():
    eng, cores, sched = make_pinned(n_cores=1, costs=CostModel(ctx_switch_us=5.0))
    thread = add_thread(eng, sched, [(100.0, "x")])
    thread.wake()
    eng.run(until=2.0)  # still context switching
    sched.preempt(cores[0])
    assert thread.remaining == pytest.approx(100.0)


# ----------------------------------------------------------------------
# CFS
# ----------------------------------------------------------------------
def make_cfs(n_cores=1, timeslice=50.0):
    eng = Engine()
    cores = [Core(i) for i in range(n_cores)]
    costs = CostModel(ctx_switch_us=1.0, timeslice_us=timeslice)
    sched = CfsScheduler(eng, cores, costs)
    return eng, cores, sched


def test_cfs_timeslices_between_threads():
    eng, _cores, sched = make_cfs(n_cores=1, timeslice=50.0)
    t0 = add_thread(eng, sched, [(100.0, "a")], tid=0)
    t1 = add_thread(eng, sched, [(100.0, "b")], tid=1)
    t0.wake()
    t1.wake()
    eng.run()
    done = sorted(t0.source.completed + t1.source.completed, key=lambda x: x[1])
    # both finish, interleaved: neither finishes before the other started
    assert {t for t, _ in done} == {"a", "b"}
    finish_times = [t for _, t in done]
    assert finish_times[0] > 100.0  # got preempted at least once


def test_cfs_no_preemption_when_alone():
    eng, _cores, sched = make_cfs(n_cores=1, timeslice=50.0)
    t0 = add_thread(eng, sched, [(200.0, "solo")], tid=0)
    t0.wake()
    eng.run()
    # one ctx switch only; slice renewals are free
    assert t0.source.completed == [("solo", pytest.approx(201.0))]


def test_cfs_wake_balances_to_idle_core():
    eng, cores, sched = make_cfs(n_cores=2, timeslice=1000.0)
    t0 = add_thread(eng, sched, [(500.0, "busy")], tid=0, home=0)
    t1 = add_thread(eng, sched, [(10.0, "quick")], tid=1, home=0)
    t0.wake()
    eng.run(until=5.0)
    t1.wake()  # home core 0 busy; core 1 idle -> runs there immediately
    eng.run()
    assert t1.source.completed[0][1] < 50.0


def test_cfs_idle_steal():
    eng, cores, sched = make_cfs(n_cores=2, timeslice=1000.0)
    # three threads homed on core 0, core 1 idle after its thread finishes
    t0 = add_thread(eng, sched, [(100.0, "a")], tid=0, home=0)
    t1 = add_thread(eng, sched, [(100.0, "b")], tid=1, home=0)
    t2 = add_thread(eng, sched, [(100.0, "c")], tid=2, home=0)
    short = add_thread(eng, sched, [(10.0, "d")], tid=3, home=1)
    for t in (t0, t1, t2, short):
        t.wake()
    eng.run()
    # with stealing, total makespan is ~2 rounds on 2 cores, not 3 on one
    last_finish = max(
        t.source.completed[0][1] for t in (t0, t1, t2, short)
    )
    assert last_finish < 250.0


def test_cfs_work_continues_within_slice():
    eng, _cores, sched = make_cfs(n_cores=1, timeslice=1000.0)
    t0 = add_thread(eng, sched, [(10.0, "a"), (10.0, "b")], tid=0)
    t0.wake()
    eng.run()
    # both items complete within one slice, one ctx switch total
    assert t0.source.completed[-1][1] == pytest.approx(21.0)


def test_cfs_requeues_at_slice_end_when_contended():
    eng, _cores, sched = make_cfs(n_cores=1, timeslice=30.0)
    t0 = add_thread(eng, sched, [(35.0, "long")], tid=0)
    t1 = add_thread(eng, sched, [(5.0, "short")], tid=1)
    t0.wake()
    t1.wake()
    eng.run()
    # t0's slice (30) expires, t1 runs, then t0 finishes its last 5
    assert t1.source.completed[0][1] < t0.source.completed[0][1]
