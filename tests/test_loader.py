"""Tests for the hardened policy loader (repro.core.loader).

The authoring path's contract: arbitrary user policy files are
validated *syntactically* — size ceilings, import allow/deny-list,
banned AST constructs, denied names — before anything touches the
compile pipeline, and a rejected source reports every issue at once.
"""

import pytest

from repro import Hook, Machine, set_a
from repro.apps.rocksdb import RocksDbServer
from repro.core.loader import (
    DEFAULT_MAX_BYTES,
    PolicyLoadError,
    PolicyValidationError,
    check_policy_source,
    load_policy_file,
    validate_policy_source,
)
from repro.policies.builtin import ROUND_ROBIN
from repro.qdisc.policies import SRPT_BY_SIZE, SRPT_TIERED

CLEAN = """
def schedule(pkt):
    return PASS
"""


# ----------------------------------------------------------------------
# The happy path: every shipped policy is inside the subset
# ----------------------------------------------------------------------
def test_builtin_policies_validate_clean():
    for source in (CLEAN, ROUND_ROBIN, SRPT_BY_SIZE, SRPT_TIERED):
        assert validate_policy_source(source) == []
    assert check_policy_source(CLEAN) is CLEAN


# ----------------------------------------------------------------------
# Rejections
# ----------------------------------------------------------------------
@pytest.mark.parametrize("source,needle", [
    ("import os\ndef schedule(pkt):\n    return PASS\n", "import"),
    ("from subprocess import run\n", "import"),
    ("def schedule(pkt):\n    return eval('1')\n", "eval"),
    ("def schedule(pkt):\n    return open('/etc/passwd')\n", "open"),
    ("def schedule(pkt):\n    return getattr(pkt, 'x')\n", "getattr"),
    ("def schedule(pkt):\n    return pkt.__class__\n", "dunder"),
    ("class Sneaky:\n    pass\n", "ClassDef"),
    ("f = lambda pkt: 0\n", "Lambda"),
    ("def schedule(pkt):\n    yield 1\n", "Yield"),
    ("def schedule(pkt):\n    def inner():\n        nonlocal pkt\n"
     "        return pkt\n    return 0\n", "Nonlocal"),
    ("def schedule(pkt):\n    try:\n        return 0\n"
     "    finally:\n        pass\n", "Try"),
    ("def schedule(pkt):\n    with pkt:\n        return 0\n", "With"),
    ("def schedule(pkt):\n    return max(*pkt)\n", "Starred"),
    ("def schedule(pkt)\n    return 0\n", "syntax error"),
], ids=["import", "from-import", "eval", "open", "getattr", "dunder",
        "class", "lambda", "yield", "nonlocal", "try", "with", "starargs",
        "syntax"])
def test_hostile_sources_are_rejected(source, needle):
    issues = validate_policy_source(source)
    assert issues, source
    assert any(needle in issue for issue in issues), issues
    with pytest.raises(PolicyValidationError):
        check_policy_source(source)


def test_every_issue_is_reported_not_just_the_first():
    source = (
        "import os\n"
        "def schedule(pkt):\n"
        "    x = eval('1')\n"
        "    return pkt.__dict__\n"
    )
    issues = validate_policy_source(source)
    assert len(issues) == 3
    # issues are in source order and carry line numbers
    assert issues[0].startswith("line 1:")
    assert issues[1].startswith("line 3:")
    assert issues[2].startswith("line 4:")


def test_shadowing_does_not_launder_denied_names():
    # the reference site is checked, so `e = eval` trips on `eval`
    issues = validate_policy_source("e = eval\n")
    assert any("eval" in issue for issue in issues)


def test_allow_list_admits_declared_imports_only():
    source = "import math\ndef schedule(pkt):\n    return PASS\n"
    assert validate_policy_source(source, allow_imports=("math",)) == []
    assert validate_policy_source(source) != []


def test_size_ceilings():
    blob = "x = 0\n" * 600
    assert validate_policy_source(blob, max_lines=512) != []
    big = "# " + "a" * DEFAULT_MAX_BYTES
    issues = validate_policy_source(big)
    assert issues and "bytes" in issues[0]
    assert validate_policy_source("x\x00= 0") == ["source contains NUL bytes"]
    assert validate_policy_source(b"not text") != []


# ----------------------------------------------------------------------
# File loading
# ----------------------------------------------------------------------
def test_load_policy_file_roundtrip_and_rejections(tmp_path):
    good = tmp_path / "good.py"
    good.write_text(CLEAN)
    assert load_policy_file(str(good)) == CLEAN

    bad = tmp_path / "bad.py"
    bad.write_text("import socket\n")
    with pytest.raises(PolicyValidationError):
        load_policy_file(str(bad))

    binary = tmp_path / "binary.py"
    binary.write_bytes(b"\xff\xfe policy")
    with pytest.raises(PolicyLoadError, match="UTF-8"):
        load_policy_file(str(binary))

    huge = tmp_path / "huge.py"
    huge.write_bytes(b"#" * 2048)
    with pytest.raises(PolicyLoadError, match="exceeds"):
        load_policy_file(str(huge), max_bytes=1024)

    with pytest.raises(PolicyLoadError, match="cannot read"):
        load_policy_file(str(tmp_path / "missing.py"))


# ----------------------------------------------------------------------
# Integration: deploy_shadow validates before the compiler runs
# ----------------------------------------------------------------------
def test_deploy_shadow_rejects_denied_source_before_compile():
    machine = Machine(set_a(), seed=3, metrics=True)
    app = machine.register_app("rocksdb", ports=[8080])
    RocksDbServer(machine, app, 8080, 4)
    app.deploy_qdisc(SRPT_BY_SIZE, layer="socket", backend="pifo")
    hostile = "import os\ndef rank(pkt):\n    return PASS\n"
    with pytest.raises(PolicyValidationError):
        app.deploy_shadow(hostile, layer="socket")
    # the rejection is observable: counter + structured event, no record
    rejects = machine.obs.events.events(kind="loader_reject")
    assert len(rejects) == 1
    assert any("import" in issue for issue in rejects[0]["issues"])
    assert machine.syrupd.promotions() == []
    counter = machine.obs.registry.counter(
        "rocksdb", "syrupd", "loader_rejections"
    )
    assert counter.value == 1
