"""Tests for the KV engine, RocksDB server, and MICA server."""

import pytest

from repro import Hook, Machine, set_a, set_b
from repro.apps.kvstore import KVStore
from repro.apps.mica import MicaServer
from repro.apps.rocksdb import RocksDbServer
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import GET_ONLY, GET_SCAN_50_50, MICA_50_50
from repro.workload.requests import GET, PUT, SCAN, Request


# ----------------------------------------------------------------------
# KVStore
# ----------------------------------------------------------------------
def test_kvstore_put_get_delete():
    kv = KVStore()
    kv.put("k", "v")
    assert kv.get("k") == "v"
    assert kv.get("missing") is None
    assert kv.delete("k") is True
    assert kv.delete("k") is False
    assert "k" not in kv


def test_kvstore_scan_ordered():
    kv = KVStore()
    for k in (5, 1, 3, 2, 4):
        kv.put(k, k * 10)
    assert kv.scan(2, 3) == [(2, 20), (3, 30), (4, 40)]
    assert kv.scan(10, 5) == []


def test_kvstore_scan_sees_updates():
    kv = KVStore()
    kv.put(1, "a")
    assert kv.scan(0, 10) == [(1, "a")]
    kv.put(0, "z")
    assert kv.scan(0, 10) == [(0, "z"), (1, "a")]
    kv.delete(1)
    assert kv.scan(0, 10) == [(0, "z")]


def test_kvstore_preload_and_counters():
    kv = KVStore().preload(10)
    assert len(kv) == 10
    kv.get(3)
    kv.scan(0, 2)
    assert kv.gets == 1 and kv.scans == 1 and kv.puts == 10


# ----------------------------------------------------------------------
# RocksDB server
# ----------------------------------------------------------------------
def drive_rocksdb(mark_scans=False, mark_types=False, mix=GET_ONLY,
                  rate=50_000, duration=20_000):
    machine = Machine(set_a(), seed=3)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6,
                           mark_scans=mark_scans, mark_types=mark_types)
    gen = OpenLoopGenerator(machine, 8080, rate, mix, duration_us=duration)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    return machine, server, gen


def test_rocksdb_serves_all_requests():
    machine, server, gen = drive_rocksdb()
    assert gen.completed_in_window() == gen.sent_in_window()
    assert server.stats.completed.total() == gen.sent_in_window()
    assert server.store.gets > 0


def test_rocksdb_executors_registered():
    machine = Machine(set_a())
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    em = app.executor_map(Hook.SOCKET_SELECT)
    assert len(em) == 6
    assert em.resolve(3) is server.sockets[3]


def test_rocksdb_scan_marking_clears_after():
    machine, server, gen = drive_rocksdb(mark_scans=True, mix=GET_SCAN_50_50,
                                         rate=5_000, duration=50_000)
    assert server.store.scans > 0
    # quiescent at the end: no thread is mid-SCAN
    values = [server.scan_map.bpf_map.lookup(i) for i in range(6)]
    assert all(v == 0 for v in values)


def test_rocksdb_type_marking_during_run():
    machine = Machine(set_a(), seed=3)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 2, mark_types=True)
    marked = []
    request = Request(1, SCAN, 100.0, key=5)
    server.on_request_start(0, request)
    assert server.type_map.bpf_map.lookup(0) == SCAN
    server.on_request_complete(0, request)
    assert server.type_map.bpf_map.lookup(0) == 0


def test_rocksdb_responds_through_sink():
    seen = []
    machine = Machine(set_a())
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 1)
    server.response_sink = seen.append
    request = Request(1, GET, 10.0, key=1)
    server.on_request_complete(0, request)
    assert seen == [request]


# ----------------------------------------------------------------------
# MICA server
# ----------------------------------------------------------------------
def drive_mica(mode, rate=500_000, duration=10_000, mix=MICA_50_50):
    machine = Machine(set_b(8), seed=4)
    app = machine.register_app("mica", ports=[9090])
    server = MicaServer(machine, app, 9090, num_threads=8, mode=mode)
    server.deploy_policy()
    gen = OpenLoopGenerator(machine, 9090, rate, mix, duration_us=duration,
                            num_flows=64)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    return machine, server, gen


def test_mica_rejects_unknown_mode():
    machine = Machine(set_b(8))
    app = machine.register_app("mica", ports=[9090])
    with pytest.raises(ValueError):
        MicaServer(machine, app, 9090, mode="bogus")


def test_mica_partitions_hold_home_keys_only():
    machine = Machine(set_b(8))
    app = machine.register_app("mica", ports=[9090])
    server = MicaServer(machine, app, 9090, num_threads=8, preload_keys=100)
    for key in range(100):
        home = server._home_for_key(key)
        assert server.partitions[home].get(key) is not None
        for other in range(8):
            if other != home:
                assert key not in server.partitions[other]


@pytest.mark.parametrize("mode", ["sw_redirect", "syrup_sw", "syrup_hw"])
def test_mica_modes_complete_all_requests(mode):
    machine, server, gen = drive_mica(mode)
    assert gen.completed_in_window() == gen.sent_in_window()


def test_mica_syrup_modes_have_no_misroutes():
    for mode in ("syrup_sw", "syrup_hw"):
        _m, server, _g = drive_mica(mode)
        assert server.misroutes == 0


def test_mica_baseline_does_handoffs_syrup_does_not():
    _m, baseline, _ = drive_mica("sw_redirect")
    _m2, syrup, _ = drive_mica("syrup_sw")
    assert baseline.handoffs > 0
    assert syrup.handoffs == 0


def test_mica_handoff_fraction_is_about_seven_eighths():
    _m, server, gen = drive_mica("sw_redirect", rate=300_000, duration=20_000)
    frac = server.handoffs / gen.sent_in_window()
    assert 0.8 < frac < 0.95


def test_mica_puts_hit_the_store():
    _m, server, _g = drive_mica("syrup_hw", mix=MICA_50_50)
    assert sum(p.puts for p in server.partitions) > 800  # 100 preload * 8


def test_mica_policy_portability_same_source_two_hooks():
    """The identical policy source deploys at XDP_SKB and XDP_OFFLOAD."""
    from repro.policies.builtin import MICA_HASH

    for mode, expected_hook in (("syrup_sw", Hook.XDP_SKB),
                                ("syrup_hw", Hook.XDP_OFFLOAD)):
        machine = Machine(set_b(8))
        app = machine.register_app("mica", ports=[9090])
        server = MicaServer(machine, app, 9090, mode=mode)
        deployed = server.deploy_policy()
        assert deployed.hook == expected_hook
        assert deployed.program.program.source == MICA_HASH
