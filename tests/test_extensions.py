"""Tests for the §6 extensions: late binding, KCM streams, storage."""

import struct

import pytest

from repro import Hook, Machine, set_a
from repro.apps.rocksdb import RocksDbServer
from repro.core.late_binding import LateBinder, fcfs_pick, shortest_first_pick
from repro.kernel.streams import (
    KcmMultiplexor,
    StreamConnection,
    length_prefixed_framer,
)
from repro.policies.builtin import ROUND_ROBIN
from repro.sim.engine import Engine
from repro.storage.device import FlashCosts, IoRequest, NvmeDevice
from repro.storage.iosched import IoHook, IoTokenPolicy
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import GET_ONLY, GET_SCAN_995_005
from repro.workload.requests import GET


# ----------------------------------------------------------------------
# Late binding
# ----------------------------------------------------------------------
def run_late(pick=None, mix=GET_SCAN_995_005, rate=120_000, duration=120_000):
    machine = Machine(set_a(), seed=21)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    binder = LateBinder(machine, app, server, pick=pick)
    gen = OpenLoopGenerator(machine, 8080, rate, mix, duration_us=duration,
                            warmup_us=duration / 4)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    return machine, server, binder, gen


def test_late_binding_serves_everything():
    _m, _s, binder, gen = run_late(mix=GET_ONLY, rate=60_000, duration=40_000)
    assert gen.drop_fraction() == 0.0
    # every datagram (including warmup traffic) went through the buffer
    assert binder.buffered_total >= gen.sent_in_window()
    assert len(binder) == 0  # fully drained


def test_late_binding_removes_hol_blocking():
    """§6.3's promise: no GET stuck behind a SCAN in a socket queue."""
    machine = Machine(set_a(), seed=21)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    app.deploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": 6})
    gen = OpenLoopGenerator(machine, 8080, 120_000, GET_SCAN_995_005,
                            duration_us=120_000, warmup_us=30_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    early_p99 = gen.latency.p99(tag=GET)

    _m, _s, _b, late_gen = run_late()
    assert late_gen.latency.p99(tag=GET) < early_p99 / 3


def test_late_binding_shortest_first_beats_fcfs_for_gets():
    _m, _s, _b, fcfs = run_late(pick=fcfs_pick, rate=250_000)
    _m2, _s2, _b2, sjf = run_late(pick=shortest_first_pick, rate=250_000)
    assert sjf.latency.p99(tag=GET) <= fcfs.latency.p99(tag=GET)


def test_late_binding_conflicts_with_early_policy():
    machine = Machine(set_a(), seed=21)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    app.deploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": 6})
    with pytest.raises(ValueError):
        LateBinder(machine, app, server)


# ----------------------------------------------------------------------
# KCM streams
# ----------------------------------------------------------------------
def frame(payload):
    return struct.pack("<I", len(payload)) + payload


def test_framer_incomplete_returns_none():
    assert length_prefixed_framer(bytearray(b"\x05\x00")) is None
    assert length_prefixed_framer(bytearray(frame(b"abc")[:-1])) is None


def test_framer_extracts_exactly_one():
    buf = bytearray(frame(b"abc") + frame(b"de"))
    consumed, payload = length_prefixed_framer(buf)
    assert payload == b"abc"
    assert consumed == 4 + 3


def test_kcm_reassembles_across_segments():
    got = []
    kcm = KcmMultiplexor(workers=[got.append])
    data = frame(b"hello") + frame(b"world")
    # deliver byte by byte: worst-case fragmentation
    for i in range(len(data)):
        kcm.receive_segment(1, data[i : i + 1])
    assert got == [b"hello", b"world"]
    assert kcm.pending_bytes(1) == 0


def test_kcm_handles_coalesced_segments():
    got = []
    kcm = KcmMultiplexor(workers=[got.append])
    kcm.receive_segment(1, frame(b"a") + frame(b"bb") + frame(b"ccc"))
    assert got == [b"a", b"bb", b"ccc"]


def test_kcm_connections_do_not_interfere():
    got = []
    kcm = KcmMultiplexor(workers=[got.append])
    kcm.receive_segment(1, frame(b"one")[:3])
    kcm.receive_segment(2, frame(b"two"))
    assert got == [b"two"]
    kcm.receive_segment(1, frame(b"one")[3:])
    assert got == [b"two", b"one"]


def test_kcm_round_robin_default():
    a, b = [], []
    kcm = KcmMultiplexor(workers=[a.append, b.append])
    kcm.receive_segment(1, frame(b"1") + frame(b"2") + frame(b"3"))
    assert (len(a), len(b)) == (2, 1)


def test_kcm_custom_schedule():
    a, b = [], []
    kcm = KcmMultiplexor(
        workers=[a.append, b.append],
        schedule=lambda conn, payload: len(payload),  # odd lengths -> b
    )
    kcm.receive_segment(1, frame(b"xx") + frame(b"y"))
    assert a == [b"xx"] and b == [b"y"]


def test_kcm_requires_workers():
    kcm = KcmMultiplexor()
    with pytest.raises(RuntimeError):
        kcm.receive_segment(1, frame(b"x"))


def test_stream_connection_counters():
    conn = StreamConnection(5)
    conn.feed(b"abc")
    assert conn.bytes_received == 3
    assert conn.conn_id == 5


# ----------------------------------------------------------------------
# Storage
# ----------------------------------------------------------------------
def test_io_request_validation():
    with pytest.raises(ValueError):
        IoRequest(1, "erase", 0)


def test_device_write_then_read_roundtrip():
    eng = Engine()
    dev = NvmeDevice(eng, num_queues=2)
    done = []
    dev.submit(0, IoRequest(1, "write", lba=7), done.append)
    eng.run()
    dev.submit(0, IoRequest(2, "read", lba=7), done.append)
    eng.run()
    assert [r.rid for r in done] == [1, 2]
    assert dev.read_back(7) == 1
    assert dev.read_misses == 0


def test_device_read_latency_exceeds_write():
    eng = Engine()
    dev = NvmeDevice(eng, num_queues=1)
    reqs = [IoRequest(1, "write", 0), IoRequest(2, "read", 0)]
    for r in reqs:
        dev.submit(0, r)
    eng.run()
    write_lat = reqs[0].latency_us
    read_lat = reqs[1].latency_us - write_lat  # served back to back
    assert read_lat > write_lat


def test_device_size_dependent_cost():
    eng = Engine()
    dev = NvmeDevice(eng)
    small = IoRequest(1, "read", 0, size_kb=4)
    large = IoRequest(2, "read", 0, size_kb=256)
    assert dev.service_us(large) > dev.service_us(small)


def test_device_queue_depth_rejection():
    eng = Engine()
    dev = NvmeDevice(eng, num_queues=1, queue_depth=2)
    results = [dev.submit(0, IoRequest(i, "read", 0)) for i in range(6)]
    assert not all(results)
    assert dev.rejected > 0


def test_device_lba_bounds():
    eng = Engine()
    dev = NvmeDevice(eng, capacity_lbas=100)
    with pytest.raises(ValueError):
        dev.submit(0, IoRequest(1, "read", 100))


def test_io_hook_default_stripes():
    eng = Engine()
    dev = NvmeDevice(eng, num_queues=4)
    hook = IoHook(dev)
    for i in range(8):
        hook.submit(IoRequest(i, "read", i))
    eng.run()
    assert all(q.served == 2 for q in dev.queues)


def test_token_policy_protects_provisioned_tenant():
    eng = Engine()
    dev = NvmeDevice(eng, num_queues=4)
    policy = IoTokenPolicy(eng, epoch_us=100.0)
    policy.provision(tenant=1, rate_iops=50_000, queue=0)
    hook = IoHook(dev, policy)
    lc_done, be_done = [], []
    rid = [0]

    def issue(tenant, sink):
        rid[0] += 1
        hook.submit(IoRequest(rid[0], "read", rid[0] % 100, tenant=tenant),
                    sink.append)

    # best-effort tenant floods; LC tenant issues a steady trickle
    for t in range(0, 10_000, 10):
        eng.at(float(t), issue, 2, be_done)
    for t in range(0, 10_000, 100):
        eng.at(float(t), issue, 1, lc_done)
    eng.run(until=30_000)
    policy.stop()
    eng.run()
    assert lc_done and be_done
    lc_p95 = sorted(r.latency_us for r in lc_done)[int(0.95 * len(lc_done))]
    be_p95 = sorted(r.latency_us for r in be_done)[int(0.95 * len(be_done))]
    # the provisioned tenant's dedicated queue keeps its tail flat
    assert lc_p95 < be_p95 / 3


def test_token_policy_rejects_over_rate():
    eng = Engine()
    dev = NvmeDevice(eng, num_queues=2)
    policy = IoTokenPolicy(eng, epoch_us=100.0)
    policy.provision(tenant=1, rate_iops=10_000, queue=0)  # 1 token/epoch
    hook = IoHook(dev, policy)
    accepted = [
        hook.submit(IoRequest(i, "read", 0, tenant=1)) for i in range(5)
    ]
    policy.stop()
    eng.run()
    assert accepted.count(True) == 1
    assert policy.rejections == 4
    assert hook.dropped == 4
