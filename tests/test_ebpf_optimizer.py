"""Optimizer tests: size reduction + semantic equivalence (incl. hypothesis)."""

import random

from conftest import random_packet, random_policy_source
from hypothesis import given, settings, strategies as st

from repro.ebpf.compiler import compile_policy
from repro.ebpf.optimizer import optimize
from repro.ebpf.program import load_program
from repro.ebpf.verifier import verify
from repro.net.packet import FiveTuple, Packet, build_payload

FLOW = FiveTuple(0x0A000002, 40000, 0x0A000001, 8080, 17)


def pkt(rtype=1):
    return Packet(FLOW, build_payload(rtype))


def both_values(program, packet, runs=3):
    base = load_program(program, rng=random.Random(5))
    opt_prog = optimize(program)
    verify(opt_prog)  # optimized output must still verify
    opt = load_program(opt_prog, rng=random.Random(5))
    for _ in range(runs):
        assert base.run_interp(packet).value == opt.run_interp(packet).value
    assert base.globals == opt.globals
    for m1, m2 in zip(base.maps, opt.maps):
        assert m1.items() == m2.items()
    return program, opt_prog


def test_constant_expression_collapses():
    src = "def schedule(pkt):\n    return (3 * 4 + 2) // 2\n"
    program = compile_policy(src)
    opt = optimize(program)
    assert opt.n_insns < program.n_insns
    assert load_program(opt).run_interp(None).value == 7


def test_constant_branch_folds_and_dead_code_drops():
    src = """
def schedule(pkt):
    if 1 < 2:
        return 10
    return 20
"""
    program = compile_policy(src)
    opt = optimize(program)
    assert opt.n_insns < program.n_insns
    assert load_program(opt).run_interp(None).value == 10


def test_branchy_program_survives():
    src = """
def schedule(pkt):
    if pkt_len(pkt) < 16:
        return PASS
    x = load_u64(pkt, 8)
    if x == 2:
        return 0
    return x % 5 + 1
"""
    program = compile_policy(src)
    both_values(program, pkt(rtype=2))
    both_values(program, pkt(rtype=7))


def test_unrolled_loop_with_breaks_survives():
    src = """
def schedule(pkt):
    total = 0
    for i in range(8):
        if i == 5:
            break
        total += i * (2 + 3)
    return total
"""
    program = compile_policy(src)
    _, opt = both_values(program, None)
    # the constant (2+3) folded everywhere it was duplicated by unrolling
    assert opt.n_insns < program.n_insns


def test_globals_and_maps_survive():
    src = """
m = syr_map("m", 32)
counter = 0

def schedule(pkt):
    global counter
    counter += 1 * 1
    map_update(m, counter % 4, counter)
    return counter
"""
    both_values(compile_policy(src), None, runs=5)


def test_ternary_join_not_misfolded():
    # the regression the jump-target guard exists for: a branch lands
    # between two constants that look foldable in layout order
    src = """
def schedule(pkt):
    c = pkt_len(pkt) % 2
    return (1 if c == 0 else 2) + 3
"""
    program = compile_policy(src)
    both_values(program, pkt())
    both_values(program, Packet(FLOW, b"xxx"))


@settings(max_examples=120, deadline=None)
@given(prog_seed=st.integers(0, 10**9), pkt_seed=st.integers(0, 10**9))
def test_optimized_equals_original_on_random_programs(prog_seed, pkt_seed):
    source = random_policy_source(prog_seed)
    program = compile_policy(source)
    opt_prog = optimize(program)
    verify(opt_prog)
    packet = random_packet(pkt_seed)
    base = load_program(program, rng=random.Random(1))
    opt = load_program(opt_prog, rng=random.Random(1))
    for _ in range(3):
        a = base.run_interp(packet).value
        b = opt.run_interp(packet).value
        assert a == b, f"\n{source}\nbase={a} optimized={b}"
    assert base.globals == opt.globals
    assert base.maps[0].items() == opt.maps[0].items()


@settings(max_examples=60, deadline=None)
@given(prog_seed=st.integers(0, 10**9))
def test_optimizer_never_grows_programs(prog_seed):
    program = compile_policy(random_policy_source(prog_seed))
    assert optimize(program).n_insns <= program.n_insns
