"""Tests for tools/bench_compare.py: the bench regression gate.

Exercises the compare() logic against synthetic result documents (no
simulation runs needed), the committed baseline's validity, and the CLI
round trip including the failing exit code.
"""

import copy
import importlib.util
import json
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent
TOOL = REPO_ROOT / "tools" / "bench_compare.py"
BASELINE = REPO_ROOT / "benchmarks" / "baseline.json"

spec = importlib.util.spec_from_file_location("bench_compare", TOOL)
bench_compare = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_compare)
bench = bench_compare.bench


def _doc(events_per_s=100_000.0, sim_us_per_wall_s=500_000.0,
         p99=42.5, mode="smoke"):
    return {
        "schema_version": bench.SCHEMA_VERSION,
        "mode": mode,
        "python": "3.12.0",
        "platform": "test",
        "created_unix": 1_000.0,
        "scenarios": {
            "figure6_steady": {
                "wall_s": 1.0,
                "sim_us": sim_us_per_wall_s,
                "sim_us_per_wall_s": sim_us_per_wall_s,
                "events": int(events_per_s),
                "events_per_s": events_per_s,
                "profile": {},
                "sim_metrics": {"p99_us": p99},
            },
        },
    }


def test_identical_docs_pass():
    report = bench_compare.compare(_doc(), _doc())
    assert report["ok"]
    row = report["scenarios"]["figure6_steady"]
    assert row["ok"] and row["sim_metrics_match"]
    for entry in row["throughput"].values():
        assert entry["ratio"] == pytest.approx(1.0)
        assert entry["ok"]


def test_throughput_regression_fails():
    fresh = _doc(events_per_s=30_000.0)  # 0.3x baseline, below 0.4 gate
    report = bench_compare.compare(fresh, _doc())
    assert not report["ok"]
    assert any("events_per_s regressed" in p for p in report["problems"])
    entry = report["scenarios"]["figure6_steady"]["throughput"]["events_per_s"]
    assert entry["ratio"] == pytest.approx(0.3) and not entry["ok"]


def test_min_ratio_is_tunable():
    fresh = _doc(events_per_s=80_000.0)  # 0.8x
    assert bench_compare.compare(fresh, _doc(), min_ratio=0.5)["ok"]
    assert not bench_compare.compare(fresh, _doc(), min_ratio=0.9)["ok"]


def test_sim_metrics_change_fails_same_mode():
    fresh = _doc(p99=99.9)
    report = bench_compare.compare(fresh, _doc())
    assert not report["ok"]
    assert not report["scenarios"]["figure6_steady"]["sim_metrics_match"]
    assert any("sim_metrics changed" in p for p in report["problems"])


def test_mode_mismatch_fails():
    report = bench_compare.compare(_doc(mode="full"), _doc(mode="smoke"))
    assert not report["ok"]
    assert any("mode mismatch" in p for p in report["problems"])


def test_missing_scenario_fails_extra_does_not():
    fresh = _doc()
    fresh["scenarios"]["figure_new"] = copy.deepcopy(
        fresh["scenarios"]["figure6_steady"]
    )
    report = bench_compare.compare(fresh, _doc())
    assert report["ok"]
    assert report["extra_scenarios"] == ["figure_new"]
    baseline = _doc()
    baseline["scenarios"]["figure_gone"] = copy.deepcopy(
        baseline["scenarios"]["figure6_steady"]
    )
    report = bench_compare.compare(_doc(), baseline)
    assert not report["ok"]
    assert any("missing from fresh" in p for p in report["problems"])


def test_invalid_documents_rejected():
    with pytest.raises(bench.BenchSchemaError):
        bench_compare.compare({"not": "a results doc"}, _doc())


def test_committed_baseline_is_valid():
    with open(BASELINE) as fh:
        baseline = json.load(fh)
    assert bench.validate_results(baseline) is baseline
    assert baseline["mode"] == "smoke"
    assert set(baseline["scenarios"]) == set(bench.SCENARIOS)


def test_cli_round_trip(tmp_path, capsys):
    results = tmp_path / "fresh.json"
    baseline = tmp_path / "baseline.json"
    report_path = tmp_path / "report.json"
    with open(results, "w") as fh:
        json.dump(_doc(), fh)
    with open(baseline, "w") as fh:
        json.dump(_doc(), fh)
    assert bench_compare.main([
        "--results", str(results), "--baseline", str(baseline),
        "--report", str(report_path),
    ]) == 0
    assert "figure6_steady: ok" in capsys.readouterr().out
    report = json.loads(report_path.read_text())
    assert report["ok"] and report["min_ratio"] == pytest.approx(0.4)
    # a regressed fresh run exits 1
    with open(results, "w") as fh:
        json.dump(_doc(events_per_s=10_000.0), fh)
    assert bench_compare.main([
        "--results", str(results), "--baseline", str(baseline),
    ]) == 1
    assert "REGRESSED" in capsys.readouterr().out
