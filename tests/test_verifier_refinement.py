"""Fine-grained verifier refinement tests: every comparison direction,
negation, and the exact boundary conditions of packet-length proofs."""

import pytest

from repro.ebpf.compiler import compile_policy
from repro.ebpf.errors import VerifierError
from repro.ebpf.verifier import verify


def accepts(src):
    verify(compile_policy(src))


def rejects(src):
    with pytest.raises(VerifierError):
        verify(compile_policy(src))


# --- every operator, pkt_len on the left ------------------------------
def test_lt_guard_exact_boundary():
    accepts("""
def schedule(pkt):
    if pkt_len(pkt) < 8:
        return PASS
    return load_u64(pkt, 0)
""")
    rejects("""
def schedule(pkt):
    if pkt_len(pkt) < 7:
        return PASS
    return load_u64(pkt, 0)
""")


def test_le_guard():
    accepts("""
def schedule(pkt):
    if pkt_len(pkt) <= 7:
        return PASS
    return load_u64(pkt, 0)
""")
    rejects("""
def schedule(pkt):
    if pkt_len(pkt) <= 6:
        return PASS
    return load_u64(pkt, 0)
""")


def test_ge_guard():
    accepts("""
def schedule(pkt):
    if pkt_len(pkt) >= 8:
        return load_u64(pkt, 0)
    return PASS
""")
    rejects("""
def schedule(pkt):
    if pkt_len(pkt) >= 7:
        return load_u64(pkt, 0)
    return PASS
""")


def test_gt_guard():
    accepts("""
def schedule(pkt):
    if pkt_len(pkt) > 7:
        return load_u64(pkt, 0)
    return PASS
""")
    rejects("""
def schedule(pkt):
    if pkt_len(pkt) > 6:
        return load_u64(pkt, 0)
    return PASS
""")


def test_eq_guard():
    accepts("""
def schedule(pkt):
    if pkt_len(pkt) == 16:
        return load_u64(pkt, 8)
    return PASS
""")


def test_ne_guard_refines_else_branch():
    accepts("""
def schedule(pkt):
    if pkt_len(pkt) != 16:
        return PASS
    return load_u64(pkt, 8)
""")


# --- reversed operand order -------------------------------------------
@pytest.mark.parametrize("guard, ok", [
    ("if 8 <= pkt_len(pkt):", True),
    ("if 7 < pkt_len(pkt):", True),
    ("if 7 <= pkt_len(pkt):", False),
    ("if 8 == pkt_len(pkt):", True),
])
def test_reversed_operands(guard, ok):
    src = f"""
def schedule(pkt):
    {guard}
        return load_u64(pkt, 0)
    return PASS
"""
    if ok:
        accepts(src)
    else:
        rejects(src)


# --- negation ----------------------------------------------------------
def test_not_inverts_refinement():
    accepts("""
def schedule(pkt):
    if not (pkt_len(pkt) >= 8):
        return PASS
    return load_u64(pkt, 0)
""")
    rejects("""
def schedule(pkt):
    if not (pkt_len(pkt) >= 8):
        return load_u64(pkt, 0)
    return PASS
""")


def test_double_not_round_trips():
    accepts("""
def schedule(pkt):
    if not (not (pkt_len(pkt) >= 8)):
        return load_u64(pkt, 0)
    return PASS
""")


# --- joins and nesting ---------------------------------------------------
def test_min_over_paths_at_join():
    # both branches prove >= 8, so the post-join load of 8 bytes is fine
    accepts("""
def schedule(pkt):
    if pkt_len(pkt) >= 16:
        x = 1
    elif pkt_len(pkt) >= 8:
        x = 2
    else:
        return PASS
    return load_u64(pkt, 0) + x
""")
    # ...but a 16-byte load is not: the elif path proved only 8
    rejects("""
def schedule(pkt):
    if pkt_len(pkt) >= 16:
        x = 1
    elif pkt_len(pkt) >= 8:
        x = 2
    else:
        return PASS
    return load_u64(pkt, 8) + x
""")


def test_refinement_does_not_leak_backwards():
    rejects("""
def schedule(pkt):
    x = load_u8(pkt, 0)
    if pkt_len(pkt) < 1:
        return PASS
    return x
""")


def test_guard_inside_loop_body_applies_within():
    accepts("""
def schedule(pkt):
    total = 0
    for i in range(3):
        if pkt_len(pkt) < 8:
            return PASS
        total += load_u64(pkt, 0)
    return total
""")


def test_and_guard_loses_refinement_at_join():
    """Documented limitation: compound conditions lose the proof."""
    rejects("""
def schedule(pkt):
    x = 1
    if x == 1 and pkt_len(pkt) >= 8:
        return load_u64(pkt, 0)
    return PASS
""")


def test_unsigned_comparison_semantics_in_guards():
    # pkt_len compared against a folded negative constant (= huge unsigned):
    # pkt_len >= 2^64-1 is never true for real packets, so the load is
    # guarded but dead — and still verifiable.
    accepts("""
def schedule(pkt):
    if pkt_len(pkt) >= 18446744073709551615:
        return load_u64(pkt, 0)
    return PASS
""")
