"""Tests for the syrupctl inspection tool."""

import pytest

from repro import Hook, Machine, set_a
from repro.apps.rocksdb import RocksDbServer
from repro.core.maps import PermissionDenied
from repro.policies.builtin import SCAN_AVOID
from repro.syrupctl import (
    dump_map,
    render_deployments,
    render_maps,
    render_promote,
    render_slo,
    render_status,
    run_promote_demo,
    run_slo_demo,
)
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import GET_SCAN_995_005


@pytest.fixture
def busy_machine():
    machine = Machine(set_a(), seed=101)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6, mark_scans=True)
    app.deploy_policy(SCAN_AVOID, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": 6})
    gen = OpenLoopGenerator(machine, 8080, 60_000, GET_SCAN_995_005,
                            duration_us=20_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    return machine


def test_render_deployments(busy_machine):
    text = render_deployments(busy_machine)
    assert "rocksdb" in text
    assert "socket_select" in text
    assert "invocations" in text


def test_render_maps_shows_pinned_contents(busy_machine):
    text = render_maps(busy_machine)
    assert "/sys/fs/bpf/syrup/rocksdb/scan_map" in text
    assert "array" in text
    assert "host" in text


def test_dump_map(busy_machine):
    contents = dump_map(busy_machine, "rocksdb", "scan_map")
    assert len(contents) == 64
    assert all(v in (0, 1) for v in contents.values())


def test_dump_map_respects_permissions(busy_machine):
    busy_machine.register_app("snoop", ports=[9999])
    registry = busy_machine.syrupd.registry
    with pytest.raises(PermissionDenied):
        registry.open(registry.pin_path("rocksdb", "scan_map"), "snoop")


def test_render_status_full_picture(busy_machine):
    text = render_status(busy_machine)
    assert "hook sites" in text
    assert "core 0" in text
    assert "drops" in text
    assert "socket_select: ports=[8080]" in text


def test_render_status_idle_machine():
    machine = Machine(set_a(), seed=102)
    text = render_status(machine)
    assert "(none provisioned)" in text
    assert "(none)" in text


def test_render_status_shows_ghost_agent_core():
    machine = Machine(set_a(), seed=103, scheduler="ghost")
    assert "[ghOSt agent]" in render_status(machine)


def test_render_slo_without_objectives(busy_machine):
    assert "no SLO objectives" in render_slo(busy_machine)


def test_slo_demo_renders_objectives_and_signal_footer():
    machine = run_slo_demo(duration_ms=60.0)
    text = render_slo(machine)
    assert "get_p99" in text and "served" in text
    assert "burn_short" in text and "budget_remaining" in text
    # the signal-bus footer: cadence, tick count, controllers
    assert "signals: interval=" in text
    assert "shed" in text and "srpt_thresh" in text


def test_render_promote_without_attempts(busy_machine):
    assert "(no promotion attempts)" in render_promote(busy_machine)


def test_promote_demo_renders_both_candidates_with_histories():
    machine = run_promote_demo(load=150_000, duration_ms=100.0)
    text = render_promote(machine)
    assert "promotion pipeline" in text
    assert "broken" in text and "good" in text
    # the per-record history timeline and the decision-diff footer
    assert "shadow" in text
    assert "decision diff:" in text
    assert len(machine.syrupd.promotions()) == 2
