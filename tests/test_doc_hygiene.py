"""Doc hygiene: repro.* symbols named in the docs must resolve.

Runs tools/check_doc_symbols.py over docs/*.md + README.md so renames
and removals can't silently strand the documentation.
"""

import importlib.util
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent
TOOL = REPO_ROOT / "tools" / "check_doc_symbols.py"

spec = importlib.util.spec_from_file_location("check_doc_symbols", TOOL)
check_doc_symbols = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_doc_symbols)


def test_default_targets_include_all_docs():
    targets = [p.name for p in check_doc_symbols.default_targets(REPO_ROOT)]
    assert "observability.md" in targets
    assert "architecture.md" in targets
    assert "policy-language.md" in targets
    assert "README.md" in targets


@pytest.mark.parametrize(
    "target", check_doc_symbols.default_targets(REPO_ROOT),
    ids=lambda p: p.name,
)
def test_doc_symbols_resolve(target):
    errors = check_doc_symbols.check_file(target)
    assert errors == []


def test_checker_flags_bogus_symbols():
    text = "prose\n```python\nfrom repro.no_such_module import thing\n```\n"
    errors = check_doc_symbols.check_text(text, origin="bogus.md")
    assert len(errors) == 1
    assert "repro.no_such_module" in errors[0]


def test_checker_flags_bogus_attributes():
    errors = check_doc_symbols.check_text(
        "see `repro.core.syrupd.Syrupd.no_such_method` here",
        origin="bogus.md",
    )
    assert len(errors) == 1
    assert "no_such_method" in errors[0]


def test_checker_resolves_methods_and_ignores_paths():
    # method path resolves through module -> class -> attribute
    assert check_doc_symbols.check_text(
        "`repro.core.syrupd.Syrupd.status`"
    ) == []
    # file-path-style references are out of scope
    assert check_doc_symbols.check_text(
        "```\nsee repro/ebpf/vm.py for details\n```"
    ) == []
    # prose outside code spans is not scanned
    assert check_doc_symbols.check_text(
        "the repro.not_a_module package (prose, unchecked)"
    ) == []
