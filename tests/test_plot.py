"""Tests for the ASCII plotting helper."""

import math

from repro.stats.plot import ascii_plot, plot_table
from repro.stats.results import Table


def test_plot_basic_structure():
    text = ascii_plot(
        {"a": [(0, 10), (100, 100)], "b": [(0, 20), (100, 50)]},
        title="demo", x_label="load", y_label="p99",
    )
    assert "demo" in text
    assert "o=a" in text and "x=b" in text
    assert "load" in text and "p99" in text
    assert "o" in text and "x" in text


def test_plot_log_scale_handles_decades():
    text = ascii_plot(
        {"s": [(1, 10), (2, 100), (3, 10_000)]}, log_y=True, height=10
    )
    assert "10K" in text       # top label
    assert "(log scale)" not in text  # only shown when y_label given
    labeled = ascii_plot({"s": [(1, 10), (2, 10_000)]}, log_y=True,
                         y_label="us")
    assert "(log scale)" in labeled


def test_plot_skips_nan_and_empty():
    text = ascii_plot({"s": [(1, float("nan")), (2, 5.0)]})
    assert "o" in text
    assert "(no data)" in ascii_plot({"s": []})


def test_plot_single_point_no_division_errors():
    text = ascii_plot({"s": [(5, 7)]})
    assert "o" in text


def test_plot_table_groups_series():
    table = Table("t", ["policy", "load", "p99"])
    table.add(policy="a", load=1, p99=10.0)
    table.add(policy="a", load=2, p99=20.0)
    table.add(policy="b", load=1, p99=5.0)
    text = plot_table(table, "policy", "load", "p99")
    assert "o=a" in text and "x=b" in text
    assert text.startswith("t")


def test_cli_plot_flag(capsys):
    from repro.cli import main

    assert main(["figure2", "--loads", "100000", "--duration-ms", "40",
                 "--plot"]) == 0
    out = capsys.readouterr().out
    assert "o=vanilla" in out
    assert "load_rps" in out
