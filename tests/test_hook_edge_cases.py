"""Edge cases across hook provisioning and cross-hook interactions."""

import pytest

from repro import Hook, Machine, set_a, set_b
from repro.apps.rocksdb import RocksDbServer
from repro.policies.builtin import HASH_BY_FLOW, ROUND_ROBIN
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import GET_ONLY


def test_xdp_mode_conflict_rejected():
    machine = Machine(set_a(), seed=81)
    app = machine.register_app("a", ports=[8080, 8081])
    # AF_XDP socket as executor for XDP hooks
    sock = machine.create_udp_socket(app, 8080, is_af_xdp=True)
    app.register_socket(sock, 0, hook=Hook.XDP_DRV)
    app.deploy_policy("def schedule(pkt):\n    return 0\n", Hook.XDP_DRV,
                      ports=[8080])
    with pytest.raises(ValueError) as err:
        app.deploy_policy("def schedule(pkt):\n    return 0\n", Hook.XDP_SKB,
                          ports=[8081])
    assert "mode" in str(err.value)


def test_same_xdp_mode_multiple_apps_coexist():
    machine = Machine(set_b(), seed=81)
    a = machine.register_app("a", ports=[8080])
    b = machine.register_app("b", ports=[9090])
    for app, port in ((a, 8080), (b, 9090)):
        sock = machine.create_udp_socket(app, port, is_af_xdp=True)
        app.register_socket(sock, 0, hook=Hook.XDP_SKB)
        app.deploy_policy("def schedule(pkt):\n    return 0\n", Hook.XDP_SKB)
    site = machine.netstack.xdp_hook
    assert site.attachment_for_port(8080).app_name == "a"
    assert site.attachment_for_port(9090).app_name == "b"


def test_executor_maps_are_per_hook():
    machine = Machine(set_b(), seed=82)
    app = machine.register_app("a", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 4)
    em_select = app.executor_map(Hook.SOCKET_SELECT)
    em_redirect = app.executor_map(Hook.CPU_REDIRECT)
    assert em_select is not em_redirect
    assert len(em_select) == 4       # sockets registered by the server
    assert len(em_redirect) == 0     # prepopulated only at deploy time


def test_socket_select_and_cpu_redirect_compose():
    """Two network hooks active at once for the same app."""
    machine = Machine(set_a(), seed=83)
    app = machine.register_app("a", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    app.deploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": 6})
    app.deploy_policy(HASH_BY_FLOW, Hook.CPU_REDIRECT,
                      constants={"NUM_EXECUTORS": 6})
    gen = OpenLoopGenerator(machine, 8080, 50_000, GET_ONLY,
                            duration_us=20_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    assert gen.drop_fraction() == 0.0
    # both policies actually executed
    rows = {r["hook"]: r for r in machine.syrupd.status()}
    assert rows[Hook.SOCKET_SELECT]["invocations"] > 0
    assert rows[Hook.CPU_REDIRECT]["invocations"] > 0
    # round robin still balanced perfectly despite redirect in front
    counts = [s.enqueued for s in server.sockets]
    assert max(counts) - min(counts) <= 1


def test_hash_by_flow_policy_recreates_vanilla_behaviour():
    """Portability sanity: HASH_BY_FLOW at Socket Select behaves like the
    kernel default — per-flow stable assignment."""
    machine = Machine(set_a(), seed=84)
    app = machine.register_app("a", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    app.deploy_policy(HASH_BY_FLOW, Hook.SOCKET_SELECT,
                      constants={"NUM_EXECUTORS": 6})
    gen = OpenLoopGenerator(machine, 8080, 30_000, GET_ONLY,
                            duration_us=30_000, num_flows=4)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    # at most 4 sockets used (one per flow), each flow sticky
    used = sum(1 for s in server.sockets if s.enqueued > 0)
    assert used <= 4


def test_status_empty_before_deploys():
    machine = Machine(set_a(), seed=85)
    machine.register_app("a", ports=[8080])
    assert machine.syrupd.status() == []


def test_hook_constants_closed_sets():
    assert set(Hook.NETWORK) < set(Hook.ALL)
    assert Hook.THREAD_SCHED in Hook.ALL
    assert set(Hook.INTEGER_EXECUTORS) <= set(Hook.NETWORK)
