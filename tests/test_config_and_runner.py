"""Coverage for configuration dataclasses and the experiment runner glue."""

import pytest

from repro.config import CostModel, MachineConfig, NicSpec, set_a, set_b, with_costs
from repro.core.hooks import Hook
from repro.experiments.runner import RocksDbTestbed, run_point
from repro.policies.builtin import ROUND_ROBIN
from repro.policies.thread_policies import GetPriorityPolicy
from repro.workload.mixes import GET_ONLY, GET_SCAN_50_50


def test_testbed_vanilla_default():
    testbed = RocksDbTestbed()
    assert testbed.machine.netstack.socket_select_hook is None
    assert len(testbed.server.threads) == 6


def test_testbed_with_policy_installs_hook():
    testbed = RocksDbTestbed(
        policy=(ROUND_ROBIN, Hook.SOCKET_SELECT, {"NUM_THREADS": 6})
    )
    assert testbed.machine.netstack.socket_select_hook is not None


def test_testbed_with_thread_policy_needs_ghost():
    testbed = RocksDbTestbed(
        scheduler="ghost",
        mark_types=True,
        thread_policy_factory=lambda server: GetPriorityPolicy(server.type_map),
    )
    assert testbed.machine.agent_core is not None


def test_run_point_returns_finished_generator():
    def factory():
        return RocksDbTestbed(seed=9)

    testbed, gen = run_point(factory, 30_000, GET_ONLY, 20_000.0, 5_000.0)
    assert gen.latency.count > 0
    assert testbed.machine.engine.pending() == 0


def test_testbed_custom_port_and_threads():
    testbed = RocksDbTestbed(num_threads=12, port=9999, scheduler="cfs")
    assert testbed.port == 9999
    assert len(testbed.server.sockets) == 12
    gen = testbed.drive(5_000, GET_SCAN_50_50, 10_000.0, 2_000.0).start()
    testbed.machine.run()
    assert gen.latency.count > 0


def test_cost_model_defaults_are_calibration():
    costs = CostModel()
    assert costs.wire_us == 5.0
    assert costs.enforce_cycles == 1450
    assert costs.remote_softirq_us == 0.0


def test_with_costs_rejects_unknown_field():
    with pytest.raises(TypeError):
        with_costs(set_a(), bogus_field=1.0)


def test_machine_config_nic_defaults_sane():
    config = MachineConfig()
    assert config.nic.num_queues >= config.num_app_cores or True
    assert config.socket_backlog > 0


def test_set_profiles_are_independent_instances():
    a1, a2 = set_a(), set_a()
    a1.costs.wire_us = 99.0
    assert a2.costs.wire_us == 5.0
    b1, b2 = set_b(), set_b()
    b1.nic.num_queues = 99
    assert b2.nic.num_queues == 8
