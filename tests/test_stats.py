"""Tests for latency recording, counters, and result tables."""

import math

import pytest

from repro.stats.latency import LatencyRecorder
from repro.stats.meters import Counter, WindowedRate
from repro.stats.results import Table, format_table


def test_percentiles_exact_on_known_data():
    rec = LatencyRecorder()
    for v in range(1, 101):
        rec.record(10.0, float(v))
    assert rec.p50() == pytest.approx(50.5)
    assert rec.p99() == pytest.approx(99.01)
    assert rec.mean() == pytest.approx(50.5)
    assert rec.max() == 100.0


def test_warmup_discards_samples():
    rec = LatencyRecorder(warmup_until=100.0)
    rec.record(50.0, 1.0)
    rec.record(150.0, 2.0)
    assert rec.count == 1
    assert rec.p50() == 2.0


def test_tagged_samples():
    rec = LatencyRecorder()
    rec.record(0.0, 10.0, tag="get")
    rec.record(0.0, 700.0, tag="scan")
    rec.record(0.0, 12.0, tag="get")
    assert rec.p50(tag="get") == 11.0
    assert rec.p50(tag="scan") == 700.0
    assert rec.tags() == ["get", "scan"]


def test_empty_recorder_is_nan():
    rec = LatencyRecorder()
    assert math.isnan(rec.p99())
    assert math.isnan(rec.mean())
    assert math.isnan(rec.p99(tag="missing"))


def test_summary_keys():
    rec = LatencyRecorder()
    rec.record(0.0, 5.0)
    summary = rec.summary()
    assert set(summary) == {"count", "mean", "p50", "p99", "p999", "max"}
    assert summary["count"] == 1


def test_counter_warmup_and_totals():
    counter = Counter(warmup_until=10.0)
    counter.add(5.0, "a")
    counter.add(15.0, "a")
    counter.add(20.0, "b", n=3)
    assert counter.get("a") == 1
    assert counter.get("b") == 3
    assert counter.total() == 4
    assert counter.as_dict() == {"a": 1, "b": 3}


def test_windowed_rate():
    rate = WindowedRate(start=1000.0)
    rate.add(500.0)   # before window
    rate.add(1500.0)
    rate.add(2000.0)
    # 2 events over a 1000 us window = 2000 events/s
    assert rate.per_second(end=2000.0) == pytest.approx(2000.0)
    assert WindowedRate(0.0).per_second(0.0) == 0.0


def test_table_add_and_columns():
    table = Table("demo", ["x", "y"])
    table.add(x=1, y=2.0)
    table.add(x=3)
    assert table.column("x") == [1, 3]
    assert table.column("y") == [2.0, None]
    assert len(table) == 2


def test_table_rejects_unknown_columns():
    table = Table("demo", ["x"])
    with pytest.raises(KeyError):
        table.add(z=1)


def test_table_render_contains_values():
    table = Table("demo", ["policy", "p99_us"])
    table.add(policy="rr", p99_us=123.456)
    text = table.render()
    assert "demo" in text
    assert "rr" in text
    assert "123.46" in text


def test_format_table_alignment_with_nan():
    text = format_table("t", ["a"], [type("R", (), {"get": lambda s, c: float("nan")})()])
    assert "nan" in text
