"""Elastic core arbitration tests: CoreArbiter, controller, figure.

Covers the arbitration invariants (no double grant, floors, revocation
never strands a runnable thread), fault composition (``core_stall``
routed through the arbiter), the ElasticCoreController's apportionment
law, the ``figure_oversub`` demonstration (every static split fails at
least one app's SLO, elastic meets both), and the **no-op audit**: a
machine built without ``scheduler="elastic"`` allocates zero arbiter
objects and simulates bit-identically.
"""

import pytest

from repro.experiments.figure_oversub import (
    SLO_P99_US,
    run_figure_oversub,
    stage_variant,
)
from repro.experiments.runner import RocksDbTestbed, run_point
from repro.faults import FaultPlan
from repro.kernel.arbiter import (
    CoreArbiter,
    CoreGrantError,
    ElasticCoreController,
    ElasticScheduler,
    ElasticSpec,
)
from repro.kernel.cpu import Core
from repro.obs.accounting import TenantAccountant
from repro.sim.engine import Engine
from repro.workload.mixes import GET_SCAN_995_005


# ----------------------------------------------------------------------
# Unit scaffolding: an engine, a handful of cores, fake class schedulers
# ----------------------------------------------------------------------
class FakeSched:
    """Records add/remove calls; enough scheduler surface for grants."""

    def __init__(self):
        self.cores = []
        self.threads = []

    def add_core(self, core):
        self.cores.append(core)

    def remove_core(self, core):
        self.cores.remove(core)


def make_arbiter(n_cores=4, floors=(1, 1), with_acct=False):
    engine = Engine()
    cores = [Core(i) for i in range(n_cores)]
    kwargs = {}
    if with_acct:
        kwargs["acct"] = TenantAccountant(clock=lambda: engine.now)
    arbiter = CoreArbiter(engine, cores, **kwargs)
    scheds = {}
    for name, floor in zip(("alpha", "bravo"), floors):
        scheds[name] = FakeSched()
        arbiter.register(name, scheds[name], floor=floor, tenant=name)
    return engine, arbiter, scheds


# ----------------------------------------------------------------------
# Grant / revoke invariants
# ----------------------------------------------------------------------
def test_no_double_grant():
    _engine, arbiter, scheds = make_arbiter()
    arbiter.grant(0, "alpha")
    assert arbiter.owner_of(0) == "alpha"
    assert scheds["alpha"].cores[0].cid == 0
    with pytest.raises(CoreGrantError, match="already granted"):
        arbiter.grant(0, "bravo")
    with pytest.raises(CoreGrantError, match="already granted"):
        arbiter.grant(0, "alpha")


def test_unknown_core_and_class_raise():
    _engine, arbiter, _scheds = make_arbiter(n_cores=2)
    with pytest.raises(CoreGrantError, match="not in the arbitrated pool"):
        arbiter.grant(99, "alpha")
    with pytest.raises(CoreGrantError, match="unknown class"):
        arbiter.grant(0, "charlie")
    with pytest.raises(CoreGrantError, match="not granted"):
        arbiter.revoke(0)
    with pytest.raises(CoreGrantError, match="already registered"):
        arbiter.register("alpha", FakeSched())


def test_floor_blocks_revocation_unless_forced():
    _engine, arbiter, scheds = make_arbiter(n_cores=3)
    arbiter.grant(0, "alpha")
    arbiter.grant(1, "alpha")
    arbiter.grant(2, "bravo")
    arbiter.revoke(1)  # alpha above floor: fine
    with pytest.raises(CoreGrantError, match="below"):
        arbiter.revoke(0)  # would take alpha to 0 < floor 1
    with pytest.raises(CoreGrantError, match="below"):
        arbiter.revoke(2)  # bravo at its floor
    # physics (stalls) may force it; the scheduler still migrates first
    arbiter.revoke(2, force=True)
    assert arbiter.owner_of(2) is None
    assert scheds["bravo"].cores == []


def test_move_is_revoke_plus_grant():
    _engine, arbiter, scheds = make_arbiter(n_cores=3)
    arbiter.grant(0, "alpha")
    arbiter.grant(1, "alpha")
    arbiter.grant(2, "bravo")
    arbiter.move(1, "bravo")
    assert arbiter.allocation() == {"alpha": [0], "bravo": [2, 1]}
    assert arbiter.moves == 1
    assert [c.cid for c in scheds["bravo"].cores] == [2, 1]


def test_occupancy_books_to_class_totals_and_tenant_ledgers():
    engine, arbiter, _scheds = make_arbiter(n_cores=2, floors=(0, 0),
                                            with_acct=True)
    acct = arbiter.acct
    arbiter.grant(0, "alpha")
    arbiter.grant(1, "bravo")
    engine.at(100.0, arbiter.move, 0, "bravo")
    engine.at(250.0, arbiter.settle)
    engine.run()
    # alpha held core 0 for [0, 100); bravo held core 1 for [0, 250)
    # and core 0 for [100, 250)
    assert arbiter.occupancy_us("alpha") == pytest.approx(100.0)
    assert arbiter.occupancy_us("bravo") == pytest.approx(400.0)
    assert acct.ledger("alpha").core_occupancy_us == pytest.approx(100.0)
    assert acct.ledger("bravo").core_occupancy_us == pytest.approx(400.0)
    # settle is idempotent at an instant
    arbiter.settle()
    assert acct.ledger("bravo").core_occupancy_us == pytest.approx(400.0)
    # the timeline recorded the ownership segments
    owners = [owner for _s, _e, owner in arbiter.timeline(0)]
    assert owners[0] == "alpha" and owners[-1] == "bravo"


def test_stall_borrows_from_surplus_class_and_repays():
    engine, arbiter, _scheds = make_arbiter(n_cores=4)
    arbiter.grant(0, "alpha")
    arbiter.grant(1, "alpha")
    arbiter.grant(2, "bravo")
    arbiter.grant(3, "bravo")
    record = arbiter.stall(2, duration_us=50.0)
    # bravo's stalled core was backfilled by borrowing alpha's newest
    assert record["victim"] == "bravo"
    assert record["backfill"] == 1
    assert record["lender"] == "alpha"
    assert arbiter.allocation() == {"alpha": [0], "bravo": [3, 1]}
    assert 2 not in arbiter.free_cores()
    with pytest.raises(CoreGrantError, match="stalled"):
        arbiter.grant(2, "alpha")
    engine.run()
    # stall lifted: the recovered core repays the lender
    assert arbiter.allocation() == {"alpha": [0, 2], "bravo": [3, 1]}
    assert arbiter.stall_count == 1


def test_stall_backfills_from_free_pool_when_one_is_idle():
    engine, arbiter, _scheds = make_arbiter(n_cores=3)
    arbiter.grant(0, "alpha")
    arbiter.grant(1, "bravo")  # core 2 stays free
    record = arbiter.stall(0, duration_us=25.0)
    assert record["backfill"] == 2 and record["lender"] is None
    assert arbiter.allocation() == {"alpha": [2], "bravo": [1]}
    engine.run()
    # recovered core goes back to the stall's victim
    assert arbiter.allocation() == {"alpha": [2, 0], "bravo": [1]}


def test_overlapping_stalls_keep_the_newest_deadline():
    engine, arbiter, _scheds = make_arbiter(n_cores=2)
    arbiter.grant(0, "alpha")
    arbiter.grant(1, "bravo")
    arbiter.stall(0, duration_us=10.0)
    engine.at(5.0, arbiter.stall, 0, 100.0)  # extended mid-stall
    engine.run(until=50.0)
    assert 0 in arbiter._stalls  # first deadline was superseded
    engine.run()
    assert 0 not in arbiter._stalls
    assert arbiter.owner_of(0) == "alpha"


# ----------------------------------------------------------------------
# The control law
# ----------------------------------------------------------------------
class _Thread:
    def __init__(self, state="runnable"):
        self.state = state


def test_controller_targets_respect_floors():
    _engine, arbiter, scheds = make_arbiter(n_cores=4)
    for cid, name in ((0, "alpha"), (1, "alpha"), (2, "bravo"),
                      (3, "bravo")):
        arbiter.grant(cid, name)
    controller = ElasticCoreController(arbiter, hysteresis_ticks=1,
                                       alpha=1.0)
    scheds["alpha"].threads = [_Thread() for _ in range(10)]
    scheds["bravo"].threads = [_Thread("blocked")]
    targets = controller.targets(controller.pressures())
    # all the spare capacity follows alpha's pressure; bravo keeps floor
    assert targets == {"alpha": 3, "bravo": 1}


def test_controller_hysteresis_then_one_move_per_firing():
    _engine, arbiter, scheds = make_arbiter(n_cores=4)
    for cid, name in ((0, "alpha"), (1, "alpha"), (2, "bravo"),
                      (3, "bravo")):
        arbiter.grant(cid, name)
    controller = ElasticCoreController(arbiter, hysteresis_ticks=2,
                                       alpha=1.0)
    scheds["alpha"].threads = [_Thread() for _ in range(10)]
    controller()
    assert arbiter.moves == 0  # first tick only observes
    controller()
    assert arbiter.moves == 1  # streak reached: one core moves
    assert arbiter.allocation() == {"alpha": [0, 1, 3], "bravo": [2]}
    controller()
    controller()
    # bravo is at its floor now: no further move is legal
    assert arbiter.moves == 1
    assert len(arbiter.allocation()["bravo"]) == 1


def test_controller_prefers_free_cores_over_revocation():
    _engine, arbiter, scheds = make_arbiter(n_cores=4)
    arbiter.grant(0, "alpha")
    arbiter.grant(1, "bravo")  # cores 2, 3 free
    controller = ElasticCoreController(arbiter, hysteresis_ticks=2,
                                       alpha=1.0)
    scheds["alpha"].threads = [_Thread() for _ in range(8)]
    controller()
    # deficit satisfied from the free pool immediately — no hysteresis,
    # no revocation
    assert arbiter.moves == 0
    assert len(arbiter.allocation()["alpha"]) == 2
    assert arbiter.allocation()["bravo"] == [1]


# ----------------------------------------------------------------------
# Revocation never strands work (real machines, mid-run revocations)
# ----------------------------------------------------------------------
def _cfs_placed(sched):
    """Every thread CFS can currently account for."""
    placed = set()
    for core in sched.cores:
        if core.thread is not None:
            placed.add(core.thread)
    for rq in sched._rq.values():
        placed.update(rq)
    placed.update(sched._orphans)
    return placed


def test_cfs_revocation_conserves_runnable_threads():
    machine, _gs, gen_batch, _c = stage_variant(
        "static_2_3", 40_000, 4.0, 60_000.0, 10_000.0, seed=7
    )
    arbiter = machine.arbiter
    batch = machine.scheduler.classes["batch"]
    checked = {"n": 0}

    def shrink_and_check():
        before = {
            t for t in batch.threads if t.state != "blocked"
        }
        victim = arbiter.classes["batch"].cores[-1].cid
        arbiter.move(victim, "search")
        after = _cfs_placed(batch)
        missing = {t for t in before if t.state != "blocked"} - after
        assert not missing, f"stranded threads: {missing}"
        checked["n"] += 1

    machine.engine.at(25_000.0, shrink_and_check)
    machine.engine.at(30_000.0, shrink_and_check)  # down to its floor
    machine.run()
    assert checked["n"] == 2
    # the shrunken class still finished its work on the surviving core
    assert gen_batch.completed_in_window() > 0
    assert len(arbiter.allocation()["batch"]) == 1


def test_ghost_revocation_aborts_inflight_and_recovers():
    # loads sized so even the post-revocation single core keeps up
    # (~77K RPS capacity): any drop would mean revocation lost work
    machine, gen_search, _gb, _c = stage_variant(
        "static_3_2", 30_000, 2.0, 60_000.0, 10_000.0, seed=9
    )
    arbiter = machine.arbiter
    search = machine.scheduler.classes["search"]

    def shrink():
        victim = arbiter.classes["search"].cores[-1].cid
        arbiter.move(victim, "batch")
        assert victim not in [c.cid for c in search.cores]

    machine.engine.at(20_000.0, shrink)
    machine.engine.at(24_000.0, shrink)  # search down to its floor of 1
    machine.run()
    agent = search.agent
    assert agent is not None and not agent.crashed
    # the enclave kept scheduling on the surviving core: work completed
    # after the revocations, and nothing hit the failed-commit path
    assert gen_search.drop_fraction() == 0.0
    assert gen_search.completed_in_window() > 1000
    assert len(arbiter.allocation()["search"]) == 1


def test_core_stall_fault_routes_through_the_arbiter():
    from repro.config import set_a
    from repro.machine import Machine

    plan = FaultPlan().core_stall(0, at_us=5_000.0, duration_us=10_000.0)
    spec = (
        ElasticSpec()
        .ghost("search", floor=1, tenant="search")
        .cfs("batch", apps=("batch",), floor=1, tenant="batch")
    )
    machine = Machine(set_a(), seed=3, scheduler="elastic", elastic=spec,
                      faults=plan)
    machine.register_app("search", ports=[8080])
    machine.register_app("batch", ports=[8081])
    stalled_cid = machine.arbiter.pool[0].cid
    victim = machine.arbiter.owner_of(stalled_cid)
    before = dict(machine.arbiter.allocation())
    machine.engine.run(until=8_000.0)
    assert machine.arbiter.stall_count == 1
    assert stalled_cid not in machine.arbiter.free_cores()
    # the victim class was backfilled around the stall
    assert len(machine.arbiter.allocation()[victim]) == len(before[victim])
    machine.engine.run(until=20_000.0)
    # stall lifted: the core is granted again (lender or victim)
    assert machine.arbiter.owner_of(stalled_cid) is not None
    assert machine.faults.injected == 1


# ----------------------------------------------------------------------
# figure_oversub: the claim itself
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def oversub_table():
    return run_figure_oversub(duration_us=200_000.0, warmup_us=20_000.0,
                              seed=5)


def test_every_static_split_fails_an_slo(oversub_table):
    rows = {row["variant"]: row for row in oversub_table}
    for name, row in rows.items():
        if name == "elastic":
            continue
        assert not row["slo_met"], (
            f"{name} unexpectedly met both SLOs: "
            f"search={row['search_p99_us']:.0f}us "
            f"batch={row['batch_p99_us']:.0f}us"
        )


def test_elastic_meets_both_slos(oversub_table):
    row = next(r for r in oversub_table if r["variant"] == "elastic")
    assert row["search_slo_met"] and row["batch_slo_met"]
    assert row["search_p99_us"] <= SLO_P99_US
    assert row["batch_p99_us"] <= SLO_P99_US
    assert row["core_moves"] > 0  # it actually reallocated
    assert row["search_drop_pct"] == 0.0
    assert row["batch_drop_pct"] == 0.0


def test_static_splits_never_move_cores(oversub_table):
    for row in oversub_table:
        if row["variant"] != "elastic":
            assert row["core_moves"] == 0


def test_occupancy_shares_track_the_bursts(oversub_table):
    """Elastic occupancy sits between the pinned extremes and sums to
    (almost) the whole pool — cores were busy being traded, not idle."""
    row = next(r for r in oversub_table if r["variant"] == "elastic")
    total = row["search_occ_cores"] + row["batch_occ_cores"]
    assert total == pytest.approx(5.0, rel=0.02)
    assert 1.0 < row["search_occ_cores"] < 4.0
    assert 1.0 < row["batch_occ_cores"] < 4.0


def test_figure_oversub_is_deterministic():
    kwargs = dict(duration_us=60_000.0, warmup_us=10_000.0, seed=11,
                  variants=["elastic"])
    first_table = run_figure_oversub(**kwargs)
    first = first_table.rows[0]
    second = run_figure_oversub(**kwargs).rows[0]
    for column in first_table.columns:
        assert first[column] == second[column], column


# ----------------------------------------------------------------------
# The no-op audit: no arbiter means zero objects and bit-identical runs
# ----------------------------------------------------------------------
def _fingerprint(testbed, gen):
    return (
        tuple(gen.latency._samples),
        gen.drop_fraction(),
        dict(testbed.machine.netstack.drops),
        testbed.machine.now,
    )


def test_default_machines_leave_the_arbiter_absent():
    testbed = RocksDbTestbed(seed=3)
    assert testbed.machine.arbiter is None
    assert testbed.machine.agent_cores == []


def test_non_elastic_machines_reject_an_elastic_spec():
    from repro.config import set_a
    from repro.machine import Machine

    with pytest.raises(ValueError, match="scheduler='elastic'"):
        Machine(set_a(), scheduler="ghost", elastic=ElasticSpec())
    with pytest.raises(ValueError, match="at least one class"):
        Machine(set_a(), scheduler="elastic", elastic=None)


def test_disabled_runs_allocate_no_arbiter_objects_and_stay_identical(
    monkeypatch,
):
    counts = {}

    def probe(cls):
        orig = cls.__init__
        counts[cls.__name__] = 0

        def wrapped(self, *a, **k):
            counts[cls.__name__] += 1
            return orig(self, *a, **k)

        monkeypatch.setattr(cls, "__init__", wrapped)

    for cls in (CoreArbiter, ElasticCoreController, ElasticScheduler):
        probe(cls)
    # sanity: the probe sees instantiations
    ElasticScheduler(Engine(), costs=None)
    assert counts["ElasticScheduler"] == 1
    counts["ElasticScheduler"] = 0

    def figure6_point():
        def factory():
            return RocksDbTestbed(seed=3)

        return _fingerprint(*run_point(
            factory, 100_000, GET_SCAN_995_005, 60_000.0, 15_000.0
        ))

    assert figure6_point() == figure6_point()
    assert counts == {"CoreArbiter": 0, "ElasticCoreController": 0,
                      "ElasticScheduler": 0}
