"""Assembler tests: parsing, round-trip with the disassembler, execution."""

import pytest

from conftest import random_policy_source
from hypothesis import given, settings, strategies as st

from repro.ebpf.asm import AsmError, assemble
from repro.ebpf.compiler import compile_policy
from repro.ebpf.disasm import disassemble
from repro.ebpf.program import load_program
from repro.ebpf.verifier import verify


def test_assemble_minimal():
    program = assemble("CONST 7\nRET\n")
    verify(program)
    assert load_program(program).run(None) == 7


def test_assemble_with_pc_prefixes_and_comments():
    text = """
; program demo: hand-written
; a plain comment
     0: CONST 5      ; push five
     1: CONST 2
     2: ADD
L    3: RET
"""
    program = assemble(text)
    assert program.name == "demo"
    assert load_program(program).run(None) == 7


def test_assemble_metadata_directives():
    text = """
; globals: idx, total
; map[0] scan_map max_entries=64
LOADG 0
CONST 1
ADD
STOREG 0
LOADG 0
MAPLOOKUP 0
RET
"""
    program = assemble(text)
    assert program.global_names == ["idx", "total"]
    assert program.map_names == ["scan_map"]
    assert program.map_sizes == [64]
    loaded = load_program(program)
    loaded.maps[0].update(1, 42)
    assert loaded.run(None) == 42
    assert loaded.globals[0] == 1


def test_assembled_programs_are_interpreter_only():
    loaded = load_program(assemble("CONST 1\nRET\n"))
    with pytest.raises(RuntimeError):
        loaded.run_jit(None)
    # run() transparently uses the interpreter forever
    assert all(loaded.run(None) == 1 for _ in range(100))


@pytest.mark.parametrize(
    "text, fragment",
    [
        ("", "no instructions"),
        ("FROB 1\nRET", "unknown opcode"),
        ("CONST\nRET", "immediate"),
        ("CONST 1 2\nRET", "immediate"),
        ("!!!\n", "cannot parse"),
        ("; map[1] m max_entries=4\nCONST 0\nRET", "contiguous"),
    ],
)
def test_assemble_rejections(text, fragment):
    with pytest.raises(AsmError) as err:
        assemble(text)
    assert fragment in str(err.value)


def test_round_trip_fixed_policy():
    src = """
m = syr_map("m", 16)
idx = 0

def schedule(pkt):
    global idx
    if pkt_len(pkt) < 8:
        return PASS
    idx += 1
    map_update(m, idx % 4, idx)
    return idx % 3
"""
    program = compile_policy(src)
    rebuilt = assemble(disassemble(program))
    assert rebuilt.insns == program.insns
    assert rebuilt.global_names == program.global_names
    assert rebuilt.map_names == program.map_names
    assert rebuilt.map_sizes == program.map_sizes


@settings(max_examples=60, deadline=None)
@given(prog_seed=st.integers(0, 10**9))
def test_round_trip_random_programs(prog_seed):
    program = compile_policy(random_policy_source(prog_seed))
    rebuilt = assemble(disassemble(program))
    assert rebuilt.insns == program.insns
    assert rebuilt.n_locals >= program.n_locals or program.n_locals == 0
