"""CLI tests."""

import pytest

from repro.cli import main


def test_cli_table2_runs(capsys):
    assert main(["table2", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "round_robin" in out


def test_cli_table3_runs(capsys):
    assert main(["table3", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Offload" in out


def test_cli_figure_with_overrides(capsys, tmp_path):
    out_file = tmp_path / "fig2.txt"
    code = main([
        "figure2", "--loads", "100000", "--duration-ms", "60",
        "--seed", "7", "--out", str(out_file),
    ])
    assert code == 0
    text = out_file.read_text()
    assert "Figure 2" in text
    assert "100,000" in text or "100000" in text


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["figure42"])


def test_cli_figure7_loads_map_to_ls_loads(capsys):
    assert main(["figure7", "--loads", "200000", "--duration-ms", "60"]) == 0
    out = capsys.readouterr().out
    assert "token_based" in out


def test_cli_slo_view_runs(capsys):
    assert main(["slo", "--duration-ms", "60"]) == 0
    out = capsys.readouterr().out
    assert "get_p99" in out
    assert "signals: interval=" in out
