"""Tests for Machine assembly and configuration plumbing."""

import pytest

from repro import Machine, MachineConfig, set_a, set_b
from repro.config import CostModel, NicSpec, with_costs
from repro.ghost.sched import GhostScheduler
from repro.kernel.cfs import CfsScheduler
from repro.kernel.sched import PinnedScheduler


def test_default_machine():
    machine = Machine()
    assert len(machine.cores) == 6
    assert machine.agent_core is None
    assert isinstance(machine.scheduler, PinnedScheduler)
    assert machine.now == 0.0


def test_scheduler_selection():
    assert isinstance(Machine(scheduler="cfs").scheduler, CfsScheduler)
    ghost = Machine(scheduler="ghost")
    assert isinstance(ghost.scheduler, GhostScheduler)
    assert ghost.agent_core is ghost.cores[-1]
    assert len(ghost.scheduler.cores) == 5
    with pytest.raises(ValueError):
        Machine(scheduler="fifo")


def test_ghost_needs_two_cores():
    with pytest.raises(ValueError):
        Machine(MachineConfig(num_app_cores=1), scheduler="ghost")


def test_set_a_set_b_profiles():
    a = set_a()
    b = set_b()
    assert a.nic.zero_copy and not a.nic.supports_offload
    assert b.nic.supports_offload and not b.nic.zero_copy
    assert a.costs.cpu_ghz == 2.3
    assert b.costs.cpu_ghz == 2.0
    assert set_a(4).num_app_cores == 4
    assert set_b(8).nic.num_queues == 8


def test_with_costs_copies():
    base = set_a()
    tweaked = with_costs(base, recv_syscall_us=9.0)
    assert tweaked.costs.recv_syscall_us == 9.0
    assert base.costs.recv_syscall_us != 9.0  # original untouched


def test_cycles_to_us():
    costs = CostModel(cpu_ghz=2.0)
    assert costs.cycles_to_us(2000) == pytest.approx(1.0)


def test_nic_wired_to_netstack():
    machine = Machine(set_a())
    assert machine.nic.deliver == machine.netstack.deliver_from_nic


def test_rss_salt_is_seeded():
    a = Machine(set_a(), seed=1)
    b = Machine(set_a(), seed=1)
    c = Machine(set_a(), seed=2)
    assert a.nic.salt == b.nic.salt
    assert a.nic.salt != c.nic.salt


def test_create_udp_socket_binds_unless_af_xdp():
    machine = Machine(set_a())
    app = machine.register_app("a", ports=[8080])
    normal = machine.create_udp_socket(app, 8080)
    af = machine.create_udp_socket(app, 8080, is_af_xdp=True)
    group = machine.netstack.socket_table.group(8080)
    assert normal in group.sockets
    assert af not in group.sockets
    assert normal.backlog == machine.config.socket_backlog


def test_run_until():
    machine = Machine(set_a())
    machine.run(until=123.0)
    assert machine.now == 123.0


def test_nic_spec_validation_is_dataclass_defaults():
    spec = NicSpec()
    assert spec.ring_size > 0
    assert spec.offload_map_access_us > spec.rx_process_us
