"""Integration tests for queueing disciplines across the stack.

Locks the tentpole's end-to-end contracts:

- paired-run determinism: no qdisc vs a PASS-everywhere rank function
  produce bit-identical figure6/figure8-style outputs (same latency
  sample streams, same drops), and the exact PIFO's tie-break is stable
  across repeated runs;
- fault containment: a VmFault-raising rank function quarantines the
  deployment back to FIFO while the queue keeps draining — nothing
  stranded, traffic still served;
- every attachment layer works: socket backlogs, NIC RX queues, and the
  ghOSt runqueue snapshot;
- the operator surfaces (``syrupd.qdiscs()`` / ``syrupctl qdisc``) and
  the figure_order experiment show SRPT beating FIFO for short requests
  on both backends.
"""

import pytest

from repro.core.health import HealthPolicy
from repro.faults import FaultPlan
from repro.qdisc import FIFO_RANK, SRPT_BY_SIZE, qdisc_hook
from repro.experiments.figure8 import run_figure8_dynamic
from repro.experiments.figure_order import run_figure_order
from repro.experiments.runner import RocksDbTestbed, run_point
from repro.workload.mixes import GET_SCAN_995_005

LOAD = 100_000
DURATION_US = 60_000.0
WARMUP_US = 15_000.0

RANK_BY_TID = """
def rank(t):
    if pkt_len(t) < 8:
        return PASS
    return load_u64(t, 0)
"""


def drive_socket_point(qdisc, seed=3, load=LOAD, mark_sizes=None):
    def factory():
        return RocksDbTestbed(
            qdisc=qdisc,
            mark_sizes=(qdisc is not None if mark_sizes is None
                        else mark_sizes),
            seed=seed,
        )

    return run_point(factory, load, GET_SCAN_995_005, DURATION_US, WARMUP_US)


def fingerprint(testbed, gen):
    """Everything a figure table is computed from, bit-for-bit."""
    return (
        tuple(gen.latency._samples),
        {tag: tuple(gen.latency._select(tag)) for tag in gen.latency.tags()},
        gen.drop_fraction(),
        dict(testbed.machine.netstack.drops),
        testbed.machine.now,
    )


# ----------------------------------------------------------------------
# Paired-run determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["pifo", "bucket"])
def test_pass_everywhere_matches_vanilla_figure6_point(backend):
    vanilla = fingerprint(*drive_socket_point(None, mark_sizes=False))
    paired = fingerprint(
        *drive_socket_point((FIFO_RANK, "socket", backend), mark_sizes=False)
    )
    assert paired == vanilla


def test_pass_everywhere_matches_vanilla_figure8_dynamic():
    def run(with_qdisc):
        testbed, gen = run_figure8_dynamic(
            load=3_000, duration_us=60_000.0, seed=5, run=False,
        )
        if with_qdisc:
            testbed.app.deploy_qdisc(FIFO_RANK, "socket", backend="pifo")
        testbed.machine.run()
        return fingerprint(testbed, gen)

    assert run(True) == run(False)


def test_exact_pifo_tie_break_is_stable_across_runs():
    first = fingerprint(*drive_socket_point((SRPT_BY_SIZE, "socket", "pifo")))
    second = fingerprint(*drive_socket_point((SRPT_BY_SIZE, "socket", "pifo")))
    assert first == second


# ----------------------------------------------------------------------
# Fault containment / quarantine
# ----------------------------------------------------------------------
def test_faulting_rank_function_quarantines_to_fifo_and_keeps_draining():
    plan = FaultPlan(seed=11).vmfault(
        0.5, app="rocksdb", hook=qdisc_hook("socket")
    )

    def factory():
        return RocksDbTestbed(
            qdisc=(SRPT_BY_SIZE, "socket", "pifo"), mark_sizes=True,
            seed=3, metrics=True, faults=plan,
            health=HealthPolicy(window_us=10_000.0, max_faults=5),
        )

    testbed, gen = run_point(
        factory, LOAD, GET_SCAN_995_005, DURATION_US, WARMUP_US
    )
    rows = testbed.machine.syrupd.qdiscs()
    assert rows, "disciplines should still be listed after quarantine"
    assert sum(r["runtime_faults"] for r in rows) > 0
    # every queue reverted to FIFO; the deployment is quarantined
    assert all(r["state"] == "fifo" for r in rows)
    assert all(r["deployment_state"] == "quarantined" for r in rows)
    # nothing stranded: everything accepted was dequeued, queues empty
    assert all(r["depth"] == 0 for r in rows)
    assert all(r["enqueues"] == r["dequeues"] for r in rows)
    # and the app kept serving traffic throughout
    assert gen.latency.count > 0
    assert gen.drop_fraction() < 1.0
    health = [
        r for r in testbed.machine.syrupd.health()
        if r["hook"] == qdisc_hook("socket")
    ]
    assert health and health[0]["state"] == "quarantined"
    events = testbed.machine.obs.events.events()
    assert "qdisc_fault" in [e["kind"] for e in events]
    assert any(e["kind"] == "lifecycle" and e["action"] == "quarantine"
               for e in events)


# ----------------------------------------------------------------------
# Layer coverage: NIC RX and ghOSt runqueue
# ----------------------------------------------------------------------
def test_nic_rx_layer_ranks_and_delivers_everything():
    testbed, gen = drive_socket_point(
        (SRPT_BY_SIZE, "nic_rx", "bucket"), mark_sizes=True
    )
    rows = testbed.machine.syrupd.qdiscs()
    assert rows and all(r["layer"] == "nic_rx" for r in rows)
    assert sum(r["enqueues"] for r in rows) > 0
    # every accepted packet left its RX queue (one drain per accept)
    assert all(r["depth"] == 0 for r in rows)
    assert all(r["enqueues"] == r["dequeues"] for r in rows)
    assert gen.latency.count > 0


def test_runqueue_layer_orders_ghost_snapshots():
    from repro.policies.thread_policies import GetPriorityPolicy

    testbed = RocksDbTestbed(
        thread_policy_factory=lambda server: GetPriorityPolicy(
            server.type_map
        ),
        scheduler="ghost", mark_types=True, num_threads=36, seed=5,
    )
    deployed = testbed.app.deploy_qdisc(RANK_BY_TID, "runqueue")
    qdisc = deployed.qdiscs[0]
    assert qdisc.target == "enclave:rocksdb"
    gen = testbed.drive(4_000, GET_SCAN_995_005, DURATION_US, WARMUP_US)
    gen.start()
    testbed.machine.run()
    assert qdisc.enqueues > 0  # multi-thread snapshots were ordered
    assert gen.latency.count > 0
    # detach: the agent stops consulting the discipline
    testbed.app.undeploy_qdisc("runqueue")
    agents = [
        d.agent for d in testbed.machine.syrupd.deployed
        if d.agent is not None
    ]
    assert agents and all(a.runqueue_qdisc is None for a in agents)


def test_runqueue_layer_requires_thread_scheduler():
    testbed = RocksDbTestbed(seed=1)
    with pytest.raises(ValueError, match="Thread Scheduler"):
        testbed.app.deploy_qdisc(RANK_BY_TID, "runqueue")


# ----------------------------------------------------------------------
# Operator surface + undeploy
# ----------------------------------------------------------------------
def test_undeploy_detaches_every_socket():
    testbed = RocksDbTestbed(
        qdisc=(SRPT_BY_SIZE, "socket", "pifo"), mark_sizes=True, seed=1,
    )
    assert all(s.qdisc is not None for s in testbed.server.sockets)
    testbed.app.undeploy_qdisc("socket")
    assert all(s.qdisc is None for s in testbed.server.sockets)
    assert testbed.machine.syrupd.qdiscs() == [] or all(
        r["deployment_state"] != "active"
        for r in testbed.machine.syrupd.qdiscs()
    )


def test_syrupctl_qdisc_view():
    from repro import syrupctl

    machine = syrupctl.run_qdisc_demo(load=60_000, duration_ms=20.0)
    text = syrupctl.render_qdisc(machine)
    assert "queueing disciplines" in text
    assert "sid:" in text and "pifo" in text and "active" in text
    rows = machine.syrupd.qdiscs()
    assert rows and all(r["backend"] == "pifo" for r in rows)


# ----------------------------------------------------------------------
# figure_order: the acceptance-criterion story
# ----------------------------------------------------------------------
def test_figure_order_srpt_beats_fifo_for_short_requests():
    table = run_figure_order(
        loads=[240_000], duration_us=120_000.0, warmup_us=30_000.0, seed=3,
    )
    by_discipline = {row["discipline"]: row for row in table}
    assert set(by_discipline) == {"fifo", "srpt_pifo", "srpt_bucket"}
    fifo = by_discipline["fifo"]
    assert fifo["get_p99_vs_fifo"] == 1.0
    for name in ("srpt_pifo", "srpt_bucket"):
        row = by_discipline[name]
        assert row["get_p99_us"] < fifo["get_p99_us"]
        assert row["get_p99_vs_fifo"] < 1.0
    assert by_discipline["srpt_pifo"]["backend"] == "pifo"
    assert by_discipline["srpt_bucket"]["backend"] == "bucket"


def test_figure_order_is_deterministic():
    kwargs = dict(
        loads=[120_000], duration_us=40_000.0, warmup_us=10_000.0, seed=3,
    )
    first = [dict(r.columns) for r in run_figure_order(**kwargs)]
    second = [dict(r.columns) for r in run_figure_order(**kwargs)]
    assert first == second
