"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


def test_runs_events_in_time_order():
    eng = Engine()
    seen = []
    eng.schedule(10.0, seen.append, "b")
    eng.schedule(5.0, seen.append, "a")
    eng.schedule(20.0, seen.append, "c")
    eng.run()
    assert seen == ["a", "b", "c"]
    assert eng.now == 20.0


def test_fifo_among_simultaneous_events():
    eng = Engine()
    seen = []
    for i in range(10):
        eng.schedule(1.0, seen.append, i)
    eng.run()
    assert seen == list(range(10))


def test_cancel_skips_event():
    eng = Engine()
    seen = []
    ev = eng.schedule(1.0, seen.append, "x")
    eng.schedule(2.0, seen.append, "y")
    ev.cancel()
    eng.run()
    assert seen == ["y"]


def test_cancel_is_idempotent():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    eng.run()
    assert eng.events_dispatched == 0


def test_run_until_stops_clock_exactly():
    eng = Engine()
    seen = []
    eng.schedule(5.0, seen.append, 1)
    eng.schedule(15.0, seen.append, 2)
    eng.run(until=10.0)
    assert seen == [1]
    assert eng.now == 10.0
    eng.run()
    assert seen == [1, 2]


def test_run_until_advances_clock_when_idle():
    eng = Engine()
    eng.run(until=100.0)
    assert eng.now == 100.0


def test_events_scheduled_during_dispatch_run():
    eng = Engine()
    seen = []

    def first():
        seen.append("first")
        eng.schedule(1.0, seen.append, "second")

    eng.schedule(1.0, first)
    eng.run()
    assert seen == ["first", "second"]
    assert eng.now == 2.0


def test_call_soon_runs_at_current_time():
    eng = Engine()
    times = []

    def outer():
        eng.call_soon(lambda: times.append(eng.now))

    eng.schedule(7.0, outer)
    eng.run()
    assert times == [7.0]


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-1.0, lambda: None)


def test_scheduling_in_past_rejected():
    eng = Engine()
    eng.schedule(10.0, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.at(5.0, lambda: None)


def test_max_events_limit():
    eng = Engine()
    for i in range(10):
        eng.schedule(float(i + 1), lambda: None)
    eng.run(max_events=3)
    assert eng.events_dispatched == 3
    assert eng.pending() == 7


def test_step_returns_false_when_idle():
    eng = Engine()
    assert eng.step() is False
    eng.schedule(1.0, lambda: None)
    assert eng.step() is True
    assert eng.step() is False


def test_engine_not_reentrant():
    eng = Engine()
    errors = []

    def nested():
        try:
            eng.run()
        except SimulationError as exc:
            errors.append(exc)

    eng.schedule(1.0, nested)
    eng.run()
    assert len(errors) == 1


def test_pending_excludes_cancelled():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    ev.cancel()
    assert eng.pending() == 1
