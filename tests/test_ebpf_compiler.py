"""Compiler tests: subset acceptance, rejection, and IR correctness."""

import pytest

from repro.constants import DROP, PASS
from repro.ebpf.compiler import compile_policy, count_loc, fold_const
from repro.ebpf.errors import CompileError
from repro.ebpf.program import load_program


def run_src(source, packet=None, constants=None, maps=None, runs=1):
    loaded = load_program(
        compile_policy(source, constants=constants), maps=maps
    )
    value = None
    for _ in range(runs):
        value = loaded.run_interp(packet).value
    return value, loaded


# ----------------------------------------------------------------------
# Acceptance
# ----------------------------------------------------------------------
def test_constant_return():
    value, _ = run_src("def schedule(pkt):\n    return 3\n")
    assert value == 3


def test_implicit_pass_on_fallthrough():
    value, _ = run_src("def schedule(pkt):\n    x = 1\n")
    assert value == PASS


def test_bare_return_is_pass():
    value, _ = run_src("def schedule(pkt):\n    return\n")
    assert value == PASS


def test_arithmetic():
    src = """
def schedule(pkt):
    a = 7
    b = 3
    return (a * b + 1) // 2 - a % b
"""
    value, _ = run_src(src)
    assert value == (7 * 3 + 1) // 2 - 7 % 3


def test_division_by_zero_is_zero():
    value, _ = run_src("def schedule(pkt):\n    z = 0\n    return 5 // z\n")
    assert value == 0


def test_mod_by_zero_is_zero():
    value, _ = run_src("def schedule(pkt):\n    z = 0\n    return 5 % z\n")
    assert value == 0


def test_unsigned_wraparound():
    value, _ = run_src("def schedule(pkt):\n    return 0 - 1\n")
    assert value == (1 << 64) - 1


def test_globals_persist_across_invocations():
    src = """
idx = 0

def schedule(pkt):
    global idx
    idx += 1
    return idx
"""
    value, loaded = run_src(src, runs=3)
    assert value == 3
    assert loaded.globals == [3]


def test_constants_are_compile_time():
    src = "def schedule(pkt):\n    return N * 2\n"
    value, _ = run_src(src, constants={"N": 21})
    assert value == 42


def test_if_elif_else():
    src = """
def schedule(pkt):
    x = SEL
    if x == 1:
        return 10
    elif x == 2:
        return 20
    else:
        return 30
"""
    assert run_src(src, constants={"SEL": 1})[0] == 10
    assert run_src(src, constants={"SEL": 2})[0] == 20
    assert run_src(src, constants={"SEL": 3})[0] == 30


def test_bool_ops_short_circuit_values():
    src = """
def schedule(pkt):
    a = A
    b = B
    return (a and b) + (a or b) * 100
"""
    for a in (0, 2):
        for b in (0, 3):
            value, _ = run_src(src, constants={"A": a, "B": b})
            assert value == ((a and b) + (a or b) * 100)


def test_ternary():
    src = "def schedule(pkt):\n    x = X\n    return 1 if x > 5 else 2\n"
    assert run_src(src, constants={"X": 9})[0] == 1
    assert run_src(src, constants={"X": 3})[0] == 2


def test_loop_unrolling_and_break():
    src = """
def schedule(pkt):
    total = 0
    for i in range(10):
        if i == 4:
            break
        total += i
    return total
"""
    assert run_src(src)[0] == 0 + 1 + 2 + 3


def test_loop_continue():
    src = """
def schedule(pkt):
    total = 0
    for i in range(6):
        if i % 2 == 0:
            continue
        total += i
    return total
"""
    assert run_src(src)[0] == 1 + 3 + 5


def test_range_with_start_stop_step():
    src = """
def schedule(pkt):
    total = 0
    for i in range(2, 12, 3):
        total += i
    return total
"""
    assert run_src(src)[0] == 2 + 5 + 8 + 11


def test_nested_loops():
    src = """
def schedule(pkt):
    total = 0
    for i in range(3):
        for j in range(3):
            total += i * j
    return total
"""
    assert run_src(src)[0] == sum(i * j for i in range(3) for j in range(3))


def test_map_declaration_and_ops():
    src = """
m = syr_map("m", 32)

def schedule(pkt):
    map_update(m, 1, 41)
    atomic_add(m, 1, 1)
    if map_has(m, 1):
        return map_lookup(m, 1)
    return 0
"""
    value, loaded = run_src(src)
    assert value == 42
    assert loaded.maps[0].lookup(1) == 42


def test_map_delete():
    src = """
m = syr_map("m", 32)

def schedule(pkt):
    map_update(m, 7, 1)
    existed = map_delete(m, 7)
    return existed * 10 + map_has(m, 7)
"""
    assert run_src(src)[0] == 10


def test_map_lookup_missing_is_zero():
    src = """
m = syr_map("m", 32)

def schedule(pkt):
    return map_lookup(m, 99)
"""
    assert run_src(src)[0] == 0


def test_pass_drop_builtins():
    assert run_src("def schedule(pkt):\n    return PASS\n")[0] == PASS
    assert run_src("def schedule(pkt):\n    return DROP\n")[0] == DROP


def test_imports_are_ignored():
    src = """
from repro.constants import PASS

def schedule(pkt):
    return PASS
"""
    assert run_src(src)[0] == PASS


def test_loc_counts_nonblank_noncomment():
    source = "# comment\n\nx = 1\n  # another\ny = 2\n"
    assert count_loc(source) == 2


# ----------------------------------------------------------------------
# Rejection: outside the safe subset
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "source, fragment",
    [
        ("def schedule(pkt):\n    while True:\n        pass\n", "while"),
        ("def schedule(pkt):\n    return 1.5\n", "literal"),
        ("def schedule(pkt):\n    return 'str'\n", "literal"),
        ("def schedule(pkt):\n    return pkt.field\n", "expression"),
        ("def schedule(pkt):\n    return open('x')\n", "unknown function"),
        ("def schedule(pkt):\n    return [1, 2]\n", "expression"),
        ("def schedule(pkt):\n    x, y = 1, 2\n", "assignment"),
        ("def schedule(pkt):\n    return 1 / 2\n", "operator"),
        ("def schedule(pkt):\n    return 1 < 2 < 3\n", "chained"),
        ("def schedule(pkt):\n    return undefined_name\n", "unknown name"),
        ("def schedule(pkt, extra):\n    return 0\n", "exactly one"),
        ("def other():\n    return 0\n", "schedule"),
        ("x = 'text'\ndef schedule(pkt):\n    return 0\n", "constant"),
        ("import os\nos.getcwd()\ndef schedule(pkt):\n    return 0\n",
         "module-level"),
        ("def schedule(pkt):\n    for i in [1, 2]:\n        pass\n", "range"),
        ("def schedule(pkt):\n    global nope\n    return 0\n",
         "module-level definition"),
        ("def schedule(pkt):\n    return x\n    x = 1\n", "before assignment"),
        ("def schedule(pkt):\n    pkt = 1\n    return 0\n", "packet"),
        ("def schedule(pkt):\n    return pkt\n", "packet"),
    ],
)
def test_rejections(source, fragment):
    with pytest.raises(CompileError) as err:
        compile_policy(source)
    assert fragment.lower() in str(err.value).lower()


def test_unroll_limit_enforced():
    src = "def schedule(pkt):\n    for i in range(1000):\n        pass\n    return 0\n"
    with pytest.raises(CompileError) as err:
        compile_policy(src, unroll_limit=64)
    assert "unroll" in str(err.value)


def test_variable_range_bound_rejected():
    src = """
def schedule(pkt):
    n = 5
    for i in range(n):
        pass
    return 0
"""
    with pytest.raises(CompileError):
        compile_policy(src)


def test_variable_packet_offset_rejected():
    src = """
def schedule(pkt):
    off = 8
    return load_u8(pkt, off)
"""
    with pytest.raises(CompileError) as err:
        compile_policy(src)
    assert "constant" in str(err.value)


def test_syr_map_inside_function_rejected():
    src = """
def schedule(pkt):
    m = syr_map("m", 8)
    return 0
"""
    with pytest.raises(CompileError):
        compile_policy(src)


def test_duplicate_schedule_rejected():
    src = "def schedule(pkt):\n    return 0\n\ndef schedule(pkt):\n    return 1\n"
    with pytest.raises(CompileError):
        compile_policy(src)


# ----------------------------------------------------------------------
# fold_const
# ----------------------------------------------------------------------
def test_fold_const_arithmetic():
    import ast

    node = ast.parse("3 * (N + 1)", mode="eval").body
    assert fold_const(node, {"N": 4}) == 15


def test_fold_const_unknown_name_is_none():
    import ast

    node = ast.parse("x + 1", mode="eval").body
    assert fold_const(node, {}) is None
