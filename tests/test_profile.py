"""Tests for the wall-clock profiler (repro.obs.profile).

Exclusive-time accounting is checked with a fake deterministic clock;
the machine wiring (attach / profile_run, syrupd propagation into
mid-run deploys) against real runs.
"""

import pytest

from repro.experiments.figure8 import run_figure8_dynamic
from repro.experiments.runner import RocksDbTestbed
from repro.obs.profile import RunStats, WallClockProfiler, attach, profile_run
from repro.workload.mixes import GET_SCAN_995_005
from repro.workload.requests import GET


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


# ----------------------------------------------------------------------
# Exclusive-time accounting (deterministic clock)
# ----------------------------------------------------------------------
def test_flat_section_accounting():
    clock = FakeClock()
    p = WallClockProfiler(clock=clock)
    p.push("a")
    clock.t = 2.0
    assert p.pop() == 2.0
    sections = p.sections()
    assert sections["a"] == {"wall_s": 2.0, "inclusive_s": 2.0, "calls": 1}


def test_nested_sections_charge_exclusive_time_to_each_level():
    clock = FakeClock()
    p = WallClockProfiler(clock=clock)
    p.push("engine")        # t=0
    clock.t = 1.0
    p.push("hook_dispatch")  # t=1
    clock.t = 2.0
    p.push("ebpf_jit")      # t=2
    clock.t = 5.0
    p.pop()                 # jit: 3s exclusive
    clock.t = 6.0
    p.pop()                 # hook: (6-1) - 3 = 2s exclusive, 5s inclusive
    clock.t = 10.0
    p.pop()                 # engine: (10-0) - 5 = 5s exclusive
    s = p.sections()
    assert s["ebpf_jit"] == {"wall_s": 3.0, "inclusive_s": 3.0, "calls": 1}
    assert s["hook_dispatch"] == {"wall_s": 2.0, "inclusive_s": 5.0,
                                  "calls": 1}
    assert s["engine"] == {"wall_s": 5.0, "inclusive_s": 10.0, "calls": 1}
    # exclusive times partition the run: they sum to total elapsed
    assert p.total_s() == 10.0


def test_sibling_sections_both_subtract_from_parent():
    clock = FakeClock()
    p = WallClockProfiler(clock=clock)
    p.push("engine")
    for _ in range(2):
        p.push("map_ops")
        clock.t += 1.0
        p.pop()
        clock.t += 1.0
    p.pop()
    s = p.sections()
    assert s["map_ops"] == {"wall_s": 2.0, "inclusive_s": 2.0, "calls": 2}
    assert s["engine"]["wall_s"] == 2.0  # 4 total - 2 in children


def test_section_context_manager():
    clock = FakeClock()
    p = WallClockProfiler(clock=clock)
    with p.section("a"):
        clock.t = 1.5
    assert p.sections()["a"]["wall_s"] == 1.5
    # pops on exception too
    with pytest.raises(RuntimeError):
        with p.section("b"):
            raise RuntimeError("boom")
    assert p.sections()["b"]["calls"] == 1
    assert p._stack == []


def test_render_lists_sections_by_exclusive_time():
    clock = FakeClock()
    p = WallClockProfiler(clock=clock)
    with p.section("small"):
        clock.t += 1.0
    with p.section("big"):
        clock.t += 9.0
    text = p.render()
    assert text.index("big") < text.index("small")
    assert "90.0%" in text


def test_run_stats_throughput_numbers():
    stats = RunStats(wall_s=2.0, sim_us=1_000_000.0, events=500_000,
                     profiler=None)
    assert stats.sim_us_per_wall_s == 500_000.0
    assert stats.events_per_s == 250_000.0
    d = stats.as_dict()
    assert d["profile"] == {}
    assert d["events"] == 500_000
    assert "sim-us/wall-s" in stats.render()
    # degenerate zero-wall case divides safely
    zero = RunStats(wall_s=0.0, sim_us=0.0, events=0, profiler=None)
    assert zero.sim_us_per_wall_s == 0.0 and zero.events_per_s == 0.0


# ----------------------------------------------------------------------
# Machine wiring
# ----------------------------------------------------------------------
def run_profiled(policy=True, **kwargs):
    from repro.core.hooks import Hook
    from repro.policies.builtin import SCAN_AVOID

    testbed = RocksDbTestbed(
        policy=(
            (SCAN_AVOID, Hook.SOCKET_SELECT, {"NUM_THREADS": 6})
            if policy else None
        ),
        mark_scans=policy, num_threads=6, seed=11, **kwargs,
    )
    gen = testbed.drive(40_000, GET_SCAN_995_005, 30_000.0, 7_500.0)
    gen.start()
    profiler = WallClockProfiler()
    stats = profile_run(testbed.machine, profiler=profiler)
    return testbed, gen, profiler, stats


def test_profile_run_covers_the_subsystems():
    _tb, _gen, profiler, stats = run_profiled()
    sections = profiler.sections()
    # the canonical seams all fire in a policy-bearing run
    for name in ("engine", "hook_dispatch", "map_ops"):
        assert sections[name]["calls"] > 0, name
    # programs run interpreted for the profile window, then JIT
    assert sections["ebpf_interp"]["calls"] > 0
    assert sections["ebpf_jit"]["calls"] > 0
    assert stats.wall_s > 0 and stats.sim_us > 0 and stats.events > 0
    assert stats.sim_us_per_wall_s > 0
    # engine inclusive time dominates: it brackets the whole loop
    assert sections["engine"]["inclusive_s"] >= max(
        s["inclusive_s"] for s in sections.values()
    )


def test_profiler_attaches_to_mid_run_deploys():
    testbed, _gen = run_figure8_dynamic(
        load=3_000, duration_us=40_000.0, seed=5, run=False,
    )
    profiler = WallClockProfiler()
    attach(testbed.machine, profiler)
    testbed.machine.run()
    sections = profiler.sections()
    # the SCAN_AVOID program only exists after the t=20ms switch, yet
    # its execution still lands in the profile
    assert sections["hook_dispatch"]["calls"] > 0
    assert (sections["ebpf_interp"]["calls"]
            + sections["ebpf_jit"]["calls"]) > 0


def test_profiling_does_not_change_results():
    _tb, profiled_gen, _p, _s = run_profiled()

    from repro.core.hooks import Hook
    from repro.policies.builtin import SCAN_AVOID

    testbed = RocksDbTestbed(
        policy=(SCAN_AVOID, Hook.SOCKET_SELECT, {"NUM_THREADS": 6}),
        mark_scans=True, num_threads=6, seed=11,
    )
    gen = testbed.drive(40_000, GET_SCAN_995_005, 30_000.0, 7_500.0)
    gen.start()
    testbed.machine.run()
    assert profiled_gen.latency.p99() == gen.latency.p99()
    assert profiled_gen.latency.p99(tag=GET) == gen.latency.p99(tag=GET)
    assert profiled_gen.completed.as_dict() == gen.completed.as_dict()


def test_profiler_stack_is_balanced_after_run():
    _tb, _gen, profiler, _stats = run_profiled()
    assert profiler._stack == []
