"""Tests for request mixes and the open-loop generator."""

import random

import pytest

from repro import Machine, set_a
from repro.apps.rocksdb import RocksDbServer
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import (
    GET_ONLY,
    GET_SCAN_50_50,
    GET_SCAN_995_005,
    RequestMix,
)
from repro.workload.requests import GET, SCAN, Request, type_name


def test_mix_weights_normalized():
    mix = RequestMix("m", [(GET, 3, (1, 1)), (SCAN, 1, (2, 2))])
    weights = dict((r, w) for r, w, _ in mix.components)
    assert weights[GET] == pytest.approx(0.75)
    assert weights[SCAN] == pytest.approx(0.25)


def test_mix_sample_distribution():
    rng = random.Random(1)
    draws = [GET_SCAN_50_50.sample(rng)[0] for _ in range(4000)]
    frac_scan = draws.count(SCAN) / len(draws)
    assert 0.45 < frac_scan < 0.55


def test_mix_service_ranges():
    rng = random.Random(2)
    for _ in range(500):
        rtype, service = GET_SCAN_995_005.sample(rng)
        if rtype == GET:
            assert 10.0 <= service <= 12.0
        else:
            assert 650.0 <= service <= 750.0


def test_mix_mean_service():
    assert GET_ONLY.mean_service_us() == pytest.approx(11.0)


def test_mix_validation():
    with pytest.raises(ValueError):
        RequestMix("empty", [])
    with pytest.raises(ValueError):
        RequestMix("zero", [(GET, 0, (1, 1))])


def test_request_latency_property():
    req = Request(1, GET, 10.0)
    assert req.latency_us is None
    req.sent_at = 5.0
    req.completed_at = 25.0
    assert req.latency_us == 20.0
    assert type_name(GET) == "GET"
    assert type_name(99) == "type-99"


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------
def make_gen(rate=100_000, duration=50_000, **kwargs):
    machine = Machine(set_a(), seed=9)
    app = machine.register_app("app", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    gen = OpenLoopGenerator(machine, 8080, rate, GET_ONLY,
                            duration_us=duration, **kwargs)
    server.response_sink = gen.deliver_response
    return machine, gen


def test_generator_rate_is_approximately_right():
    machine, gen = make_gen(rate=100_000, duration=100_000)
    gen.start()
    machine.run()
    sent = gen.sent_in_window()
    assert 8_000 < sent < 12_000  # 100K RPS x 0.1 s = 10K +/- noise


def test_generator_open_loop_conservation():
    machine, gen = make_gen()
    gen.start()
    machine.run()
    assert gen.completed_in_window() <= gen.sent_in_window()
    assert gen.drop_fraction() == pytest.approx(
        1.0 - gen.completed_in_window() / gen.sent_in_window()
    )


def test_generator_latency_includes_both_wire_trips():
    machine, gen = make_gen(rate=1_000, duration=20_000)
    gen.start()
    machine.run()
    min_latency = min(gen.latency._samples)
    # 2 x wire (5) + NIC + stack + service(>=10)
    assert min_latency > 2 * machine.costs.wire_us + 10.0


def test_generator_flows_limited_pool():
    machine, gen = make_gen(num_flows=5)
    assert len(gen.flows) == 5
    assert all(f.dst_port == 8080 for f in gen.flows)


def test_generator_user_id_stamped():
    machine, gen = make_gen(rate=2_000, duration=10_000, user_id=7)
    seen = []
    original = gen.deliver_response

    def spy(request):
        seen.append(request.user_id)
        original(request)

    # rebind sink through the server
    machine.syrupd.apps["app"]  # app exists
    gen.start()
    machine.run()
    # stamped on the wire: check sent counter exists and latencies recorded
    assert gen.latency.count > 0


def test_generator_determinism_same_seed():
    a = make_gen(rate=30_000, duration=30_000)
    b = make_gen(rate=30_000, duration=30_000)
    for machine, gen in (a, b):
        gen.start()
        machine.run()
    assert a[1].latency.count == b[1].latency.count
    assert a[1].latency.p99() == b[1].latency.p99()


def test_generator_stop():
    machine, gen = make_gen(rate=100_000, duration=1_000_000)
    gen.start()
    machine.engine.schedule(10_000, gen.stop)
    machine.run()
    # stopped early: far fewer than the full duration's worth
    assert gen.sent_in_window() < 5_000


def test_generator_rejects_bad_rate():
    machine = Machine(set_a())
    machine.register_app("app", ports=[8080])
    with pytest.raises(ValueError):
        OpenLoopGenerator(machine, 8080, 0, GET_ONLY, duration_us=1000)
