"""Tests for request mixes and the open-loop generator."""

import random

import pytest

from repro import Machine, set_a
from repro.apps.rocksdb import RocksDbServer
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import (
    GET_ONLY,
    GET_PARETO,
    GET_SCAN_50_50,
    GET_SCAN_995_005,
    BoundedPareto,
    RequestMix,
)
from repro.workload.requests import GET, SCAN, Request, type_name
from repro.workload.weather import DiurnalSine, FlashCrowd


def test_mix_weights_normalized():
    mix = RequestMix("m", [(GET, 3, (1, 1)), (SCAN, 1, (2, 2))])
    weights = dict((r, w) for r, w, _ in mix.components)
    assert weights[GET] == pytest.approx(0.75)
    assert weights[SCAN] == pytest.approx(0.25)


def test_mix_sample_distribution():
    rng = random.Random(1)
    draws = [GET_SCAN_50_50.sample(rng)[0] for _ in range(4000)]
    frac_scan = draws.count(SCAN) / len(draws)
    assert 0.45 < frac_scan < 0.55


def test_mix_service_ranges():
    rng = random.Random(2)
    for _ in range(500):
        rtype, service = GET_SCAN_995_005.sample(rng)
        if rtype == GET:
            assert 10.0 <= service <= 12.0
        else:
            assert 650.0 <= service <= 750.0


def test_mix_mean_service():
    assert GET_ONLY.mean_service_us() == pytest.approx(11.0)


def test_mix_validation():
    with pytest.raises(ValueError):
        RequestMix("empty", [])
    with pytest.raises(ValueError):
        RequestMix("zero", [(GET, 0, (1, 1))])


def test_request_latency_property():
    req = Request(1, GET, 10.0)
    assert req.latency_us is None
    req.sent_at = 5.0
    req.completed_at = 25.0
    assert req.latency_us == 20.0
    assert type_name(GET) == "GET"
    assert type_name(99) == "type-99"


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------
def make_gen(rate=100_000, duration=50_000, **kwargs):
    machine = Machine(set_a(), seed=9)
    app = machine.register_app("app", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    gen = OpenLoopGenerator(machine, 8080, rate, GET_ONLY,
                            duration_us=duration, **kwargs)
    server.response_sink = gen.deliver_response
    return machine, gen


def test_generator_rate_is_approximately_right():
    machine, gen = make_gen(rate=100_000, duration=100_000)
    gen.start()
    machine.run()
    sent = gen.sent_in_window()
    assert 8_000 < sent < 12_000  # 100K RPS x 0.1 s = 10K +/- noise


def test_generator_open_loop_conservation():
    machine, gen = make_gen()
    gen.start()
    machine.run()
    assert gen.completed_in_window() <= gen.sent_in_window()
    assert gen.drop_fraction() == pytest.approx(
        1.0 - gen.completed_in_window() / gen.sent_in_window()
    )


def test_generator_latency_includes_both_wire_trips():
    machine, gen = make_gen(rate=1_000, duration=20_000)
    gen.start()
    machine.run()
    min_latency = min(gen.latency._samples)
    # 2 x wire (5) + NIC + stack + service(>=10)
    assert min_latency > 2 * machine.costs.wire_us + 10.0


def test_generator_flows_limited_pool():
    machine, gen = make_gen(num_flows=5)
    assert len(gen.flows) == 5
    assert all(f.dst_port == 8080 for f in gen.flows)


def test_generator_user_id_stamped():
    machine, gen = make_gen(rate=2_000, duration=10_000, user_id=7)
    seen = []
    original = gen.deliver_response

    def spy(request):
        seen.append(request.user_id)
        original(request)

    # rebind sink through the server
    machine.syrupd.apps["app"]  # app exists
    gen.start()
    machine.run()
    # stamped on the wire: check sent counter exists and latencies recorded
    assert gen.latency.count > 0


def test_generator_determinism_same_seed():
    a = make_gen(rate=30_000, duration=30_000)
    b = make_gen(rate=30_000, duration=30_000)
    for machine, gen in (a, b):
        gen.start()
        machine.run()
    assert a[1].latency.count == b[1].latency.count
    assert a[1].latency.p99() == b[1].latency.p99()


def test_generator_stop():
    machine, gen = make_gen(rate=100_000, duration=1_000_000)
    gen.start()
    machine.engine.schedule(10_000, gen.stop)
    machine.run()
    # stopped early: far fewer than the full duration's worth
    assert gen.sent_in_window() < 5_000


def test_generator_rejects_bad_rate():
    machine = Machine(set_a())
    machine.register_app("app", ports=[8080])
    with pytest.raises(ValueError):
        OpenLoopGenerator(machine, 8080, 0, GET_ONLY, duration_us=1000)


# ----------------------------------------------------------------------
# Traffic weather (repro.workload.weather)
# ----------------------------------------------------------------------
def test_flash_crowd_trapezoid_shape():
    burst = FlashCrowd(start_us=100.0, ramp_us=50.0, hold_us=200.0,
                       peak=10.0)
    assert burst.rate_factor(0.0) == 1.0
    assert burst.rate_factor(99.9) == 1.0
    assert burst.rate_factor(125.0) == pytest.approx(5.5)  # mid-ramp
    assert burst.rate_factor(150.0) == 10.0
    assert burst.rate_factor(349.9) == 10.0
    assert burst.rate_factor(375.0) == pytest.approx(5.5)  # mid-decay
    assert burst.rate_factor(400.0) == 1.0
    assert burst.rate_factor(1e9) == 1.0
    assert burst.end_us() == pytest.approx(400.0)


def test_flash_crowd_asymmetric_decay_and_validation():
    burst = FlashCrowd(0.0, ramp_us=10.0, hold_us=0.0, peak=3.0,
                       decay_us=90.0)
    assert burst.end_us() == pytest.approx(100.0)
    assert burst.rate_factor(55.0) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        FlashCrowd(0.0, 10.0, 10.0, peak=0.0)
    with pytest.raises(ValueError):
        FlashCrowd(0.0, -1.0, 10.0, peak=2.0)


def test_diurnal_sine_bounds_and_phase():
    day = DiurnalSine(period_us=1000.0, depth=0.4)
    values = [day.rate_factor(t) for t in range(0, 1000, 25)]
    assert max(values) == pytest.approx(1.4, abs=1e-3)
    assert min(values) == pytest.approx(0.6, abs=1e-3)
    assert day.rate_factor(0.0) == pytest.approx(1.0)
    shifted = DiurnalSine(period_us=1000.0, depth=0.4, phase_us=250.0)
    assert shifted.rate_factor(0.0) == pytest.approx(1.4)
    # depth > 1 clips at zero instead of going negative
    deep = DiurnalSine(period_us=1000.0, depth=2.0)
    assert deep.rate_factor(750.0) == 0.0
    with pytest.raises(ValueError):
        DiurnalSine(period_us=0.0, depth=0.5)


def test_envelope_composition_is_pointwise_product():
    burst = FlashCrowd(0.0, 10.0, 10.0, peak=4.0)
    day = DiurnalSine(period_us=100.0, depth=0.5)
    both = burst * day
    for t in (0.0, 5.0, 15.0, 80.0):
        assert both.rate_factor(t) == pytest.approx(
            burst.rate_factor(t) * day.rate_factor(t)
        )


def test_unit_envelope_is_bit_identical_to_none():
    """A peak-1.0 envelope divides every gap by exactly 1.0, so the run
    must match an envelope-free run sample for sample."""
    flat = FlashCrowd(start_us=0.0, ramp_us=1.0, hold_us=1e9, peak=1.0)
    runs = []
    for envelope in (None, flat):
        machine, gen = make_gen(rate=60_000, duration=40_000,
                                envelope=envelope)
        gen.start()
        machine.run()
        runs.append((tuple(gen.latency._samples), gen.sent_in_window(),
                     machine.now))
    assert runs[0] == runs[1]


def test_envelope_modulates_offered_rate():
    burst = FlashCrowd(start_us=0.0, ramp_us=1_000.0, hold_us=98_000.0,
                       peak=3.0)
    machine, gen = make_gen(rate=50_000, duration=100_000,
                            envelope=burst)
    gen.start()
    machine.run()
    # ~3x 50K RPS over ~0.1s = ~15K requests
    assert 12_000 < gen.sent_in_window() < 18_000


# ----------------------------------------------------------------------
# Bounded Pareto (figure_oversub's heavy-tailed batch service times)
# ----------------------------------------------------------------------
def test_bounded_pareto_stays_in_bounds():
    dist = BoundedPareto(2.0, 6.0, 100.0)
    rng = random.Random(7)
    draws = [dist.sample(rng) for _ in range(5000)]
    assert min(draws) >= 6.0
    assert max(draws) <= 100.0
    # heavy tail: the max should get near the truncation bound
    assert max(draws) > 60.0


def test_bounded_pareto_mean_matches_samples():
    dist = BoundedPareto(2.0, 6.0, 100.0)
    rng = random.Random(11)
    empirical = sum(dist.sample(rng) for _ in range(20000)) / 20000
    assert empirical == pytest.approx(dist.mean(), rel=0.05)
    # alpha == 1 takes the logarithmic branch of the closed form
    log_dist = BoundedPareto(1.0, 1.0, 10.0)
    rng = random.Random(12)
    empirical = sum(log_dist.sample(rng) for _ in range(20000)) / 20000
    assert empirical == pytest.approx(log_dist.mean(), rel=0.05)


def test_bounded_pareto_validation():
    with pytest.raises(ValueError):
        BoundedPareto(0.0, 1.0, 10.0)
    with pytest.raises(ValueError):
        BoundedPareto(2.0, 10.0, 10.0)
    with pytest.raises(ValueError):
        BoundedPareto(2.0, -1.0, 10.0)


def test_pareto_mix_draws_same_rng_count_as_uniform():
    """Swapping a uniform component for BoundedPareto must not change
    the number of RNG draws per sample (determinism of shared
    streams)."""
    r_uniform, r_pareto = random.Random(42), random.Random(42)
    for _ in range(200):
        GET_ONLY.sample(r_uniform)
        GET_PARETO.sample(r_pareto)
    assert r_uniform.random() == r_pareto.random()


def test_pareto_mix_is_deterministic():
    a = [GET_PARETO.sample(random.Random(3)) for _ in range(5)]
    b = [GET_PARETO.sample(random.Random(3)) for _ in range(5)]
    assert a == b
    assert GET_PARETO.mean_service_us() == pytest.approx(
        BoundedPareto(2.0, 6.0, 100.0).mean()
    )
