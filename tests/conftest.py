"""Shared test helpers: random policy-program and packet generators.

Used by the hypothesis property suites (toolchain equivalence, optimizer
equivalence).  Programs are random ASTs in the safe subset, so these also
fuzz the compiler and verifier.
"""

import random

from repro.net.packet import FiveTuple, Packet

GEN_FLOW = FiveTuple(0x0A000002, 40001, 0x0A000001, 8080, 17)

_LOCALS = ["a", "b", "c"]
_GLOBALS = ["g0", "g1"]
_CMPS = ["==", "!=", "<", "<=", ">", ">="]
_BINOPS = ["+", "-", "*", "//", "%", "&", "|", "^"]


def _expr(rng, depth, names):
    roll = rng.random()
    if depth <= 0 or roll < 0.35:
        if names and rng.random() < 0.5:
            return rng.choice(names)
        return str(rng.randrange(0, 2**20))
    if roll < 0.75:
        op = rng.choice(_BINOPS)
        return (
            f"({_expr(rng, depth - 1, names)} {op} "
            f"{_expr(rng, depth - 1, names)})"
        )
    if roll < 0.85:
        op = rng.choice(_CMPS)
        return (
            f"(1 if {_expr(rng, depth - 1, names)} {op} "
            f"{_expr(rng, depth - 1, names)} else 0)"
        )
    if roll < 0.93:
        return f"(pkt_len(pkt) % {rng.randrange(1, 64)})"
    return f"map_lookup(m, {_expr(rng, depth - 1, names)})"


def _stmts(rng, depth, indent, names):
    lines = []
    pad = "    " * indent
    for _ in range(rng.randrange(1, 4)):
        roll = rng.random()
        if roll < 0.4:
            name = rng.choice(_LOCALS)
            lines.append(f"{pad}{name} = {_expr(rng, depth, names)}")
            if name not in names:
                names = names + [name]
        elif roll < 0.55 and depth > 0:
            lines.append(f"{pad}if {_expr(rng, depth - 1, names)}:")
            body, _names2 = _stmts(rng, depth - 1, indent + 1, names)
            lines.extend(body)
            if rng.random() < 0.5:
                lines.append(f"{pad}else:")
                body, _ = _stmts(rng, depth - 1, indent + 1, names)
                lines.extend(body)
        elif roll < 0.7 and depth > 0:
            n = rng.randrange(1, 5)
            lines.append(f"{pad}for i in range({n}):")
            body, _ = _stmts(rng, depth - 1, indent + 1, names + ["i"])
            lines.extend(body)
        elif roll < 0.8:
            lines.append(
                f"{pad}map_update(m, {_expr(rng, 0, names)}, "
                f"{_expr(rng, 0, names)})"
            )
        elif roll < 0.9:
            gname = rng.choice(_GLOBALS)
            lines.append(f"{pad}{gname} = {_expr(rng, depth, names)}")
        else:
            lines.append(f"{pad}return {_expr(rng, depth, names)}")
    return lines, names


def random_policy_source(seed):
    """A random, always-compilable policy in the safe subset."""
    rng = random.Random(seed)
    lines = ['m = syr_map("m", 64)']
    for gname in _GLOBALS:
        lines.append(f"{gname} = {rng.randrange(100)}")
    lines.append("")
    lines.append("def schedule(pkt):")
    lines.append(f"    global {', '.join(_GLOBALS)}")
    body, names = _stmts(rng, 2, 1, list(_GLOBALS))
    lines.extend(body)
    lines.append(f"    return {_expr(rng, 1, names)}")
    return "\n".join(lines) + "\n"


def random_packet(seed):
    """A packet with random payload bytes and random (possibly tiny) size."""
    rng = random.Random(seed)
    payload = bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 64)))
    return Packet(GEN_FLOW, payload)
