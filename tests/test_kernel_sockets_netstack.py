"""Tests for sockets, reuseport groups, and the netstack RX pipeline."""

import pytest

from repro.config import MachineConfig, NicSpec
from repro.kernel.netstack import NetStack
from repro.kernel.sockets import ReuseportGroup, SocketTable, UdpSocket
from repro.net.packet import FiveTuple, Packet
from repro.sim.engine import Engine

FLOW = FiveTuple(0x0A000002, 40000, 0x0A000001, 8080, 17)


def make_packet(src_port=40000, dst_port=8080, payload=b"x" * 32):
    return Packet(FLOW._replace(src_port=src_port, dst_port=dst_port), payload)


# ----------------------------------------------------------------------
# Sockets
# ----------------------------------------------------------------------
def test_socket_enqueue_pop_fifo():
    sock = UdpSocket(8080)
    p1, p2 = make_packet(1), make_packet(2)
    assert sock.enqueue(p1) and sock.enqueue(p2)
    assert sock.pop() is p1
    assert sock.pop() is p2
    assert sock.pop() is None


def test_socket_backlog_overflow_drops():
    sock = UdpSocket(8080, backlog=2)
    assert sock.enqueue(make_packet())
    assert sock.enqueue(make_packet())
    assert not sock.enqueue(make_packet())
    assert sock.drops == 1
    assert sock.enqueued == 2


def test_socket_wakes_thread():
    class FakeThread:
        def __init__(self):
            self.wakes = 0

        def wake(self):
            self.wakes += 1

    sock = UdpSocket(8080)
    sock.thread = FakeThread()
    sock.enqueue(make_packet())
    assert sock.thread.wakes == 1


def test_socket_on_enqueue_callback():
    seen = []
    sock = UdpSocket(8080)
    sock.on_enqueue = seen.append
    pkt = make_packet()
    sock.enqueue(pkt)
    assert seen == [pkt]


def test_reuseport_group_port_check():
    group = ReuseportGroup(8080)
    with pytest.raises(ValueError):
        group.add(UdpSocket(9090))


def test_reuseport_default_select_stable_and_in_range():
    group = ReuseportGroup(8080)
    for _ in range(6):
        group.add(UdpSocket(8080))
    pkt = make_packet()
    first = group.default_select(pkt)
    assert 0 <= first < 6
    assert all(group.default_select(pkt) == first for _ in range(5))


def test_socket_table_groups_by_port():
    table = SocketTable()
    s1, s2, s3 = UdpSocket(8080), UdpSocket(8080), UdpSocket(9090)
    g1 = table.bind(s1)
    g2 = table.bind(s2)
    g3 = table.bind(s3)
    assert g1 is g2 and g1 is not g3
    assert len(g1) == 2
    assert table.ports() == [8080, 9090]
    assert table.group(7777) is None


# ----------------------------------------------------------------------
# NetStack pipeline
# ----------------------------------------------------------------------
def make_stack(**config_kwargs):
    eng = Engine()
    config = MachineConfig(num_softirq_cores=2, nic=NicSpec(num_queues=2),
                           **config_kwargs)
    stack = NetStack(eng, config)
    return eng, stack


def test_standard_path_delivers_to_socket():
    eng, stack = make_stack()
    sock = UdpSocket(8080)
    stack.socket_table.bind(sock)
    stack.deliver_from_nic(0, make_packet())
    eng.run()
    assert len(sock) == 1
    assert stack.delivered == 1


def test_no_socket_drop():
    eng, stack = make_stack()
    stack.deliver_from_nic(0, make_packet(dst_port=5555))
    eng.run()
    assert stack.drops["no_socket"] == 1


def test_ring_overflow_drops():
    eng, stack = make_stack()
    stack.config.nic.ring_size = 4
    stack.softirq[0].capacity = 4
    sock = UdpSocket(8080)
    stack.socket_table.bind(sock)
    for _ in range(10):
        stack.deliver_from_nic(0, make_packet())
    eng.run()
    assert stack.drops["ring_overflow"] > 0
    assert stack.delivered + stack.drops["ring_overflow"] == 10


def test_socket_overflow_counted():
    eng, stack = make_stack(socket_backlog=1)
    sock = UdpSocket(8080, backlog=1)
    stack.socket_table.bind(sock)
    for _ in range(3):
        stack.deliver_from_nic(0, make_packet())
    eng.run()
    assert stack.drops["socket_overflow"] == 2


class _Hook:
    def __init__(self, decision, cost=0.5, hook="socket_select"):
        self.decision = decision
        self.cost = cost
        self.hook = hook
        self.calls = 0

    def decide(self, packet):
        self.calls += 1
        return self.decision

    def cost_us(self, packet):
        return self.cost


def test_socket_select_hook_target():
    eng, stack = make_stack()
    a, b = UdpSocket(8080), UdpSocket(8080)
    stack.socket_table.bind(a)
    stack.socket_table.bind(b)
    stack.socket_select_hook = _Hook(("target", b))
    stack.deliver_from_nic(0, make_packet())
    eng.run()
    assert len(b) == 1 and len(a) == 0


def test_socket_select_hook_drop():
    eng, stack = make_stack()
    sock = UdpSocket(8080)
    stack.socket_table.bind(sock)
    stack.socket_select_hook = _Hook(("drop", None))
    stack.deliver_from_nic(0, make_packet())
    eng.run()
    assert stack.drops["select_drop"] == 1
    assert len(sock) == 0


def test_socket_select_hook_pass_uses_default():
    eng, stack = make_stack()
    socks = [UdpSocket(8080) for _ in range(3)]
    group = None
    for s in socks:
        group = stack.socket_table.bind(s)
    stack.socket_select_hook = _Hook(("pass", None))
    pkt = make_packet()
    stack.deliver_from_nic(0, pkt)
    eng.run()
    expected = group[group.default_select(pkt)]
    assert len(expected) == 1


def test_cpu_redirect_hook_moves_processing_core():
    eng, stack = make_stack()
    sock = UdpSocket(8080)
    stack.socket_table.bind(sock)
    stack.cpu_redirect_hook = _Hook(("target", 1), hook="cpu_redirect")
    stack.deliver_from_nic(0, make_packet())
    eng.run()
    assert stack.softirq[1].served == 1
    assert stack.softirq[0].served == 0


def test_xdp_hook_bypasses_protocol_to_af_xdp_socket():
    eng, stack = make_stack()
    af_sock = UdpSocket(8080, is_af_xdp=True)
    stack.xdp_hook = _Hook(("target", af_sock), hook="xdp_drv")
    stack.deliver_from_nic(0, make_packet())
    eng.run()
    assert len(af_sock) == 1
    # never reached the socket table path
    assert stack.drops["no_socket"] == 0


def test_xdp_generic_mode_pays_copy_cost():
    eng_zc, stack_zc = make_stack()
    eng_copy, stack_copy = make_stack()
    for stack, hook, eng in (
        (stack_zc, "xdp_drv", eng_zc),
        (stack_copy, "xdp_skb", eng_copy),
    ):
        sock = UdpSocket(8080, is_af_xdp=True)
        stack.xdp_hook = _Hook(("target", sock), cost=0.0, hook=hook)
        stack.deliver_from_nic(0, make_packet())
        eng.run()
    assert stack_copy.softirq[0].busy_us > stack_zc.softirq[0].busy_us


def test_plain_af_xdp_binding():
    eng, stack = make_stack()
    sock = UdpSocket(8080, is_af_xdp=True)
    stack.bind_af_xdp(1, sock)
    stack.deliver_from_nic(1, make_packet())
    stack.deliver_from_nic(0, make_packet(dst_port=5555))  # unbound queue
    eng.run()
    assert len(sock) == 1
    assert stack.drops["no_socket"] == 1


def test_xdp_pass_falls_through_to_stack():
    eng, stack = make_stack()
    sock = UdpSocket(8080)
    stack.socket_table.bind(sock)
    stack.xdp_hook = _Hook(("pass", None), hook="xdp_drv")
    stack.deliver_from_nic(0, make_packet())
    eng.run()
    assert len(sock) == 1
