"""Tests for multi-hook deployment, syrupd status, and map sharing."""

import pytest

from repro import Hook, Machine, set_a, set_b
from repro.apps.rocksdb import RocksDbServer
from repro.policies.builtin import HASH_BY_FLOW, ROUND_ROBIN
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import GET_ONLY


def test_deploy_to_multiple_hooks_at_once():
    """§3.1: syr_deploy_policy takes one *or more* hooks."""
    machine = Machine(set_b(), seed=61)
    app = machine.register_app("multi", ports=[8080])
    RocksDbServer(machine, app, 8080, 4)
    deployed = app.deploy_policy(
        HASH_BY_FLOW,
        [Hook.SOCKET_SELECT, Hook.CPU_REDIRECT],
        constants={"NUM_EXECUTORS": 4},
    )
    assert len(deployed) == 2
    assert {d.hook for d in deployed} == {Hook.SOCKET_SELECT,
                                          Hook.CPU_REDIRECT}
    # each hook has its own program instance
    assert deployed[0].program is not deployed[1].program


def test_multi_hook_deploys_share_maps():
    machine = Machine(set_a(), seed=61)
    app = machine.register_app("multi", ports=[8080])
    RocksDbServer(machine, app, 8080, 4)
    src = (
        'shared = syr_map("shared", 16)\n\n'
        "def schedule(pkt):\n"
        "    atomic_add(shared, 0, 1)\n"
        "    return PASS\n"
    )
    a, b = app.deploy_policy(src, [Hook.SOCKET_SELECT, Hook.CPU_REDIRECT])
    # both programs bound the same pinned map object
    assert a.program.maps[0] is b.program.maps[0]


def test_status_reports_network_deployments():
    machine = Machine(set_a(), seed=62)
    app = machine.register_app("statusapp", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 4)
    app.deploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": 4})
    gen = OpenLoopGenerator(machine, 8080, 20_000, GET_ONLY,
                            duration_us=10_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    rows = machine.syrupd.status()
    assert len(rows) == 1
    row = rows[0]
    assert row["app"] == "statusapp"
    assert row["hook"] == Hook.SOCKET_SELECT
    assert row["invocations"] == gen.sent_in_window()
    assert row["cycle_estimate"] > 0
    assert row["maps"] == []


def test_status_reports_thread_deployments():
    machine = Machine(set_a(), seed=63, scheduler="ghost")
    app = machine.register_app("ghostapp", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 4)

    class Fifo:
        def schedule(self, status):
            return [
                (t, c.cid)
                for t, c in zip(status.runnable, status.idle_cores())
            ]

    app.deploy_policy(Fifo(), Hook.THREAD_SCHED)
    gen = OpenLoopGenerator(machine, 8080, 20_000, GET_ONLY,
                            duration_us=10_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    rows = machine.syrupd.status()
    assert rows[0]["commits"] > 0
    assert rows[0]["policy_errors"] == 0


def test_undeploy_restores_default():
    machine = Machine(set_a(), seed=64)
    app = machine.register_app("undep", ports=[8080])
    RocksDbServer(machine, app, 8080, 4)
    app.deploy_policy("def schedule(pkt):\n    return DROP\n",
                      Hook.SOCKET_SELECT)
    site = machine.netstack.socket_select_hook
    machine.syrupd.undeploy(app, Hook.SOCKET_SELECT)
    from repro.net.packet import FiveTuple, Packet

    pkt = Packet(FiveTuple(1, 2, 3, 8080, 17), b"x" * 16)
    assert site.decide(pkt) == ("none", None)
