"""Tests for low-level BPF maps and the disassembler."""

import pytest

from repro.ebpf.compiler import compile_policy
from repro.ebpf.disasm import disassemble
from repro.ebpf.maps import ArrayMap, HashMap, MapFullError, ProgArrayMap


def test_array_map_basics():
    m = ArrayMap("a", 4)
    assert m.lookup(0) == 0          # zero-initialized
    m.update(2, 99)
    assert m.lookup(2) == 99
    assert m.lookup(7) is None       # out of range reads miss
    assert len(m) == 4
    assert m.items()[2] == (2, 99)


def test_array_map_update_out_of_range():
    m = ArrayMap("a", 4)
    with pytest.raises(KeyError):
        m.update(4, 1)


def test_array_map_delete_invalid():
    m = ArrayMap("a", 4)
    with pytest.raises(KeyError):
        m.delete(0)


def test_array_map_values_masked_to_u64():
    m = ArrayMap("a", 1)
    m.update(0, -1)
    assert m.lookup(0) == (1 << 64) - 1


def test_hash_map_basics():
    m = HashMap("h", 4)
    assert m.lookup(5) is None
    m.update(5, 1)
    assert m.has(5)
    assert m.delete(5) is True
    assert m.delete(5) is False
    assert len(m) == 0


def test_hash_map_max_entries():
    m = HashMap("h", 2)
    m.update(1, 1)
    m.update(2, 2)
    with pytest.raises(MapFullError):
        m.update(3, 3)
    m.update(1, 10)  # overwriting existing key is fine
    assert m.lookup(1) == 10


def test_atomic_add_semantics():
    m = HashMap("h", 4)
    assert m.atomic_add(1, 5) == 5   # missing key reads as 0
    assert m.atomic_add(1, -2) == 3
    # wraps at u64
    m.update(2, (1 << 64) - 1)
    assert m.atomic_add(2, 1) == 0


def test_prog_array():
    m = ProgArrayMap("p", 4)
    prog = object()
    m.update(1, prog)
    assert m.lookup(1) is prog
    assert m.lookup(0) is None
    assert m.delete(1) is True
    with pytest.raises(KeyError):
        m.update(9, prog)


def test_map_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        HashMap("h", 0)


def test_disassemble_lists_everything():
    src = """
counter = 3
m = syr_map("mname", 16)

def schedule(pkt):
    global counter
    if pkt_len(pkt) < 8:
        return PASS
    counter += 1
    return map_lookup(m, counter)
"""
    prog = compile_policy(src)
    text = disassemble(prog)
    assert "mname" in text
    assert "counter" in text
    assert "JZ" in text
    assert "MAPLOOKUP" in text
    assert f"{len(prog.insns)} insns" in text
