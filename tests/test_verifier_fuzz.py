"""Adversarial verifier fuzzing.

The compiler only emits well-formed IR; an attacker loading hand-crafted
bytecode is the case the verifier exists for.  Property: for *arbitrary*
instruction sequences, either the verifier rejects, or execution on
arbitrary packets completes without any fault — no stack underflow, no
out-of-bounds packet read, no unbounded run.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.ebpf.errors import VerifierError, VmFault
from repro.ebpf.insn import Insn, OPCODES, Program
from repro.ebpf.maps import HashMap
from repro.ebpf.verifier import verify
from repro.ebpf.vm import execute
from repro.net.packet import FiveTuple, Packet

FLOW = FiveTuple(0x0A000002, 40002, 0x0A000001, 8080, 17)

_OPS = sorted(OPCODES)
N_LOCALS = 4
N_GLOBALS = 2
N_MAPS = 1


def random_insns(rng, length):
    insns = []
    for _ in range(length):
        op = rng.choice(_OPS)
        arity = OPCODES[op][0]
        a = b = None
        if op in ("JMP", "JZ", "JNZ"):
            a = rng.randrange(0, length + 2)  # may be backward / OOB
        elif op in ("LOADL", "STOREL"):
            a = rng.randrange(0, N_LOCALS + 2)
        elif op in ("LOADG", "STOREG"):
            a = rng.randrange(0, N_GLOBALS + 2)
        elif op.startswith("MAP") or op == "ATOMICADD":
            a = rng.randrange(0, N_MAPS + 2)
        elif op == "LDPKT":
            a = rng.randrange(0, 64)
            b = rng.choice([1, 2, 4, 8])
        elif op == "CONST":
            a = rng.randrange(0, 2**32)
        elif arity >= 1:
            a = rng.randrange(0, 16)
        if arity >= 2 and b is None:
            b = rng.randrange(0, 16)
        insns.append(Insn(op, a, b))
    return insns


def make_program(insns):
    return Program(
        name="fuzz",
        insns=insns,
        n_locals=N_LOCALS,
        global_names=[f"g{i}" for i in range(N_GLOBALS)],
        globals_init=[0] * N_GLOBALS,
        map_names=["m"],
        map_sizes=[16],
        map_vars=["m"],
        source="",
        func_ast=None,
        loc=0,
    )


@settings(max_examples=400, deadline=None)
@given(seed=st.integers(0, 10**9), length=st.integers(1, 40),
       pkt_len=st.integers(0, 80))
def test_accepted_programs_never_fault(seed, length, pkt_len):
    rng = random.Random(seed)
    program = make_program(random_insns(rng, length))
    try:
        stats = verify(program)
    except VerifierError:
        return  # rejected: exactly what the verifier is for
    packet = Packet(FLOW, bytes(pkt_len))
    # Accepted: execution must terminate cleanly within the proven bound.
    result = execute(program, packet, [HashMap("m", 16)],
                     [0] * N_GLOBALS, random.Random(1))
    assert result.insns_executed <= stats.n_insns


@settings(max_examples=200, deadline=None)
@given(seed=st.integers(0, 10**9), length=st.integers(1, 40))
def test_accepted_programs_safe_without_packet_guards_lying(seed, length):
    """Same property against the shortest possible packet (length 0):
    any accepted LDPKT must be guarded, so a 0-length packet can never be
    read — only PKTLEN-guarded paths run."""
    rng = random.Random(seed + 7)
    program = make_program(random_insns(rng, length))
    try:
        verify(program)
    except VerifierError:
        return
    empty = Packet(FLOW, b"")
    result = execute(program, empty, [HashMap("m", 16)],
                     [0] * N_GLOBALS, random.Random(2))
    assert result.value >= 0


def test_handcrafted_attacks_rejected():
    attacks = {
        "infinite loop": [Insn("JMP", 0)],
        "stack leak at join": [
            Insn("CONST", 1),
            Insn("JZ", 3),
            Insn("CONST", 2),
            Insn("CONST", 0),
            Insn("RET"),
        ],
        "read past guard": [
            Insn("PKTLEN"),
            Insn("CONST", 4),
            Insn("CMPGE"),
            Insn("JZ", 6),
            Insn("LDPKT", 0, 8),   # proved only 4 bytes
            Insn("RET"),
            Insn("CONST", 0),
            Insn("RET"),
        ],
        "underflow": [Insn("ADD"), Insn("RET")],
        "escape via map slot": [
            Insn("CONST", 0),
            Insn("MAPLOOKUP", 5),
            Insn("RET"),
        ],
    }
    import pytest

    for name, insns in attacks.items():
        with pytest.raises(VerifierError):
            verify(make_program(insns))
