"""Per-tenant accounting and interference-attribution tests.

Home of the **no-op audit** the :mod:`repro.obs.accounting` docstring
points at: by default (and with ``accounting=False``) a figure6-style
run allocates not a single accounting object — no accountant, no
ledger, no blame matrix — and its simulation output is bit-identical to
the same seed with accounting *enabled*, because the accountant only
ever reads the datapath.

Also covers: the OpenMetrics ``tenant:<name>`` scope convention (label
escaping round-trips arbitrary tenant names), per-tenant sketch summary
series, blame-matrix arithmetic, the per-victim-normalized noisy
detector (the volume-symmetry trap), the blame-driven shed controller,
and the end-to-end contended run that the figure and ``syrupctl
tenants`` are built on.
"""

import re

import pytest

from repro.experiments.figure_interference import run_variant
from repro.experiments.runner import RocksDbTestbed, run_point
from repro.obs.accounting import (
    LAYERS,
    NULL_ACCOUNTING,
    TenantAccountant,
    TenantLedger,
)
from repro.obs.export import to_openmetrics
from repro.obs.interference import (
    BlameMatrix,
    NoisyNeighborDetector,
    TenantShedController,
)
from repro.obs.registry import MetricsRegistry
from repro.workload.mixes import GET_SCAN_995_005


# ----------------------------------------------------------------------
# Ledger and blame-matrix arithmetic
# ----------------------------------------------------------------------
def test_ledger_total_wait_excludes_the_qdisc_subspan():
    led = TenantLedger("alpha")
    for layer in LAYERS:
        led.charge_wait(layer, 10.0)
    # qdisc time overlaps the surrounding nic/socket wait: a sub-span,
    # not an addend
    assert led.total_wait_us() == 10.0 * (len(LAYERS) - 1)
    assert led.wait_us["qdisc"] == 10.0
    assert led.wait_events["qdisc"] == 1


def test_ledger_drops_by_reason_and_json_row():
    led = TenantLedger("alpha")
    led.drops["backlog"] = 2
    led.drops["qdisc"] = 1
    assert led.total_drops() == 3
    row = led.as_dict()
    assert row["tenant"] == "alpha"
    assert row["drops"] == {"backlog": 2, "qdisc": 1}
    assert set(row["wait_us"]) == set(LAYERS)


def test_blame_matrix_shares_and_diagonal():
    blame = BlameMatrix()
    blame.charge("alpha", "bravo", "socket", 90.0)
    blame.charge("alpha", "alpha", "socket", 10.0)   # self-queueing
    blame.charge("bravo", "alpha", "softirq", 5.0)
    blame.charge("alpha", "bravo", "socket", -1.0)   # ignored
    assert blame.total() == 105.0
    # diagonal excluded from imposed/suffered aggregates
    assert blame.imposed_by("bravo") == 90.0
    assert blame.suffered_by("alpha") == 90.0
    assert blame.imposed_by("alpha") == 5.0
    aggressor, layer, us, share = blame.top_aggressor("alpha")
    assert (aggressor, layer, us) == ("bravo", "socket", 90.0)
    # share is over ALL blame at that layer, diagonal included
    assert share == pytest.approx(0.9)
    assert blame.top_aggressor("charlie") is None
    assert blame.matrix()["alpha"]["bravo"]["socket"] == 90.0


def test_accountant_splits_wait_pro_rata_into_blame():
    acct = TenantAccountant(lambda: 0.0)
    acct._charge_blame("alpha", "socket", 100.0,
                       {"bravo": 3.0, "alpha": 1.0})
    assert acct.blame.matrix()["alpha"]["bravo"]["socket"] == 75.0
    assert acct.blame.matrix()["alpha"]["alpha"]["socket"] == 25.0
    # nothing ahead, or zero weight: nothing charged
    acct._charge_blame("alpha", "socket", 100.0, {})
    acct._charge_blame("alpha", "socket", 100.0, {"bravo": 0.0})
    assert acct.blame.total() == 100.0


# ----------------------------------------------------------------------
# OpenMetrics tenant labels: escaping round-trip, sketch summaries
# ----------------------------------------------------------------------
def _parse_label(line, label):
    """The (escaped) value of ``label`` in an exposition line, decoded."""
    match = re.search(rf'{label}="((?:[^"\\]|\\.)*)"', line)
    assert match is not None, line
    out, chars = [], iter(match.group(1))
    for ch in chars:
        if ch == "\\":
            nxt = next(chars)
            out.append({"n": "\n", '"': '"', "\\": "\\"}[nxt])
        else:
            out.append(ch)
    return "".join(out)


@pytest.mark.parametrize("tenant", [
    "alpha",
    'quo"ted',
    "back\\slash",
    "new\nline",
    '\\"both\\"\n',
])
def test_tenant_label_escaping_round_trips(tenant):
    reg = MetricsRegistry()
    reg.gauge("tenants", f"tenant:{tenant}", "completed").set(7)
    lines = [
        line for line in to_openmetrics(reg).splitlines()
        if line.startswith("syrup_completed{")
    ]
    assert len(lines) == 1
    # the tenant: prefix split into scope="tenant" + a tenant label
    assert _parse_label(lines[0], "scope") == "tenant"
    assert _parse_label(lines[0], "tenant") == tenant
    # escaped text stays on one exposition line even with raw newlines
    assert lines[0].endswith(" 7")


def test_per_tenant_sketch_exports_summary_series():
    reg = MetricsRegistry()
    sketch = reg.sketch("tenants", "tenant:alpha", "latency_us")
    for v in range(1, 101):
        sketch.observe(float(v))
    text = to_openmetrics(reg)
    assert "# TYPE syrup_latency_us summary" in text
    quantile_lines = [
        line for line in text.splitlines()
        if line.startswith("syrup_latency_us{")
    ]
    assert quantile_lines, text
    for line in quantile_lines:
        assert _parse_label(line, "tenant") == "alpha"
        assert _parse_label(line, "scope") == "tenant"
        assert 'quantile="' in line
    assert ('syrup_latency_us_count{app="tenants",scope="tenant",'
            'tenant="alpha"} 100') in text


def test_accountant_publish_mirrors_ledgers_into_tenant_gauges():
    acct = TenantAccountant(lambda: 0.0)
    led = acct.ledger("alpha")
    led.cpu_service_us = 42.0
    led.completed = 3
    led.charge_wait("socket", 9.0)
    acct.blame.charge("alpha", "bravo", "socket", 9.0)
    reg = MetricsRegistry()
    acct.publish(reg)
    assert reg.gauge("tenants", "tenant:alpha", "cpu_service_us").value == 42.0
    assert reg.gauge("tenants", "tenant:alpha", "socket_wait_us").value == 9.0
    assert reg.gauge("tenants", "tenant:alpha", "suffered_us").value == 9.0


# ----------------------------------------------------------------------
# The noisy-neighbor detector: per-victim normalization
# ----------------------------------------------------------------------
class _FakeAcct:
    def __init__(self):
        self.blame = BlameMatrix()

    def tenants(self):
        names = set()
        for victim, aggressor, _layer in self.blame._cells:
            names.add(victim)
            names.add(aggressor)
        return sorted(names)


def test_detector_normalizes_per_victim_not_by_absolute_volume():
    """The volume-symmetry trap: bravo floods, so bravo also *suffers*
    a huge absolute wait — mostly self-inflicted, but alpha's share of
    it in absolute microseconds dwarfs everything alpha suffers.  A
    detector comparing absolute imposed-µs would flag the victim; the
    per-victim law must flag only bravo."""
    acct = _FakeAcct()
    # alpha's queueing: 1000us of it is bravo's fault (91%)
    acct.blame.charge("alpha", "bravo", "socket", 1_000.0)
    acct.blame.charge("alpha", "alpha", "socket", 100.0)
    # bravo's queueing is enormous but 96% self-inflicted; alpha's
    # absolute contribution (2000us) still exceeds what bravo imposed
    acct.blame.charge("bravo", "bravo", "socket", 50_000.0)
    acct.blame.charge("bravo", "alpha", "socket", 2_000.0)
    detector = NoisyNeighborDetector(acct, share_threshold=0.5,
                                     min_window_us=100.0)
    detector()
    assert set(detector.noisy) == {"bravo"}
    assert detector.noisy["bravo"] == pytest.approx(1_000.0 / 1_100.0)


def test_detector_windows_deltas_and_respects_min_volume():
    acct = _FakeAcct()
    acct.blame.charge("alpha", "bravo", "socket", 1_000.0)
    detector = NoisyNeighborDetector(acct, share_threshold=0.5,
                                     min_window_us=100.0)
    detector()
    assert set(detector.noisy) == {"bravo"}
    # next window: no new blame -> flag clears (cumulative is diffed)
    detector()
    assert detector.noisy == {}
    # a window below min_window_us flags nobody, whatever the share
    acct.blame.charge("alpha", "bravo", "socket", 50.0)
    detector()
    assert detector.noisy == {}


def test_detector_publishes_interference_gauges():
    acct = _FakeAcct()
    acct.blame.charge("alpha", "bravo", "socket", 1_000.0)
    reg = MetricsRegistry()
    NoisyNeighborDetector(acct, reg, min_window_us=100.0)()
    assert reg.gauge("interference", "tenant:bravo", "noisy").value == 1
    assert reg.gauge("interference", "tenant:bravo", "imposed_us").value \
        == 1_000.0
    assert reg.gauge("interference", "tenant:alpha", "suffered_us").value \
        == 1_000.0
    assert reg.gauge("interference", "tenant:alpha", "noisy").value == 0


# ----------------------------------------------------------------------
# TenantShedController: identity-aware, flagged tenants only
# ----------------------------------------------------------------------
class _FakeSlo:
    def __init__(self, state="ok"):
        self._state = state

    def state(self):
        return self._state


class _FakeMap:
    def __init__(self):
        self.values = {}

    def update(self, key, value):
        self.values[key] = value


def test_tenant_shed_controller_sheds_flagged_tenants_only():
    detector = _FakeAcct()
    detector.noisy = {"bravo": 0.9}
    slo = _FakeSlo("page")
    shed_map = _FakeMap()
    ctl = TenantShedController(shed_map, detector, slo,
                               {"alpha": 1, "bravo": 2},
                               step_up=25, step_down=2)
    ctl()
    assert ctl.levels == {"alpha": 0, "bravo": 25}
    assert shed_map.values == {1: 0, 2: 25}
    ctl()
    assert ctl.levels["bravo"] == 50
    # healthy windows decay slowly; never-flagged tenants never rise
    slo._state = "ok"
    ctl()
    assert ctl.levels == {"alpha": 0, "bravo": 48}
    # warn escalates gently
    slo._state = "warn"
    ctl()
    assert ctl.levels["bravo"] == 58
    assert ctl.levels["alpha"] == 0


def test_tenant_shed_controller_caps_at_max_level():
    detector = _FakeAcct()
    detector.noisy = {"bravo": 0.9}
    ctl = TenantShedController(_FakeMap(), detector, _FakeSlo("page"),
                               {"bravo": 2}, step_up=60, max_level=95)
    ctl()
    ctl()
    assert ctl.levels["bravo"] == 95


# ----------------------------------------------------------------------
# The no-op audit: disabled means bit-identical and allocation-free
# ----------------------------------------------------------------------
def fingerprint(testbed, gen):
    """Everything a figure table is computed from, bit-for-bit."""
    return (
        tuple(gen.latency._samples),
        {tag: tuple(gen.latency._select(tag)) for tag in gen.latency.tags()},
        gen.drop_fraction(),
        dict(testbed.machine.netstack.drops),
        testbed.machine.now,
    )


def test_machine_defaults_leave_the_accountant_null():
    testbed = RocksDbTestbed(seed=3)
    assert testbed.machine.obs.acct is NULL_ACCOUNTING
    assert not testbed.machine.obs.acct.enabled
    assert testbed.machine.obs.acct.snapshot() == {"tenants": [], "blame": {}}


def test_default_runs_allocate_no_accounting_objects_and_stay_identical(
    monkeypatch,
):
    counts = {}

    def probe(cls):
        orig = cls.__init__
        counts[cls.__name__] = 0

        def wrapped(self, *a, **k):
            counts[cls.__name__] += 1
            return orig(self, *a, **k)

        monkeypatch.setattr(cls, "__init__", wrapped)

    for cls in (TenantAccountant, TenantLedger, BlameMatrix):
        probe(cls)
    # sanity: the probe sees instantiations
    TenantLedger("t")
    assert counts["TenantLedger"] == 1
    counts["TenantLedger"] = 0

    def figure6_point(tenant=None, **kwargs):
        def factory():
            return RocksDbTestbed(seed=3, **kwargs)

        testbed = factory()
        gen = testbed.drive(100_000, GET_SCAN_995_005, 60_000.0, 15_000.0,
                            tenant=tenant)
        gen.start()
        testbed.machine.run()
        return fingerprint(testbed, gen)

    # a default build and an explicitly-disabled build are the same run
    default = figure6_point()
    assert default == figure6_point(accounting=False)
    assert counts == {"TenantAccountant": 0, "TenantLedger": 0,
                      "BlameMatrix": 0}

    # the accountant reads the datapath, never steers it: the same seed
    # with accounting ON and tenant-labeled traffic is still the same run
    assert default == figure6_point(tenant="alpha", accounting=True)
    assert counts["TenantAccountant"] == 1
    assert counts["TenantLedger"] >= 1


def test_live_accountant_ignores_tenantless_traffic(monkeypatch):
    """Every seam bails before touching state when requests carry no
    tenant — a live accountant over tenant-less load books nothing."""
    testbed = RocksDbTestbed(seed=3, accounting=True)
    gen = testbed.drive(100_000, GET_SCAN_995_005, 20_000.0, 5_000.0)
    gen.start()
    testbed.machine.run()
    acct = testbed.machine.obs.acct
    assert acct.enabled
    assert acct.ledgers == {}
    assert len(acct.blame) == 0


# ----------------------------------------------------------------------
# End to end: the contended pair, attribution, and the closed loop
# ----------------------------------------------------------------------
def test_contended_run_attributes_alpha_queueing_to_bravo():
    testbed, gen_alpha, gen_bravo, _ = run_variant(
        "contended", 60_000, 420_000, 60_000.0, 15_000.0, seed=3,
    )
    acct = testbed.machine.obs.acct
    assert set(acct.tenants()) == {"alpha", "bravo"}
    led = acct.ledgers["alpha"]
    assert led.completed > 0
    assert led.cpu_service_us > 0.0
    top = acct.blame.top_aggressor("alpha")
    assert top is not None
    aggressor, layer, _us, share = top
    assert aggressor == "bravo"
    assert layer == "socket"
    assert share >= 0.8  # the figure's ATTRIBUTION_TARGET
    # the snapshot (syrupd.tenants / syrupctl tenants --json) is JSON-safe
    snap = acct.snapshot()
    assert [row["tenant"] for row in snap["tenants"]] == ["alpha", "bravo"]
    assert "bravo" in snap["blame"]["alpha"]


def test_blame_shed_restores_the_victim_without_alpha_drops():
    testbed, gen_alpha, gen_bravo, detector = run_variant(
        "blame_shed", 60_000, 420_000, 60_000.0, 15_000.0, seed=3,
    )
    assert set(detector.noisy) <= {"bravo"}
    acct = testbed.machine.obs.acct
    alpha_drops = acct.ledgers["alpha"].total_drops() \
        if "alpha" in acct.ledgers else 0
    bravo_drops = acct.ledgers["bravo"].total_drops()
    # the whole point: bravo pays, alpha does not
    assert bravo_drops > 0
    assert gen_alpha.drop_fraction() <= 0.01
    assert alpha_drops <= 0.01 * max(acct.ledgers["alpha"].completed, 1)
