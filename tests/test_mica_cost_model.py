"""MICA cost-model knobs: the calibration that anchors Figure 9."""

import pytest

from repro import Machine, set_b
from repro.apps.mica import MicaCosts, MicaServer
from repro.net.packet import FiveTuple, Packet, build_payload
from repro.workload.requests import GET, PUT, Request

FLOW = FiveTuple(0x0A000002, 40000, 0x0A000001, 9090, 17)


def make_server(mode, costs=None, num_threads=8):
    machine = Machine(set_b(8), seed=95)
    app = machine.register_app("mica", ports=[9090])
    server = MicaServer(machine, app, 9090, num_threads=num_threads,
                        mode=mode, costs=costs)
    return machine, server


def packet_for(server, key, rid=1, rtype=GET):
    key_hash = (key * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
    request = Request(rid, rtype, 0.0, key=key, key_hash=key_hash)
    return Packet(FLOW, build_payload(rtype, 0, key_hash, rid),
                  request=request)


def key_with_home(server, home):
    for key in range(10000):
        if server._home_for_key(key) == home:
            return key
    raise AssertionError("no key found")


def test_put_costs_more_than_get():
    _m, server = make_server("syrup_hw")
    key = key_with_home(server, 3)
    get_cost, _ = server.packet_work(3, packet_for(server, key, rtype=GET))
    put_cost, _ = server.packet_work(3, packet_for(server, key, rtype=PUT))
    assert put_cost == pytest.approx(get_cost + server.costs.put_extra_us)


def test_remote_pull_charged_only_when_queue_differs():
    _m, server = make_server("syrup_sw")
    key = key_with_home(server, 2)
    local = packet_for(server, key)
    local.rx_queue = 2
    remote = packet_for(server, key)
    remote.rx_queue = 5
    local_cost, _ = server.packet_work(2, local)
    remote_cost, _ = server.packet_work(2, remote)
    assert remote_cost == pytest.approx(
        local_cost + server.costs.remote_pull_us
    )


def test_hw_mode_never_pays_remote_pull():
    _m, server = make_server("syrup_hw")
    key = key_with_home(server, 2)
    pkt = packet_for(server, key)
    pkt.rx_queue = 5  # even if it somehow arrived on another queue
    cost, _ = server.packet_work(2, pkt)
    assert cost == pytest.approx(server.costs.proc_us)


def test_sw_redirect_local_vs_forward_costs():
    costs = MicaCosts()
    _m, server = make_server("sw_redirect", costs=costs)
    key = key_with_home(server, 4)
    local_cost, (kind, _r) = server.packet_work(4, packet_for(server, key))
    assert kind == "proc"
    assert local_cost == pytest.approx(costs.parse_us + costs.proc_us)
    fwd_cost, (kind, _r) = server.packet_work(0, packet_for(server, key))
    assert kind == "forward"
    assert fwd_cost == pytest.approx(costs.parse_us + costs.handoff_send_us)


def test_handoff_work_cost():
    costs = MicaCosts()
    _m, server = make_server("sw_redirect", costs=costs)
    request = Request(1, GET, 0.0, key=1, key_hash=1)
    cost, (kind, _r) = server.handoff_work(1, request)
    assert kind == "proc"
    assert cost == pytest.approx(costs.handoff_recv_us + costs.proc_us)


def test_misroute_counter_increments():
    _m, server = make_server("syrup_sw")
    key = key_with_home(server, 7)
    server.packet_work(0, packet_for(server, key))  # wrong thread
    assert server.misroutes == 1


def test_calibration_matches_paper_saturation_points():
    """The three Figure-9 saturation loads follow from the cost model."""
    costs = MicaCosts()
    cores = 8
    hw = cores / costs.proc_us * 1e6
    sw = cores / (costs.proc_us + costs.remote_pull_us * 7 / 8) * 1e6
    base_per_req = (
        costs.parse_us + costs.proc_us
        + (costs.handoff_send_us + costs.handoff_recv_us) * 7 / 8
    )
    base = cores / base_per_req * 1e6
    assert 3.1e6 < hw < 3.4e6       # paper: 3.2-3.3M
    assert 2.6e6 < sw < 2.9e6       # paper: 2.7-2.8M
    assert 1.7e6 < base < 2.0e6     # paper: 1.7-1.8M
