"""System-level property tests (hypothesis): conservation, bounds, fairness.

These drive the whole machine with randomized workload parameters and check
invariants that must hold regardless of policy or load:

- conservation: every sent request is either completed or accounted as a
  drop somewhere in the stack;
- latency lower bound: nothing completes faster than the physical path;
- round robin's balance property;
- isolation: an app's traffic is never handled by another app's sockets.
"""

from hypothesis import given, settings, strategies as st

from repro import Hook, Machine, set_a
from repro.apps.rocksdb import RocksDbServer
from repro.policies.builtin import ROUND_ROBIN
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import GET_ONLY, GET_SCAN_995_005


def drive(machine, server, gen):
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()


@settings(max_examples=12, deadline=None)
@given(
    rate=st.integers(20_000, 520_000),
    seed=st.integers(0, 1000),
    use_rr=st.booleans(),
)
def test_request_conservation(rate, seed, use_rr):
    machine = Machine(set_a(), seed=seed)
    app = machine.register_app("app", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    if use_rr:
        app.deploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                          constants={"NUM_THREADS": 6})
    gen = OpenLoopGenerator(machine, 8080, rate, GET_ONLY,
                            duration_us=30_000)
    drive(machine, server, gen)
    sent = gen.sent_in_window()
    completed = gen.completed_in_window()
    stack_drops = machine.netstack.total_drops()
    assert completed + stack_drops == sent
    assert server.stats.completed.total() == completed


@settings(max_examples=10, deadline=None)
@given(rate=st.integers(10_000, 300_000), seed=st.integers(0, 1000))
def test_latency_lower_bound(rate, seed):
    machine = Machine(set_a(), seed=seed)
    app = machine.register_app("app", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    gen = OpenLoopGenerator(machine, 8080, rate, GET_SCAN_995_005,
                            duration_us=25_000)
    drive(machine, server, gen)
    costs = machine.costs
    floor = (
        2 * costs.wire_us
        + machine.config.nic.rx_process_us
        + costs.irq_delay_us
        + costs.softirq_us
        + costs.recv_syscall_us
        + 10.0  # minimum GET service
    )
    if gen.latency.count:
        assert min(gen.latency._samples) >= floor - 1e-6


@settings(max_examples=8, deadline=None)
@given(
    rate=st.integers(30_000, 200_000),
    threads=st.integers(2, 8),
    seed=st.integers(0, 100),
)
def test_round_robin_balance(rate, threads, seed):
    machine = Machine(set_a(num_app_cores=max(threads, 2)), seed=seed)
    app = machine.register_app("app", ports=[8080])
    server = RocksDbServer(machine, app, 8080, threads)
    app.deploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": threads})
    gen = OpenLoopGenerator(machine, 8080, rate, GET_ONLY,
                            duration_us=20_000)
    drive(machine, server, gen)
    # Balance holds on *selections*: under overload a socket's backlog can
    # overflow, so successful enqueues alone may skew while the policy's
    # round-robin choice stays perfectly balanced.
    counts = [s.enqueued + s.drops for s in server.sockets]
    assert max(counts) - min(counts) <= 1


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 500), rate=st.integers(20_000, 120_000))
def test_isolation_no_cross_app_delivery(seed, rate):
    machine = Machine(set_a(), seed=seed)
    alice = machine.register_app("alice", ports=[8080])
    bob = machine.register_app("bob", ports=[9090])
    a_server = RocksDbServer(machine, alice, 8080, 3)
    b_server = RocksDbServer(machine, bob, 9090, 3)
    alice.deploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                        constants={"NUM_THREADS": 3})
    a_gen = OpenLoopGenerator(machine, 8080, rate, GET_ONLY,
                              duration_us=15_000, stream="a")
    b_gen = OpenLoopGenerator(machine, 9090, rate, GET_ONLY,
                              duration_us=15_000, stream="b")
    a_server.response_sink = a_gen.deliver_response
    b_server.response_sink = b_gen.deliver_response
    a_gen.start()
    b_gen.start()
    machine.run()
    # every packet landed on a socket of its own app
    for sock in a_server.sockets:
        assert sock.app == "alice"
    assert sum(s.enqueued for s in a_server.sockets) == a_gen.sent_in_window()
    assert sum(s.enqueued for s in b_server.sockets) == b_gen.sent_in_window()
