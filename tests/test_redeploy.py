"""Undeploy → redeploy cycles at every network hook.

Regression coverage for two seed bugs: ``Syrupd.undeploy`` used to leave
the entry in the deployment table (so ``status()`` kept reporting dead
policies), and ``DeployedPolicy`` allocated fds from a class-level
counter shared across machines.  Plus the hot-swap ``redeploy()`` path:
same fd, metrics not double-registered, dispatch never interrupted.
"""

import pytest

from repro import Hook, Machine, set_a, set_b
from repro.apps.mica import MicaServer
from repro.apps.rocksdb import RocksDbServer
from repro.net.packet import FiveTuple, Packet
from repro.policies.builtin import HASH_BY_FLOW, MICA_HASH, ROUND_ROBIN
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import GET_ONLY, MICA_50_50

NETWORK_HOOKS = [Hook.SOCKET_SELECT, Hook.CPU_REDIRECT, Hook.XDP_SKB,
                 Hook.XDP_DRV, Hook.XDP_OFFLOAD]


class _Harness:
    """One machine + server + per-hook deploy/drive closures."""

    def __init__(self, hook):
        self.hook = hook
        if hook in (Hook.SOCKET_SELECT, Hook.CPU_REDIRECT):
            config = set_a() if hook == Hook.SOCKET_SELECT else set_b()
            self.machine = Machine(config, seed=5, metrics=True)
            self.app = self.machine.register_app("app", ports=[8080])
            self.server = RocksDbServer(self.machine, self.app, 8080, 4)
            self.port, self.rate, self.mix = 8080, 30_000, GET_ONLY
            if hook == Hook.SOCKET_SELECT:
                self.policy = ROUND_ROBIN
                self.constants = {"NUM_THREADS": 4}
            else:
                self.policy = HASH_BY_FLOW
                self.constants = {"NUM_EXECUTORS": 4}
        else:
            # XDP hooks: MICA. set_b lacks zero copy (XDP_SKB host path,
            # offload-capable); set_a is zero copy (native XDP_DRV).
            config = set_a(8) if hook == Hook.XDP_DRV else set_b(8)
            mode = "syrup_hw" if hook == Hook.XDP_OFFLOAD else "syrup_sw"
            self.machine = Machine(config, seed=5, metrics=True)
            self.app = self.machine.register_app("mica", ports=[9090])
            self.server = MicaServer(self.machine, self.app, 9090,
                                     num_threads=8, mode=mode)
            assert self.server.kernel_xdp_hook() == hook \
                or hook == Hook.XDP_OFFLOAD
            self.port, self.rate, self.mix = 9090, 200_000, MICA_50_50
            self.policy = MICA_HASH
            self.constants = {"NUM_EXECUTORS": 8}

    def deploy(self):
        return self.app.deploy_policy(self.policy, self.hook,
                                      constants=self.constants)

    def drive(self, duration=8_000):
        gen = OpenLoopGenerator(self.machine, self.port, self.rate,
                                self.mix, duration_us=duration,
                                num_flows=64)
        self.server.response_sink = gen.deliver_response
        gen.start()
        self.machine.run()
        return gen

    def site(self):
        machine = self.machine
        if self.hook == Hook.SOCKET_SELECT:
            return machine.netstack.socket_select_hook
        if self.hook == Hook.CPU_REDIRECT:
            return machine.netstack.cpu_redirect_hook
        if self.hook == Hook.XDP_OFFLOAD:
            return machine.nic.classifier
        return machine.netstack.xdp_hook


@pytest.mark.parametrize("hook", NETWORK_HOOKS)
def test_undeploy_redeploy_cycle(hook):
    harness = _Harness(hook)
    machine, app = harness.machine, harness.app
    first = harness.deploy()
    gen1 = harness.drive()
    assert gen1.completed_in_window() == gen1.sent_in_window()

    assert app.undeploy_policy(hook) == 1
    # the table entry is actually gone (seed bug: it used to linger)
    assert first not in machine.syrupd.deployed
    assert first.state == "undeployed"
    assert machine.syrupd.status() == []
    # the site dispatches kernel-default again
    pkt = Packet(FiveTuple(1, 2, 3, harness.port, 17), b"x" * 16)
    assert harness.site().decide(pkt) == ("none", None)
    # the undeploy event names the removed deployment's fd
    events = machine.obs.events.events(kind="undeploy")
    assert events and events[-1]["fd"] == first.fd

    reg_len = len(machine.obs.registry)
    second = harness.deploy()
    assert second.fd != first.fd
    gen2 = harness.drive()
    assert gen2.completed_in_window() == gen2.sent_in_window()
    # same app/hook series names: the registry dedupes, nothing doubles
    assert len(machine.obs.registry) == reg_len


def test_hot_swap_redeploy_keeps_fd_and_metrics():
    harness = _Harness(Hook.SOCKET_SELECT)
    machine, app = harness.machine, harness.app
    deployed = harness.deploy()
    gen1 = harness.drive()
    fd = deployed.fd

    swapped = app.redeploy_policy(HASH_BY_FLOW, Hook.SOCKET_SELECT,
                                  constants={"NUM_EXECUTORS": 4})
    assert swapped is deployed  # in-place swap, same fd
    assert deployed.fd == fd
    assert deployed.last_good is not None
    assert machine.obs.events.events(kind="redeploy")

    reg_len = len(machine.obs.registry)
    gen2 = harness.drive()
    assert gen2.completed_in_window() == gen2.sent_in_window()
    assert len(machine.obs.registry) == reg_len
    # the per-hook invocation counter carried across the swap: both
    # programs incremented the same (deduped) registry series
    counter = machine.obs.registry.counter("app", Hook.SOCKET_SELECT,
                                           "invocations")
    assert counter.value == gen1.sent_in_window() + gen2.sent_in_window()


def test_redeploy_requires_active_deployment():
    machine = Machine(set_a(), seed=6)
    app = machine.register_app("app", ports=[8080])
    RocksDbServer(machine, app, 8080, 4)
    with pytest.raises(ValueError):
        app.redeploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                            constants={"NUM_THREADS": 4})


def test_redeploy_rejects_thread_sched():
    machine = Machine(set_a(), seed=6, scheduler="ghost")
    app = machine.register_app("app", ports=[8080])
    with pytest.raises(ValueError):
        machine.syrupd.redeploy(app, object(), Hook.THREAD_SCHED)


def test_fds_are_per_daemon_not_global():
    def first_fd():
        machine = Machine(set_a(), seed=1)
        app = machine.register_app("app", ports=[8080])
        RocksDbServer(machine, app, 8080, 2)
        return app.deploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                                 constants={"NUM_THREADS": 2}).fd

    # seed bug: a class-level counter made the second machine's fds
    # continue from the first's
    assert first_fd() == first_fd()
