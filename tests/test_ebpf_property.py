"""Property-based tests (hypothesis) for the eBPF toolchain.

The central property: for any program in the safe subset and any input, the
interpreter and the JIT produce the same return value, the same global
state, and the same map contents.  Programs are generated as random ASTs in
the subset, so this also fuzzes the compiler and the verifier.
"""

import random

from hypothesis import given, settings, strategies as st

from conftest import random_packet, random_policy_source

from repro.constants import PASS
from repro.ebpf.compiler import compile_policy
from repro.ebpf.program import load_program
from repro.net.packet import FiveTuple, Packet

FLOW = FiveTuple(0x0A000002, 40001, 0x0A000001, 8080, 17)

# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(prog_seed=st.integers(0, 10**9), pkt_seed=st.integers(0, 10**9))
def test_interp_and_jit_agree_on_random_programs(prog_seed, pkt_seed):
    source = random_policy_source(prog_seed)
    program = compile_policy(source)
    packet = random_packet(pkt_seed)
    interp = load_program(program, rng=random.Random(1))
    jitted = load_program(program, rng=random.Random(1))
    for _ in range(3):
        a = interp.run_interp(packet).value
        b = jitted.run_jit(packet)
        assert a == b, f"\n{source}\ninterp={a} jit={b}"
    assert interp.globals == jitted.globals
    assert interp.maps[0].items() == jitted.maps[0].items()


@settings(max_examples=150, deadline=None)
@given(prog_seed=st.integers(0, 10**9))
def test_random_programs_verify_and_terminate(prog_seed):
    from repro.ebpf.verifier import verify

    source = random_policy_source(prog_seed)
    program = compile_policy(source)
    stats = verify(program)
    loaded = load_program(program)
    result = loaded.run_interp(random_packet(prog_seed))
    # forward-only jumps: execution is bounded by program length
    assert result.insns_executed <= stats.n_insns


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(
        st.tuples(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1)),
        max_size=30,
    )
)
def test_expression_semantics_match_python_model(values):
    """Compiled arithmetic over pairs equals the masked Python model."""
    mask = (1 << 64) - 1
    src = """
def schedule(pkt):
    return ((A * 3 + B) ^ (A >> 2) | (B & 255)) % 1000003
"""
    for a, b in values:
        expected = ((((a * 3 + b) & mask) ^ (a >> 2)) | (b & 255)) % 1000003
        loaded = load_program(compile_policy(src, constants={"A": a, "B": b}))
        assert loaded.run_interp(None).value == expected
        assert loaded.run_jit(None) == expected


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=96))
def test_verified_policies_never_read_out_of_bounds(data):
    """A verified program cannot fault on any packet contents/length."""
    src = """
def schedule(pkt):
    if pkt_len(pkt) < 32:
        return PASS
    return load_u64(pkt, 24) % 7
"""
    loaded = load_program(compile_policy(src))
    packet = Packet(FLOW, data)
    value = loaded.run_interp(packet).value
    if packet.length < 32:
        assert value == PASS
    else:
        assert value == packet.load(24, 8) % 7
