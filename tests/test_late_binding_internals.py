"""Late-binder internals: buffer mechanics, picks, capacity, chaining."""

import pytest

from repro import Machine, set_a
from repro.apps.rocksdb import RocksDbServer
from repro.core.late_binding import (
    LateBinder,
    fcfs_pick,
    shortest_first_pick,
)
from repro.net.packet import FiveTuple, Packet, build_payload
from repro.workload.requests import GET, Request, SCAN

FLOW = FiveTuple(0x0A000002, 40000, 0x0A000001, 8080, 17)


def make_setup(pick=None, capacity=4096):
    machine = Machine(set_a(), seed=71)
    app = machine.register_app("late", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 3)
    binder = LateBinder(machine, app, server, pick=pick, capacity=capacity)
    return machine, server, binder


def make_packet(rid, rtype=GET, service=10.0):
    request = Request(rid, rtype, service, key=rid)
    return Packet(FLOW, build_payload(rtype, 0, 0, rid), request=request)


def test_buffer_take_fcfs_order():
    machine, _server, binder = make_setup()
    for rid in range(3):
        binder._buffer_packet(make_packet(rid))
    machine.run()  # threads drain the buffer in order
    assert len(binder) == 0


def test_capacity_enforced():
    machine, server, binder = make_setup(capacity=2)
    # park the threads by not running the engine; overfill the buffer
    for thread in server.threads:
        thread.state = "running"  # prevent wakes from dispatching
    for rid in range(5):
        binder._buffer_packet(make_packet(rid))
    assert len(binder) == 2
    assert binder.drops == 3


def test_shortest_first_pick_selects_minimum():
    packets = [
        make_packet(1, SCAN, 700.0),
        make_packet(2, GET, 11.0),
        make_packet(3, SCAN, 650.0),
    ]
    assert shortest_first_pick(0, packets) == 1
    assert fcfs_pick(0, packets) == 0


def test_bad_pick_index_falls_back_to_head():
    machine, server, binder = make_setup(pick=lambda i, pkts: 999)
    for rid in range(3):
        binder._buffer_packet(make_packet(rid))
    machine.run()
    assert len(binder) == 0  # still drained despite the bad policy


def test_mid_buffer_take():
    taken = []

    def second_pick(i, pkts):
        return 1 if len(pkts) > 1 else 0

    machine, server, binder = make_setup(pick=second_pick)
    for thread in server.threads:
        thread.state = "running"
    for rid in range(3):
        binder._buffer_packet(make_packet(rid))
    pkt = binder._take(0)
    assert pkt.request.rid == 1
    assert len(binder) == 2


def test_hook_shim_only_claims_own_ports():
    machine, _server, binder = make_setup()
    shim = machine.netstack.socket_select_hook
    own = make_packet(1)
    foreign = Packet(FLOW._replace(dst_port=9999), build_payload(GET))
    assert shim.decide(own)[0] == "target"
    assert shim.decide(foreign) == ("none", None)
    assert shim.cost_us(own) > 0
    assert shim.cost_us(foreign) == 0.0


def test_buffered_packets_route_through_server_accounting():
    machine, server, binder = make_setup()
    from repro.workload.generator import OpenLoopGenerator
    from repro.workload.mixes import GET_ONLY

    gen = OpenLoopGenerator(machine, 8080, 30_000, GET_ONLY,
                            duration_us=20_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    # completions flowed through the server stats (inner source chaining)
    assert server.stats.completed.total() == gen.completed_in_window()
    assert gen.drop_fraction() == 0.0
