"""Reproducibility: identical seeds must give bit-identical results.

The experiment methodology depends on paired comparisons (same arrival
sequence under different policies), which requires full determinism of the
engine, RNG streams, and every component that consumes them.
"""

import pytest

from repro import Hook, Machine, set_a, set_b
from repro.apps.mica import MicaServer
from repro.apps.rocksdb import RocksDbServer
from repro.policies.builtin import SCAN_AVOID
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import GET_SCAN_995_005, MICA_50_50


def rocksdb_fingerprint(seed):
    machine = Machine(set_a(), seed=seed)
    app = machine.register_app("r", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6, mark_scans=True)
    app.deploy_policy(SCAN_AVOID, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": 6})
    gen = OpenLoopGenerator(machine, 8080, 150_000, GET_SCAN_995_005,
                            duration_us=50_000, warmup_us=10_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    return (
        gen.latency.count,
        round(gen.latency.p99(), 9),
        round(gen.latency.mean(), 9),
        tuple(s.enqueued for s in server.sockets),
        machine.engine.events_dispatched,
    )


def test_rocksdb_run_is_deterministic():
    assert rocksdb_fingerprint(17) == rocksdb_fingerprint(17)


def test_different_seeds_differ():
    assert rocksdb_fingerprint(17) != rocksdb_fingerprint(18)


def mica_fingerprint(seed):
    machine = Machine(set_b(8), seed=seed)
    app = machine.register_app("m", ports=[9090])
    server = MicaServer(machine, app, 9090, mode="sw_redirect")
    gen = OpenLoopGenerator(machine, 9090, 800_000, MICA_50_50,
                            duration_us=15_000, num_flows=64)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    return (gen.latency.count, round(gen.latency.p999(), 9),
            server.handoffs, machine.engine.events_dispatched)


def test_mica_run_is_deterministic():
    assert mica_fingerprint(23) == mica_fingerprint(23)


def test_ghost_run_is_deterministic():
    def fingerprint():
        from repro.policies.thread_policies import GetPriorityPolicy
        from repro.workload.mixes import GET_SCAN_50_50

        machine = Machine(set_a(), seed=29, scheduler="ghost")
        app = machine.register_app("g", ports=[8080])
        server = RocksDbServer(machine, app, 8080, 12, mark_types=True)
        deployed = app.deploy_policy(GetPriorityPolicy(server.type_map),
                                     Hook.THREAD_SCHED)
        gen = OpenLoopGenerator(machine, 8080, 4_000, GET_SCAN_50_50,
                                duration_us=100_000)
        server.response_sink = gen.deliver_response
        gen.start()
        machine.run()
        agent = deployed.agent
        return (gen.latency.count, round(gen.latency.p99(), 9),
                agent.commits, agent.preemptions, agent.messages_processed)

    assert fingerprint() == fingerprint()


def test_experiment_harness_is_deterministic():
    from repro.experiments.figure2 import run_figure2

    a = run_figure2(loads=[200_000], duration_us=40_000, warmup_us=10_000)
    b = run_figure2(loads=[200_000], duration_us=40_000, warmup_us=10_000)
    assert a.rows[0].columns == b.rows[0].columns


def faulty_fingerprint(plan_seed):
    """Full-observability fingerprint of a run under an injected-fault
    plan: metrics snapshot AND the serialized event trace must be
    bit-identical for identical (machine seed, plan)."""
    import io

    from repro import FaultPlan, HealthPolicy

    plan = FaultPlan(seed=plan_seed).vmfault(
        0.05, app="r", hook=Hook.SOCKET_SELECT
    )
    machine = Machine(set_a(), seed=17, metrics=True, faults=plan,
                      health=HealthPolicy(window_us=10_000.0, max_faults=5))
    app = machine.register_app("r", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6, mark_scans=True)
    app.deploy_policy(SCAN_AVOID, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": 6})
    gen = OpenLoopGenerator(machine, 8080, 150_000, GET_SCAN_995_005,
                            duration_us=50_000, warmup_us=10_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    trace = io.StringIO()
    machine.obs.events.to_jsonl(trace)
    return (
        gen.latency.count,
        round(gen.latency.p99(), 9),
        machine.obs.snapshot(),
        trace.getvalue(),
        machine.engine.events_dispatched,
    )


def test_fault_injection_is_deterministic():
    assert faulty_fingerprint(11) == faulty_fingerprint(11)


def test_different_fault_plan_seeds_differ():
    assert faulty_fingerprint(11) != faulty_fingerprint(12)
