"""Tests for the request tracer."""

import math

import pytest

from repro import Hook, Machine, set_a
from repro.apps.rocksdb import RocksDbServer
from repro.policies.builtin import ROUND_ROBIN, SCAN_AVOID
from repro.trace import RequestTracer, STAGES
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import GET_ONLY, GET_SCAN_995_005


def traced_run(policy=None, constants=None, mix=GET_ONLY, rate=60_000,
               duration=60_000, mark_scans=False, sample_every=1):
    machine = Machine(set_a(), seed=51)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6, mark_scans=mark_scans)
    if policy is not None:
        app.deploy_policy(policy, Hook.SOCKET_SELECT, constants=constants)
    tracer = RequestTracer(machine, server, warmup_us=duration / 4,
                           sample_every=sample_every)
    gen = OpenLoopGenerator(machine, 8080, rate, mix, duration_us=duration,
                            warmup_us=duration / 4)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    return machine, server, tracer, gen


def test_stages_sum_to_total_within_wire_tail():
    machine, _s, tracer, gen = traced_run(rate=20_000, duration=30_000)
    b = tracer.breakdown(q=50.0)
    # total includes the response wire leg the stage sum does not
    parts = b["wire_nic"] + b["stack"] + b["socket_wait"] + b["service"]
    assert b["total"] == pytest.approx(parts + machine.costs.wire_us, rel=0.2)


def test_all_stages_populated():
    _m, _s, tracer, _g = traced_run(rate=20_000, duration=30_000)
    breakdown = tracer.breakdown()
    assert set(breakdown) == set(STAGES) | {"incomplete_traces"}
    assert all(not math.isnan(v) for v in breakdown.values())
    assert tracer.stages["total"].count > 100


def test_sampling_reduces_overhead():
    _m, _s, sparse, _g = traced_run(sample_every=10)
    _m2, _s2, dense, _g2 = traced_run(sample_every=1)
    assert 0 < sparse.stages["total"].count < dense.stages["total"].count


def test_tracer_attributes_hol_blocking_to_socket_wait():
    """SCAN Avoid's whole effect shows up in the socket_wait stage."""
    _m1, _s1, rr, _g1 = traced_run(
        policy=ROUND_ROBIN, constants={"NUM_THREADS": 6},
        mix=GET_SCAN_995_005, rate=120_000, duration=120_000,
    )
    _m2, _s2, sa, _g2 = traced_run(
        policy=SCAN_AVOID, constants={"NUM_THREADS": 6},
        mix=GET_SCAN_995_005, rate=120_000, duration=120_000,
        mark_scans=True,
    )
    assert sa.breakdown()["socket_wait"] < rr.breakdown()["socket_wait"] / 3
    # other stages barely move
    assert sa.breakdown()["stack"] == pytest.approx(
        rr.breakdown()["stack"], rel=0.5
    )


def test_tracer_does_not_perturb_results():
    _m1, _s1, _t, traced_gen = traced_run(rate=40_000, duration=30_000)
    machine = Machine(set_a(), seed=51)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    gen = OpenLoopGenerator(machine, 8080, 40_000, GET_ONLY,
                            duration_us=30_000, warmup_us=7_500)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    assert traced_gen.latency.p99() == pytest.approx(gen.latency.p99())


def test_render_contains_all_stages():
    _m, _s, tracer, _g = traced_run(rate=10_000, duration=20_000)
    text = tracer.render()
    for stage in STAGES:
        assert stage in text


def test_incomplete_traces_counted_not_silently_dropped():
    machine = Machine(set_a(), seed=51, metrics=True)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6)
    tracer = RequestTracer(machine, server)
    gen = OpenLoopGenerator(machine, 8080, 20_000, GET_ONLY,
                            duration_us=20_000, warmup_us=5_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    assert tracer.incomplete_traces == 0

    # simulate a trace whose socket-enqueue timestamp never fired
    from repro.trace import _Timestamps
    ts = _Timestamps(sent=0.0)
    ts.nic, ts.started, ts.completed = 1.0, 2.0, 3.0  # enqueued stays None
    before = tracer.stages["total"].count
    tracer._record(ts)
    assert tracer.incomplete_traces == 1
    assert tracer.breakdown()["incomplete_traces"] == 1
    assert tracer.stages["total"].count == before
    # surfaced through the metrics registry too
    assert machine.obs.registry.value("rocksdb", "tracer",
                                      "incomplete_traces") == 1
    assert "1 incomplete traces discarded" in tracer.render()
