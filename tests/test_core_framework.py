"""Tests for the Syrup core: maps, executors, hook sites, syrupd, API."""

import pytest

from repro import DROP, Hook, IsolationError, Machine, PASS, set_a, set_b
from repro.core.api import (
    syr_map_close,
    syr_map_lookup_elem,
    syr_map_open,
    syr_map_update_elem,
)
from repro.core.executors import ExecutorMap
from repro.core.hooks import HookSite
from repro.core.maps import MapRegistry, PermissionDenied
from repro.config import CostModel, NicSpec
from repro.ebpf.compiler import compile_policy
from repro.ebpf.program import load_program
from repro.net.packet import FiveTuple, Packet, build_payload

FLOW = FiveTuple(0x0A000002, 40000, 0x0A000001, 8080, 17)


def make_packet(dst_port=8080, rtype=1):
    return Packet(FLOW._replace(dst_port=dst_port), build_payload(rtype))


# ----------------------------------------------------------------------
# Maps / registry
# ----------------------------------------------------------------------
def make_registry():
    return MapRegistry(CostModel(), NicSpec())


def test_registry_create_and_reopen_same_map():
    reg = make_registry()
    a = reg.create("app", "m", size=16)
    b = reg.create("app", "m", size=99)
    assert a is b


def test_registry_permission_denied_for_private_maps():
    reg = make_registry()
    reg.create("alice", "secret", size=8)
    path = reg.pin_path("alice", "secret")
    assert reg.open(path, "alice") is not None
    with pytest.raises(PermissionDenied):
        reg.open(path, "bob")


def test_registry_shared_maps_open_cross_app():
    reg = make_registry()
    reg.create("alice", "pub", size=8, shared=True)
    assert reg.open(reg.pin_path("alice", "pub"), "bob") is not None


def test_registry_unknown_path():
    reg = make_registry()
    with pytest.raises(KeyError):
        reg.open("/sys/fs/bpf/syrup/nobody/none", "x")


def test_map_placement_latencies():
    reg = make_registry()
    host = reg.create("a", "h", placement="host")
    offload = reg.create("a", "o", placement="offload")
    assert host.op_latency_us() == pytest.approx(1.0)
    assert offload.op_latency_us() == pytest.approx(24.0)
    assert offload.op_latency_us(contended=True) > offload.op_latency_us()


def test_map_userspace_accounting():
    reg = make_registry()
    m = reg.create("a", "m")
    m.update(1, 10)
    m.lookup(1)
    m.atomic_add(1, 5)
    m.delete(1)
    assert m.userspace_ops == 4
    assert m.userspace_time_us == pytest.approx(4.0)


def test_map_kinds():
    reg = make_registry()
    arr = reg.create("a", "arr", size=4, kind="array")
    assert arr.bpf_map.kind == "array"
    with pytest.raises(ValueError):
        reg.create("a", "bad", kind="treap")


# ----------------------------------------------------------------------
# Executor maps
# ----------------------------------------------------------------------
def test_executor_map_set_resolve():
    em = ExecutorMap("x", max_entries=4)
    em.set(0, "sock0")
    assert em.resolve(0) == "sock0"
    assert em.resolve(3) is None
    assert em.invalid_lookups == 1
    assert 0 in em and 3 not in em


def test_executor_map_rejects_out_of_range():
    em = ExecutorMap("x", max_entries=4)
    with pytest.raises(KeyError):
        em.set(4, "nope")
    with pytest.raises(KeyError):
        em.set(-1, "nope")


def test_executor_map_populate():
    em = ExecutorMap("x", max_entries=8)
    em.populate(["a", "b", "c"])
    assert [em.resolve(i) for i in range(3)] == ["a", "b", "c"]


# ----------------------------------------------------------------------
# Hook site dispatch / isolation
# ----------------------------------------------------------------------
def deploy_to_site(site, app_name, ports, source, executors, constants=None):
    loaded = load_program(compile_policy(source, constants=constants))
    return site.install(app_name, ports, loaded, executors)


def test_hook_site_dispatches_by_port():
    site = HookSite(Hook.SOCKET_SELECT, CostModel())
    ex_a = ExecutorMap("a")
    ex_a.populate(["sa0", "sa1"])
    ex_b = ExecutorMap("b")
    ex_b.populate(["sb0"])
    deploy_to_site(site, "alice", [8080], "def schedule(pkt):\n    return 1\n", ex_a)
    deploy_to_site(site, "bob", [9090], "def schedule(pkt):\n    return 0\n", ex_b)
    assert site.decide(make_packet(8080)) == ("target", "sa1")
    assert site.decide(make_packet(9090)) == ("target", "sb0")
    assert site.decide(make_packet(7777)) == ("none", None)


def test_hook_site_pass_drop():
    site = HookSite(Hook.SOCKET_SELECT, CostModel())
    deploy_to_site(site, "a", [8080],
                   "def schedule(pkt):\n    return PASS\n", ExecutorMap("e"))
    deploy_to_site(site, "a", [8081],
                   "def schedule(pkt):\n    return DROP\n", ExecutorMap("e"))
    assert site.decide(make_packet(8080)) == ("pass", None)
    assert site.decide(make_packet(8081)) == ("drop", None)
    assert site.pass_decisions == 1 and site.drop_decisions == 1


def test_hook_site_unpopulated_executor_falls_back_to_pass():
    site = HookSite(Hook.SOCKET_SELECT, CostModel())
    deploy_to_site(site, "a", [8080],
                   "def schedule(pkt):\n    return 7\n", ExecutorMap("e"))
    assert site.decide(make_packet(8080)) == ("pass", None)


def test_hook_site_port_conflict_between_apps():
    site = HookSite(Hook.SOCKET_SELECT, CostModel())
    deploy_to_site(site, "alice", [8080],
                   "def schedule(pkt):\n    return PASS\n", ExecutorMap("e"))
    with pytest.raises(PermissionError):
        deploy_to_site(site, "bob", [8080],
                       "def schedule(pkt):\n    return PASS\n", ExecutorMap("e"))


def test_hook_site_cost_reflects_policy():
    site = HookSite(Hook.SOCKET_SELECT, CostModel())
    deploy_to_site(site, "a", [8080],
                   "def schedule(pkt):\n    return 0\n", ExecutorMap("e"))
    assert site.cost_us(make_packet(8080)) > 0.0
    assert site.cost_us(make_packet(9999)) == 0.0


def test_hook_site_uninstall():
    site = HookSite(Hook.SOCKET_SELECT, CostModel())
    deploy_to_site(site, "a", [8080],
                   "def schedule(pkt):\n    return PASS\n", ExecutorMap("e"))
    site.uninstall("a", [8080])
    assert site.decide(make_packet(8080)) == ("none", None)


# ----------------------------------------------------------------------
# Syrupd / App API
# ----------------------------------------------------------------------
def test_register_app_port_ownership():
    machine = Machine(set_a())
    machine.register_app("a", ports=[8080])
    with pytest.raises(IsolationError):
        machine.register_app("b", ports=[8080])
    with pytest.raises(ValueError):
        machine.register_app("a", ports=[9090])


def test_deploy_rejects_foreign_ports():
    machine = Machine(set_a())
    app = machine.register_app("a", ports=[8080])
    machine.register_app("b", ports=[9090])
    with pytest.raises(IsolationError):
        app.deploy_policy("def schedule(pkt):\n    return PASS\n",
                          Hook.SOCKET_SELECT, ports=[9090])


def test_deploy_unknown_hook_rejected():
    machine = Machine(set_a())
    app = machine.register_app("a", ports=[8080])
    with pytest.raises(ValueError):
        app.deploy_policy("def schedule(pkt):\n    return PASS\n", "nonsense")


def test_deploy_creates_pinned_maps():
    machine = Machine(set_a())
    app = machine.register_app("a", ports=[8080])
    src = 'm = syr_map("mymap", 32)\n\ndef schedule(pkt):\n    return map_lookup(m, 0)\n'
    deployed = app.deploy_policy(src, Hook.SOCKET_SELECT)
    handle = app.map_open(app.map_path("mymap"))
    handle.update(0, 5)
    assert deployed.program.maps[0].lookup(0) == 5  # same underlying map


def test_thread_hook_requires_ghost():
    machine = Machine(set_a(), scheduler="pinned")

    class P:
        def schedule(self, status):
            return []

    app = machine.register_app("a", ports=[8080])
    with pytest.raises(ValueError):
        app.deploy_policy(P(), Hook.THREAD_SCHED)


def test_thread_hook_requires_schedule_method():
    machine = Machine(set_a(), scheduler="ghost")
    app = machine.register_app("a", ports=[8080])
    with pytest.raises(TypeError):
        app.deploy_policy(lambda status: [], Hook.THREAD_SCHED)


def test_xdp_drv_requires_zero_copy_nic():
    machine = Machine(set_b())  # Netronome: no zero copy
    app = machine.register_app("a", ports=[8080])
    with pytest.raises(ValueError):
        app.deploy_policy("def schedule(pkt):\n    return PASS\n", Hook.XDP_DRV)


def test_xdp_offload_only_on_capable_nic():
    machine = Machine(set_a())  # Intel: no offload
    app = machine.register_app("a", ports=[8080])
    with pytest.raises(ValueError):
        app.deploy_policy("def schedule(pkt):\n    return PASS\n",
                          Hook.XDP_OFFLOAD)


def test_integer_executors_prepopulated():
    machine = Machine(set_b())
    app = machine.register_app("a", ports=[8080])
    app.deploy_policy("def schedule(pkt):\n    return 0\n", Hook.CPU_REDIRECT)
    em = app.executor_map(Hook.CPU_REDIRECT)
    assert len(em) == machine.config.num_softirq_cores
    assert em.resolve(0) == 0


def test_table1_free_functions():
    machine = Machine(set_a())
    app = machine.register_app("a", ports=[8080])
    app.create_map("m", size=8)
    handle = syr_map_open(app, app.map_path("m"))
    assert syr_map_update_elem(handle, 1, 42) == 0
    assert syr_map_lookup_elem(handle, 1) == 42
    assert syr_map_lookup_elem(handle, 9) is None
    assert syr_map_close(handle) == 0


def test_register_socket_ownership_check():
    machine = Machine(set_a())
    alice = machine.register_app("alice", ports=[8080])
    bob = machine.register_app("bob", ports=[9090])
    sock = machine.create_udp_socket(alice, 8080)
    with pytest.raises(PermissionError):
        bob.register_socket(sock, 0)
