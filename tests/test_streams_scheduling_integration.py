"""KCM stream scheduling integrated with real server threads.

Ties §6.4's pieces together end to end: framed requests arrive over
byte streams, the KCM multiplexor extracts them, and a Syrup-style matching
function schedules each *request* (not each segment) to a worker thread —
request-level scheduling over streams.
"""

import struct

from repro.config import CostModel
from repro.kernel.cpu import Core
from repro.kernel.sched import PinnedScheduler
from repro.kernel.streams import KcmMultiplexor
from repro.kernel.threads import KThread
from repro.sim.engine import Engine


def frame(payload):
    return struct.pack("<I", len(payload)) + payload


class QueueWorker:
    """Minimal worker: a queue feeding a KThread; 5 us per request."""

    def __init__(self, engine, scheduler, tid):
        from collections import deque

        self.engine = engine
        self.queue = deque()
        self.done = []
        self.thread = KThread(tid=tid)
        self.thread.source = self
        scheduler.attach(self.thread)

    def enqueue(self, payload):
        self.queue.append(payload)
        self.thread.wake()

    def pull(self):
        if not self.queue:
            return None
        return (5.0, self.queue.popleft())

    def complete(self, payload):
        self.done.append((payload, self.engine.now))


def build(num_workers=3, schedule=None):
    engine = Engine()
    cores = [Core(i) for i in range(num_workers)]
    scheduler = PinnedScheduler(engine, cores, CostModel(ctx_switch_us=0.5))
    workers = [QueueWorker(engine, scheduler, i) for i in range(num_workers)]
    kcm = KcmMultiplexor(workers=workers, schedule=schedule)
    return engine, workers, kcm


def test_streamed_requests_are_served_by_threads():
    engine, workers, kcm = build()
    data = b"".join(frame(f"req-{i}".encode()) for i in range(6))
    # arrive in awkward segment sizes
    for i in range(0, len(data), 7):
        kcm.receive_segment(1, data[i : i + 7])
    engine.run()
    served = sorted(p for w in workers for p, _t in w.done)
    assert served == sorted(f"req-{i}".encode() for i in range(6))


def test_round_robin_spreads_stream_requests_across_threads():
    engine, workers, kcm = build()
    for i in range(9):
        kcm.receive_segment(2, frame(b"x" * (i + 1)))
    engine.run()
    assert [len(w.done) for w in workers] == [3, 3, 3]


def test_sita_like_stream_policy_by_request_size():
    """Big requests (SCAN-like) to worker 0, small ones spread."""
    state = {"rr": 0}

    def schedule(conn_id, payload):
        if len(payload) >= 64:
            return 0
        state["rr"] += 1
        return 1 + state["rr"] % 2

    engine, workers, kcm = build(schedule=schedule)
    for i in range(4):
        kcm.receive_segment(1, frame(b"B" * 100))
        kcm.receive_segment(1, frame(b"s"))
    engine.run()
    assert len(workers[0].done) == 4
    assert all(len(p) >= 64 for p, _t in workers[0].done)
    assert len(workers[1].done) + len(workers[2].done) == 4


def test_interleaved_connections_keep_integrity():
    engine, workers, kcm = build()
    a = frame(b"alpha")
    b = frame(b"bravo")
    # byte-interleave two connections
    for i in range(max(len(a), len(b))):
        if i < len(a):
            kcm.receive_segment(10, a[i : i + 1])
        if i < len(b):
            kcm.receive_segment(20, b[i : i + 1])
    engine.run()
    served = {p for w in workers for p, _t in w.done}
    assert served == {b"alpha", b"bravo"}
    assert kcm.pending_bytes(10) == 0 and kcm.pending_bytes(20) == 0
