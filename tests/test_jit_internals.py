"""JIT internals: generated-source inspection and semantic corners."""

import random

import pytest

from repro.constants import PASS
from repro.ebpf.compiler import compile_policy
from repro.ebpf.jit import jit_compile
from repro.ebpf.program import load_program


def source_of(policy_src, constants=None):
    program = compile_policy(policy_src, constants=constants)
    fn = jit_compile(program)
    return fn.jit_source, program


def test_jit_masks_wrapping_arithmetic():
    src, _ = source_of("def schedule(pkt):\n    x = 1\n    return x + 2\n")
    assert str((1 << 64) - 1) in src


def test_jit_uses_helpers_for_division():
    src, _ = source_of("def schedule(pkt):\n    x = 9\n    return x // 3 + x % 2\n")
    assert "_div(" in src and "_mod(" in src


def test_jit_maps_globals_to_slots():
    src, _ = source_of(
        "g = 5\n\ndef schedule(pkt):\n    global g\n    g += 1\n    return g\n"
    )
    assert "G[0]" in src
    assert "u_g" not in src


def test_jit_locals_are_prefixed():
    src, _ = source_of("def schedule(pkt):\n    value = 3\n    return value\n")
    assert "u_value" in src


def test_jit_packet_ops():
    src, _ = source_of("""
def schedule(pkt):
    if pkt_len(pkt) < 8:
        return PASS
    return load_u32(pkt, 4)
""")
    assert "u_pkt.length" in src
    assert "u_pkt.load(4, 4)" in src


def test_jit_loop_values_are_masked_literals():
    src, _ = source_of("""
def schedule(pkt):
    t = 0
    for i in range(-2, 2):
        t += i
    return t
""")
    mask = (1 << 64)
    assert str(mask - 2) in src  # -2 masked
    # and the semantics match the interpreter exactly
    program = compile_policy("""
def schedule(pkt):
    t = 0
    for i in range(-2, 2):
        t += i
    return t
""")
    loaded = load_program(program)
    assert loaded.run_interp(None).value == loaded.run_jit(None)


def test_jit_empty_loop_body_is_valid_python():
    loaded = load_program(compile_policy("""
def schedule(pkt):
    for i in range(0):
        pass
    return 7
"""))
    assert loaded.run_jit(None) == 7


def test_jit_shift_masking():
    program = compile_policy("""
def schedule(pkt):
    a = 1
    b = 200
    return (a << b) + (a >> b)
""")
    loaded = load_program(program)
    # shift amounts masked to 6 bits: 200 & 63 == 8
    expected = (1 << 8) + 0
    assert loaded.run_interp(None).value == expected
    assert loaded.run_jit(None) == expected


def test_jit_name_collisions_with_runtime_are_impossible():
    # user variables named like the JIT runtime's internals must not clash
    src = """
def schedule(pkt):
    G = 1
    M = 2
    _rng = 3
    _div = 4
    return G + M + _rng + _div
"""
    loaded = load_program(compile_policy(src))
    assert loaded.run_jit(None) == 10
    assert loaded.run_interp(None).value == 10


def test_jit_rng_stream_matches_interpreter():
    program = compile_policy(
        "def schedule(pkt):\n    return get_random() + get_random()\n"
    )
    a = load_program(program, rng=random.Random(77))
    b = load_program(program, rng=random.Random(77))
    assert a.run_interp(None).value == b.run_jit(None)


def test_jit_source_is_attached_for_debugging():
    program = compile_policy("def schedule(pkt):\n    return 1\n")
    fn = jit_compile(program)
    assert fn.jit_source.startswith("def _policy(")
