"""Tests for the self-healing policy lifecycle (repro.core.health).

Covers the three mechanisms end to end: quarantine of a faulting
network policy (the figure_faults acceptance scenario), automatic
rollback after a bad redeploy, and the ghOSt-agent watchdog with its
CFS fallback invariant (no enclave thread left stranded unrunnable).
"""

import pytest

from repro import FaultPlan, HealthPolicy, Hook, Machine, set_a
from repro.apps.rocksdb import RocksDbServer
from repro.core.health import DeploymentHealth
from repro.kernel.cfs import CfsScheduler
from repro.policies.builtin import HASH_BY_FLOW, ROUND_ROBIN, SCAN_AVOID
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import GET_ONLY, GET_SCAN_995_005


# ----------------------------------------------------------------------
# Units: thresholds and the sliding window
# ----------------------------------------------------------------------
def test_backoff_grows_exponentially_and_caps():
    policy = HealthPolicy(backoff_base_us=100.0, backoff_factor=2.0,
                          backoff_cap_us=500.0)
    assert policy.backoff_us(0) == 100.0
    assert policy.backoff_us(1) == 200.0
    assert policy.backoff_us(2) == 400.0
    assert policy.backoff_us(3) == 500.0  # capped
    assert policy.backoff_us(10) == 500.0


def test_deployment_health_window_prunes_old_faults():
    health = DeploymentHealth(window_us=100.0, max_faults=2)
    assert health.record_fault(0.0) is False
    assert health.record_fault(10.0) is False
    assert health.record_fault(20.0) is True  # 3 faults inside 100us
    # much later: the old faults age out of the window
    assert health.record_fault(1_000.0) is False
    assert health.faults_in_window(1_000.0) == 1
    assert health.runtime_faults == 4


# ----------------------------------------------------------------------
# Quarantine: the figure_faults acceptance scenario
# ----------------------------------------------------------------------
def _drive_scan_avoid(faults=None, health=None, load=100_000,
                      duration=60_000, seed=3):
    machine = Machine(set_a(), seed=seed, metrics=True, faults=faults,
                      health=health)
    app = machine.register_app("rocksdb", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 6, mark_scans=True)
    app.deploy_policy(SCAN_AVOID, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": 6})
    gen = OpenLoopGenerator(machine, 8080, load, GET_SCAN_995_005,
                            duration_us=duration, warmup_us=duration * 0.25)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    return machine, server, gen


def test_quarantine_uninstalls_sick_policy_within_window():
    window_us, max_faults = 10_000.0, 5
    plan = FaultPlan(seed=11).vmfault(0.05, app="rocksdb",
                                      hook=Hook.SOCKET_SELECT)
    machine, _server, _gen = _drive_scan_avoid(
        faults=plan,
        health=HealthPolicy(window_us=window_us, max_faults=max_faults),
    )
    quarantines = [e for e in machine.obs.events.events(kind="lifecycle")
                   if e["action"] == "quarantine"]
    assert len(quarantines) == 1
    assert quarantines[0]["reason"] == "fault_window"
    faults = machine.obs.events.events(kind="runtime_fault")
    # the breach needs max_faults+1 inside one window; the uninstall
    # lands no later than one window after the first fault
    assert quarantines[0]["ts"] <= faults[0]["ts"] + window_us + 1e-6
    # no fault ever lands after the uninstall
    assert all(f["ts"] <= quarantines[0]["ts"] for f in faults)
    row = machine.syrupd.health()[0]
    assert row["state"] == "quarantined"
    assert max_faults < row["runtime_faults"] <= 3 * max_faults
    # the hook dispatches kernel-default again
    from repro.net.packet import FiveTuple, Packet

    pkt = Packet(FiveTuple(1, 2, 3, 8080, 17), b"x" * 16)
    assert machine.netstack.socket_select_hook.decide(pkt) == ("none", None)


def test_figure_faults_contrast_quarantine_on_vs_off():
    """Acceptance: quarantine off burns the tail; on degrades to vanilla."""
    from repro.experiments import run_figure_faults

    table = run_figure_faults(
        loads=[100_000], duration_us=60_000.0, warmup_us=15_000.0,
        fault_rate=0.05, window_us=10_000.0, max_faults=5,
    )
    rows = {r.columns["variant"]: r.columns for r in table.rows}
    # with the lifecycle disabled every injected fault costs a request
    assert rows["no_quarantine"]["runtime_faults"] > 50
    assert rows["no_quarantine"]["drop_pct"] > 1.0
    assert rows["no_quarantine"]["quarantined"] == 0
    # with it enabled the policy is uninstalled after a handful of
    # faults and the run degrades to the kernel-default baseline
    assert rows["quarantine"]["quarantined"] == 1
    assert rows["quarantine"]["runtime_faults"] <= 3 * 5
    assert (rows["quarantine"]["drop_pct"]
            <= rows["vanilla"]["drop_pct"] + 0.5)


# ----------------------------------------------------------------------
# Rollback
# ----------------------------------------------------------------------
def test_runtime_fault_after_redeploy_rolls_back_to_last_good():
    # faults only inside [30ms, 32ms): the replacement (deployed at
    # 20ms) faults first and is rolled back immediately
    plan = FaultPlan(seed=5).vmfault(1.0, app="r", hook=Hook.SOCKET_SELECT,
                                     start_us=30_000.0, until_us=32_000.0)
    machine = Machine(set_a(), seed=7, metrics=True, faults=plan,
                      health=HealthPolicy(max_faults=10**9))
    app = machine.register_app("r", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 4)
    deployed = app.deploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                                 constants={"NUM_THREADS": 4})
    machine.engine.at(20_000.0, lambda: app.redeploy_policy(
        HASH_BY_FLOW, Hook.SOCKET_SELECT, constants={"NUM_EXECUTORS": 4}
    ))
    gen = OpenLoopGenerator(machine, 8080, 50_000, GET_ONLY,
                            duration_us=60_000)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    assert machine.obs.events.events(kind="redeploy")
    rollbacks = [e for e in machine.obs.events.events(kind="lifecycle")
                 if e["action"] == "rollback"]
    assert len(rollbacks) == 1
    assert rollbacks[0]["reason"] == "runtime_fault"
    assert deployed.state == "active"
    assert deployed.last_good is None
    assert deployed.health.rollbacks == 1
    # the program behind the deployment is the original source again
    assert deployed.program.program.source == ROUND_ROBIN
    # traffic kept flowing after the rollback
    assert gen.completed_in_window() > 0


def test_redeploy_verify_failure_swaps_nothing():
    from repro.ebpf import CompileError, VerifierError

    machine = Machine(set_a(), seed=8, metrics=True)
    app = machine.register_app("r", ports=[8080])
    RocksDbServer(machine, app, 8080, 4)
    deployed = app.deploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                                 constants={"NUM_THREADS": 4})
    old_program = deployed.program
    with pytest.raises((CompileError, VerifierError)):
        app.redeploy_policy("def schedule(pkt):\n    return undefined_name\n",
                            Hook.SOCKET_SELECT)
    # nothing was swapped: the still-installed program IS the rollback
    assert deployed.program is old_program
    assert deployed.state == "active"
    assert deployed.last_good is None
    assert deployed.health.rollbacks == 1
    rollbacks = [e for e in machine.obs.events.events(kind="lifecycle")
                 if e["action"] == "rollback"]
    assert rollbacks and rollbacks[0]["reason"] == "verify_failed"


# ----------------------------------------------------------------------
# ghOSt agent watchdog
# ----------------------------------------------------------------------
class _Fifo:
    def schedule(self, status):
        return [
            (t, c.cid)
            for t, c in zip(status.runnable, status.idle_cores())
        ]


def _drive_ghost(plan, health=None, duration=100_000, rate=4_000):
    machine = Machine(set_a(), seed=29, scheduler="ghost", metrics=True,
                      faults=plan, health=health)
    app = machine.register_app("g", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 8)
    deployed = app.deploy_policy(_Fifo(), Hook.THREAD_SCHED)
    gen = OpenLoopGenerator(machine, 8080, rate, GET_ONLY,
                            duration_us=duration)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    return machine, server, gen, deployed


def test_watchdog_restarts_crashed_agent():
    plan = FaultPlan(seed=1).agent_crash("g", at_us=30_000.0)
    machine, _server, gen, deployed = _drive_ghost(plan)
    agent = deployed.agent
    assert agent.crash_count == 1
    assert agent.restart_count == 1
    assert not agent.crashed
    assert deployed.state == "active"
    assert machine.obs.events.events(kind="agent_crash")
    restarts = machine.obs.events.events(kind="watchdog_restart")
    assert len(restarts) == 1
    assert restarts[0]["attempt"] == 0
    # the restarted agent kept scheduling: every request completed
    assert gen.completed_in_window() == gen.sent_in_window()


def test_watchdog_backoff_grows_between_restarts():
    plan = (FaultPlan(seed=1)
            .agent_crash("g", at_us=20_000.0)
            .agent_crash("g", at_us=40_000.0))
    health = HealthPolicy(backoff_base_us=100.0, backoff_factor=2.0)
    machine, _server, _gen, deployed = _drive_ghost(plan, health=health)
    restarts = machine.obs.events.events(kind="watchdog_restart")
    assert [r["attempt"] for r in restarts] == [0, 1]
    assert restarts[0]["backoff_us"] == 100.0
    assert restarts[1]["backoff_us"] == 200.0
    assert deployed.agent.restart_count == 2


def test_watchdog_exhaustion_falls_back_to_cfs():
    """After max_restarts the enclave goes back to a working scheduler.

    Invariant: no enclave thread is left stranded unrunnable — every
    request sent after the fallback still completes.
    """
    plan = FaultPlan(seed=1)
    for at_us in (20_000.0, 30_000.0, 40_000.0, 50_000.0):
        plan.agent_crash("g", at_us=at_us)
    health = HealthPolicy(max_restarts=3, backoff_base_us=100.0)
    machine, server, gen, deployed = _drive_ghost(plan, health=health)
    assert deployed.state == "fallback"
    assert deployed.agent.restart_count == 3  # bounded: N then give up
    events = machine.obs.events.events(kind="enclave_fallback")
    assert len(events) == 1
    assert events[0]["restarts"] == 3
    fallback = deployed.fallback_scheduler
    assert isinstance(fallback, CfsScheduler)
    assert machine.scheduler is fallback
    # every enclave thread is attached to the fallback scheduler
    for thread in deployed.agent.enclave.threads():
        assert thread.scheduler is fallback
    # and none was stranded: the whole run's requests completed
    assert gen.completed_in_window() == gen.sent_in_window()
