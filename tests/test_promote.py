"""Promotion pipeline tests: shadow deployment, canary split, SLO gates.

Covers the full robustness tentpole (docs/robustness.md "Promotion
lifecycle"):

- the deterministic cohort split and its stamp-once contract (per-port
  ToR rules must never double-hash a canary flow),
- the decision diff bookkeeping,
- the end-to-end state machine: shadow -> canary -> active with
  last-known-good kept for demotion, and every rejection path (shadow
  fault, canary fault under fire, canary p99 blowout),
- the figure_canary acceptance story (good candidate auto-promotes,
  subtly-broken one auto-rejected at canary, live SLO never breached),
- the **no-op audit**: a run with no shadow deployments allocates not a
  single promotion object and a shadow-only run is bit-identical to a
  vanilla run (verdicts recorded, never enforced).
"""

import pytest

from repro import FaultPlan
from repro.cluster import Fleet, FleetRequest, JsqSteering, ShadowSteering
from repro.constants import DROP, PASS
from repro.core.promote import (
    STAGE_CODES,
    CanaryController,
    CanarySplit,
    DecisionDiff,
    PromotionRecord,
    ShadowTap,
    cohort_bucket,
    hook_label,
    rank_label,
    steer_label,
)
from repro.experiments.figure8 import run_figure8_dynamic
from repro.experiments.figure_canary import (
    SLO_GET_P99_US,
    run_figure_canary,
)
from repro.experiments.runner import RocksDbTestbed, run_point
from repro.qdisc.policies import SRPT_BY_SIZE, SRPT_TIERED
from repro.workload.mixes import GET_SCAN_995_005
from repro.workload.requests import GET


# ----------------------------------------------------------------------
# Cohort split
# ----------------------------------------------------------------------
def test_cohort_bucket_is_deterministic_salted_and_roughly_uniform():
    assert cohort_bucket(42) == cohort_bucket(42)
    assert all(0 <= cohort_bucket(k) < 100 for k in range(1000))
    # the salt reshuffles membership
    assert any(cohort_bucket(k, salt=1) != cohort_bucket(k, salt=2)
               for k in range(100))
    # a 10% cohort is actually ~10% of keys
    in_cohort = sum(1 for k in range(10_000) if cohort_bucket(k) < 10)
    assert 800 <= in_cohort <= 1200


def test_canary_split_stamps_the_request_once():
    request = FleetRequest(1, GET, 10.0, user_id=42)
    first = CanarySplit(salt=0xA)
    bucket = first.bucket(request)
    assert request.cohort == bucket == cohort_bucket(42, salt=0xA)
    # a later layer with a *different* salt reads the stamp — this is
    # the no-double-hash contract per-port ToR rules rely on
    assert CanarySplit(salt=0xB).bucket(request) == bucket
    assert request.cohort == bucket


def test_canary_split_stamps_through_the_packet_request_backref():
    class Flow:
        src_ip, src_port = 0xC0A80101, 777

    class Packet:
        flow = Flow()
        request = FleetRequest(2, GET, 10.0, user_id=7)

    packet = Packet()
    packet.request.cohort = None
    bucket = CanarySplit(salt=3).bucket(packet)
    key = ((0xC0A80101 & 0xFFFFFFFF) << 16) ^ 777
    assert bucket == cohort_bucket(key, salt=3)
    assert packet.request.cohort == bucket


def test_canary_split_without_flow_identity_is_never_in_cohort():
    class Bare:
        pass

    assert CanarySplit().bucket(Bare()) == 100  # >= any canary_pct


def test_decision_diff_bookkeeping():
    diff = DecisionDiff()
    assert diff.agreement() == 1.0 and diff.mean_cycles() == 0.0
    diff.record(5, 5, "rank", "rank", 10.0)
    diff.record(5, 7, "rank", "rank", 30.0)
    diff.record(PASS, DROP, "pass", "drop", 0.0)   # shadow would drop
    diff.record(DROP, PASS, "shed", "rank", 0.0)   # shadow would keep
    assert diff.decisions == 4 and diff.agreements == 1
    assert diff.would_drop == 1 and diff.would_keep == 1
    snap = diff.snapshot()
    assert snap["agreement"] == 0.25
    assert snap["confusion"]["rank->rank"] == 2
    assert snap["mean_cycles"] == 10.0


def test_verdict_labels():
    assert hook_label(PASS) == "pass" and hook_label(DROP) == "drop"
    assert hook_label(3) == "steer"
    assert rank_label(PASS) == "fifo" and rank_label(DROP) == "shed"
    assert rank_label(42_000) == "rank"
    assert steer_label(None) == "pass" and steer_label(2) == "steer"


# ----------------------------------------------------------------------
# End-to-end promotion on a live qdisc testbed
# ----------------------------------------------------------------------
def _promotion_testbed(seed=3, faults=None):
    return RocksDbTestbed(
        qdisc=(SRPT_BY_SIZE, "socket", "pifo"), mark_sizes=True,
        num_threads=4, seed=seed, metrics=True, signals=2_000.0,
        faults=faults,
    )


def _run_with_shadow(testbed, load, duration_us, deploy_at_us, **shadow):
    """Drive one load point, submitting the candidate mid-run."""
    gen = testbed.drive(load, GET_SCAN_995_005, duration_us,
                        duration_us * 0.25).start()
    holder = {}

    def deploy():
        holder["record"] = testbed.app.deploy_shadow(
            layer="socket", constants={"SHORT_US": 100}, **shadow
        )

    def on_latency(request, latency_us):
        record = holder.get("record")
        if record is not None and request.rtype == GET:
            record.controller.observe(request, latency_us)

    gen.on_latency = on_latency
    testbed.machine.engine.at(deploy_at_us, deploy)
    testbed.machine.run()
    return gen, holder["record"]


def test_good_candidate_walks_shadow_canary_active():
    testbed = _promotion_testbed()
    gen, record = _run_with_shadow(
        testbed, 150_000, 120_000.0, 30_000.0,
        policy=SRPT_TIERED, name="tiered",
        min_decisions=200, min_canary=50, agreement_min=0.90,
        latency_ratio=5.0, hold_ticks=1, probation_ticks=2,
    )
    machine = testbed.machine
    assert record.stage == "active"
    assert [stage for _, stage, _ in record.history] == \
        ["shadow", "canary", "active"]
    assert record.outcome_reason is None

    # the candidate IS the deployed program now; the displaced program
    # is kept as last-known-good for demotion
    deployed = record.deployed
    assert deployed.program is record.candidate
    assert deployed.last_good is not None
    for qdisc in deployed.qdiscs:
        assert qdisc.program is record.candidate
        assert qdisc.shadow is None  # taps cleared on promote

    # one unified lifecycle schema for every stage transition
    events = [e for e in machine.obs.events.events(kind="lifecycle")
              if e.get("candidate") == "tiered"]
    assert [(e["action"], e["reason"]) for e in events] == [
        ("shadow", "deployed"),
        ("canary", "shadow_gates_passed"),
        ("promote", "slo_gates_passed"),
    ]
    assert all({"action", "reason", "app", "hook", "fd", "state"}
               <= set(e) for e in events)

    registry = machine.obs.registry
    for counter, value in (("shadow_deploys", 1), ("canary_starts", 1),
                           ("promotions", 1)):
        assert registry.counter("rocksdb", "syrupd", counter).value == value
    assert registry.gauge("promo", "tiered", "stage").value == \
        STAGE_CODES["active"]
    assert registry.gauge("promo", "tiered", "decisions").value == \
        record.diff.decisions

    # terminal: the controller unregistered itself from the bus
    assert "promo:tiered" not in \
        [name for name, _ in machine.signals.controllers]
    snapshot, = machine.syrupd.promotions()
    assert snapshot["stage"] == "active"
    assert snapshot["canary_enforced"] == record.canary_enforced > 0
    assert gen.completed_in_window() > 0


def _fingerprint(testbed, gen):
    return (
        tuple(gen.latency._samples),
        gen.drop_fraction(),
        dict(testbed.machine.netstack.drops),
        testbed.machine.now,
    )


def test_shadow_verdicts_are_recorded_never_enforced():
    """A shadow-only run is bit-identical to a vanilla run."""
    def vanilla():
        testbed, gen = run_point(
            lambda: _promotion_testbed(), 100_000, GET_SCAN_995_005,
            60_000.0, 15_000.0,
        )
        return _fingerprint(testbed, gen)

    testbed = _promotion_testbed()
    gen, record = _run_with_shadow(
        testbed, 100_000, 60_000.0, 20_000.0,
        policy=SRPT_TIERED, name="held",
        min_decisions=10**9,  # gate never satisfied: stays in shadow
    )
    assert record.stage == "shadow"
    assert record.diff.decisions > 0
    assert record.diff.agreement() > 0.9  # tiered agrees on the GETs
    assert record.canary_enforced == 0
    assert _fingerprint(testbed, gen) == vanilla()


def test_shadow_fault_rejects_candidate_without_touching_live_traffic():
    plan = FaultPlan(seed=9).vmfault(
        1.0, app="rocksdb", hook="shadow:qdisc:socket",
        start_us=30_000.0, until_us=32_000.0,
    )
    testbed = _promotion_testbed(faults=plan)
    gen, record = _run_with_shadow(
        testbed, 100_000, 60_000.0, 20_000.0,
        policy=SRPT_TIERED, name="faulty", min_decisions=10**9,
    )
    assert record.stage == "rejected"
    assert record.outcome_reason == "shadow_fault"
    assert record.diff.shadow_faults > 0
    # contained: the active deployment never noticed
    deployed = record.deployed
    assert deployed.state == "active"
    assert deployed.program is not record.candidate
    assert deployed.last_good is None
    for qdisc in deployed.qdiscs:
        assert qdisc.shadow is None
    rejects = [e for e in testbed.machine.obs.events.events(kind="lifecycle")
               if e["action"] == "reject"]
    assert rejects and rejects[0]["reason"] == "shadow_fault"
    assert testbed.machine.obs.registry.counter(
        "rocksdb", "syrupd", "shadow_rejects"
    ).value == 1
    assert gen.drop_fraction() == 0.0
    assert gen.completed_in_window() > 0


# ----------------------------------------------------------------------
# Rollback under fire: the freshly-promoted policy faults while a second
# candidate is mid-canary — last-known-good wins, no request lost
# ----------------------------------------------------------------------
def test_rollback_under_fire_last_known_good_wins():
    # shadow-loaded programs carry the fault scope "shadow:qdisc:socket";
    # the promoted program KEEPS that scope, so one windowed spec hits
    # both the now-active promoted policy and the mid-canary contender
    plan = FaultPlan(seed=5).vmfault(
        1.0, app="rocksdb", hook="shadow:qdisc:socket",
        start_us=50_000.0, until_us=52_000.0,
    )
    testbed = _promotion_testbed(faults=plan)
    machine = testbed.machine
    original = machine.syrupd.deployed[0].program  # SRPT_BY_SIZE
    gen = testbed.drive(100_000, GET_SCAN_995_005, 100_000.0,
                        25_000.0).start()
    holder = {}

    def deploy_first():
        holder["first"] = testbed.app.deploy_shadow(
            SRPT_TIERED, layer="socket", constants={"SHORT_US": 100},
            name="first", min_decisions=100, min_canary=20,
            agreement_min=0.5, latency_ratio=100.0, hold_ticks=1,
            probation_ticks=1,
        )

    def deploy_contender():
        holder["contender"] = testbed.app.deploy_shadow(
            SRPT_TIERED, layer="socket", constants={"SHORT_US": 100},
            name="contender", min_decisions=50, min_canary=10**9,
            agreement_min=0.0, hold_ticks=1,
        )

    def on_latency(request, latency_us):
        for record in holder.values():
            record.controller.observe(request, latency_us)

    gen.on_latency = on_latency
    machine.engine.at(20_000.0, deploy_first)    # promoted by ~30ms
    machine.engine.at(40_000.0, deploy_contender)  # canary at ~44ms
    machine.run()

    first, contender = holder["first"], holder["contender"]
    deployed = first.deployed
    # the first candidate made it all the way to active...
    assert first.stage == "active"
    # ...then faulted during 50-52ms: rolled back to last-known-good
    assert deployed.state == "active"
    assert deployed.program is not first.candidate
    assert deployed.program is original
    assert deployed.health.rollbacks == 1
    for qdisc in deployed.qdiscs:
        assert qdisc.program is deployed.program
    # the contender faulted in the same window: auto-rejected, and its
    # fault was charged to the promotion record, not the health window
    assert contender.stage == "rejected"
    assert contender.outcome_reason in ("canary_fault", "shadow_fault")
    assert contender.total_faults() > 0
    actions = [(e["action"], e["reason"]) for e in
               machine.obs.events.events(kind="lifecycle")]
    assert ("promote", "slo_gates_passed") in actions
    assert ("rollback", "runtime_fault") in actions
    assert ("reject", contender.outcome_reason) in actions
    # no request lost: a faulting rank function falls back to the FIFO
    # rank — ordering is advisory, the element is never dropped
    assert gen.drop_fraction() == 0.0
    assert gen.completed_in_window() > 0


# ----------------------------------------------------------------------
# Canary split composes with fleet steering (2-tenant, no double-hash)
# ----------------------------------------------------------------------
def test_two_tenant_fleet_never_double_hashes_canary_flows():
    fleet = Fleet(num_machines=8, seed=5, steering="flow_hash")
    fleet.install_steering(JsqSteering(), port=7000, owner="tenant_a")
    w_port = fleet.deploy_shadow_steering(
        JsqSteering(), port=7000, owner="tenant_a", salt=0xA, name="a",
    )
    w_default = fleet.deploy_shadow_steering(JsqSteering(), salt=0xB,
                                             name="b")
    assert isinstance(w_port, ShadowSteering)
    w_port.stage = w_default.stage = "canary"

    in_cohort = 0
    for user in range(200):
        request = FleetRequest(user, GET, 10.0, user_id=user,
                               dst_port=7000)
        assert fleet.switch.pick(request) is not None
        # stamped exactly once, by the first wrapper on the path (the
        # tenant's per-port rule) — the rack default's different salt
        # must NOT re-hash the flow into a different cohort
        assert request.cohort == cohort_bucket(user, salt=0xA)
        assert w_default.split.bucket(request) == request.cohort
        in_cohort += request.cohort < 10
    assert 5 <= in_cohort <= 40  # ~10% of 200 flows

    # traffic outside the tenant port is stamped by the default wrapper
    request = FleetRequest(10_001, GET, 10.0, user_id=77, dst_port=9999)
    fleet.switch.pick(request)
    assert request.cohort == cohort_bucket(77, salt=0xB)

    # and live traffic flows through both wrappers losslessly
    fleet.drive(duration_us=20_000.0, rps=100_000, num_users=5_000)
    fleet.run()
    assert fleet.completed == fleet.generator.offered
    assert w_default.diff.decisions > 0
    assert w_default.canary_enforced > 0
    assert w_default.snapshot()["stage"] == "canary"


# ----------------------------------------------------------------------
# The figure_canary acceptance story
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def canary_table():
    return run_figure_canary(duration_us=250_000.0, warmup_us=60_000.0)


def test_figure_canary_good_promotes_broken_rejected(canary_table):
    rows = {row["candidate"]: row for row in canary_table.rows}
    good, broken = rows["good"], rows["broken"]
    assert good["outcome"] == "active"
    assert good["reason"] == "slo_gates_passed"
    assert broken["outcome"] == "rejected"
    assert broken["reason"] == "canary_p99"
    # the canary gate caught what the decision diff could not: the
    # broken candidate *passed* the agreement gate
    assert broken["agreement"] >= 0.90
    assert broken["canary_enforced"] > 0
    assert broken["canary_p99_us"] > 1.5 * broken["control_p99_us"]
    # the live objective was never sacrificed by either attempt
    for row in (good, broken):
        assert row["slo_breached"] is False
        assert row["get_p99_us"] <= SLO_GET_P99_US
        assert row["page_ticks"] == 0


def test_figure_canary_is_deterministic(canary_table):
    repeat = run_figure_canary(
        duration_us=250_000.0, warmup_us=60_000.0, candidates=["broken"],
    ).rows[0]
    first = next(row for row in canary_table.rows
                 if row["candidate"] == "broken")
    for column in canary_table.columns:
        assert repeat[column] == first[column], column


# ----------------------------------------------------------------------
# The no-op audit: no shadow deployments means no promotion objects
# ----------------------------------------------------------------------
def test_default_runs_allocate_no_promotion_objects(monkeypatch):
    counts = {}

    def probe(cls):
        orig = cls.__init__
        counts[cls.__name__] = 0

        def wrapped(self, *a, **k):
            counts[cls.__name__] += 1
            return orig(self, *a, **k)

        monkeypatch.setattr(cls, "__init__", wrapped)

    probed = (CanarySplit, DecisionDiff, ShadowTap, PromotionRecord,
              CanaryController, ShadowSteering)
    for cls in probed:
        probe(cls)
    # sanity: the probe sees instantiations
    CanarySplit()
    assert counts["CanarySplit"] == 1
    counts["CanarySplit"] = 0

    # a figure6-style point, a dynamic figure8 run, and a fleet drive
    testbed, _ = run_point(
        lambda: RocksDbTestbed(seed=3, qdisc=(SRPT_BY_SIZE, "socket",
                                              "pifo"), mark_sizes=True),
        100_000, GET_SCAN_995_005, 60_000.0, 15_000.0,
    )
    for deployed in testbed.machine.syrupd.deployed:
        for qdisc in deployed.qdiscs:
            assert qdisc.shadow is None
    f8_testbed, _ = run_figure8_dynamic(load=3_000, duration_us=60_000.0,
                                        seed=5, run=False)
    f8_testbed.machine.run()
    fleet = Fleet(num_machines=8, seed=5)
    fleet.drive(duration_us=10_000.0, rps=100_000, num_users=1_000)
    fleet.run()

    assert counts == {cls.__name__: 0 for cls in probed}
