"""Closed-loop telemetry tests: SignalBus, control laws, figure_adaptive.

Also home of the **no-op audit** the :mod:`repro.core.signals` docstring
points at: with the signal plane disabled (the default), figure6- and
figure8-style runs stay bit-identical and the hot path allocates not a
single signal object (sketch, bus, tracker, or objective).
"""

import pytest

from repro.core.signals import NULL_SIGNALS, NullSignalBus, SignalBus
from repro.experiments.figure8 import run_figure8_dynamic
from repro.experiments.figure_adaptive import (
    SLO_AVAILABILITY_TARGET,
    SLO_GET_P99_US,
    run_figure_adaptive,
)
from repro.experiments.runner import RocksDbTestbed, run_point
from repro.obs.sketch import DDSketch
from repro.obs.slo import Slo, SloTracker
from repro.policies.adaptive import (
    BlameController,
    ShedController,
    SrptThresholdController,
)
from repro.sim.engine import Engine
from repro.workload.mixes import GET_SCAN_995_005


# ----------------------------------------------------------------------
# SignalBus
# ----------------------------------------------------------------------
def test_bus_validation():
    with pytest.raises(ValueError, match="interval_us"):
        SignalBus(Engine(), interval_us=0)


def test_bus_ticks_on_cadence_and_drains_with_the_heap():
    engine = Engine()
    bus = SignalBus(engine, interval_us=10.0)
    engine.schedule(35.0, lambda: None)   # workload stand-in
    bus.arm()
    engine.run()
    # ticks at 10/20/30 ride the workload; the re-arm at 30 gives one
    # final tick at 40, after which the heap is dry and the bus stops
    assert bus.ticks == 4
    assert bus.last_tick_at == 40.0
    assert engine.now == 40.0


def test_bus_active_predicate_stops_rearming():
    engine = Engine()
    bus = SignalBus(engine, interval_us=10.0)
    bus.active = lambda: engine.now < 25.0
    engine.schedule(100.0, lambda: None)
    bus.arm()
    engine.run()
    # the tick at 30 still fires (it was armed at 20); it just does not
    # re-arm, so the engine drains at the workload's own horizon
    assert bus.ticks == 3
    assert engine.now == 100.0


def test_bus_arm_is_idempotent_and_disarm_cancels():
    engine = Engine()
    bus = SignalBus(engine, interval_us=10.0)
    bus.arm()
    armed = bus._armed
    bus.arm()
    assert bus._armed is armed
    bus.disarm()
    engine.run()
    assert bus.ticks == 0


def test_bus_tick_reads_publishes_then_controls_in_order():
    engine = Engine()
    bus = SignalBus(engine, interval_us=10.0)
    events = []
    bus.add_signal("a", lambda: 1, publish=lambda v: events.append(("pub_a", v)))
    bus.add_signal("b", lambda: 2)
    bus.add_controller("c1", lambda: events.append(("ctl", bus.last["a"])))
    bus.tick_once()
    # publishes happen per-signal at read time; controllers run last and
    # see every signal already cached in bus.last
    assert events == [("pub_a", 1), ("ctl", 1)]
    assert bus.last == {"a": 1, "b": 2}
    view = bus.view()
    assert view["signals"] == ["a", "b"]
    assert view["controllers"] == ["c1"]
    assert view["last"] == {"a": 1, "b": 2}
    assert view["ticks"] == 1


def test_null_bus_is_inert():
    null = NullSignalBus()
    assert null.add_signal("x", lambda: 1) is null
    assert null.add_controller("y", lambda: 1) is null
    null.arm()
    null.tick_once()
    assert null.ticks == 0
    assert null.view()["signals"] == []
    assert NULL_SIGNALS.enabled is False


# ----------------------------------------------------------------------
# Control laws
# ----------------------------------------------------------------------
class FakeMap:
    def __init__(self):
        self.data = {}

    def update(self, key, value):
        self.data[key] = value

    def lookup(self, key):
        return self.data.get(key, 0)


class FakeSlo:
    def __init__(self, state="ok", burn=0.0, budget=1.0):
        self._state = state
        self._burn = burn
        self._budget = budget
        self.long_window_us = 100.0

    def state(self):
        return self._state

    def burn_rate(self, _window_us):
        return self._burn

    def budget_remaining(self):
        return self._budget


def test_shed_controller_law():
    lat, avail, shed_map = FakeSlo(), FakeSlo(), FakeMap()
    shed = ShedController(lat, avail, shed_map,
                          step_up=20, warn_step=5, step_down=2,
                          decay_burn=0.5, max_level=50)
    # page: raise hard, clamped at max_level
    lat._state = "page"
    for _ in range(4):
        shed()
    assert shed.level == 50
    assert shed_map.lookup(0) == 50
    # warn: keep leaning in by warn_step (already clamped here)
    lat._state, shed.level = "warn", 10
    shed()
    assert shed.level == 15
    # ok but long-window burn still above decay_burn: hold the level
    lat._state, lat._burn = "ok", 0.9
    shed()
    assert shed.level == 15
    # ok with real margin: decay gently, floored at zero
    lat._burn = 0.1
    shed()
    assert shed.level == 13
    shed.level = 1
    shed()
    assert shed.level == 0
    # availability budget gone: back off fast even while paging
    lat._state, avail._budget, shed.level = "page", 0.0, 30
    shed()
    assert shed.level == 10
    assert shed_map.lookup(0) == 10


def test_srpt_threshold_controller_gates_on_count():
    sketch, thresh_map = DDSketch(), FakeMap()
    ctl = SrptThresholdController(sketch, thresh_map, factor=2.0,
                                  min_count=50)
    for _ in range(49):
        sketch.add(10.0)
    ctl()
    assert thresh_map.lookup(0) == 0   # not enough evidence yet
    sketch.add(10.0)
    ctl()
    # 2x the streaming median, within the sketch's relative error
    assert thresh_map.lookup(0) == pytest.approx(20, abs=2)


def test_blame_controller_scores_depth_and_scans():
    sockets = [[1, 2, 3], []]
    blame_map, scan_map = FakeMap(), FakeMap()
    scan_map.update(0, 1)   # a SCAN is in service on executor 0
    BlameController(sockets, blame_map, scan_map=scan_map,
                    scan_weight=64)()
    assert blame_map.lookup(0) == 3 + 64
    assert blame_map.lookup(1) == 0
    # without a scan map, blame is backlog only
    blame_only = FakeMap()
    BlameController(sockets, blame_only)()
    assert blame_only.lookup(0) == 3


# ----------------------------------------------------------------------
# figure_adaptive: the acceptance contrast
# ----------------------------------------------------------------------
LOAD = 240_000
DURATION_US = 120_000.0
WARMUP_US = 30_000.0


@pytest.fixture(scope="module")
def adaptive_table():
    return run_figure_adaptive(
        loads=[LOAD], duration_us=DURATION_US, warmup_us=WARMUP_US, seed=3
    )


def test_closed_loop_meets_the_slo_where_every_static_policy_fails(
    adaptive_table,
):
    rows = {row["variant"]: row for row in adaptive_table}
    assert set(rows) == {"fifo", "srpt_fixed", "no_shed", "adaptive"}
    for static in ("fifo", "srpt_fixed", "no_shed"):
        assert not rows[static]["slo_met"], static
    winner = rows["adaptive"]
    assert winner["slo_met"]
    assert winner["get_p99_us"] <= SLO_GET_P99_US
    assert winner["drop_pct"] <= 100.0 * (1.0 - SLO_AVAILABILITY_TARGET)
    # the loop actually actuated: the valve opened and the SRPT boundary
    # was tuned from the service-time sketch
    assert winner["shed_level"] > 0
    assert winner["srpt_thresh_us"] > 0
    # the ablation proves shedding (not steering/ordering) is the win
    assert rows["no_shed"]["shed_level"] == 0
    assert rows["no_shed"]["get_p99_us"] > winner["get_p99_us"]


def test_closed_loop_is_deterministic(adaptive_table):
    first = next(row for row in adaptive_table
                 if row["variant"] == "adaptive")
    repeat = run_figure_adaptive(
        loads=[LOAD], duration_us=DURATION_US, warmup_us=WARMUP_US,
        seed=3, variants=["adaptive"],
    ).rows[0]
    for column in adaptive_table.columns:
        assert repeat[column] == first[column], column


# ----------------------------------------------------------------------
# The no-op audit: disabled means bit-identical and allocation-free
# ----------------------------------------------------------------------
def fingerprint(testbed, gen):
    """Everything a figure table is computed from, bit-for-bit."""
    return (
        tuple(gen.latency._samples),
        {tag: tuple(gen.latency._select(tag)) for tag in gen.latency.tags()},
        gen.drop_fraction(),
        dict(testbed.machine.netstack.drops),
        testbed.machine.now,
    )


def test_machine_defaults_leave_the_signal_plane_absent():
    testbed = RocksDbTestbed(seed=3)
    assert testbed.machine.signals is NULL_SIGNALS
    assert testbed.machine.slo is None


def test_disabled_runs_are_bit_identical_and_allocate_no_signal_objects(
    monkeypatch,
):
    counts = {}

    def probe(cls):
        orig = cls.__init__
        counts[cls.__name__] = 0

        def wrapped(self, *a, **k):
            counts[cls.__name__] += 1
            return orig(self, *a, **k)

        monkeypatch.setattr(cls, "__init__", wrapped)

    for cls in (DDSketch, SignalBus, SloTracker, Slo):
        probe(cls)
    # sanity: the probe sees instantiations (incl. through subclasses)
    DDSketch()
    assert counts["DDSketch"] == 1
    counts["DDSketch"] = 0

    def figure6_point(**kwargs):
        def factory():
            return RocksDbTestbed(seed=3, **kwargs)

        return fingerprint(*run_point(
            factory, 100_000, GET_SCAN_995_005, 60_000.0, 15_000.0
        ))

    # a default build and an explicitly-disabled build are the same run
    assert figure6_point() == figure6_point(signals=None, slo=None)

    def figure8_run():
        testbed, gen = run_figure8_dynamic(
            load=3_000, duration_us=60_000.0, seed=5, run=False
        )
        testbed.machine.run()
        return fingerprint(testbed, gen)

    assert figure8_run() == figure8_run()

    # none of those four runs touched the signal plane
    assert counts == {"DDSketch": 0, "SignalBus": 0, "SloTracker": 0,
                      "Slo": 0}
