"""Tests for repro.faults: plan building, injection mechanics, no-op default.

The two load-bearing properties (module docstring of repro.faults):
injections are deterministic under the plan's seed, and a machine built
with ``faults=None`` (or an *empty* plan) is bit-identical to one built
without the module in play at all.
"""

import pytest

from repro import FaultPlan, HealthPolicy, Hook, Machine, set_a, set_b
from repro.apps.mica import MicaServer
from repro.apps.rocksdb import RocksDbServer
from repro.ebpf.errors import VmFault
from repro.faults import FaultKind, FaultyProgram
from repro.policies.builtin import ROUND_ROBIN
from repro.sim.rng import RngStreams
from repro.workload.generator import OpenLoopGenerator
from repro.workload.mixes import GET_ONLY, MICA_50_50


# ----------------------------------------------------------------------
# FaultPlan builder
# ----------------------------------------------------------------------
def test_plan_rejects_out_of_range_rate():
    with pytest.raises(ValueError):
        FaultPlan().vmfault(1.5)
    with pytest.raises(ValueError):
        FaultPlan().vmfault(-0.1)


def test_plan_builders_chain_and_filter():
    plan = (
        FaultPlan(seed=3)
        .vmfault(0.1)  # wildcard: any app, any hook
        .vmfault(0.2, app="a", hook=Hook.SOCKET_SELECT)
        .agent_crash("g", at_us=5_000.0)
        .nic_offload_down(at_us=1_000.0, restore_at_us=2_000.0)
        .core_stall(0, at_us=1_000.0, duration_us=500.0)
        .socket_saturate(8080, at_us=1_000.0, duration_us=500.0)
    )
    assert len(plan) == 6
    # the wildcard matches everything; the targeted spec only its target
    assert len(plan.vmfault_specs_for("a", Hook.SOCKET_SELECT)) == 2
    assert len(plan.vmfault_specs_for("b", Hook.CPU_REDIRECT)) == 1
    kinds = {spec.kind for spec in plan.specs}
    assert kinds == {
        FaultKind.VMFAULT, FaultKind.AGENT_CRASH,
        FaultKind.NIC_OFFLOAD_DOWN, FaultKind.CORE_STALL,
        FaultKind.SOCKET_SATURATE,
    }
    for spec in plan.specs:
        assert spec.as_dict()["kind"] == spec.kind


# ----------------------------------------------------------------------
# FaultyProgram
# ----------------------------------------------------------------------
class _Inner:
    name = "inner"

    def __init__(self):
        self.calls = 0

    def run(self, packet):
        self.calls += 1
        return ("pass", None)


def test_faulty_program_rate_zero_never_faults():
    plan = FaultPlan(seed=1).vmfault(0.0)
    prog = FaultyProgram(_Inner(), plan.specs, RngStreams(1).get("x"))
    for _ in range(100):
        assert prog.run(None) == ("pass", None)
    assert prog.faults_raised == 0


def test_faulty_program_rate_one_always_faults():
    plan = FaultPlan(seed=1).vmfault(1.0)
    inner = _Inner()
    prog = FaultyProgram(inner, plan.specs, RngStreams(1).get("x"))
    for _ in range(10):
        with pytest.raises(VmFault):
            prog.run(None)
    assert prog.faults_raised == 10
    assert inner.calls == 0  # fault preempts the real program
    # attribute delegation: everything but run() reaches the inner program
    assert prog.name == "inner"


def test_faulty_program_respects_time_window():
    plan = FaultPlan(seed=1).vmfault(1.0, start_us=10.0, until_us=20.0)
    prog = FaultyProgram(_Inner(), plan.specs, RngStreams(1).get("x"))
    clock = [0.0]
    prog.__dict__["_clock"] = lambda: clock[0]
    assert prog.run(None) == ("pass", None)  # before the window
    clock[0] = 15.0
    with pytest.raises(VmFault):
        prog.run(None)
    clock[0] = 20.0
    assert prog.run(None) == ("pass", None)  # window is half-open


# ----------------------------------------------------------------------
# Machine integration
# ----------------------------------------------------------------------
def drive_rocksdb(faults=None, health=None, rate=40_000, duration=30_000,
                  seed=7, metrics=True):
    machine = Machine(set_a(), seed=seed, metrics=metrics, faults=faults,
                      health=health)
    app = machine.register_app("r", ports=[8080])
    server = RocksDbServer(machine, app, 8080, 4)
    app.deploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": 4})
    gen = OpenLoopGenerator(machine, 8080, rate, GET_ONLY,
                            duration_us=duration)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    return machine, server, gen


def _fingerprint(faults):
    machine, server, gen = drive_rocksdb(faults=faults, metrics=False)
    return (
        gen.latency.count,
        round(gen.latency.p99(), 9),
        tuple(s.enqueued for s in server.sockets),
        machine.engine.events_dispatched,
    )


def test_empty_plan_is_bit_identical_to_no_faults():
    """Machine(faults=None) and an empty plan schedule zero extra events."""
    assert _fingerprint(None) == _fingerprint(FaultPlan(seed=5))


def test_vmfault_rate_one_drops_every_request():
    plan = FaultPlan(seed=9).vmfault(1.0, app="r", hook=Hook.SOCKET_SELECT)
    health = HealthPolicy(quarantine=False, max_faults=10**9)
    machine, server, gen = drive_rocksdb(faults=plan, health=health,
                                         rate=20_000, duration=10_000)
    assert gen.completed_in_window() == 0
    site = machine.netstack.socket_select_hook
    assert site.runtime_faults > 0
    assert site.runtime_faults == machine.faults.injected
    assert machine.obs.events.events(kind="fault_injected")
    assert machine.obs.events.events(kind="runtime_fault")
    rows = machine.syrupd.health()
    assert rows[0]["runtime_faults"] == site.runtime_faults
    assert rows[0]["state"] == "active"  # quarantine disabled


def test_core_stall_is_injected_and_traced():
    plan = FaultPlan(seed=2).core_stall(0, at_us=2_000.0, duration_us=3_000.0)
    machine, _server, gen = drive_rocksdb(faults=plan)
    events = machine.obs.events.events(kind="fault_injected")
    assert [e["fault"] for e in events] == [FaultKind.CORE_STALL]
    assert machine.faults.injected == 1
    assert gen.completed_in_window() > 0  # the machine recovers


def test_socket_saturate_drops_then_restores():
    plan = FaultPlan(seed=2).socket_saturate(8080, at_us=5_000.0,
                                             duration_us=5_000.0)
    machine, server, gen = drive_rocksdb(faults=plan, rate=60_000,
                                         duration=30_000)
    faults = [e["fault"]
              for e in machine.obs.events.events(kind="fault_injected")]
    assert FaultKind.SOCKET_SATURATE in faults
    assert FaultKind.SOCKET_RESTORE in faults
    # zero backlog during the window: enqueues on the port drop
    assert sum(s.drops for s in server.sockets) > 0
    # and service resumes after the restore
    assert gen.completed_in_window() > 0
    assert all(s.backlog > 0 for s in server.sockets)


def test_nic_offload_down_falls_back_to_host_and_restores():
    """XDP_OFFLOAD graceful degradation: offload → XDP_SKB → offload."""
    plan = FaultPlan(seed=2).nic_offload_down(at_us=3_000.0,
                                              restore_at_us=7_000.0)
    machine = Machine(set_b(8), seed=4, metrics=True, faults=plan)
    app = machine.register_app("mica", ports=[9090])
    server = MicaServer(machine, app, 9090, num_threads=8, mode="syrup_hw")
    deployed = server.deploy_policy()
    gen = OpenLoopGenerator(machine, 9090, 300_000, MICA_50_50,
                            duration_us=12_000, num_flows=64)
    server.response_sink = gen.deliver_response
    gen.start()
    machine.run()
    events = machine.obs.events
    fallback = events.events(kind="offload_fallback")
    restore = events.events(kind="offload_restore")
    assert len(fallback) == 1 and len(restore) == 1
    assert fallback[0]["from_hook"] == Hook.XDP_OFFLOAD
    assert fallback[0]["ts"] < restore[0]["ts"]
    # round trip complete: back on the offload hook, still active
    assert deployed.hook == Hook.XDP_OFFLOAD
    assert deployed.fallback_from is None
    assert deployed.state == "active"
    # the host path kept steering to home sockets; only packets in
    # flight across a transition boundary may land on the wrong socket
    assert server.misroutes <= 5
    assert gen.completed_in_window() == gen.sent_in_window()
