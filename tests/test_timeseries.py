"""Tests for the flight recorder (repro.obs.timeseries + syrupctl timeline).

Covers sampling semantics per metric kind (counter deltas, gauge values,
histogram summaries), ring bounds, the arm/disarm/termination contract,
the determinism guarantee (recorder on == metrics off, bit-identical),
the dynamic Figure-8 run's recorded policy switch, and the timeline
rendering surface.
"""

import pytest

from repro import Machine, set_a
from repro.experiments.figure8 import run_figure8_dynamic
from repro.experiments.runner import RocksDbTestbed
from repro.obs import NULL_RECORDER, FlightRecorder, MetricsRegistry
from repro.sim.engine import Engine
from repro.syrupctl import render_timeline
from repro.workload.mixes import GET_SCAN_50_50
from repro.workload.requests import GET


# ----------------------------------------------------------------------
# Core sampling semantics (synthetic registry + engine)
# ----------------------------------------------------------------------
def make_recorder(interval_us=10.0, capacity=1024):
    engine = Engine()
    registry = MetricsRegistry(clock=lambda: engine.now)
    recorder = FlightRecorder(registry, engine, interval_us=interval_us,
                              capacity=capacity)
    return engine, registry, recorder


def test_counter_sampled_as_per_interval_delta():
    engine, registry, recorder = make_recorder()
    c = registry.counter("app", "hook", "calls")
    c.inc(5)
    recorder.sample()
    c.inc(2)
    recorder.sample()
    recorder.sample()  # no movement
    assert recorder.points("app", "hook", "calls") == [
        (0.0, 5), (0.0, 2), (0.0, 0)
    ]
    assert recorder.series("app", "hook", "calls").kind == "counter"


def test_gauge_sampled_as_value():
    _e, registry, recorder = make_recorder()
    g = registry.gauge("app", "syrupd", "size")
    g.set(42)
    recorder.sample()
    g.set(7)
    recorder.sample()
    assert [v for _t, v in recorder.points("app", "syrupd", "size")] == [42, 7]


def test_histogram_sampled_as_count_delta_plus_percentiles():
    _e, registry, recorder = make_recorder()
    h = registry.histogram("app", "maps", "lat")
    h.observe(2.0)
    h.observe(100.0)
    recorder.sample()
    points = recorder.points("app", "maps", "lat")
    assert len(points) == 1
    _t, value = points[0]
    assert value["count"] == 2
    assert value["p99"] == h.percentile(99.0)
    recorder.sample()
    assert recorder.points("app", "maps", "lat")[-1][1]["count"] == 0
    # field extraction
    assert recorder.points("app", "maps", "lat", field="count") == [
        (0.0, 2), (0.0, 0)
    ]


def test_rate_per_s_scales_deltas_by_interval():
    _e, registry, recorder = make_recorder(interval_us=1_000.0)
    c = registry.counter("app", "hook", "calls")
    c.inc(3)
    recorder.sample()
    # 3 events per 1000us interval = 3000 events/s
    assert recorder.rate_per_s("app", "hook", "calls") == [(0.0, 3000.0)]


def test_ring_capacity_bounds_samples():
    _e, registry, recorder = make_recorder(capacity=4)
    c = registry.counter("app", "hook", "calls")
    for _ in range(10):
        c.inc()
        recorder.sample()
    series = recorder.series("app", "hook", "calls")
    assert len(series) == 4
    assert recorder.samples_taken == 10


def test_recorder_ticks_ride_the_engine():
    engine, registry, recorder = make_recorder(interval_us=10.0)
    c = registry.counter("app", "hook", "calls")
    # a workload event at t=35 keeps the heap non-empty through 3 ticks
    engine.at(35.0, lambda: c.inc(4))
    recorder.arm()
    engine.run()
    times = recorder.series("app", "hook", "calls").times()
    assert times[:4] == [10.0, 20.0, 30.0, 40.0]
    # the increment at t=35 lands in the (30, 40] sample
    assert recorder.points("app", "hook", "calls")[3] == (40.0, 4)
    # heap drained -> recorder stopped re-arming -> run terminated
    assert not engine._heap


def test_arm_is_idempotent_and_disarm_cancels():
    engine, _registry, recorder = make_recorder(interval_us=10.0)
    recorder.arm()
    recorder.arm()  # no second tick scheduled
    engine.at(15.0, lambda: None)
    engine.run()
    assert recorder.samples_taken == 2  # t=10 and t=20, not four
    recorder.arm()
    recorder.disarm()
    engine.run()
    assert recorder.samples_taken == 2  # disarmed tick never fired


def test_invalid_interval_rejected():
    engine = Engine()
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        FlightRecorder(registry, engine, interval_us=0)


def test_snapshot_is_json_safe():
    import json

    _e, registry, recorder = make_recorder()
    registry.counter("app", "hook", "calls").inc()
    registry.histogram("app", "maps", "lat").observe(3.0)
    recorder.sample()
    rows = recorder.snapshot()
    assert json.loads(json.dumps(rows)) == rows
    assert {row["kind"] for row in rows} == {"counter", "histogram"}


def test_null_recorder_noops():
    assert NULL_RECORDER.enabled is False
    NULL_RECORDER.arm()
    NULL_RECORDER.sample()
    NULL_RECORDER.disarm()
    assert NULL_RECORDER.keys() == []
    assert NULL_RECORDER.points("a", "b", "c") == []
    assert NULL_RECORDER.snapshot() == []
    assert len(NULL_RECORDER) == 0


# ----------------------------------------------------------------------
# Machine integration
# ----------------------------------------------------------------------
def test_machine_timeseries_requires_metrics():
    with pytest.raises(ValueError):
        Machine(set_a(), timeseries=True)


def test_machine_defaults_to_null_recorder():
    machine = Machine(set_a())
    assert machine.obs.recorder is NULL_RECORDER
    machine = Machine(set_a(), metrics=True)
    assert machine.obs.recorder is NULL_RECORDER


def test_machine_timeseries_interval():
    machine = Machine(set_a(), metrics=True, timeseries=True)
    assert machine.obs.recorder.interval_us == 1_000.0
    machine = Machine(set_a(), metrics=True, timeseries=500.0)
    assert machine.obs.recorder.interval_us == 500.0


def test_recorder_on_does_not_change_results():
    """Bit-identical workload outputs with the recorder on vs metrics off."""

    def run(**obs_kwargs):
        testbed = RocksDbTestbed(policy=None, num_threads=6, seed=9,
                                 **obs_kwargs)
        gen = testbed.drive(40_000, GET_SCAN_50_50, 40_000.0, 10_000.0)
        gen.start()
        testbed.machine.run()
        return gen

    plain = run()
    recorded = run(metrics=True, timeseries=100.0)
    assert recorded.latency.p99() == plain.latency.p99()
    assert recorded.latency.p99(tag=GET) == plain.latency.p99(tag=GET)
    assert recorded.drop_fraction() == plain.drop_fraction()
    assert recorded.goodput_rps(40_000.0) == plain.goodput_rps(40_000.0)
    assert recorded.completed.as_dict() == plain.completed.as_dict()


def test_figure8_dynamic_records_the_policy_switch():
    testbed, _gen = run_figure8_dynamic(
        load=3_000, duration_us=60_000.0, seed=5,
        metrics=True, timeseries=2_000.0,
    )
    recorder = testbed.machine.obs.recorder
    points = recorder.points("rocksdb", "socket_select", "schedule_calls")
    assert points, "hook counters never sampled"
    switch_at = 30_000.0
    before = [v for t, v in points if t <= switch_at]
    after = [v for t, v in points if t > switch_at]
    # vanilla first half: the hook does not exist yet / never fires
    assert sum(before) == 0
    # SCAN Avoid second half: scheduling on (roughly) every packet —
    # ~3000 RPS over the remaining 30 ms is ~90 schedule() calls
    assert sum(after) > 50


# ----------------------------------------------------------------------
# Timeline rendering
# ----------------------------------------------------------------------
def test_render_timeline_disabled_message():
    machine = Machine(set_a())
    text = render_timeline(machine)
    assert "timeseries" in text


def test_render_timeline_shows_series_and_switch():
    testbed, _gen = run_figure8_dynamic(
        load=3_000, duration_us=60_000.0, seed=5,
        metrics=True, timeseries=2_000.0,
    )
    text = render_timeline(testbed.machine)
    assert "schedule_calls" in text
    assert "socket_select" in text
    # the left (pre-switch) half of the hook-counter sparkline is blank
    for line in text.splitlines():
        if "schedule_calls" in line:
            bar = line.rsplit("|", 1)[0].split("|", 1)[1]
            mid = len(bar) // 2
            assert bar[: mid - 2].strip() == ""
            assert bar[mid + 2:].strip() != ""
            break
    else:  # pragma: no cover
        pytest.fail("schedule_calls row missing from timeline")


def test_render_timeline_filters_by_scope():
    testbed, _gen = run_figure8_dynamic(
        load=3_000, duration_us=60_000.0, seed=5,
        metrics=True, timeseries=2_000.0,
    )
    text = render_timeline(testbed.machine, scope="socket_select")
    assert "socket_select" in text
    assert "syrupd" not in text
