"""Verifier tests: the safety properties Syrup relies on (paper §4.3)."""

import pytest

from repro.ebpf.compiler import compile_policy
from repro.ebpf.errors import VerifierError
from repro.ebpf.insn import Insn, Program
from repro.ebpf.verifier import verify


def make_program(insns, n_locals=0, n_globals=0, n_maps=0):
    return Program(
        name="handmade",
        insns=insns,
        n_locals=n_locals,
        global_names=[f"g{i}" for i in range(n_globals)],
        globals_init=[0] * n_globals,
        map_names=[f"m{i}" for i in range(n_maps)],
        map_sizes=[16] * n_maps,
        map_vars=[f"m{i}" for i in range(n_maps)],
        source="",
        func_ast=None,
        loc=0,
    )


# ----------------------------------------------------------------------
# Compiled-program acceptance
# ----------------------------------------------------------------------
def test_guarded_load_verifies():
    src = """
def schedule(pkt):
    if pkt_len(pkt) < 16:
        return PASS
    return load_u64(pkt, 8)
"""
    stats = verify(compile_policy(src))
    assert stats.n_insns > 0


def test_guard_with_ge_comparison():
    src = """
def schedule(pkt):
    if pkt_len(pkt) >= 16:
        return load_u64(pkt, 8)
    return PASS
"""
    verify(compile_policy(src))


def test_guard_with_gt_comparison():
    src = """
def schedule(pkt):
    if pkt_len(pkt) > 15:
        return load_u64(pkt, 8)
    return PASS
"""
    verify(compile_policy(src))


def test_guard_with_reversed_operands():
    src = """
def schedule(pkt):
    if 16 <= pkt_len(pkt):
        return load_u64(pkt, 8)
    return PASS
"""
    verify(compile_policy(src))


def test_guard_survives_intervening_code():
    src = """
def schedule(pkt):
    if pkt_len(pkt) < 24:
        return PASS
    x = 1
    y = x + 2
    return load_u64(pkt, 16) + y
"""
    verify(compile_policy(src))


def test_nested_guards_accumulate():
    src = """
def schedule(pkt):
    if pkt_len(pkt) < 8:
        return PASS
    a = load_u32(pkt, 4)
    if pkt_len(pkt) < 32:
        return a
    return load_u64(pkt, 24)
"""
    verify(compile_policy(src))


# ----------------------------------------------------------------------
# Rejections
# ----------------------------------------------------------------------
def test_unguarded_load_rejected():
    src = "def schedule(pkt):\n    return load_u32(pkt, 0)\n"
    with pytest.raises(VerifierError) as err:
        verify(compile_policy(src))
    assert "out-of-bounds" in str(err.value)


def test_insufficient_guard_rejected():
    src = """
def schedule(pkt):
    if pkt_len(pkt) < 8:
        return PASS
    return load_u64(pkt, 8)
"""
    with pytest.raises(VerifierError):
        verify(compile_policy(src))


def test_guard_on_wrong_branch_rejected():
    src = """
def schedule(pkt):
    if pkt_len(pkt) >= 16:
        return PASS
    return load_u64(pkt, 8)
"""
    with pytest.raises(VerifierError):
        verify(compile_policy(src))


def test_guard_lost_at_join_rejected():
    # One path proves 16 bytes, the other proves nothing; after the join
    # the load must be rejected (minimum over paths).
    src = """
def schedule(pkt):
    x = 0
    if pkt_len(pkt) >= 16:
        x = 1
    return load_u64(pkt, 8)
"""
    with pytest.raises(VerifierError):
        verify(compile_policy(src))


def test_width_matters():
    ok = """
def schedule(pkt):
    if pkt_len(pkt) < 9:
        return PASS
    return load_u8(pkt, 8)
"""
    verify(compile_policy(ok))
    bad = ok.replace("load_u8", "load_u16")
    with pytest.raises(VerifierError):
        verify(compile_policy(bad))


def test_backward_jump_rejected():
    prog = make_program([
        Insn("CONST", 0),
        Insn("JZ", 0),       # backward
        Insn("CONST", 1),
        Insn("RET"),
    ])
    with pytest.raises(VerifierError) as err:
        verify(prog)
    assert "backward" in str(err.value)


def test_jump_out_of_range_rejected():
    prog = make_program([Insn("JMP", 99), Insn("CONST", 0), Insn("RET")])
    with pytest.raises(VerifierError):
        verify(prog)


def test_stack_underflow_rejected():
    prog = make_program([Insn("RET")])
    with pytest.raises(VerifierError) as err:
        verify(prog)
    assert "underflow" in str(err.value)


def test_fall_off_end_rejected():
    prog = make_program([Insn("CONST", 1), Insn("POP")])
    with pytest.raises(VerifierError) as err:
        verify(prog)
    assert "fall off" in str(err.value)


def test_inconsistent_join_depth_rejected():
    prog = make_program([
        Insn("CONST", 1),
        Insn("JZ", 4),        # taken: stack []
        Insn("CONST", 5),     # fallthrough: stack [5]
        Insn("CONST", 0),     # [5, 0]
        Insn("CONST", 9),     # join at 4 with different depths
        Insn("RET"),
    ])
    with pytest.raises(VerifierError) as err:
        verify(prog)
    assert "stack depth" in str(err.value)


def test_invalid_map_slot_rejected():
    prog = make_program([
        Insn("CONST", 0),
        Insn("MAPLOOKUP", 3),
        Insn("RET"),
    ], n_maps=1)
    with pytest.raises(VerifierError):
        verify(prog)


def test_invalid_global_slot_rejected():
    prog = make_program([Insn("LOADG", 2), Insn("RET")], n_globals=1)
    with pytest.raises(VerifierError):
        verify(prog)


def test_insn_limit_rejected():
    insns = [Insn("CONST", 0), Insn("POP")] * 3000 + [Insn("CONST", 0), Insn("RET")]
    prog = make_program(insns)
    with pytest.raises(VerifierError) as err:
        verify(prog, insn_limit=4096)
    assert "limit" in str(err.value)


def test_empty_program_rejected():
    with pytest.raises(VerifierError):
        verify(make_program([]))


def test_unreachable_code_is_skipped_not_fatal():
    prog = make_program([
        Insn("CONST", 1),
        Insn("RET"),
        Insn("CONST", 2),   # unreachable
        Insn("RET"),
    ])
    stats = verify(prog)
    assert stats.analyzed == 2


def test_builtin_policies_all_verify():
    from repro.policies.builtin import (
        HASH_BY_FLOW, MICA_HASH, ROUND_ROBIN, SCAN_AVOID, SITA, TOKEN_BASED,
    )

    consts = {"NUM_THREADS": 6, "NUM_EXECUTORS": 8, "SCAN_TYPE": 2}
    for source in (HASH_BY_FLOW, MICA_HASH, ROUND_ROBIN, SCAN_AVOID, SITA,
                   TOKEN_BASED):
        verify(compile_policy(source, constants=consts))
