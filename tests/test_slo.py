"""SLO engine tests (repro.obs.slo).

Error-budget arithmetic, trailing-window bin eviction, the SRE
multi-window burn-rate state machine (page only when BOTH windows
burn), and the SloTracker's registry publication path.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.slo import (
    STATE_CODES,
    AvailabilitySlo,
    LatencySlo,
    Slo,
    SloTracker,
)


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_constructor_validation():
    clock = Clock()
    for bad_target in (0.0, 1.0, -0.5, 2.0):
        with pytest.raises(ValueError, match="target"):
            Slo("x", clock, bad_target)
    with pytest.raises(ValueError, match="window"):
        Slo("x", clock, 0.99, short_window_us=0)
    with pytest.raises(ValueError, match="window"):
        Slo("x", clock, 0.99, short_window_us=100.0, long_window_us=50.0)
    with pytest.raises(ValueError, match="threshold"):
        LatencySlo("x", clock, threshold_us=0)


def test_budget_and_compliance():
    clock = Clock()
    slo = Slo("x", clock, target=0.99)
    assert slo.budget == pytest.approx(0.01)
    # empty objective: fully compliant, budget untouched, burn zero
    assert slo.compliance() == 1.0
    assert slo.budget_consumed() == 0.0
    assert slo.budget_remaining() == 1.0
    assert slo.burn_rate() == 0.0
    assert slo.state() == "ok"
    slo.record(True, n=98)
    slo.record(False, n=2)
    assert slo.total == 100 and slo.good_total == 98
    assert slo.compliance() == pytest.approx(0.98)
    # 2% bad against a 1% budget: consumed twice over
    assert slo.budget_consumed() == pytest.approx(2.0)
    assert slo.budget_remaining() == pytest.approx(-1.0)


def test_burn_rate_is_bad_fraction_over_budget():
    clock = Clock()
    slo = Slo("x", clock, target=0.99,
              short_window_us=100.0, long_window_us=1000.0)
    slo.record(True, n=96)
    slo.record(False, n=4)
    # 4% bad / 1% budget = burn 4 in both trailing windows
    assert slo.burn_rate(slo.short_window_us) == pytest.approx(4.0)
    assert slo.burn_rate(slo.long_window_us) == pytest.approx(4.0)
    assert slo.burn_rate() == pytest.approx(4.0)   # defaults to long


def test_windowed_counts_evict_old_bins():
    clock = Clock()
    slo = Slo("x", clock, target=0.9,
              short_window_us=100.0, long_window_us=200.0)
    slo.record(False, n=10)
    assert slo.counts(slo.short_window_us) == (0, 10)
    # step past the short window: short burn clears, long still sees it
    clock.now = 150.0
    assert slo.counts(slo.short_window_us) == (0, 0)
    assert slo.counts(slo.long_window_us) == (0, 10)
    assert slo.burn_rate(slo.short_window_us) == 0.0
    # recording past the long window evicts the stale bin entirely
    clock.now = 500.0
    slo.record(True)
    assert slo.counts(slo.long_window_us) == (1, 1)
    assert len(slo._bins) == 1
    # lifetime totals are untouched by eviction
    assert slo.total == 11 and slo.good_total == 1


def test_page_requires_both_windows_burning():
    clock = Clock()
    slo = Slo("x", clock, target=0.9,
              short_window_us=100.0, long_window_us=1000.0,
              page_burn=4.0, warn_burn=1.0)
    # a fresh burst of pure failures: both windows burn at 10x -> page
    slo.record(False, n=20)
    assert slo.state() == "page"
    # pad the long window with successes: long burn drops below page,
    # even though the short window still sees only failures
    clock.now = 150.0
    slo.record(True, n=980)
    clock.now = 900.0
    slo.record(False, n=5)
    short = slo.burn_rate(slo.short_window_us)
    long_ = slo.burn_rate(slo.long_window_us)
    assert short >= slo.page_burn and long_ < slo.page_burn
    assert slo.state() == "ok"


def test_warn_between_burn_thresholds():
    clock = Clock()
    slo = Slo("x", clock, target=0.9,
              short_window_us=100.0, long_window_us=100.0,
              page_burn=4.0, warn_burn=1.0)
    # 20% bad / 10% budget = burn 2: above warn, below page
    slo.record(False, n=20)
    slo.record(True, n=80)
    assert 1.0 <= slo.burn_rate(100.0) < 4.0
    assert slo.state() == "warn"


def test_latency_and_availability_observe():
    clock = Clock()
    lat = LatencySlo("p99", clock, threshold_us=500.0, target=0.99)
    lat.observe(499.0)
    lat.observe(500.0)   # boundary counts as good
    lat.observe(501.0)
    assert (lat.good_total, lat.total) == (2, 3)
    avail = AvailabilitySlo("served", clock, 0.999)
    avail.observe(True)
    avail.observe(False)
    avail.observe(1)
    assert (avail.good_total, avail.total) == (2, 3)


def test_snapshot_row():
    clock = Clock()
    slo = LatencySlo("get_p99", clock, threshold_us=600.0, target=0.99)
    slo.observe(100.0)
    row = slo.snapshot()
    assert row["name"] == "get_p99"
    assert row["kind"] == "latency"
    assert row["target"] == 0.99
    assert row["good"] == 1 and row["total"] == 1
    assert row["state"] == "ok"
    assert set(row) >= {"compliance", "budget_remaining",
                        "burn_short", "burn_long"}


# ----------------------------------------------------------------------
# Tracker
# ----------------------------------------------------------------------
def test_tracker_get_or_create_and_observe():
    clock = Clock()
    tracker = SloTracker(clock)
    lat = tracker.latency("get_p99", threshold_us=600.0)
    assert tracker.latency("get_p99", threshold_us=999.0) is lat
    assert lat.threshold_us == 600.0   # first registration wins
    avail = tracker.availability("served", target=0.995)
    assert tracker.get("served") is avail
    assert tracker.get("missing") is None
    assert len(tracker) == 2

    tracker.observe_latency("get_p99", 100.0)
    tracker.observe_latency("unregistered", 100.0)   # silently ignored
    tracker.observe_ok("served", False)
    assert lat.total == 1
    assert avail.total == 1


def test_tracker_defaults_flow_into_new_slos():
    clock = Clock()
    tracker = SloTracker(clock, short_window_us=10.0, long_window_us=20.0)
    slo = tracker.latency("x", threshold_us=100.0)
    assert slo.short_window_us == 10.0
    assert slo.long_window_us == 20.0


def test_tracker_worst_state_and_snapshot_sorted():
    clock = Clock()
    tracker = SloTracker(clock)
    assert tracker.worst_state() == "ok"
    healthy = tracker.availability("zzz_ok", target=0.999)
    healthy.observe(True)
    burning = tracker.availability("aaa_bad", target=0.999)
    for _ in range(10):
        burning.observe(False)
    assert tracker.worst_state() == "page"
    names = [row["name"] for row in tracker.snapshot()]
    assert names == sorted(names)


def test_tracker_publish_gauges():
    clock = Clock()
    tracker = SloTracker(clock)
    slo = tracker.availability("served", target=0.9)
    for _ in range(10):
        slo.observe(False)
    registry = MetricsRegistry(clock=clock)
    tracker.publish(registry)
    assert registry.value("slo", "served", "state") == STATE_CODES["page"]
    assert registry.value("slo", "served", "burn_short") == pytest.approx(10.0)
    assert registry.value("slo", "served", "burn_long") == pytest.approx(10.0)
    assert registry.value("slo", "served", "budget_remaining") < 0.0
