"""Miniature runs of every experiment harness: structure + key shape checks.

These keep runtimes small (short windows, few load points); the full
paper-scale sweeps live in benchmarks/.
"""

import math

import pytest

from repro.experiments import (
    run_figure2,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_table2,
    run_table3,
)


def rows_by(table, **filters):
    out = []
    for row in table:
        if all(row.get(k) == v for k, v in filters.items()):
            out.append(row)
    return out


def test_figure2_shape():
    table = run_figure2(loads=[150_000, 450_000], duration_us=120_000,
                        warmup_us=30_000)
    assert len(table) == 4
    vanilla_hi = rows_by(table, policy="vanilla", load_rps=450_000)[0]
    rr_hi = rows_by(table, policy="round_robin", load_rps=450_000)[0]
    assert vanilla_hi["drop_pct"] > 1.0
    assert rr_hi["drop_pct"] == pytest.approx(0.0)
    assert rr_hi["p99_us"] < vanilla_hi["p99_us"]


def test_figure6_shape():
    table = run_figure6(loads=[120_000], duration_us=120_000,
                        warmup_us=30_000)
    p99 = {row["policy"]: row["p99_us"] for row in table}
    # SCAN Avoid and SITA below RR and vanilla; SITA lowest overall
    assert p99["scan_avoid"] < p99["round_robin"]
    assert p99["sita"] < p99["round_robin"]
    assert p99["sita"] < 150.0
    assert p99["round_robin"] > 500.0


def test_figure7_shape():
    table = run_figure7(ls_loads=[100_000], duration_us=100_000,
                        warmup_us=25_000)
    rr = rows_by(table, policy="round_robin")[0]
    tok = rows_by(table, policy="token_based")[0]
    # token policy protects the LS user's tail at some BE-throughput cost
    assert tok["ls_p99_us"] < rr["ls_p99_us"] / 3
    assert tok["be_goodput_rps"] < rr["be_goodput_rps"]
    assert tok["be_goodput_rps"] > 100_000  # leftovers really are gifted


def test_figure8_shape():
    table = run_figure8(loads=[8_000], duration_us=300_000,
                        warmup_us=75_000)
    get_p99 = {row["variant"]: row["get_p99_us"] for row in table}
    # at mid load the combined policy clearly beats either single layer
    assert get_p99["both"] < get_p99["scan_avoid"] / 2
    assert get_p99["both"] < get_p99["thread_sched"] / 5
    assert get_p99["thread_sched"] > 300.0  # socket HOL stays


def test_figure9_shape():
    table = run_figure9(loads=[2_000_000], duration_us=15_000,
                        warmup_us=4_000, mixes=["50get-50put"])
    p999 = {row["mode"]: row["p999_us"] for row in table}
    assert p999["syrup_hw"] <= p999["syrup_sw"] * 1.5
    assert p999["syrup_sw"] < p999["sw_redirect"] / 2
    mis = {row["mode"]: row["misroutes"] for row in table}
    assert mis["syrup_sw"] == 0 and mis["syrup_hw"] == 0


def test_table2_shape():
    table = run_table2(samples=64)
    rows = {row["policy"]: row for row in table}
    assert set(rows) == {"round_robin", "scan_avoid", "sita", "token_based"}
    for row in rows.values():
        assert 0 < row["loc"] < 50
        assert row["total_cycles"] < 2000.0  # the paper's headline bound
    # SCAN Avoid's unrolled loop gives it the largest static program
    assert rows["scan_avoid"]["ir_insns"] > rows["round_robin"]["ir_insns"]
    assert rows["scan_avoid"]["ir_insns"] > rows["sita"]["ir_insns"]


def test_table3_shape():
    table = run_table3(n_ops=200)
    means = {(row["backend"], row["op"]): row["mean_us"] for row in table}
    assert means[("Host", "get")] == pytest.approx(1.0, abs=0.1)
    assert means[("Offload", "get")] == pytest.approx(24.0, abs=1.5)
    # offload ~25x host, contention barely matters (paper Table 3)
    ratio = means[("Offload", "update")] / means[("Host", "update")]
    assert 15 < ratio < 35
    assert means[("Host Contended", "get")] < 1.5
