"""ToR steering policies for the fleet tier (RackSched at rack scale).

The aggregate fleet simulator (:mod:`repro.cluster.fleet`) steers every
request at a top-of-rack switch through one of these policies.  They
follow the same matching shape as every other Syrup hook — ``pick``
returns a machine index, ``None`` for "fall through to the default", or
``DROP`` — and they read *replicated* load state (``switch.load_view``,
``switch.delay_view``) that the :class:`repro.cluster.sync.MapSyncBus`
refreshes on a cadence, so each policy operates under the bounded
staleness a real in-network scheduler lives with.

Two deployment forms exist, mirroring the paper's portability claim:

- native Python policy objects below (the fast path for 100s of
  machines), and
- verified Syrup programs (``STEER_POWER_OF_TWO``, ``STEER_TAIL_P2C``,
  ``STEER_LOCALITY``) compiled through the standard :mod:`repro.ebpf`
  pipeline and run at the switch, reading the replicated
  ``machine_load_array`` (and, for the tail-aware program, the
  sketch-fed ``machine_p99_array``) Maps that the sync bus keeps fresh —
  user-defined scheduling deployed *into the network*, not just onto a
  host.

``STEERING_FACTORIES`` maps policy names to constructors so experiments
and the CLI can sweep them by name.
"""

from repro.constants import DROP, PASS
from repro.core.promote import CanarySplit, DecisionDiff, steer_label

__all__ = [
    "STEERING_FACTORIES",
    "STEER_LOCALITY",
    "STEER_POWER_OF_TWO",
    "STEER_TAIL_P2C",
    "FlowHashSteering",
    "JsqSteering",
    "LocalitySteering",
    "PowerOfKSteering",
    "RandomSteering",
    "ShadowSteering",
    "ShortestExpectedDelaySteering",
    "SwitchProgramSteering",
]

_GOLDEN = 2654435761  # Knuth multiplicative hash constant


class RandomSteering:
    """Uniform random spray — the no-information baseline."""

    name = "random"

    def __init__(self, rng):
        self.rng = rng

    def pick(self, request, switch):
        alive = switch.alive_machines()
        if not alive:
            return DROP
        return alive[self.rng.randrange(len(alive))]


class FlowHashSteering:
    """Stateless per-user hash (flow affinity, the L4-LB default).

    Keeps each user on one machine like a consistent-hash front end;
    with skewed users this reproduces the classic hash imbalance.
    """

    name = "flow_hash"

    def __init__(self, salt=0x70F):
        self.salt = salt

    def pick(self, request, switch):
        alive = switch.alive_machines()
        if not alive:
            return DROP
        h = ((request.user_id ^ self.salt) * _GOLDEN) & 0xFFFFFFFF
        return alive[h % len(alive)]


class JsqSteering:
    """Join-the-shortest-queue over the *replicated* load view.

    The omniscient-looking policy — but it reads the sync-bus replica,
    not ground truth, so under stale views it herds: every request
    between refreshes piles onto the same "shortest" machine.
    """

    name = "jsq"

    def pick(self, request, switch):
        best = None
        best_load = None
        for index in switch.alive_machines():
            load = switch.load_view[index]
            if best_load is None or load < best_load:
                best, best_load = index, load
        return DROP if best is None else best


class PowerOfKSteering:
    """Sample ``k`` random machines, join the least loaded (RackSched).

    The textbook stale-robust policy: random sampling breaks the herd
    that pure JSQ forms on stale views.
    """

    name = "power_of_k"

    def __init__(self, rng, k=2):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.rng = rng
        self.k = k

    def pick(self, request, switch):
        alive = switch.alive_machines()
        if not alive:
            return DROP
        best = None
        best_load = None
        for _ in range(self.k):
            index = alive[self.rng.randrange(len(alive))]
            load = switch.load_view[index]
            if best_load is None or load < best_load \
                    or (load == best_load and index < best):
                best, best_load = index, load
        return best


class ShortestExpectedDelaySteering:
    """RackSched's refinement: queue depth scaled by service speed.

    ``delay_view[i]`` is the replicated expected delay — outstanding
    work divided by the machine's worker count — so a 2x-provisioned
    machine absorbs twice the queue before looking equally bad.
    """

    name = "sed"

    def pick(self, request, switch):
        best = None
        best_delay = None
        for index in switch.alive_machines():
            delay = switch.delay_view[index]
            if best_delay is None or delay < best_delay:
                best, best_delay = index, delay
        return DROP if best is None else best


class LocalitySteering:
    """Keep a user on its home machine unless the home is overloaded.

    Home = ``user_id % num_machines`` (where the user's cached state
    lives); spill via power-of-k when the home's replicated load exceeds
    ``spill_threshold`` — locality until it costs tail latency.
    """

    name = "locality"

    def __init__(self, rng, spill_threshold=8, k=2):
        self.rng = rng
        self.spill_threshold = spill_threshold
        self._spill = PowerOfKSteering(rng, k=k)

    def pick(self, request, switch):
        home = request.user_id % switch.num_machines
        if switch.is_alive(home) \
                and switch.load_view[home] <= self.spill_threshold:
            return home
        return self._spill.pick(request, switch)


class SwitchProgramSteering:
    """A verified Syrup program deployed at the ToR switch.

    ``loaded`` is a :class:`repro.ebpf.program.LoadedProgram` whose maps
    include the replicated ``machine_load_array``; the program sees the
    request through its lazy :class:`repro.net.packet.PacketView` and
    returns a machine index, ``PASS`` or ``DROP`` — identical semantics
    to the same source running at a host hook.
    """

    def __init__(self, loaded, name="program"):
        self.loaded = loaded
        self.name = name

    def pick(self, request, switch):
        value = self.loaded.run(request.packet_view())
        if value == PASS:
            return None
        if value == DROP:
            return DROP
        index = value % switch.num_machines
        if not switch.is_alive(index):
            return None          # failover: fall through to the default
        return index


class ShadowSteering:
    """Shadow/canary wrapper around the live ToR steering policy.

    Installed *in place of* the active policy (the wrapper forwards to
    it), so the candidate sees every steering decision the rack makes.
    In the ``shadow`` stage the candidate's pick is recorded into a
    :class:`~repro.core.promote.DecisionDiff` and discarded; in the
    ``canary`` stage the deterministic flow-hash cohort (stamped once
    on the request by :class:`~repro.core.promote.CanarySplit`, so
    per-port ToR rules never double-hash a flow) is steered by the
    candidate for real.  Give the candidate its own RNG stream — a
    candidate drawing from the active policy's stream would perturb the
    control decisions it is being judged against.
    """

    def __init__(self, active, candidate, canary_pct=10, salt=0x5EED,
                 name="candidate"):
        self.active = active
        self.candidate = candidate
        self.canary_pct = canary_pct
        self.split = CanarySplit(salt)
        self.diff = DecisionDiff()
        self.stage = "shadow"
        self.canary_enforced = 0
        self.canary_faults = 0
        self.candidate_name = name
        self.name = f"shadow:{getattr(active, 'name', 'policy')}"

    def pick(self, request, switch):
        bucket = self.split.bucket(request)
        if self.stage == "canary" and bucket < self.canary_pct:
            self.canary_enforced += 1
            try:
                return self.candidate.pick(request, switch)
            except Exception:  # noqa: BLE001 - candidate contained
                self.canary_faults += 1
                return self.active.pick(request, switch)
        value = self.active.pick(request, switch)
        if self.stage in ("shadow", "canary"):
            try:
                shadow_value = self.candidate.pick(request, switch)
            except Exception:  # noqa: BLE001 - candidate contained
                self.diff.shadow_faults += 1
                return value
            self.diff.record(value, shadow_value, steer_label(value),
                             steer_label(shadow_value), 0.0)
        return value

    def promote(self):
        """Enforce the candidate everywhere (the caller re-installs)."""
        self.stage = "active"
        return self.candidate

    def reject(self):
        """Stop shadowing (the caller re-installs ``active``)."""
        self.stage = "rejected"
        return self.active

    def snapshot(self):
        return {
            "name": self.candidate_name,
            "stage": self.stage,
            "canary_pct": self.canary_pct,
            "canary_enforced": self.canary_enforced,
            "canary_faults": self.canary_faults,
            "diff": self.diff.snapshot(),
        }


#: Power-of-two-choices as a verified Syrup program: probe two random
#: machines in the replicated load Map, take the less loaded.  Deploy
#: with ``constants={"NUM_MACHINES": n}`` via
#: :meth:`repro.cluster.fleet.Fleet.deploy_steering_program`.
STEER_POWER_OF_TWO = '''
machine_load_array = syr_map("machine_load_array", NUM_MACHINES)

def schedule(pkt):
    a = get_random() % NUM_MACHINES
    b = get_random() % NUM_MACHINES
    load_a = map_lookup(machine_load_array, a)
    load_b = map_lookup(machine_load_array, b)
    if load_b < load_a:
        return b
    return a
'''

#: Tail-aware power-of-two-choices: probe two machines and compare a
#: combined cost of instantaneous backlog (the load replica, weighted at
#: ``TAIL_LOAD_WEIGHT_US`` per queued request) plus the machine's
#: recent p99 latency in microseconds (``machine_p99_array``, published
#: from per-machine DDSketches over the sync bus when the fleet runs
#: with ``latency_signals=True``).  Load alone is instantaneous but
#: memoryless; p99 alone is sticky but slow — the sum steers away from
#: machines whose *tail* is bad even when their queue happens to look
#: short right now.  With an all-zero p99 replica this is exactly
#: ``STEER_POWER_OF_TWO``.
STEER_TAIL_P2C = '''
machine_load_array = syr_map("machine_load_array", NUM_MACHINES)
machine_p99_array = syr_map("machine_p99_array", NUM_MACHINES)

def schedule(pkt):
    a = get_random() % NUM_MACHINES
    b = get_random() % NUM_MACHINES
    cost_a = map_lookup(machine_load_array, a) * TAIL_LOAD_WEIGHT_US
    cost_a = cost_a + map_lookup(machine_p99_array, a)
    cost_b = map_lookup(machine_load_array, b) * TAIL_LOAD_WEIGHT_US
    cost_b = cost_b + map_lookup(machine_p99_array, b)
    if cost_b < cost_a:
        return b
    return a
'''

#: Locality with spill as a verified Syrup program: home machine by
#: user id unless its replicated load exceeds SPILL_THRESHOLD, then one
#: random alternative.  (User id is u64 at packet offset 16.)
STEER_LOCALITY = '''
machine_load_array = syr_map("machine_load_array", NUM_MACHINES)

def schedule(pkt):
    if pkt_len(pkt) < 24:
        return PASS
    user_id = load_u64(pkt, 16)
    home = user_id % NUM_MACHINES
    load = map_lookup(machine_load_array, home)
    if load <= SPILL_THRESHOLD:
        return home
    return get_random() % NUM_MACHINES
'''


def _make_random(fleet):
    return RandomSteering(fleet.steering_rng())


def _make_flow_hash(fleet):
    return FlowHashSteering()


def _make_jsq(fleet):
    return JsqSteering()


def _make_power_of_two(fleet):
    return PowerOfKSteering(fleet.steering_rng(), k=2)


def _make_sed(fleet):
    return ShortestExpectedDelaySteering()


def _make_locality(fleet):
    return LocalitySteering(fleet.steering_rng())


def _make_program_p2c(fleet):
    return fleet.deploy_steering_program(
        STEER_POWER_OF_TWO, name="program_p2c"
    )


def _make_program_tail(fleet):
    return fleet.deploy_steering_program(
        STEER_TAIL_P2C, name="program_tail"
    )


#: name -> callable(fleet) -> policy instance, for sweeping by name.
STEERING_FACTORIES = {
    "random": _make_random,
    "flow_hash": _make_flow_hash,
    "jsq": _make_jsq,
    "power_of_two": _make_power_of_two,
    "sed": _make_sed,
    "locality": _make_locality,
    "program_p2c": _make_program_p2c,
    "program_tail": _make_program_tail,
}
