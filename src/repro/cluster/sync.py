"""Cross-machine Maps propagation with explicit staleness modeling.

On one machine a Syrup Map is a shared-memory object: a policy's read
sees the userspace write of a microsecond ago.  Across a rack there is
no shared memory — state the ToR switch steers on (per-machine queue
depths, expected delays) must be *carried* there, by piggybacked
response headers (RackSched) or by an agent publishing on a cadence.
Either way the reader sees the past.  This module makes that staleness a
first-class, configurable model instead of an accident:

- every ``interval_us`` of simulated time the bus **snapshots** each
  registered channel's ground truth (e.g. every machine's instantaneous
  queue depth), and
- applies the snapshot to the reader-side replica ``delay_us`` later
  (the propagation delay of the wire/agent path).

A steering policy reading the replica at time ``t`` therefore sees truth
from ``t - age`` where ``age ∈ [delay_us, delay_us + interval_us)`` —
the same bounded-staleness window a RackSched switch or a gossiping
load-balancer operates under.  ``staleness_us()`` reports the current
age so experiments can sweep it and telemetry can record it.

Determinism: the bus draws no randomness and snapshots/applies channels
in registration order; the engine's FIFO tie-break at equal timestamps
makes replica application order reproducible, so two seeded runs make
bit-identical steering decisions (tests/test_fleet.py locks this with
paired runs).  The bus re-arms only while its ``active`` predicate holds
(the fleet supplies "load still in flight"), so a drained run terminates
exactly like one without a bus.
"""

__all__ = ["MapSyncBus", "SyncChannel"]

DEFAULT_INTERVAL_US = 50.0
DEFAULT_DELAY_US = 25.0


class SyncChannel:
    """One replicated signal: a snapshot closure and an apply closure."""

    __slots__ = ("name", "snapshot", "apply", "applied", "last_stamp_us")

    def __init__(self, name, snapshot, apply):
        self.name = name
        self.snapshot = snapshot      # () -> value (read ground truth)
        self.apply = apply            # (value, stamp_us) -> None (replica)
        self.applied = 0
        self.last_stamp_us = None     # sim-time the applied snapshot was taken

    def __repr__(self):
        return (
            f"<SyncChannel {self.name!r} applied={self.applied} "
            f"last_stamp={self.last_stamp_us}>"
        )


class MapSyncBus:
    """Periodic snapshot → delayed apply replication between machines.

    ``interval_us`` is the publish cadence, ``delay_us`` the propagation
    delay; ``active`` is a zero-arg predicate — the bus keeps ticking
    while it returns True (in-flight snapshots still apply after it goes
    False, they are one-shot events).
    """

    def __init__(self, engine, interval_us=DEFAULT_INTERVAL_US,
                 delay_us=DEFAULT_DELAY_US, active=None):
        if interval_us <= 0:
            raise ValueError(
                f"interval_us must be positive, got {interval_us}"
            )
        if delay_us < 0:
            raise ValueError(f"delay_us must be >= 0, got {delay_us}")
        self.engine = engine
        self.interval_us = float(interval_us)
        self.delay_us = float(delay_us)
        self.active = active if active is not None else (lambda: True)
        self.channels = []
        self.ticks = 0
        self._armed = None

    # ------------------------------------------------------------------
    def add_channel(self, name, snapshot, apply):
        """Register a replicated signal; returns the channel handle."""
        channel = SyncChannel(name, snapshot, apply)
        self.channels.append(channel)
        return channel

    def channel(self, name):
        for ch in self.channels:
            if ch.name == name:
                return ch
        raise KeyError(f"no sync channel named {name!r}")

    # ------------------------------------------------------------------
    def arm(self):
        """Schedule the next publish tick (idempotent)."""
        if self._armed is not None and not self._armed.cancelled:
            return
        self._armed = self.engine.schedule(self.interval_us, self._tick)

    def disarm(self):
        if self._armed is not None:
            self._armed.cancel()
            self._armed = None

    def _tick(self):
        self._armed = None
        self.ticks += 1
        now = self.engine.now
        for channel in self.channels:
            value = channel.snapshot()
            self.engine.schedule(self.delay_us, self._apply, channel,
                                 value, now)
        if self.active():
            self.arm()

    def _apply(self, channel, value, stamp_us):
        channel.apply(value, stamp_us)
        channel.applied += 1
        channel.last_stamp_us = stamp_us

    # ------------------------------------------------------------------
    def staleness_us(self, name=None):
        """Age of the replica: now minus the applied snapshot's stamp.

        ``None`` before the first apply.  With several channels, ``name``
        picks one (default: the first registered).
        """
        if not self.channels:
            return None
        channel = self.channel(name) if name else self.channels[0]
        if channel.last_stamp_us is None:
            return None
        return self.engine.now - channel.last_stamp_us

    def __repr__(self):
        return (
            f"<MapSyncBus interval={self.interval_us}us "
            f"delay={self.delay_us}us channels={len(self.channels)} "
            f"ticks={self.ticks}>"
        )
