"""The fleet tier: 100s of machines, millions of users, one ToR switch.

:mod:`repro.cluster.cluster` co-simulates a handful of *full* Machines —
NICs, softirq cores, sockets, policy hooks — which is the right fidelity
for rack-policy microbenchmarks and far too expensive for rack *scale*.
This module is the aggregate tier: each server is a
:class:`FleetMachine` (a queue plus ``workers`` service slots), each
request a :class:`FleetRequest` (a few slots, no packet bytes unless a
deployed program peeks via its lazy
:class:`~repro.net.packet.PacketView`), and each user a sampled id out
of ``num_users`` rather than an object.  That keeps a 100-machine,
million-user diurnal run within a few hundred thousand engine events —
``figure_fleet`` territory — while preserving the pieces the paper's
§6.1 extension actually argues about:

- the **ToR switch** (:class:`TorSwitch`) steers every request through a
  user-defined policy (:mod:`repro.cluster.steering`), including
  verified Syrup programs deployed into the network;
- steering reads **replicated** load state kept fresh by a
  :class:`~repro.cluster.sync.MapSyncBus` — bounded staleness, not
  omniscience;
- whole-machine and link failures come from the standard
  :class:`~repro.faults.FaultPlan` (``machine_kill`` / ``link_down``)
  and the switch *fails over*: orphaned requests re-steer to live
  machines once detection fires (at-least-once semantics);
- per-machine :class:`~repro.qdisc.discipline.Qdisc` ordering composes
  with switch steering (``qdisc_factory``), so a rack can run
  shortest-expected-delay at the ToR and SRPT at each host;
- the whole run is observable: ``switch_steer``/``xnet_wait``/
  ``machine_queue`` spans, fleet counters, and a flight-recorder probe
  publishing per-machine load and replica staleness over sim time.

Determinism: arrivals, service draws, steering randomness and fault
timing all pull from named :class:`~repro.sim.rng.RngStreams`; the sync
bus and recorder only read.  Two fleets built with the same arguments
produce bit-identical latency distributions (tests/test_fleet.py).
"""

from repro.cluster.steering import (
    STEERING_FACTORIES,
    FlowHashSteering,
    ShadowSteering,
    SwitchProgramSteering,
)
from repro.cluster.sync import MapSyncBus
from repro.constants import DROP
from repro.ebpf import ArrayMap, compile_policy, load_program
from repro.faults import FaultKind
from repro.net.packet import PacketView
from repro.obs import Observability
from repro.obs.sketch import DDSketch
from repro.obs.timeseries import DEFAULT_INTERVAL_US, FlightRecorder
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.stats import LatencyRecorder
from repro.workload.mixes import RequestMix
from repro.workload.requests import GET, SCAN, type_name

__all__ = [
    "FLEET_MIX",
    "Fleet",
    "FleetFaultInjector",
    "FleetGenerator",
    "FleetMachine",
    "FleetRequest",
    "TorSwitch",
]

import math

#: Default fleet workload: mostly short GETs with a heavy SCAN tail —
#: the shape that separates load-aware steering from hashing.
FLEET_MIX = RequestMix("fleet", [
    (GET, 0.90, (150.0, 250.0)),
    (SCAN, 0.10, (600.0, 1000.0)),
])

DEFAULT_WIRE_US = 5.0
DEFAULT_FORWARD_US = 1.0
DEFAULT_FAILOVER_DETECT_US = 500.0


class FleetRequest:
    """One aggregate-flow request: slots only, packet bytes on demand."""

    __slots__ = ("rid", "rtype", "user_id", "service_us", "sent_at",
                 "dst_port", "machine", "attempts", "completed_at", "_pv",
                 "cohort", "tenant")

    def __init__(self, rid, rtype, service_us, user_id=0, sent_at=0.0,
                 dst_port=0, tenant=None):
        self.rid = rid
        self.rtype = rtype
        self.user_id = user_id
        self.service_us = service_us
        self.sent_at = sent_at
        self.dst_port = dst_port
        self.machine = None       # current steering target
        self.attempts = 0         # steer count (>1 means failover re-steer)
        self.completed_at = None
        self._pv = None
        self.cohort = None        # canary-split bucket, stamped once
        # Owning tenant: stamped at admission from the ToR's per-port
        # rule owner (TorSwitch.install(port, policy, owner=...)) so the
        # switch's tenant identity propagates down the stack — the fleet
        # half of per-tenant accounting (repro.obs.accounting).
        self.tenant = tenant

    def packet_view(self):
        """The lazy packet facade handed to deployed programs/qdiscs."""
        if self._pv is None:
            self._pv = PacketView(self.rtype, user_id=self.user_id,
                                  rid=self.rid, dst_port=self.dst_port)
        return self._pv

    @property
    def latency_us(self):
        if self.completed_at is None:
            return None
        return self.completed_at - self.sent_at

    def __repr__(self):
        return (
            f"<FleetRequest rid={self.rid} {type_name(self.rtype)} "
            f"user={self.user_id} machine={self.machine}>"
        )


class FleetMachine:
    """An aggregate rack server: ``workers`` service slots + one queue.

    The queue is a plain FIFO deque unless the fleet's ``qdisc_factory``
    supplies a :class:`~repro.qdisc.discipline.Qdisc` — then requests
    are ranked by the deployed program (seeing the request's lazy
    ``PacketView``), composing per-host ordering with ToR steering.
    """

    __slots__ = ("index", "fleet", "workers", "queue_cap", "qdisc",
                 "_fifo", "busy", "alive", "link_up", "served",
                 "orphans", "_service_events", "_held_responses")

    def __init__(self, index, fleet, workers, queue_cap=None, qdisc=None):
        self.index = index
        self.fleet = fleet
        self.workers = workers
        self.queue_cap = queue_cap
        self.qdisc = qdisc
        self._fifo = [] if qdisc is None else None
        self.busy = 0
        self.alive = True
        self.link_up = True
        self.served = 0
        self.orphans = []             # requests stranded by a kill
        self._service_events = {}     # rid -> completion Event
        self._held_responses = []     # responses stuck behind a dead link

    # ------------------------------------------------------------------
    def load(self):
        """Ground truth: queued + in-service (what the sync bus snapshots)."""
        return self.queue_depth() + self.busy

    def queue_depth(self):
        return len(self.qdisc) if self.qdisc is not None else len(self._fifo)

    def expected_delay(self):
        """RackSched's steering signal: outstanding work per worker."""
        return self.load() / self.workers

    # ------------------------------------------------------------------
    def receive(self, request):
        """A steered request arrives off the rack wire."""
        fleet = self.fleet
        fleet.spans.xnet_end(request)
        if not self.alive:
            # Arrived at a corpse.  Before failover detection the switch
            # doesn't know yet: strand the request with the other
            # orphans.  After detection, re-steer immediately.
            if fleet.switch.is_alive(self.index):
                self.orphans.append(request)
            else:
                fleet.resteer(request)
            return
        if self.busy < self.workers:
            self._begin_service(request)
            return
        depth = self.queue_depth()
        if self.qdisc is not None:
            result = self.qdisc.offer(request, capacity=self.queue_cap,
                                      ctx=request.packet_view())
            if result.evicted is not None:
                fleet.drop(result.evicted, "qdisc_evict")
            if not result.accepted:
                fleet.drop(request, result.reason or "qdisc_drop")
                return
        else:
            if self.queue_cap is not None and depth >= self.queue_cap:
                fleet.drop(request, "overflow")
                return
            self._fifo.append(request)
        fleet.spans.machine_enqueued(request, self.index, depth)

    def _begin_service(self, request):
        fleet = self.fleet
        self.busy += 1
        fleet.spans.fleet_service_begin(request, self.index)
        event = fleet.engine.schedule(
            request.service_us, self._complete_service, request
        )
        self._service_events[request.rid] = event

    def _complete_service(self, request):
        fleet = self.fleet
        self._service_events.pop(request.rid, None)
        self.busy -= 1
        self.served += 1
        fleet.spans.fleet_service_end(request)
        self._dispatch_next()
        if self.link_up:
            fleet.send_response(self.index, request)
        else:
            # Carrier is down; the finished response waits at the NIC.
            self._held_responses.append(request)

    def _dispatch_next(self):
        if self.busy >= self.workers:
            return
        nxt = (self.qdisc.take() if self.qdisc is not None
               else (self._fifo.pop(0) if self._fifo else None))
        if nxt is not None:
            self._begin_service(nxt)

    # ------------------------------------------------------------------
    def kill(self):
        """Whole-machine failure: cancel service, strand everything."""
        self.alive = False
        orphans = []
        for event in self._service_events.values():
            event.cancel()
            orphans.append(event.args[0])
        self._service_events.clear()
        self.busy = 0
        if self.qdisc is not None:
            orphans.extend(self.qdisc.drain())
        else:
            orphans.extend(self._fifo)
            self._fifo.clear()
        self.orphans.extend(orphans)
        self._held_responses.clear()  # a dead machine's responses are lost
        return orphans

    def restore(self):
        self.alive = True

    def link_restore(self):
        """Carrier back: flush every response held behind the dead link."""
        self.link_up = True
        held, self._held_responses = self._held_responses, []
        for request in held:
            self.fleet.send_response(self.index, request)

    def __repr__(self):
        state = "up" if self.alive else "DEAD"
        return (
            f"<FleetMachine {self.index} {state} busy={self.busy} "
            f"queued={self.queue_depth()} served={self.served}>"
        )


class TorSwitch:
    """The rack's programmable top-of-rack switch (aggregate tier).

    Holds the *replicated* steering state (``load_view``,
    ``delay_view``, and the ``machine_load_array`` Map that deployed
    programs read), the per-port tenant rules, and the liveness view.
    ``mark_down``/``mark_up`` model what the switch can actually see:
    carrier loss is instant, a wedged machine takes
    ``failover_detect_us`` of silence to notice.
    """

    def __init__(self, num_machines, default=None):
        self.num_machines = num_machines
        self.default = default if default is not None else FlowHashSteering()
        #: Last-resort matcher when even the default PASSes (e.g. a
        #: deployed program installed as the default returns PASS).
        self.fallback = FlowHashSteering()
        self._port_rules = {}               # port -> (policy, owner)
        self.load_view = [0] * num_machines
        self.delay_view = [0.0] * num_machines
        self.load_map = ArrayMap("machine_load_array", num_machines)
        self.p99_view = [0] * num_machines
        self.p99_map = ArrayMap("machine_p99_array", num_machines)
        self._down = set()
        self._alive = list(range(num_machines))
        self.forwarded = [0] * num_machines
        self.dropped = 0
        self.resteers = 0

    # ------------------------------------------------------------------
    def install(self, port, policy, owner=None):
        """Per-port match/action rule (tenant isolation, §6.1)."""
        existing = self._port_rules.get(port)
        if existing is not None and owner is not None \
                and existing[1] is not None and existing[1] != owner:
            raise PermissionError(
                f"port {port} rule already owned by {existing[1]!r}"
            )
        self._port_rules[port] = (policy, owner)

    def policy_for(self, request):
        rule = self._port_rules.get(request.dst_port)
        return rule[0] if rule is not None else self.default

    def owner_for(self, request):
        """The tenant owning the request's port rule, or None."""
        rule = self._port_rules.get(request.dst_port)
        return rule[1] if rule is not None else None

    # ------------------------------------------------------------------
    def alive_machines(self):
        return self._alive

    def is_alive(self, index):
        return index not in self._down

    def mark_down(self, index):
        self._down.add(index)
        self._alive = [i for i in range(self.num_machines)
                       if i not in self._down]

    def mark_up(self, index):
        self._down.discard(index)
        self._alive = [i for i in range(self.num_machines)
                       if i not in self._down]

    # ------------------------------------------------------------------
    def apply_load(self, loads, workers):
        """Sync-bus apply: refresh every replica from a snapshot."""
        self.load_view = loads
        self.delay_view = [load / workers[i] for i, load in enumerate(loads)]
        for i, load in enumerate(loads):
            self.load_map.update(i, load)

    def apply_p99(self, p99s):
        """Sync-bus apply: refresh the per-machine tail-latency replica."""
        self.p99_view = p99s
        for i, p99 in enumerate(p99s):
            self.p99_map.update(i, p99)

    def pick(self, request):
        """Run the matching policy; returns a machine index or None (drop)."""
        policy = self.policy_for(request)
        index = policy.pick(request, self)
        if index is None and policy is not self.default:
            index = self.default.pick(request, self)
        if index is None:
            index = self.fallback.pick(request, self)
        if index is None or index == DROP:
            return None
        return index

    def __repr__(self):
        return (
            f"<TorSwitch machines={self.num_machines} "
            f"down={sorted(self._down)} dropped={self.dropped}>"
        )


class FleetGenerator:
    """Aggregate open-loop load: Poisson arrivals with diurnal modulation.

    Millions of users are *sampled* (``user_id = uniform(num_users)``),
    not instantiated.  The arrival rate follows
    ``rps * (1 - depth * 0.5 * (1 + cos(2*pi*t/period)))`` — a diurnal
    trough at t=0 rising to the full ``rps`` mid-period — degenerate to
    constant ``rps`` when ``diurnal_depth`` is 0.
    """

    def __init__(self, fleet, rps, duration_us, num_users=1_000_000,
                 mix=None, diurnal_period_us=None, diurnal_depth=0.0,
                 ports=None):
        if not 0.0 <= diurnal_depth < 1.0:
            raise ValueError(
                f"diurnal_depth must be in [0, 1), got {diurnal_depth}"
            )
        self.fleet = fleet
        self.rps = rps
        self.duration_us = duration_us
        self.num_users = num_users
        self.mix = mix if mix is not None else FLEET_MIX
        self.diurnal_period_us = diurnal_period_us
        self.diurnal_depth = diurnal_depth
        self._arrivals = fleet.streams.get("arrivals")
        self._service = fleet.streams.get("service")
        self._users = fleet.streams.get("users")
        # Multi-tenant traffic: each arrival's dst_port is drawn
        # uniformly from ``ports``, landing it on that port's ToR rule
        # (and its owner's tenant bill).  The draw uses its own named
        # stream so the default single-port workload — ports=None, no
        # stream ever created — is bit-identical with or without this
        # feature existing.
        self.ports = list(ports) if ports else None
        self._ports_rng = (fleet.streams.get("gen_ports")
                           if self.ports else None)
        self.offered = 0
        self.done = False
        self._next_rid = 0

    def rate_per_us(self, now):
        rate = self.rps / 1e6
        if self.diurnal_period_us:
            rate *= 1.0 - self.diurnal_depth * 0.5 * (
                1.0 + math.cos(2.0 * math.pi * now / self.diurnal_period_us)
            )
        return rate

    def start(self):
        self._schedule_next()

    def _schedule_next(self):
        now = self.fleet.engine.now
        rate = self.rate_per_us(now)
        gap = self._arrivals.expovariate(rate) if rate > 0 \
            else self.duration_us
        if now + gap >= self.duration_us:
            self.done = True
            return
        self.fleet.engine.schedule(gap, self._arrive)

    def _arrive(self):
        self._next_rid += 1
        rtype, service_us = self.mix.sample(self._service)
        request = FleetRequest(
            rid=self._next_rid,
            rtype=rtype,
            service_us=service_us,
            user_id=self._users.randrange(self.num_users),
            sent_at=self.fleet.engine.now,
        )
        if self.ports is not None:
            request.dst_port = self.ports[
                self._ports_rng.randrange(len(self.ports))
            ]
        self.offered += 1
        self.fleet.admit(request)
        self._schedule_next()


class FleetFaultInjector:
    """Arms a :class:`~repro.faults.FaultPlan`'s fleet-scoped specs.

    The mirror image of :class:`repro.faults.FaultInjector`: that one
    skips ``machine_kill``/``link_down``, this one arms *only* them —
    the same plan object can drive a Machine and a Fleet.
    """

    def __init__(self, fleet, plan):
        self.fleet = fleet
        self.plan = plan
        self.injected = 0

    def arm(self):
        engine = self.fleet.engine
        for spec in self.plan.specs:
            if spec.kind == FaultKind.MACHINE_KILL:
                engine.at(spec.at_us, self._inject_kill, spec)
                if spec.restore_at_us is not None:
                    engine.at(spec.restore_at_us, self._inject_restore, spec)
            elif spec.kind == FaultKind.LINK_DOWN:
                engine.at(spec.at_us, self._inject_link_down, spec)
                engine.at(spec.at_us + spec.duration_us,
                          self._inject_link_restore, spec)
        return self

    def _inject_kill(self, spec):
        self._note(FaultKind.MACHINE_KILL, machine=spec.machine)
        self.fleet.kill_machine(spec.machine)

    def _inject_restore(self, spec):
        self._note(FaultKind.MACHINE_RESTORE, machine=spec.machine)
        self.fleet.restore_machine(spec.machine)

    def _inject_link_down(self, spec):
        self._note(FaultKind.LINK_DOWN, machine=spec.machine,
                   duration_us=spec.duration_us)
        self.fleet.link_down(spec.machine)

    def _inject_link_restore(self, spec):
        self._note(FaultKind.LINK_RESTORE, machine=spec.machine)
        self.fleet.link_restore(spec.machine)

    def _note(self, kind, **fields):
        self.injected += 1
        obs = self.fleet.obs
        obs.registry.counter("fleet", "faults", kind).inc()
        obs.events.emit("fault_injected", fault=kind, **fields)

    def __repr__(self):
        return f"<FleetFaultInjector injected={self.injected}>"


class Fleet:
    """A rack (or row) of aggregate machines behind one ToR switch.

    Construction wires the same observability surface as
    :class:`repro.machine.Machine` — ``metrics=True`` for the registry,
    ``timeseries=`` for the flight recorder (with a fleet probe
    publishing per-machine load + replica staleness), ``spans=N`` for
    causal tracing — plus the sync bus and the fleet fault injector.

    Steering: ``steering`` names a policy out of
    :data:`repro.cluster.steering.STEERING_FACTORIES` (or pass a policy
    object to :meth:`install_steering`); verified programs deploy with
    :meth:`deploy_steering_program`.
    """

    def __init__(self, num_machines=100, workers_per_machine=4, seed=1,
                 steering="power_of_two", queue_cap=None, qdisc_factory=None,
                 wire_us=DEFAULT_WIRE_US, forward_us=DEFAULT_FORWARD_US,
                 failover_detect_us=DEFAULT_FAILOVER_DETECT_US,
                 sync_interval_us=50.0, sync_delay_us=25.0,
                 metrics=False, timeseries=None, spans=0, faults=None,
                 warmup_us=0.0, latency_signals=False):
        if num_machines < 1:
            raise ValueError(f"need at least one machine, got {num_machines}")
        self.engine = Engine()
        self.streams = RngStreams(seed)
        self.seed = seed
        self.wire_us = wire_us
        self.forward_us = forward_us
        self.failover_detect_us = failover_detect_us
        self.workers_per_machine = workers_per_machine

        self.obs = Observability(
            clock=lambda: self.engine.now, enabled=metrics, spans=spans,
        )
        self.spans = self.obs.spans
        if timeseries and metrics:
            interval = (DEFAULT_INTERVAL_US if timeseries is True
                        else float(timeseries))
            recorder = FlightRecorder(self.obs.registry, self.engine,
                                      interval_us=interval)
            recorder.probes.append(self._sample_fleet_state)
            self.obs.recorder = recorder

        self.switch = TorSwitch(num_machines)
        self.machines = [
            FleetMachine(
                i, self, workers_per_machine, queue_cap=queue_cap,
                qdisc=qdisc_factory(i) if qdisc_factory is not None else None,
            )
            for i in range(num_machines)
        ]
        self._workers = [m.workers for m in self.machines]

        self.generator = None
        self.latency = LatencyRecorder(warmup_until=warmup_us)
        self.outstanding = 0
        self.completed = 0
        self.dropped = 0
        # Per-tenant rollups, populated only for requests that carry a
        # tenant (stamped in admit() from an owned port rule) — empty
        # dicts for every historical single-tenant run.
        self.tenant_completed = {}
        self.tenant_dropped = {}
        self.tenant_latency = {}   # tenant -> DDSketch of completion us

        self.sync = MapSyncBus(
            self.engine, interval_us=sync_interval_us,
            delay_us=sync_delay_us, active=self._work_pending,
        )
        self.sync.add_channel(
            "load",
            snapshot=lambda: [m.load() for m in self.machines],
            apply=lambda loads, _stamp: self.switch.apply_load(
                loads, self._workers
            ),
        )
        #: Per-machine completion-latency DDSketches feeding the switch's
        #: ``machine_p99_array`` replica over the sync bus — the fleet
        #: half of the closed telemetry loop.  Opt-in: off, no sketch is
        #: allocated and the p99 replica stays all-zero (tail-aware
        #: steering degrades to plain power-of-two).
        self.machine_sketches = None
        if latency_signals:
            self.machine_sketches = [DDSketch()
                                     for _ in range(num_machines)]
            self.sync.add_channel(
                "p99",
                snapshot=self._snapshot_p99,
                apply=lambda p99s, _stamp: self.switch.apply_p99(p99s),
            )

        self.injector = None
        if faults is not None:
            self.injector = FleetFaultInjector(self, faults)

        self.steering_name = None
        if steering is not None:
            if isinstance(steering, str):
                factory = STEERING_FACTORIES.get(steering)
                if factory is None:
                    raise ValueError(
                        f"unknown steering policy {steering!r}; known: "
                        f"{sorted(STEERING_FACTORIES)}"
                    )
                self.install_steering(factory(self))
                self.steering_name = steering  # the registry key, not .name
            else:
                self.install_steering(steering)

        self.profiler = None  # set by repro.obs.profile.attach

    # ------------------------------------------------------------------
    @property
    def num_machines(self):
        return len(self.machines)

    def steering_rng(self):
        """The named stream steering policies draw from (determinism)."""
        return self.streams.get("steering")

    def _work_pending(self):
        gen = self.generator
        return (gen is not None and not gen.done) or self.outstanding > 0

    def _snapshot_p99(self):
        """Per-machine p99 (int us) from the completion sketches."""
        return [int(s.percentile(99.0)) if s.count else 0
                for s in self.machine_sketches]

    # ------------------------------------------------------------------
    # Steering deployment
    # ------------------------------------------------------------------
    def install_steering(self, policy, port=None, owner=None):
        """Make ``policy`` the default, or a per-port tenant rule."""
        if port is None:
            self.switch.default = policy
        else:
            self.switch.install(port, policy, owner=owner)
        if port is None:
            self.steering_name = getattr(policy, "name", "custom")
        return policy

    def deploy_steering_program(self, source, constants=None, name="program"):
        """Compile + verify + load a Syrup program for the ToR switch.

        The program's ``machine_load_array`` / ``machine_p99_array``
        Maps bind to the switch's replicated load and tail-latency
        replicas (kept fresh by the sync bus), and ``NUM_MACHINES`` /
        ``SPILL_THRESHOLD`` / ``TAIL_LOAD_WEIGHT_US`` are provided as
        compile-time constants unless overridden.
        """
        merged = {"NUM_MACHINES": self.num_machines, "SPILL_THRESHOLD": 8,
                  "TAIL_LOAD_WEIGHT_US": 100}
        merged.update(constants or {})
        program = compile_policy(source, name=name, constants=merged)
        loaded = load_program(
            program,
            maps={"machine_load_array": self.switch.load_map,
                  "machine_p99_array": self.switch.p99_map},
            rng=self.streams.get(f"switch_program/{name}"),
        )
        return SwitchProgramSteering(loaded, name=name)

    def deploy_shadow_steering(self, candidate, port=None, owner=None,
                               canary_pct=10, salt=0x5EED,
                               name="candidate"):
        """Shadow a candidate steering policy behind the live one.

        Wraps the currently-installed policy for ``port`` (or the rack
        default) in a :class:`~repro.cluster.steering.ShadowSteering`
        and installs the wrapper in its place — the candidate sees every
        live steering decision, its picks are diffed, and the canary
        stage enforces it on the deterministic flow-hash cohort.
        Returns the wrapper; call ``promote()`` / ``reject()`` on it and
        re-install the result via :meth:`install_steering` to finish.

        Candidate policies needing randomness should draw from their own
        stream (e.g. ``fleet.streams.get("shadow_steering")``) — sharing
        the active policy's stream would perturb the very control
        decisions the diff judges against.
        """
        if port is None:
            active = self.switch.default
        else:
            rule = self.switch._port_rules.get(port)
            active = rule[0] if rule is not None else self.switch.default
        wrapper = ShadowSteering(
            active, candidate, canary_pct=canary_pct, salt=salt, name=name,
        )
        self.install_steering(wrapper, port=port, owner=owner)
        return wrapper

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def admit(self, request):
        """A client request reaches the rack: sample, steer, forward."""
        if request.tenant is None:
            # ToR tenant stamping: a port rule installed with an owner
            # makes that owner the request's tenant for the rest of its
            # life (per-tenant counters, blame views).  No owned rule →
            # tenant stays None and no per-tenant state is ever touched.
            request.tenant = self.switch.owner_for(request)
        self.spans.switch_arrival(request)
        self.outstanding += 1
        self._steer(request, resteer=False)

    def resteer(self, request):
        """Failover: re-run steering for an orphaned request."""
        self.switch.resteers += 1
        self.obs.registry.counter("fleet", "switch", "resteers").inc()
        self.spans.machine_requeued(request)
        self._steer(request, resteer=True)

    def _steer(self, request, resteer):
        index = self.switch.pick(request)
        if index is None:
            self.switch.dropped += 1
            self.drop(request, "steering_drop")
            return
        request.machine = index
        request.attempts += 1
        self.switch.forwarded[index] += 1
        self.obs.registry.counter("fleet", "switch", "forwarded").inc()
        policy = self.switch.policy_for(request)
        self.spans.switch_steer(request, index,
                                getattr(policy, "name", "custom"),
                                resteer=resteer)
        self.spans.xnet_begin(request, "request", index)
        self.engine.schedule(
            self.forward_us + self.wire_us,
            self.machines[index].receive, request,
        )

    def send_response(self, index, request):
        """A machine's response crosses the rack wire back to the client."""
        self.spans.xnet_begin(request, "response", index)
        self.engine.schedule(self.wire_us, self._complete, request)

    def _complete(self, request):
        self.spans.xnet_end(request)
        self.spans.fleet_complete(request)
        now = self.engine.now
        request.completed_at = now
        self.latency.record(now, now - request.sent_at,
                            tag=type_name(request.rtype))
        if self.machine_sketches is not None and request.machine is not None:
            self.machine_sketches[request.machine].add(now - request.sent_at)
        self.outstanding -= 1
        self.completed += 1
        self.obs.registry.counter("fleet", "fleet", "completed").inc()
        tenant = request.tenant
        if tenant is not None:
            self.tenant_completed[tenant] = \
                self.tenant_completed.get(tenant, 0) + 1
            sketch = self.tenant_latency.get(tenant)
            if sketch is None:
                sketch = self.tenant_latency[tenant] = DDSketch()
            sketch.add(now - request.sent_at)
            self.obs.registry.counter(
                "fleet", f"tenant:{tenant}", "completed"
            ).inc()

    def drop(self, request, reason):
        self.spans.fleet_drop(request, reason)
        self.outstanding -= 1
        self.dropped += 1
        self.obs.registry.counter("fleet", "fleet", "dropped").inc()
        if request.tenant is not None:
            self.tenant_dropped[request.tenant] = \
                self.tenant_dropped.get(request.tenant, 0) + 1
            self.obs.registry.counter(
                "fleet", f"tenant:{request.tenant}", "dropped"
            ).inc()
        self.obs.events.emit("fleet_drop", rid=request.rid, reason=reason)

    # ------------------------------------------------------------------
    # Failures (driven by FleetFaultInjector)
    # ------------------------------------------------------------------
    def kill_machine(self, index):
        machine = self.machines[index]
        if not machine.alive:
            return
        machine.kill()
        # The switch keeps steering at the corpse until detection fires.
        self.engine.schedule(self.failover_detect_us,
                             self._notice_down, index)

    def _notice_down(self, index):
        machine = self.machines[index]
        if machine.alive:
            return            # restored before detection; nothing to do
        self.switch.mark_down(index)
        orphans, machine.orphans = machine.orphans, []
        for request in orphans:
            self.resteer(request)

    def restore_machine(self, index):
        machine = self.machines[index]
        machine.restore()
        if machine.link_up:
            self.switch.mark_up(index)

    def link_down(self, index):
        machine = self.machines[index]
        machine.link_up = False
        # Carrier loss is visible immediately — no detection delay.
        self.switch.mark_down(index)

    def link_restore(self, index):
        machine = self.machines[index]
        machine.link_restore()
        if machine.alive:
            self.switch.mark_up(index)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def drive(self, duration_us, rps, num_users=1_000_000, mix=None,
              diurnal_period_us=None, diurnal_depth=0.0, ports=None):
        """Attach the aggregate open-loop generator (call before run)."""
        self.generator = FleetGenerator(
            self, rps=rps, duration_us=duration_us, num_users=num_users,
            mix=mix, diurnal_period_us=diurnal_period_us,
            diurnal_depth=diurnal_depth, ports=ports,
        )
        return self.generator

    def run(self, until=None):
        """Arm everything and run the engine to completion."""
        if self.injector is not None:
            self.injector.arm()
        if self.generator is not None:
            self.generator.start()
        self.sync.arm()
        self.obs.recorder.arm()
        self.engine.run(until=until)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _sample_fleet_state(self):
        """Flight-recorder probe: per-machine load + replica staleness."""
        registry = self.obs.registry
        for machine in self.machines:
            registry.gauge(
                "fleet", "machine", f"load_{machine.index}"
            ).set(machine.load())
        registry.gauge("fleet", "fleet", "outstanding").set(self.outstanding)
        staleness = self.sync.staleness_us()
        if staleness is not None:
            registry.gauge("fleet", "sync", "staleness_us").set(staleness)

    def fleet_view(self):
        """JSON-safe operator snapshot (``syrupctl fleet``)."""
        loads = [m.load() for m in self.machines]
        return {
            "machines": self.num_machines,
            "workers_per_machine": self.workers_per_machine,
            "steering": self.steering_name,
            "sync_interval_us": self.sync.interval_us,
            "sync_delay_us": self.sync.delay_us,
            "staleness_us": self.sync.staleness_us(),
            "down": sorted(self.switch._down),
            "offered": self.generator.offered if self.generator else 0,
            "completed": self.completed,
            "dropped": self.dropped,
            "resteers": self.switch.resteers,
            "outstanding": self.outstanding,
            "load_now": loads,
            "served": [m.served for m in self.machines],
            "forwarded": list(self.switch.forwarded),
            "p50_us": self.latency.p50(),
            "p99_us": self.latency.p99(),
        }

    def tenant_view(self):
        """JSON-safe per-tenant rollup (``syrupctl tenants``, fleet tier).

        One entry per tenant that owned a port rule and saw traffic:
        completions, drops, and completion-latency quantiles from the
        per-tenant DDSketch.  Empty list for single-tenant runs.
        """
        tenants = sorted(set(self.tenant_completed)
                         | set(self.tenant_dropped))
        out = []
        for tenant in tenants:
            sketch = self.tenant_latency.get(tenant)
            out.append({
                "tenant": tenant,
                "completed": self.tenant_completed.get(tenant, 0),
                "dropped": self.tenant_dropped.get(tenant, 0),
                "p50_us": (round(sketch.percentile(50.0), 1)
                           if sketch is not None and sketch.count else None),
                "p99_us": (round(sketch.percentile(99.0), 1)
                           if sketch is not None and sketch.count else None),
            })
        return out

    def __repr__(self):
        return (
            f"<Fleet machines={self.num_machines} "
            f"steering={self.steering_name!r} completed={self.completed}>"
        )
