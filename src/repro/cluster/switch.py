"""A programmable top-of-rack switch scheduling requests to servers.

Inputs: request packets.  Executors: rack servers.  Policies follow the
familiar matching shape — return a server index, or PASS for the default
(per-flow hash, which keeps a flow on one server like an L4 load balancer).
Per-destination-port rules isolate tenants exactly as §6.1 sketches for P4
("match/action rules that use the IP address/port number pair ... to steer
it to the correct handling function").

The switch tracks per-server outstanding requests by watching responses
pass back through it — the information RackSched piggybacks for its
least-loaded policy.
"""

from repro.constants import DROP, PASS
from repro.net.rss import rss_hash

__all__ = [
    "HashFlowPolicy",
    "LeastOutstandingPolicy",
    "ProgramPolicy",
    "ProgrammableSwitch",
    "RoundRobinPolicy",
]


class HashFlowPolicy:
    """L4-load-balancer default: per-flow hash (flow affinity)."""

    def __init__(self, salt=0x70F):
        self.salt = salt

    def pick(self, packet, switch):
        return rss_hash(packet.flow, self.salt) % switch.num_servers


class RoundRobinPolicy:
    """Spread requests evenly regardless of flow."""

    def __init__(self):
        self._next = 0

    def pick(self, packet, switch):
        index = self._next % switch.num_servers
        self._next += 1
        return index


class LeastOutstandingPolicy:
    """RackSched-style: sample ``d`` servers, pick the least loaded."""

    def __init__(self, rng, d=2):
        self.rng = rng
        self.d = d

    def pick(self, packet, switch):
        n = switch.num_servers
        candidates = {self.rng.randrange(n) for _ in range(self.d)}
        return min(candidates, key=lambda i: switch.outstanding[i])


class ProgramPolicy:
    """Adapter running a verified Syrup program at the switch.

    The paper argues (§6.2) the same policy code should deploy at P4
    devices and eBPF hooks alike; here a compiled+verified program picks
    the server index directly (executors are 0..num_servers-1).
    """

    def __init__(self, loaded_program):
        self.loaded = loaded_program

    def pick(self, packet, switch):
        value = self.loaded.run(packet)
        if value == PASS:
            return None
        if value == DROP:
            return DROP
        return value % switch.num_servers


class ProgrammableSwitch:
    def __init__(self, engine, machines, forward_us=1.0, wire_us=5.0):
        self.engine = engine
        self.machines = list(machines)
        self.forward_us = forward_us
        self.wire_us = wire_us
        self._port_rules = {}
        self._default = HashFlowPolicy()
        self.outstanding = [0] * len(self.machines)
        self.forwarded = [0] * len(self.machines)
        self.dropped = 0
        self._server_of_request = {}

    @property
    def num_servers(self):
        return len(self.machines)

    # ------------------------------------------------------------------
    def install(self, port, policy, owner=None):
        """Insert a per-port match/action rule (tenant isolation, §6.1)."""
        existing = self._port_rules.get(port)
        if existing is not None and owner is not None \
                and existing[1] is not None and existing[1] != owner:
            raise PermissionError(
                f"port {port} rule already owned by {existing[1]!r}"
            )
        self._port_rules[port] = (policy, owner)

    # ------------------------------------------------------------------
    def receive(self, packet):
        """A request arrives at the rack; schedule it to a server."""
        rule = self._port_rules.get(packet.dst_port)
        policy = rule[0] if rule is not None else self._default
        index = policy.pick(packet, self)
        if index == DROP:
            self.dropped += 1
            return
        if index is None:
            index = self._default.pick(packet, self)
        index %= self.num_servers
        self.outstanding[index] += 1
        self.forwarded[index] += 1
        machine = self.machines[index]
        self._server_of_request[id(packet.request)] = index
        self.engine.schedule(
            self.forward_us + self.wire_us, machine.nic.receive, packet
        )

    def response_passed(self, request):
        """A server's response transits the switch on its way back."""
        index = self._server_of_request.pop(id(request), None)
        if index is not None:
            self.outstanding[index] -= 1

    def __repr__(self):
        return (
            f"<ProgrammableSwitch servers={self.num_servers} "
            f"outstanding={self.outstanding}>"
        )
