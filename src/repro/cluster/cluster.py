"""A rack: one programmable switch in front of N co-simulated servers.

Every machine shares one discrete-event engine, so cross-machine timing is
exact.  Each server runs a RocksDB-like service; within each server, any
end-host Syrup policy can be deployed as usual — rack scheduling composes
with host scheduling, the full §6.1 picture.
"""

from repro.config import set_a
from repro.machine import Machine
from repro.apps.rocksdb import RocksDbServer
from repro.cluster.switch import ProgrammableSwitch
from repro.net.packet import FiveTuple, Packet, build_payload
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.stats.latency import LatencyRecorder
from repro.stats.meters import Counter
from repro.workload.requests import Request

__all__ = ["Cluster", "ClusterGenerator"]


class Cluster:
    def __init__(
        self,
        num_servers=4,
        port=8080,
        num_threads=6,
        seed=0,
        config_factory=set_a,
        host_policy=None,
        mark_scans=False,
    ):
        self.engine = Engine()
        self.streams = RngStreams(seed)
        self.port = port
        self.machines = []
        self.servers = []
        for i in range(num_servers):
            machine = Machine(config_factory(), seed=seed * 131 + i,
                              engine=self.engine)
            app = machine.register_app(f"rocksdb-{i}", ports=[port])
            server = RocksDbServer(machine, app, port, num_threads,
                                   mark_scans=mark_scans)
            if host_policy is not None:
                source, hook, constants = host_policy
                app.deploy_policy(source, hook, constants=constants)
            self.machines.append(machine)
            self.servers.append(server)
        costs = self.machines[0].costs
        self.switch = ProgrammableSwitch(
            self.engine, self.machines, wire_us=costs.wire_us
        )

    def install_policy(self, policy, port=None, owner=None):
        self.switch.install(port if port is not None else self.port,
                            policy, owner=owner)

    def drive(self, rate_rps, mix, duration_us, warmup_us=0.0,
              num_flows=256, stream="rack-client"):
        gen = ClusterGenerator(self, rate_rps, mix, duration_us,
                               warmup_us=warmup_us, num_flows=num_flows,
                               stream=stream)
        for i, server in enumerate(self.servers):
            server.response_sink = gen.make_sink(i)
        return gen

    def run(self, until=None):
        self.engine.run(until=until)


class ClusterGenerator:
    """Open-loop load against the rack, measured end to end."""

    def __init__(self, cluster, rate_rps, mix, duration_us, warmup_us=0.0,
                 num_flows=256, stream="rack-client"):
        self.cluster = cluster
        self.engine = cluster.engine
        self.mix = mix
        self.rate_rps = rate_rps
        self.duration_us = duration_us
        self.warmup_us = warmup_us
        self.rng = cluster.streams.get(f"{stream}/arrivals")
        self.service_rng = cluster.streams.get(f"{stream}/service")
        flow_rng = cluster.streams.get(f"{stream}/flows")
        self.flows = [
            FiveTuple(
                src_ip=0x0A010000 | flow_rng.getrandbits(14),
                src_port=flow_rng.randrange(32768, 61000),
                dst_ip=0x0A0000FF,
                dst_port=cluster.port,
                proto=17,
            )
            for _ in range(num_flows)
        ]
        self.latency = LatencyRecorder(warmup_until=warmup_us)
        self.sent = Counter(warmup_until=warmup_us)
        self.completed = Counter(warmup_until=warmup_us)
        self.per_server_completed = [0] * len(cluster.machines)
        self._mean_gap_us = 1e6 / rate_rps
        self._next_rid = 0

    def start(self):
        self.engine.schedule(
            self.rng.expovariate(1.0) * self._mean_gap_us, self._arrival
        )
        return self

    def _arrival(self):
        now = self.engine.now
        if now >= self.duration_us:
            return
        self._send_one(now)
        self.engine.schedule(
            self.rng.expovariate(1.0) * self._mean_gap_us, self._arrival
        )

    def _send_one(self, now):
        self._next_rid += 1
        rtype, service_us = self.mix.sample(self.service_rng)
        request = Request(self._next_rid, rtype, service_us,
                          key=self.rng.randrange(10000))
        request.sent_at = now
        payload = build_payload(rtype, 0, request.key, self._next_rid)
        flow = self.flows[self.rng.randrange(len(self.flows))]
        packet = Packet(flow, payload, sent_at=now, request=request)
        self.sent.add(now, rtype)
        # client -> switch wire
        wire = self.cluster.switch.wire_us
        self.engine.schedule(wire, self.cluster.switch.receive, packet)

    # ------------------------------------------------------------------
    def make_sink(self, server_index):
        def sink(request):
            # server -> switch -> client
            self.cluster.switch.response_passed(request)
            self.engine.schedule(
                self.cluster.switch.forward_us + 2 * self.cluster.switch.wire_us,
                self._client_receive, request, server_index,
            )
        return sink

    def _client_receive(self, request, server_index):
        now = self.engine.now
        request.completed_at = now
        self.completed.add(request.sent_at, request.rtype)
        if request.sent_at >= self.warmup_us:
            self.per_server_completed[server_index] += 1
        self.latency.record(request.sent_at, now - request.sent_at,
                            tag=request.rtype)

    def drop_fraction(self):
        sent = self.sent.total()
        if not sent:
            return 0.0
        return max(0.0, 1.0 - self.completed.total() / sent)
