"""Rack-scale extension (paper §6.1).

"Scheduling occurs across the data center stack, from cluster managers and
software load balancers to programmable switches.  We can extend Syrup to
support such backends as they are fully compatible with Syrup's matching
view of scheduling; similar to end-host components, they schedule inputs
(jobs/requests/packets) to executors (servers)."

This package implements that extension: a programmable top-of-rack switch
(:class:`~repro.cluster.switch.ProgrammableSwitch`) whose per-port
match/action rules select a *server* for each request — the same matching
shape as every end-host hook, and the same isolation mechanism (per-port
rules, §6.1's P4 match/action isolation).  Verified Syrup programs deploy
at the switch unchanged (the paper's P4-to-eBPF unification argument,
§6.2), alongside native load-aware policies in the RackSched style.
"""

from repro.cluster.cluster import Cluster, ClusterGenerator
from repro.cluster.switch import (
    HashFlowPolicy,
    LeastOutstandingPolicy,
    ProgrammableSwitch,
    ProgramPolicy,
    RoundRobinPolicy,
)

__all__ = [
    "Cluster",
    "ClusterGenerator",
    "HashFlowPolicy",
    "LeastOutstandingPolicy",
    "ProgramPolicy",
    "ProgrammableSwitch",
    "RoundRobinPolicy",
]
