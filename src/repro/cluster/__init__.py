"""Rack-scale extension (paper §6.1), in two tiers of fidelity.

"Scheduling occurs across the data center stack, from cluster managers and
software load balancers to programmable switches.  We can extend Syrup to
support such backends as they are fully compatible with Syrup's matching
view of scheduling; similar to end-host components, they schedule inputs
(jobs/requests/packets) to executors (servers)."

This package implements that extension twice, at the two scales the
argument needs (docs/cluster.md):

- **Micro tier** (:mod:`repro.cluster.cluster`,
  :mod:`repro.cluster.switch`): a :class:`~repro.cluster.switch.
  ProgrammableSwitch` steering requests across a handful of *full*
  :class:`~repro.machine.Machine` instances — every NIC queue, softirq
  core and socket simulated.  Right for rack-policy microbenchmarks and
  for showing a verified program deploying at the switch unchanged
  (§6.2's P4-to-eBPF unification).
- **Fleet tier** (:mod:`repro.cluster.fleet`,
  :mod:`repro.cluster.steering`, :mod:`repro.cluster.sync`): aggregate
  machines (queue + service slots) behind a :class:`~repro.cluster.
  fleet.TorSwitch`, steered by RackSched-style policies reading
  *replicated* load state with explicit staleness
  (:class:`~repro.cluster.sync.MapSyncBus`), failing over on
  ``machine_kill``/``link_down`` faults.  Right for 100s of machines
  under millions of users (``figure_fleet``).
"""

from repro.cluster.cluster import Cluster, ClusterGenerator
from repro.cluster.fleet import (
    FLEET_MIX,
    Fleet,
    FleetFaultInjector,
    FleetGenerator,
    FleetMachine,
    FleetRequest,
    TorSwitch,
)
from repro.cluster.steering import (
    STEERING_FACTORIES,
    STEER_LOCALITY,
    STEER_POWER_OF_TWO,
    STEER_TAIL_P2C,
    FlowHashSteering,
    JsqSteering,
    LocalitySteering,
    PowerOfKSteering,
    RandomSteering,
    ShadowSteering,
    ShortestExpectedDelaySteering,
    SwitchProgramSteering,
)
from repro.cluster.switch import (
    HashFlowPolicy,
    LeastOutstandingPolicy,
    ProgrammableSwitch,
    ProgramPolicy,
    RoundRobinPolicy,
)
from repro.cluster.sync import MapSyncBus, SyncChannel

__all__ = [
    "FLEET_MIX",
    "STEERING_FACTORIES",
    "STEER_LOCALITY",
    "STEER_POWER_OF_TWO",
    "STEER_TAIL_P2C",
    "Cluster",
    "ClusterGenerator",
    "Fleet",
    "FleetFaultInjector",
    "FleetGenerator",
    "FleetMachine",
    "FleetRequest",
    "FlowHashSteering",
    "HashFlowPolicy",
    "JsqSteering",
    "LeastOutstandingPolicy",
    "LocalitySteering",
    "MapSyncBus",
    "PowerOfKSteering",
    "ProgramPolicy",
    "ProgrammableSwitch",
    "RandomSteering",
    "RoundRobinPolicy",
    "ShadowSteering",
    "ShortestExpectedDelaySteering",
    "SwitchProgramSteering",
    "SyncChannel",
    "TorSwitch",
]
