"""Adaptive (closed-loop) policies: telemetry-driven datapath sources.

The static policies in :mod:`repro.policies.builtin` and
:mod:`repro.qdisc.policies` read Maps that *applications* write (scan
flags, measured sizes).  The sources here read Maps that **controllers**
write — small control laws registered on a
:class:`~repro.core.signals.SignalBus` that watch the live telemetry
plane (sketch quantiles, SLO burn rates, queue depths) and actuate by
updating a Map the verified datapath program consults on every decision.
The division of labor is the paper's §4 cross-layer story turned into a
feedback loop: sensing in userspace on a sim-time cadence, actuation in
the datapath at per-packet cost.

Datapath sources (safe subset):

- :data:`ADAPTIVE_SELECT` — socket select that (a) sheds the designated
  ``SHED_RTYPE`` with probability ``shed_map[0]`` percent (the SLO-aware
  load-shedding valve) and (b) steers admitted requests by
  power-of-two-choices over ``blame_map`` (per-executor blame scores the
  tail controller refreshes from queue-depth telemetry).
- :data:`SRPT_AUTO_THRESHOLD` — the SRPT rank function with the
  short/long size boundary read from ``srpt_thresh_map[0]`` instead of
  baked in at compile time; requests at or above the threshold sink
  behind every short request (rank ``LONG_PENALTY + est``).
- :data:`SRPT_FIXED_THRESHOLD` — the static strawman: the same rank
  shape with a compile-time ``THRESHOLD_US`` (the best you can do
  without a loop; ``figure_adaptive`` shows where it goes wrong).

Controllers (plain Python, run by the SignalBus):

- :class:`ShedController` — burn-rate-proportional shedding: raise the
  shed level while the latency objective pages, decay it while healthy,
  and back off whenever the availability objective's own budget runs
  out (shedding must spend the *availability* budget to buy latency).
- :class:`SrptThresholdController` — sets the SRPT boundary from the
  observed service-time sketch (``2x`` the streaming median): anything
  twice the typical request is "long".
- :class:`BlameController` — refreshes per-executor blame from
  instantaneous socket backlogs so the power-of-two steering avoids the
  executors where the tail is forming.
"""

__all__ = [
    "ADAPTIVE_SELECT",
    "BlameController",
    "SRPT_AUTO_THRESHOLD",
    "SRPT_FIXED_THRESHOLD",
    "ShedController",
    "SrptThresholdController",
    "TENANT_SHED",
]

#: Rank offset that sinks over-threshold ("long") requests behind every
#: short one while preserving SRPT order among themselves.
LONG_PENALTY = 1_000_000

#: SLO-aware shedding + blame-aware power-of-two steering.  Constants:
#: ``NUM_THREADS`` (executor count) and ``SHED_RTYPE`` (the request type
#: the controller is allowed to sacrifice).  Two telemetry timescales
#: meet here: ``blame_map`` / ``shed_map`` are controller-written on the
#: SignalBus cadence (milliseconds), while ``scan_map`` — the app's
#: live Fig-5b flag — is read per decision, because a ~700 us SCAN is
#: over before the next controller tick can report it.  With all-zero
#: Maps (no controller running) this degrades to uniform random
#: power-of-two steering.
ADAPTIVE_SELECT = '''
shed_map = syr_map("shed_map", 1)
blame_map = syr_map("blame_map", 64)
scan_map = syr_map("scan_map", 64)

def schedule(pkt):
    if pkt_len(pkt) >= 16:
        level = map_lookup(shed_map, 0)
        if level > 0:
            rtype = load_u64(pkt, 8)
            if rtype == SHED_RTYPE:
                if get_random() % 100 < level:
                    return DROP
    a = get_random() % NUM_THREADS
    b = get_random() % NUM_THREADS
    blame_a = map_lookup(blame_map, a) + 100 * map_lookup(scan_map, a)
    blame_b = map_lookup(blame_map, b) + 100 * map_lookup(scan_map, b)
    if blame_b < blame_a:
        return b
    return a
'''

#: Identity-based shedding at Socket Select: the payload's u64 tenant id
#: (offset 16, the ``user_id`` slot the generator stamps) indexes
#: ``tenant_shed_map`` for a per-tenant drop probability in percent.
#: The map is written by
#: :class:`repro.obs.interference.TenantShedController` from blame-matrix
#: evidence, so only tenants *flagged as noisy neighbors* are ever shed
#: — where ``ADAPTIVE_SELECT``'s type-based valve must drop the victim's
#: own traffic whenever the aggressor's requests look the same.  With an
#: all-zero map (no controller) every packet PASSes to the default
#: select, byte-identical to no policy at all.
TENANT_SHED = '''
tenant_shed_map = syr_map("tenant_shed_map", 64)

def schedule(pkt):
    if pkt_len(pkt) >= 24:
        tid = load_u64(pkt, 16)
        if tid < 64:
            level = map_lookup(tenant_shed_map, tid)
            if level > 0:
                if get_random() % 100 < level:
                    return DROP
    return PASS
'''

#: SRPT with a *fixed* compile-time size threshold (``THRESHOLD_US``):
#: short requests rank by measured size, long ones sink uniformly.
SRPT_FIXED_THRESHOLD = '''
svc_map = syr_map("svc_time_map", 16)

def rank(pkt):
    if pkt_len(pkt) < 16:
        return PASS
    rtype = load_u64(pkt, 8)
    if map_has(svc_map, rtype):
        est = map_lookup(svc_map, rtype)
        if est >= THRESHOLD_US:
            return 1000000 + est
        return est
    return PASS
'''

#: SRPT with the threshold read from ``srpt_thresh_map[0]`` at decision
#: time — the controller retunes it from the service-time sketch with no
#: redeploy (the DYNAMIC_ROUND_ROBIN pattern applied to ordering).  A
#: zero threshold (controller not yet run) means plain SRPT.
SRPT_AUTO_THRESHOLD = '''
svc_map = syr_map("svc_time_map", 16)
thresh_map = syr_map("srpt_thresh_map", 1)

def rank(pkt):
    if pkt_len(pkt) < 16:
        return PASS
    rtype = load_u64(pkt, 8)
    if map_has(svc_map, rtype):
        est = map_lookup(svc_map, rtype)
        thresh = map_lookup(thresh_map, 0)
        if thresh > 0:
            if est >= thresh:
                return 1000000 + est
        return est
    return PASS
'''


class ShedController:
    """Burn-rate-driven load shedding into ``shed_map[0]`` (percent).

    Control law, evaluated once per SignalBus tick:

    - latency objective **page** -> raise by ``step_up`` (tail is
      burning budget several times too fast; act now),
    - **warn** -> raise by ``warn_step`` (burning faster than
      sustainable; keep leaning in — holding here would park the tail
      exactly at the objective boundary),
    - **ok** with long-window burn under ``decay_burn`` -> decay by
      ``step_down`` (reclaim goodput, but only once there is real
      margin, not the moment burn dips below 1),
    - availability budget exhausted -> decay fast regardless (shedding
      pays for latency out of the availability budget; once that budget
      is gone the trade is no longer allowed).
    """

    def __init__(self, latency_slo, availability_slo, shed_map,
                 step_up=20, warn_step=5, step_down=2, decay_burn=0.5,
                 max_level=100):
        self.latency_slo = latency_slo
        self.availability_slo = availability_slo
        self.shed_map = shed_map
        self.step_up = step_up
        self.warn_step = warn_step
        self.step_down = step_down
        self.decay_burn = decay_burn
        self.max_level = max_level
        self.level = 0

    def __call__(self):
        slo = self.latency_slo
        state = slo.state()
        if self.availability_slo.budget_remaining() <= 0.0:
            self.level = max(0, self.level - self.step_up)
        elif state == "page":
            self.level = min(self.max_level, self.level + self.step_up)
        elif state == "warn":
            self.level = min(self.max_level, self.level + self.warn_step)
        elif slo.burn_rate(slo.long_window_us) < self.decay_burn:
            self.level = max(0, self.level - self.step_down)
        self.shed_map.update(0, self.level)


class SrptThresholdController:
    """Auto-tune the SRPT boundary from the service-time sketch.

    ``threshold = factor x streaming-median``: with a bimodal mix the
    median sits on the short mode, so any request ``factor`` times the
    typical one is long.  Written to ``srpt_thresh_map[0]``; zero until
    the sketch has seen at least ``min_count`` observations (the rank
    function treats zero as "no threshold yet").
    """

    def __init__(self, sketch, thresh_map, factor=2.0, min_count=50):
        self.sketch = sketch
        self.thresh_map = thresh_map
        self.factor = factor
        self.min_count = min_count

    def __call__(self):
        if self.sketch.count < self.min_count:
            return
        threshold = max(1, int(self.factor * self.sketch.quantile(0.5)))
        self.thresh_map.update(0, threshold)


class BlameController:
    """Per-executor blame scores from queue depth + long-job occupancy.

    The online stand-in for the span analyzer's queue-wait blame: the
    executor whose backlog is deepest — or that is pinned under a SCAN
    right now (the app's Fig-5b ``scan_map`` signal, when provided) —
    is where the next tail request will form.  ``scan_weight`` converts
    "a SCAN is in service" into backlog-equivalent units (about one
    SCAN's worth of queued GETs).  Scores land in ``blame_map[i]`` for
    the power-of-two choice in :data:`ADAPTIVE_SELECT`.
    """

    def __init__(self, sockets, blame_map, scan_map=None, scan_weight=64):
        self.sockets = sockets
        self.blame_map = blame_map
        self.scan_map = scan_map
        self.scan_weight = scan_weight

    def __call__(self):
        for index, socket in enumerate(self.sockets):
            blame = len(socket)
            if self.scan_map is not None and self.scan_map.lookup(index):
                blame += self.scan_weight
            self.blame_map.update(index, blame)
