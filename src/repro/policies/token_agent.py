"""Userspace token-replenishment agent (paper §3.4 / §5.2.2).

Every epoch (100 us) the agent grants the latency-sensitive user a fresh
bucket of tokens sized for the generation rate, and *gifts any leftover*
tokens to the best-effort user.  The kernel-side half (the TOKEN_BASED
policy) consumes one token per admitted request and drops on empty — the
ReFlex-style admission control evaluated in Figure 7.
"""

from repro.sim.timers import PeriodicTimer

__all__ = ["TokenAgent"]


class TokenAgent:
    def __init__(
        self,
        machine,
        token_map,
        ls_user,
        be_user,
        rate_per_sec=350_000,
        epoch_us=100.0,
    ):
        self.machine = machine
        self.token_map = token_map
        self.ls_user = ls_user
        self.be_user = be_user
        self.epoch_us = epoch_us
        self.tokens_per_epoch = int(round(rate_per_sec * epoch_us / 1e6))
        if self.tokens_per_epoch <= 0:
            raise ValueError("rate/epoch combination yields zero tokens")
        self.epochs = 0
        self.gifted_total = 0
        # initial grant so the first epoch is not a hard outage
        self.token_map.update(self.ls_user, self.tokens_per_epoch)
        self.token_map.update(self.be_user, 0)
        self._timer = PeriodicTimer(machine.engine, epoch_us, self._replenish)

    def _replenish(self):
        self.epochs += 1
        leftover = self.token_map.lookup(self.ls_user) or 0
        # gift unused LS tokens to the best-effort user...
        self.token_map.update(self.be_user, leftover)
        self.gifted_total += leftover
        # ...and refill the LS bucket for the new epoch.
        self.token_map.update(self.ls_user, self.tokens_per_epoch)

    def stop(self):
        self._timer.stop()
