"""Network-hook policy sources (paper Figure 5 and §3.3-3.4).

Each is a policy file in the safe subset; deploy with::

    app.deploy_policy(ROUND_ROBIN, Hook.SOCKET_SELECT,
                      constants={"NUM_THREADS": 6})

Compile-time constants (``NUM_THREADS``, ``NUM_EXECUTORS``, ...) are passed
at deploy time, exactly as the paper notes for its round-robin example.
Packet layout: u64 request type at offset 8 (right after the UDP header),
u64 user id at 16, u64 key hash at 24 (see :mod:`repro.net.packet`).
"""

__all__ = [
    "DYNAMIC_ROUND_ROBIN",
    "HASH_BY_FLOW",
    "MICA_HASH",
    "RFS_STEERING",
    "ROUND_ROBIN",
    "SCAN_AVOID",
    "SITA",
    "TOKEN_BASED",
]

#: §3.3's example: hash the UDP header — the portable policy that can pick
#: NIC queues, cores, or sockets.  (With few flows this reproduces the
#: vanilla imbalance; it exists to demonstrate portability and as a
#: baseline.)  Hashes source+dest port words.
HASH_BY_FLOW = '''
def schedule(pkt):
    if pkt_len(pkt) < 8:
        return PASS
    ports = load_u32(pkt, 0)
    h = (ports * 2654435761) % 4294967296
    return h % NUM_EXECUTORS
'''

#: Figure 5a: round robin over sockets.  The non-atomic increment's benign
#: races are fine (paper: they "do not affect the policy's performance").
ROUND_ROBIN = '''
idx = 0

def schedule(pkt):
    global idx
    idx += 1
    return idx % NUM_THREADS
'''

#: Figure 5c: probe random sockets, avoid any currently serving a SCAN.
#: The userspace half (Fig. 5b) lives in RocksDbServer(mark_scans=True).
SCAN_AVOID = '''
scan_map = syr_map("scan_map", 64)

def schedule(pkt):
    cur_idx = 0
    for i in range(NUM_THREADS):
        cur_idx = get_random() % NUM_THREADS
        scan = map_lookup(scan_map, cur_idx)
        # Stop searching when a non-SCAN socket is found.
        if scan == 0:
            break
    return cur_idx
'''

#: Figure 5d: Size Interval Task Assignment — SCANs to socket 0, GETs
#: round-robin over the rest.  Peeks at the request type in the payload.
SITA = '''
idx = 0

def schedule(pkt):
    global idx
    if pkt_len(pkt) < 16:
        return PASS
    # First 8 bytes are the UDP header.
    rtype = load_u64(pkt, 8)
    if rtype == SCAN_TYPE:
        return 0
    idx += 1
    return (idx % (NUM_THREADS - 1)) + 1
'''

#: §3.4 / §5.2.2: token-based QoS.  A userspace agent (TokenAgent) refills
#: the latency-sensitive user's bucket each epoch and gifts leftovers to
#: the best-effort user; requests without tokens are dropped.  Admitted
#: requests are spread round-robin.
TOKEN_BASED = '''
token_map = syr_map("token_map", 16)
idx = 0

def schedule(pkt):
    global idx
    if pkt_len(pkt) < 24:
        return PASS
    user_id = load_u64(pkt, 16)
    tokens = map_lookup(token_map, user_id)
    if tokens == 0:
        return DROP
    atomic_add(token_map, user_id, -1)
    idx += 1
    return idx % NUM_THREADS
'''

#: §5.2 footnote: "NUM_THREADS is a compile-time parameter, but it can
#: alternatively be read dynamically from a Map at run time."  This variant
#: does exactly that — the app updates executor_count_map[0] as it scales
#: its socket pool up or down, with no redeploy.
DYNAMIC_ROUND_ROBIN = '''
executor_count_map = syr_map("executor_count", 1)
idx = 0

def schedule(pkt):
    global idx
    n = map_lookup(executor_count_map, 0)
    if n == 0:
        return PASS
    idx += 1
    return idx % n
'''

#: §2.1: Receive Flow Steering at the CPU Redirect hook — keep protocol
#: processing on the consuming core's hyperthread buddy for cache locality.
#: The kernel/app half publishes flow->core into rfs_map on every delivery
#: (EchoServer(rfs=True)); unknown flows PASS to the default (RSS) core.
RFS_STEERING = '''
rfs_map = syr_map("rfs_map", 1024)

def schedule(pkt):
    if pkt_len(pkt) < 4:
        return PASS
    key = load_u32(pkt, 0) % 1024
    core = map_lookup(rfs_map, key)
    if map_has(rfs_map, key):
        return core
    return PASS
'''

#: §5.4: MICA key-hash steering — the same source deploys at the kernel
#: AF_XDP hook (executors = AF_XDP sockets) and on the smartNIC
#: (executors = NIC RX queues): Syrup's portability claim.
MICA_HASH = '''
def schedule(pkt):
    if pkt_len(pkt) < 32:
        return PASS
    key_hash = load_u64(pkt, 24)
    return key_hash % NUM_EXECUTORS
'''
