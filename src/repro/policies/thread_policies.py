"""Thread-scheduling policies (ghOSt backend, paper §5.3).

These run in userspace inside the agent: plain Python objects exposing
``schedule(status) -> [(thread, core_index), ...]``.  They read
application-populated Syrup Maps to make request-aware decisions — the
cross-layer communication the Map abstraction exists for.
"""

from repro.workload.requests import GET, SCAN

__all__ = ["FifoThreadPolicy", "GetPriorityPolicy"]


class FifoThreadPolicy:
    """Work-conserving FIFO: place runnable threads onto idle cores."""

    def schedule(self, status):
        placements = []
        idle = status.idle_cores()
        for thread, core in zip(status.runnable, idle):
            placements.append((thread, core.cid))
        return placements


class GetPriorityPolicy:
    """Shinjuku-style strict priority for GET-serving threads (§5.3).

    Threads whose pending/current request is a GET (per the app-populated
    ``type_map``) are placed first and may preempt threads processing
    SCANs.  SCAN threads run on whatever is left.
    """

    def __init__(self, type_map):
        self.type_map = type_map

    def _rtype(self, thread):
        value = self.type_map.lookup(thread.tid)
        return 0 if value is None else value

    def schedule(self, status):
        gets = [t for t in status.runnable if self._rtype(t) == GET]
        others = [t for t in status.runnable if self._rtype(t) != GET]
        placements = []
        idle = status.idle_cores()
        # 1) idle cores: GETs first, then the rest.
        queue = gets + others
        for core in idle:
            if not queue:
                break
            placements.append((queue.pop(0), core.cid))
        # 2) remaining GETs may preempt cores running SCAN threads.
        gets_left = [t for t in queue if self._rtype(t) == GET]
        if gets_left:
            victims = [
                core
                for core in status.cores
                if core.thread is not None
                and not core.pending
                and self._rtype(core.thread) == SCAN
            ]
            for thread, core in zip(gets_left, victims):
                placements.append((thread, core.cid))
        return placements
