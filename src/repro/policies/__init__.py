"""The paper's scheduling policies, written against the Syrup API.

Network-hook policies (:mod:`repro.policies.builtin`) are source strings in
the safe subset — they are compiled, verified, and executed as programs.
Thread policies (:mod:`repro.policies.thread_policies`) are userspace
objects driven by the ghOSt agent.
"""

from repro.policies.builtin import (
    DYNAMIC_ROUND_ROBIN,
    HASH_BY_FLOW,
    MICA_HASH,
    RFS_STEERING,
    ROUND_ROBIN,
    SCAN_AVOID,
    SITA,
    TOKEN_BASED,
)
from repro.policies.thread_policies import FifoThreadPolicy, GetPriorityPolicy
from repro.policies.token_agent import TokenAgent

__all__ = [
    "DYNAMIC_ROUND_ROBIN",
    "FifoThreadPolicy",
    "GetPriorityPolicy",
    "HASH_BY_FLOW",
    "MICA_HASH",
    "RFS_STEERING",
    "ROUND_ROBIN",
    "SCAN_AVOID",
    "SITA",
    "TOKEN_BASED",
    "TokenAgent",
]
