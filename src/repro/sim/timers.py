"""Periodic timers built on the engine."""

__all__ = ["PeriodicTimer"]


class PeriodicTimer:
    """Invoke ``fn()`` every ``period`` microseconds until stopped.

    Used for control-plane loops such as the token-replenishment agent
    (paper section 3.4: userspace code replenishes tokens each epoch).
    """

    def __init__(self, engine, period, fn, start_at=None):
        if period <= 0:
            raise ValueError("period must be positive")
        self.engine = engine
        self.period = period
        self.fn = fn
        self.fires = 0
        self._stopped = False
        first = engine.now + period if start_at is None else start_at
        self._event = engine.at(first, self._tick)

    def _tick(self):
        if self._stopped:
            return
        self.fires += 1
        self.fn()
        if not self._stopped:
            self._event = self.engine.schedule(self.period, self._tick)

    def stop(self):
        """Stop the timer; pending tick (if any) is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None
