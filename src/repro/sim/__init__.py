"""Discrete-event simulation substrate.

Time is measured in microseconds (``float``).  The engine is a plain
binary-heap event loop tuned for the hot path: scheduling, cancelling, and
dispatching millions of events per simulated second of a packet-processing
pipeline.

Public surface:

- :class:`~repro.sim.engine.Engine` — the event loop.
- :class:`~repro.sim.engine.Event` — a cancellable scheduled callback.
- :class:`~repro.sim.rng.RngStreams` — named, independently-seeded RNG
  streams so components draw deterministic but uncorrelated randomness.
- :class:`~repro.sim.timers.PeriodicTimer` — fixed-interval callback.
- :func:`~repro.sim.process.spawn` — generator-coroutine processes for
  control-plane logic (agents, load generators) that reads naturally as
  sequential code.
"""

from repro.sim.engine import Engine, Event, SimulationError
from repro.sim.process import Process, spawn
from repro.sim.rng import RngStreams
from repro.sim.timers import PeriodicTimer

__all__ = [
    "Engine",
    "Event",
    "SimulationError",
    "PeriodicTimer",
    "Process",
    "RngStreams",
    "spawn",
]
