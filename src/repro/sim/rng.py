"""Named deterministic RNG streams.

Every stochastic component of the simulation (load generator, hash salt,
service-time draws, policy randomness) pulls from its own named stream so
that changing one component's consumption pattern never perturbs another's —
the property that makes A/B policy comparisons paired rather than noisy.
"""

import hashlib
import random

__all__ = ["RngStreams"]


class RngStreams:
    """A factory of independently-seeded :class:`random.Random` streams.

    >>> streams = RngStreams(seed=7)
    >>> a = streams.get("arrivals")
    >>> b = streams.get("service")
    >>> streams.get("arrivals") is a
    True
    """

    def __init__(self, seed=0):
        self.seed = seed
        self._streams = {}

    def get(self, name):
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def fork(self, name):
        """Derive a child :class:`RngStreams` with an independent seed space."""
        digest = hashlib.sha256(f"{self.seed}//{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))

    def names(self):
        return sorted(self._streams)
