"""The discrete-event engine.

A minimal, fast event loop.  Events are callbacks scheduled at absolute
simulated times (microseconds).  Cancellation is lazy: cancelled events stay
in the heap but are skipped on pop, which keeps both operations O(log n)
without heap surgery.
"""

import heapq

__all__ = ["Engine", "Event", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the engine (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are created via :meth:`Engine.schedule` / :meth:`Engine.at`;
    user code only ever cancels them.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time, seq, fn, args):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Mark this event so the engine skips it.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other):
        # heapq tie-break: FIFO among events scheduled for the same instant.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self):
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.3f} fn={getattr(self.fn, '__name__', self.fn)!r}{state}>"


class Engine:
    """A discrete-event simulation loop with microsecond-resolution time.

    >>> eng = Engine()
    >>> hits = []
    >>> _ = eng.schedule(5.0, hits.append, 1)
    >>> eng.run()
    >>> (eng.now, hits)
    (5.0, [1])
    """

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._seq = 0
        self._running = False
        self.events_dispatched = 0
        # Optional repro.obs.profile.WallClockProfiler; when set, run()
        # brackets the loop in an "engine" section (exclusive time = loop
        # + un-instrumented callbacks).  Never touches simulation state.
        self.profiler = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay, fn, *args):
        """Schedule ``fn(*args)`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} us in the past")
        return self.at(self.now + delay, fn, *args)

    def at(self, time, fn, *args):
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        self._seq += 1
        ev = Event(time, self._seq, fn, args)
        # Heap entries are tuples so heapq compares C-level ints/floats
        # instead of calling Event.__lt__ in Python — ~2x faster dispatch.
        heapq.heappush(self._heap, (time, self._seq, ev))
        return ev

    def call_soon(self, fn, *args):
        """Schedule ``fn(*args)`` at the current instant (after pending work)."""
        return self.at(self.now, fn, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self):
        """Dispatch the next non-cancelled event.  Returns False when idle."""
        heap = self._heap
        while heap:
            time, _seq, ev = heapq.heappop(heap)
            if ev.cancelled:
                continue
            self.now = time
            self.events_dispatched += 1
            ev.fn(*ev.args)
            return True
        return False

    def run(self, until=None, max_events=None):
        """Run until the heap drains, ``until`` is reached, or ``max_events``.

        ``until`` is an absolute simulated time; when the next event lies
        beyond it the clock is advanced exactly to ``until`` and the event is
        left in the heap.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        profiler = self.profiler
        if profiler is not None:
            profiler.push("engine")
        try:
            heap = self._heap
            pop = heapq.heappop
            dispatched = 0
            while heap:
                time, _seq, ev = heap[0]
                if ev.cancelled:
                    pop(heap)
                    continue
                if until is not None and time > until:
                    self.now = until
                    return
                pop(heap)
                self.now = time
                self.events_dispatched += 1
                ev.fn(*ev.args)
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    return
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
            if profiler is not None:
                profiler.pop()

    def pending(self):
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _t, _s, ev in self._heap if not ev.cancelled)

    def __repr__(self):
        return f"<Engine now={self.now:.3f}us pending={len(self._heap)}>"
