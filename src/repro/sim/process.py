"""Generator-coroutine processes.

Control-plane logic (agents, load generators, experiment drivers) reads best
as sequential code.  A :class:`Process` wraps a generator; the generator
yields either

- a ``float``/``int`` — sleep that many microseconds, or
- a :class:`Waiter` — park until someone calls :meth:`Waiter.wake`.

Data-plane code (per-packet handling) deliberately does *not* use processes;
it is written callback-style directly against the engine for speed.
"""

__all__ = ["Process", "Waiter", "spawn"]


class Waiter:
    """A one-shot wakeup channel a process can yield on.

    >>> # inside a process generator:
    >>> # value = yield waiter        # parks until waiter.wake(value)
    """

    __slots__ = ("_process", "_value", "_woken")

    def __init__(self):
        self._process = None
        self._value = None
        self._woken = False

    def wake(self, value=None):
        """Wake the parked process (or record the value if none parked yet)."""
        self._value = value
        self._woken = True
        proc = self._process
        if proc is not None:
            self._process = None
            proc._resume(value)


class Process:
    """A running generator-coroutine.  Created via :func:`spawn`."""

    def __init__(self, engine, generator, name=None):
        self.engine = engine
        self.name = name or getattr(generator, "__name__", "process")
        self._gen = generator
        self.alive = True
        self.result = None
        engine.call_soon(self._resume, None)

    def _resume(self, value):
        if not self.alive:
            return
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            return
        if isinstance(yielded, (int, float)):
            self.engine.schedule(yielded, self._resume, None)
        elif isinstance(yielded, Waiter):
            if yielded._woken:
                # wake() raced ahead of the yield; resume immediately.
                yielded._woken = False
                self.engine.call_soon(self._resume, yielded._value)
            else:
                yielded._process = self
        else:
            self.alive = False
            raise TypeError(
                f"process {self.name!r} yielded {yielded!r}; "
                "expected a delay (number) or a Waiter"
            )

    def kill(self):
        """Terminate the process; it will never be resumed again."""
        self.alive = False
        self._gen.close()


def spawn(engine, generator, name=None):
    """Start ``generator`` as a simulation process on ``engine``."""
    return Process(engine, generator, name=name)
