"""Calibrated machine and cost models.

All timing constants for the simulated testbed live here, with the paper's
hardware as the calibration target (server set A: 2×Xeon E5-2630 @ 2.3 GHz,
Intel 82599ES 10GbE; server set B: 2×Xeon Gold 5117 @ 2.0 GHz, Netronome
Agilio CX 10GbE).  EXPERIMENTS.md documents how each constant was chosen and
which result shapes it anchors.
"""

from dataclasses import dataclass, field, replace

__all__ = ["CostModel", "MachineConfig", "NicSpec", "set_a", "set_b"]


@dataclass
class NicSpec:
    """Capabilities of the simulated NIC."""

    model: str = "intel-82599"
    num_queues: int = 6
    ring_size: int = 1024
    #: Can run XDP programs on the NIC itself (Netronome-style offload).
    supports_offload: bool = False
    #: Native XDP_DRV with zero-copy AF_XDP (Intel 82599 does; the
    #: Netronome's AF_XDP path copies — paper §5.4).
    zero_copy: bool = True
    #: Userspace access latency to a map resident on the NIC (paper Table 3:
    #: ~25 us against ~1 us for host maps).
    offload_map_access_us: float = 24.0
    offload_map_contended_extra_us: float = 1.0
    #: Fixed per-packet NIC processing before queue assignment.
    rx_process_us: float = 0.5
    #: Extra per-packet cost on the copy (non-zero-copy) AF_XDP path.
    copy_cost_us: float = 0.35


@dataclass
class CostModel:
    """Per-stage costs, all in microseconds unless stated otherwise."""

    cpu_ghz: float = 2.3
    #: One-way wire + switch latency between client and server.
    wire_us: float = 5.0
    #: NIC ring -> softirq core wakeup.
    irq_delay_us: float = 1.0
    #: Kernel protocol processing (IP/UDP) per packet on a softirq core.
    softirq_us: float = 1.2
    #: Socket-layer delivery (lookup, enqueue) per datagram.
    socket_deliver_us: float = 0.3
    #: recvmsg/sendmsg syscall cost charged on the application core.
    recv_syscall_us: float = 1.0
    send_syscall_us: float = 1.0
    #: XDP program stage cost (excluding the policy program itself).
    xdp_stage_us: float = 0.6
    #: AF_XDP delivery to a userspace socket (descriptor hand-off).
    afxdp_deliver_us: float = 0.4
    #: Per-packet cost to poll an AF_XDP ring from userspace.
    afxdp_poll_us: float = 0.3
    #: Thread context switch.
    ctx_switch_us: float = 1.5
    #: CFS-like timeslice.
    timeslice_us: float = 1000.0
    #: Fixed decision-enforcement cost in cycles (paper §5.5: ~1450 of the
    #: ~1600 measured cycles are enforcement, not policy logic).
    enforce_cycles: int = 1450
    #: ghOSt costs: per-message agent processing, txn commit syscall, IPI.
    ghost_msg_us: float = 0.7
    ghost_commit_us: float = 1.0
    ghost_ipi_us: float = 2.0
    #: Host map access from userspace (paper Table 3: ~1 us).
    host_map_access_us: float = 1.0
    host_map_contended_extra_us: float = 0.03
    #: Extra app-core cost per request when protocol processing ran on a
    #: softirq core that is NOT the app core's hyperthread buddy (cold
    #: caches).  0 by default — the calibrated experiments fold locality
    #: into their stage constants; the RFS experiment (paper §2.1) sets it.
    remote_softirq_us: float = 0.0

    def cycles_to_us(self, cycles):
        return cycles / (self.cpu_ghz * 1000.0)


@dataclass
class MachineConfig:
    """One simulated server."""

    name: str = "server"
    num_app_cores: int = 6
    #: Hyperthread buddies handling IRQs/softirq (paper §5.1.1 pins NIC
    #: interrupts to the buddies of the application hyperthreads).
    num_softirq_cores: int = 6
    socket_backlog: int = 256
    nic: NicSpec = field(default_factory=NicSpec)
    costs: CostModel = field(default_factory=CostModel)


def set_a(num_app_cores=6):
    """Server set A: Intel 82599 (zero-copy XDP_DRV, no offload)."""
    return MachineConfig(
        name="set-a",
        num_app_cores=num_app_cores,
        num_softirq_cores=num_app_cores,
        nic=NicSpec(
            model="intel-82599",
            num_queues=num_app_cores,
            supports_offload=False,
            zero_copy=True,
        ),
        costs=CostModel(cpu_ghz=2.3),
    )


def set_b(num_app_cores=8):
    """Server set B: Netronome Agilio CX (offload capable, no zero copy)."""
    return MachineConfig(
        name="set-b",
        num_app_cores=num_app_cores,
        num_softirq_cores=num_app_cores,
        nic=NicSpec(
            model="netronome-agilio-cx",
            num_queues=num_app_cores,
            supports_offload=True,
            zero_copy=False,
        ),
        costs=CostModel(cpu_ghz=2.0),
    )


def with_costs(config, **overrides):
    """Copy ``config`` with some cost-model fields replaced."""
    return replace(config, costs=replace(config.costs, **overrides))
