"""Flash device model with NVMe-style queues.

Cost calibration follows ReFlex's Flash characterization: reads ~80 us,
writes ~20 us to the write buffer but with amplification under sustained
load; larger IOs pay a per-KB transfer cost.  Each queue is an independent
FIFO server, so queue choice is real scheduling: a hot queue builds latency
while others idle — exactly the imbalance the IO hook exists to manage.
"""

from dataclasses import dataclass

from repro.kernel.cpu import FifoServer

__all__ = ["FlashCosts", "IoRequest", "NvmeDevice"]

READ = "read"
WRITE = "write"


@dataclass
class FlashCosts:
    read_base_us: float = 80.0
    write_base_us: float = 20.0
    per_kb_us: float = 0.25
    queue_submit_us: float = 1.0   # doorbell + command fetch


class IoRequest:
    """One block-IO request (the input of the IO scheduling hook)."""

    __slots__ = (
        "rid", "op", "lba", "size_kb", "tenant", "submitted_at",
        "completed_at",
    )

    def __init__(self, rid, op, lba, size_kb=4, tenant=0):
        if op not in (READ, WRITE):
            raise ValueError(f"op must be 'read' or 'write', got {op!r}")
        self.rid = rid
        self.op = op
        self.lba = lba
        self.size_kb = size_kb
        self.tenant = tenant
        self.submitted_at = None
        self.completed_at = None

    @property
    def latency_us(self):
        if self.completed_at is None or self.submitted_at is None:
            return None
        return self.completed_at - self.submitted_at

    def __repr__(self):
        return (
            f"<IoRequest {self.rid} {self.op} lba={self.lba} "
            f"{self.size_kb}KB tenant={self.tenant}>"
        )


class NvmeDevice:
    """A flash device with ``num_queues`` independent submission queues."""

    def __init__(self, engine, num_queues=4, costs=None, queue_depth=1024,
                 capacity_lbas=1 << 20):
        self.engine = engine
        self.costs = costs or FlashCosts()
        self.capacity_lbas = capacity_lbas
        self.queues = [
            FifoServer(engine, f"nvme-q{i}", capacity=queue_depth)
            for i in range(num_queues)
        ]
        self._data = {}
        self.completed = 0
        self.rejected = 0
        self.read_misses = 0

    @property
    def num_queues(self):
        return len(self.queues)

    def service_us(self, request):
        base = (
            self.costs.read_base_us
            if request.op == READ
            else self.costs.write_base_us
        )
        return base + self.costs.per_kb_us * request.size_kb

    def submit(self, queue_index, request, on_complete=None):
        """Submit to a specific queue; returns False when the queue is full."""
        if not 0 <= request.lba < self.capacity_lbas:
            raise ValueError(f"lba {request.lba} beyond device capacity")
        queue = self.queues[queue_index % len(self.queues)]
        request.submitted_at = self.engine.now
        cost = self.costs.queue_submit_us + self.service_us(request)
        accepted = queue.submit(cost, self._finish, request, on_complete)
        if not accepted:
            self.rejected += 1
        return accepted

    def _finish(self, request, on_complete):
        # real data movement so tests can observe correctness
        if request.op == WRITE:
            self._data[request.lba] = request.rid
        elif request.lba not in self._data:
            self.read_misses += 1
        request.completed_at = self.engine.now
        self.completed += 1
        if on_complete is not None:
            on_complete(request)

    def read_back(self, lba):
        return self._data.get(lba)

    def utilization(self, now):
        if now <= 0:
            return 0.0
        return sum(q.busy_us for q in self.queues) / (now * len(self.queues))
