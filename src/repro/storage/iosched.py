"""IO scheduling hook: match IO requests to device queues.

Same matching shape as the network hooks — a policy maps an input (an
:class:`~repro.storage.device.IoRequest`) to an executor index (an NVMe
queue), or PASS (default striping) or DROP (reject, e.g. admission
control).  :class:`IoTokenPolicy` is the ReFlex-style policy the paper's
§3.4/§6.1 discussion points at: latency-critical tenants spend tokens;
requests beyond the provisioned rate are rejected rather than allowed to
destroy tail latency for everyone.
"""

from repro.constants import DROP, PASS
from repro.sim.timers import PeriodicTimer

__all__ = ["IoHook", "IoTokenPolicy"]


class IoHook:
    """Dispatches IO submissions through a user policy to a device."""

    def __init__(self, device, policy=None):
        self.device = device
        self.policy = policy    # callable(IoRequest) -> queue index/PASS/DROP
        self._rr = 0
        self.dropped = 0
        self.submitted = 0

    def submit(self, request, on_complete=None):
        """Returns True if the request was accepted by a queue."""
        index = None
        if self.policy is not None:
            decision = self.policy(request)
            if decision == DROP:
                self.dropped += 1
                return False
            if decision != PASS:
                index = decision % self.device.num_queues
        if index is None:
            index = self._default_queue()
        self.submitted += 1
        return self.device.submit(index, request, on_complete)

    def _default_queue(self):
        """Stripe over queues not reserved for provisioned tenants."""
        reserved = set(getattr(self.policy, "reserved_queues", ()))
        candidates = [
            i for i in range(self.device.num_queues) if i not in reserved
        ] or list(range(self.device.num_queues))
        index = candidates[self._rr % len(candidates)]
        self._rr += 1
        return index


class IoTokenPolicy:
    """ReFlex-like token-bucket admission + tenant-to-queue partitioning.

    Each latency-critical tenant is provisioned ``rate_iops``; tokens
    refill every ``epoch_us``.  Requests from provisioned tenants that find
    an empty bucket are rejected (fail fast, as MittOS also argues); best-
    effort tenants (no reservation) PASS through to the striped remainder.

    Provisioned tenants get a dedicated queue each (SLO isolation); the
    policy returns that queue index on admission.
    """

    def __init__(self, engine, epoch_us=100.0):
        self.engine = engine
        self.epoch_us = epoch_us
        self._tenants = {}       # tenant -> dict(tokens, per_epoch, queue)
        self._timer = PeriodicTimer(engine, epoch_us, self._refill)
        self.rejections = 0
        self.admitted = 0

    def provision(self, tenant, rate_iops, queue):
        per_epoch = max(1, int(round(rate_iops * self.epoch_us / 1e6)))
        self._tenants[tenant] = {
            "tokens": per_epoch,
            "per_epoch": per_epoch,
            "queue": queue,
        }

    @property
    def reserved_queues(self):
        """Queues dedicated to provisioned tenants (skipped by striping)."""
        return {state["queue"] for state in self._tenants.values()}

    def _refill(self):
        for state in self._tenants.values():
            state["tokens"] = state["per_epoch"]

    def stop(self):
        self._timer.stop()

    # -- the matching function -------------------------------------------
    def __call__(self, request):
        state = self._tenants.get(request.tenant)
        if state is None:
            return PASS  # best-effort: default striping
        if state["tokens"] <= 0:
            self.rejections += 1
            return DROP
        state["tokens"] -= 1
        self.admitted += 1
        return state["queue"]
