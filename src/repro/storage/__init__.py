"""Storage backend extension (paper §6.1).

"One natural extension for Syrup's scheduling model is storage; we can use
Syrup to match IO requests with storage device queues."  This package
implements that extension: a flash device model with multiple NVMe-style
queues (executors), IO requests (inputs), an IO scheduling hook with the
same matching shape as the network hooks, and a ReFlex-style token policy
for multi-tenant SLO enforcement — the policy the paper's §3.4 example is
modeled on.
"""

from repro.storage.device import FlashCosts, IoRequest, NvmeDevice
from repro.storage.iosched import IoHook, IoTokenPolicy

__all__ = [
    "FlashCosts",
    "IoHook",
    "IoRequest",
    "IoTokenPolicy",
    "NvmeDevice",
]
