"""SLO objectives, error budgets, and multi-window burn-rate alerting.

A sketch (:mod:`repro.obs.sketch`) tells you *what* the tail is; an SLO
says whether that tail is *acceptable* and — through the error budget —
how much slack remains before it is not.  This module implements the
SRE-standard formulation:

- An **objective** is a target fraction of *good* events: a latency SLO
  counts a request good when it completes under ``threshold_us``, an
  availability SLO when it was not dropped.  The **error budget** is
  ``1 - target`` — the tolerated bad fraction.
- The **burn rate** over a trailing window is the observed bad fraction
  divided by the budget: burn 1.0 consumes the budget exactly at the
  sustainable pace, burn 10 exhausts it ten times too fast.
- **Multi-window alerting**: an objective *pages* only when both a
  short and a long trailing window burn above ``page_burn`` (the short
  window makes the alert fast, the long window keeps a transient spike
  from flapping it), and *warns* when both exceed ``warn_burn``.
  States are ``ok`` / ``warn`` / ``page`` (:data:`STATE_CODES`).

:class:`SloTracker` owns a set of objectives, publishes their burn
state into a metrics registry as gauges (so OpenMetrics exports them
and the SignalBus can route them into Maps), and renders through
``syrupctl slo``.  Everything is driven by the simulated clock and only
*reads* it — no randomness, no event scheduling — so a tracker that is
never constructed leaves simulation output bit-identical (the same
no-op-when-disabled contract as the rest of :mod:`repro.obs`).
"""

__all__ = [
    "AvailabilitySlo",
    "LatencySlo",
    "STATE_CODES",
    "Slo",
    "SloTracker",
]

#: Alert-state names to numeric gauge codes (exported via OpenMetrics).
STATE_CODES = {"ok": 0, "warn": 1, "page": 2}

DEFAULT_SHORT_WINDOW_US = 50_000.0
DEFAULT_LONG_WINDOW_US = 500_000.0


class Slo:
    """One good/total objective with time-bucketed trailing windows.

    Events land in fixed-width sim-time bins; windowed counts sum the
    bins covering the trailing window, so burn rates over the short and
    long windows are O(bins) reads.  Lifetime totals back the error
    budget.  Subclasses define what "good" means.
    """

    kind = "slo"
    __slots__ = ("name", "clock", "target", "short_window_us",
                 "long_window_us", "page_burn", "warn_burn", "_bin_us",
                 "good_total", "total", "_bins")

    def __init__(self, name, clock, target,
                 short_window_us=DEFAULT_SHORT_WINDOW_US,
                 long_window_us=DEFAULT_LONG_WINDOW_US,
                 page_burn=4.0, warn_burn=1.0):
        if not 0.0 < target < 1.0:
            raise ValueError(
                f"target must be in (0, 1) (an error budget of zero can "
                f"never be met), got {target}"
            )
        if short_window_us <= 0 or long_window_us < short_window_us:
            raise ValueError(
                f"need 0 < short_window_us <= long_window_us, got "
                f"{short_window_us} / {long_window_us}"
            )
        self.name = name
        self.clock = clock
        self.target = target
        self.short_window_us = float(short_window_us)
        self.long_window_us = float(long_window_us)
        self.page_burn = page_burn
        self.warn_burn = warn_burn
        self._bin_us = self.short_window_us / 10.0
        self.good_total = 0
        self.total = 0
        self._bins = {}   # bin index -> [good, total]

    # ------------------------------------------------------------------
    @property
    def budget(self):
        """The error budget: the tolerated bad fraction."""
        return 1.0 - self.target

    def record(self, good, n=1):
        """Fold ``n`` events (all good or all bad) into the objective."""
        self.total += n
        if good:
            self.good_total += n
        now = self.clock()
        horizon = int((now - self.long_window_us) // self._bin_us)
        for index in [i for i in self._bins if i <= horizon]:
            del self._bins[index]
        index = int(now // self._bin_us)
        bin_ = self._bins.get(index)
        if bin_ is None:
            bin_ = self._bins[index] = [0, 0]
        bin_[1] += n
        if good:
            bin_[0] += n

    def counts(self, window_us):
        """``(good, total)`` over the trailing ``window_us``."""
        horizon = int((self.clock() - window_us) // self._bin_us)
        good = total = 0
        for index, (g, t) in self._bins.items():
            if index > horizon:
                good += g
                total += t
        return good, total

    # ------------------------------------------------------------------
    def compliance(self):
        """Lifetime good fraction (1.0 before any event)."""
        return self.good_total / self.total if self.total else 1.0

    def budget_consumed(self):
        """Fraction of the lifetime error budget spent (can exceed 1)."""
        if self.total == 0:
            return 0.0
        bad_frac = 1.0 - self.good_total / self.total
        return bad_frac / self.budget

    def budget_remaining(self):
        return 1.0 - self.budget_consumed()

    def burn_rate(self, window_us=None):
        """Bad fraction over the window divided by the error budget."""
        if window_us is None:
            window_us = self.long_window_us
        good, total = self.counts(window_us)
        if total == 0:
            return 0.0
        return (1.0 - good / total) / self.budget

    def state(self):
        """``ok`` / ``warn`` / ``page`` via multi-window burn rates."""
        short = self.burn_rate(self.short_window_us)
        long_ = self.burn_rate(self.long_window_us)
        if short >= self.page_burn and long_ >= self.page_burn:
            return "page"
        if short >= self.warn_burn and long_ >= self.warn_burn:
            return "warn"
        return "ok"

    def snapshot(self):
        """JSON-safe row (``syrupctl slo``)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "total": self.total,
            "good": self.good_total,
            "compliance": self.compliance(),
            "budget_remaining": self.budget_remaining(),
            "burn_short": self.burn_rate(self.short_window_us),
            "burn_long": self.burn_rate(self.long_window_us),
            "state": self.state(),
        }

    def __repr__(self):
        return (
            f"<{type(self).__name__} {self.name!r} target={self.target} "
            f"n={self.total} state={self.state()}>"
        )


class LatencySlo(Slo):
    """Latency objective: good iff the request finishes in time.

    ``target`` fraction of requests must complete within
    ``threshold_us`` — "p99 <= 600us" is ``target=0.99,
    threshold_us=600``.
    """

    kind = "latency"
    __slots__ = ("threshold_us",)

    def __init__(self, name, clock, threshold_us, target=0.99, **kwargs):
        super().__init__(name, clock, target, **kwargs)
        if threshold_us <= 0:
            raise ValueError(
                f"threshold_us must be positive, got {threshold_us}"
            )
        self.threshold_us = float(threshold_us)

    def observe(self, latency_us):
        self.record(latency_us <= self.threshold_us)


class AvailabilitySlo(Slo):
    """Availability objective: good iff the request was served at all."""

    kind = "availability"
    __slots__ = ()

    def observe(self, ok):
        self.record(bool(ok))


class SloTracker:
    """A set of SLOs with registry publication and operator views.

    ``clock`` is the usual zero-arg sim-time callable.  Objectives are
    created once via :meth:`latency` / :meth:`availability` and then fed
    through :meth:`observe_latency` / :meth:`observe_ok` on the request
    completion path; :meth:`publish` mirrors burn state into registry
    gauges under ``(app="slo", scope=<objective>)`` so the OpenMetrics
    exporter and the SignalBus see it without knowing this class.
    """

    enabled = True

    def __init__(self, clock, **defaults):
        self.clock = clock
        self.defaults = defaults     # window/burn kwargs for new SLOs
        self.slos = {}

    # ------------------------------------------------------------------
    def latency(self, name, threshold_us, target=0.99, **kwargs):
        slo = self.slos.get(name)
        if slo is None:
            merged = dict(self.defaults)
            merged.update(kwargs)
            slo = LatencySlo(name, self.clock, threshold_us,
                             target=target, **merged)
            self.slos[name] = slo
        return slo

    def availability(self, name, target=0.999, **kwargs):
        slo = self.slos.get(name)
        if slo is None:
            merged = dict(self.defaults)
            merged.update(kwargs)
            slo = AvailabilitySlo(name, self.clock, target, **merged)
            self.slos[name] = slo
        return slo

    def get(self, name):
        return self.slos.get(name)

    # ------------------------------------------------------------------
    def observe_latency(self, name, latency_us):
        slo = self.slos.get(name)
        if slo is not None:
            slo.observe(latency_us)

    def observe_ok(self, name, ok):
        slo = self.slos.get(name)
        if slo is not None:
            slo.observe(ok)

    # ------------------------------------------------------------------
    def worst_state(self):
        """The most severe state across objectives (``ok`` when empty)."""
        worst = "ok"
        for slo in self.slos.values():
            state = slo.state()
            if STATE_CODES[state] > STATE_CODES[worst]:
                worst = state
        return worst

    def guard(self, names=None, allow="warn"):
        """A zero-arg gate predicate over burn-rate state.

        Returns a callable that is True while every watched objective's
        state is no worse than ``allow`` (``"ok"`` = any warn blocks,
        ``"warn"`` = only a page blocks).  ``names`` limits the watch
        to specific objectives; by default every objective — including
        ones created *after* the guard — is consulted.  This is the SLO
        gate handed to :class:`repro.core.promote.CanaryController`.
        """
        ceiling = STATE_CODES[allow]

        def ok():
            slos = (self.slos.values() if names is None
                    else [s for n, s in self.slos.items() if n in names])
            return all(STATE_CODES[slo.state()] <= ceiling for slo in slos)

        return ok

    def publish(self, registry):
        """Mirror burn state into registry gauges (OpenMetrics-visible)."""
        for name, slo in self.slos.items():
            registry.gauge("slo", name, "burn_short").set(
                slo.burn_rate(slo.short_window_us))
            registry.gauge("slo", name, "burn_long").set(
                slo.burn_rate(slo.long_window_us))
            registry.gauge("slo", name, "budget_remaining").set(
                slo.budget_remaining())
            registry.gauge("slo", name, "state").set(
                STATE_CODES[slo.state()])

    def snapshot(self):
        """JSON-safe rows, sorted by objective name (``syrupctl slo``)."""
        return [self.slos[name].snapshot() for name in sorted(self.slos)]

    def __len__(self):
        return len(self.slos)

    def __repr__(self):
        return f"<SloTracker slos={len(self.slos)} worst={self.worst_state()}>"
