"""Unified observability: per-hook metrics + structured event tracing.

The reproduction's answer to "what is my policy actually doing?".  Two
complementary primitives, both stamped with *simulated* time:

- a :class:`~repro.obs.registry.MetricsRegistry` of counters, gauges and
  histograms keyed by ``(app, scope, metric)`` — schedule() invocations,
  PASS/DROP/steer outcomes, map operation totals, ghOSt agent churn,
  verifier rejections — and
- an :class:`~repro.obs.events.EventTrace`, a bounded ring of structured
  decision events with a JSON-lines exporter, unified with
  :class:`repro.trace.RequestTracer`'s per-request stage records.

Both hang off an :class:`Observability` handle created by
:class:`repro.machine.Machine`.  Observability is **off by default**:
``Machine(metrics=True)`` swaps the null implementations for live ones.
Instrumented code paths hold metric/trace objects directly, so the
disabled mode costs a no-op method call at most and changes no simulation
behavior — benchmark results are bit-identical with observability off.

A second tier builds on the registry (all opt-in, same null-singleton
discipline): :class:`repro.obs.timeseries.FlightRecorder` samples the
registry over *sim time* into bounded ring-buffered series (the
``Observability.recorder`` slot; ``Machine(metrics=True,
timeseries=...)``), :mod:`repro.obs.profile` attributes *wall-clock* time
to simulator subsystems, and :mod:`repro.obs.export` renders registry
snapshots as OpenMetrics text.

A third tier is *causal*: :mod:`repro.obs.spans` follows head-sampled
requests across every layer (``Machine(spans=N)``, the
``Observability.spans`` slot) and :mod:`repro.obs.tail` turns the
resulting span trees into a p50-vs-p99 critical-path attribution
(``syrupctl spans`` / ``syrupctl tail``).

Operator surface: ``syrupctl stats`` / :func:`repro.syrupctl.render_stats`
renders the registry, ``syrupctl timeline`` the recorder;
``docs/observability.md`` is the metric catalogue and event schema.
"""

from repro.obs.accounting import (
    NULL_ACCOUNTING,
    NullTenantAccountant,
    TenantAccountant,
    TenantLedger,
)
from repro.obs.events import NULL_EVENTS, EventTrace, NullEventTrace
from repro.obs.interference import (
    BlameMatrix,
    NoisyNeighborDetector,
    TenantShedController,
)
from repro.obs.export import open_destination, to_openmetrics, write_openmetrics
from repro.obs.registry import (
    NULL_METRIC,
    NULL_REGISTRY,
    CardinalityError,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetric,
    NullRegistry,
)
from repro.obs.spans import NULL_SPANS, NullSpanTracer, SpanTracer
from repro.obs.timeseries import NULL_RECORDER, FlightRecorder, NullFlightRecorder

__all__ = [
    "DISABLED",
    "BlameMatrix",
    "CardinalityError",
    "Counter",
    "EventTrace",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_ACCOUNTING",
    "NULL_EVENTS",
    "NULL_METRIC",
    "NULL_RECORDER",
    "NULL_REGISTRY",
    "NULL_SPANS",
    "NoisyNeighborDetector",
    "NullEventTrace",
    "NullFlightRecorder",
    "NullMetric",
    "NullRegistry",
    "NullSpanTracer",
    "NullTenantAccountant",
    "Observability",
    "SpanTracer",
    "TenantAccountant",
    "TenantLedger",
    "TenantShedController",
    "open_destination",
    "to_openmetrics",
    "write_openmetrics",
]


class Observability:
    """A machine's metrics registry + event trace, or their null twins.

    ``recorder`` holds the time-series tier: :data:`NULL_RECORDER` unless
    the owner installs a live :class:`FlightRecorder` (see
    ``Machine(timeseries=...)``); it needs the engine, so construction
    stays with the machine.  ``spans`` is the causal span tracer
    (:mod:`repro.obs.spans`): :data:`NULL_SPANS` unless constructed with
    ``spans=N`` (sample every Nth request; ``Machine(spans=...)``) —
    independent of ``enabled``, since the tracer needs no registry.
    ``acct`` is the per-tenant cost accountant
    (:mod:`repro.obs.accounting`): :data:`NULL_ACCOUNTING` unless
    constructed with ``accounting=True`` (``Machine(accounting=True)``)
    — also registry-independent, same null-twin discipline.
    """

    __slots__ = ("enabled", "registry", "events", "recorder", "spans",
                 "acct")

    def __init__(self, clock=None, enabled=False, event_capacity=4096,
                 max_series=4096, spans=0, spans_capacity=4096,
                 accounting=False):
        self.enabled = enabled
        self.recorder = NULL_RECORDER
        if enabled:
            self.registry = MetricsRegistry(clock=clock, max_series=max_series)
            self.events = EventTrace(clock=clock, capacity=event_capacity)
        else:
            self.registry = NULL_REGISTRY
            self.events = NULL_EVENTS
        if spans:
            sample_every = 1 if spans is True else int(spans)
            self.spans = SpanTracer(clock=clock, sample_every=sample_every,
                                    capacity=spans_capacity)
        else:
            self.spans = NULL_SPANS
        if accounting:
            self.acct = TenantAccountant(clock=clock)
        else:
            self.acct = NULL_ACCOUNTING

    def snapshot(self):
        """Registry snapshot rows (see MetricsRegistry.snapshot)."""
        return self.registry.snapshot()

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return f"<Observability {state} series={len(self.registry)}>"


#: Shared disabled instance for call sites given no machine-level handle.
DISABLED = Observability(enabled=False)
