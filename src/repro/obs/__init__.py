"""Unified observability: per-hook metrics + structured event tracing.

The reproduction's answer to "what is my policy actually doing?".  Two
complementary primitives, both stamped with *simulated* time:

- a :class:`~repro.obs.registry.MetricsRegistry` of counters, gauges and
  histograms keyed by ``(app, scope, metric)`` — schedule() invocations,
  PASS/DROP/steer outcomes, map operation totals, ghOSt agent churn,
  verifier rejections — and
- an :class:`~repro.obs.events.EventTrace`, a bounded ring of structured
  decision events with a JSON-lines exporter, unified with
  :class:`repro.trace.RequestTracer`'s per-request stage records.

Both hang off an :class:`Observability` handle created by
:class:`repro.machine.Machine`.  Observability is **off by default**:
``Machine(metrics=True)`` swaps the null implementations for live ones.
Instrumented code paths hold metric/trace objects directly, so the
disabled mode costs a no-op method call at most and changes no simulation
behavior — benchmark results are bit-identical with observability off.

Operator surface: ``syrupctl stats`` / :func:`repro.syrupctl.render_stats`
renders the registry; ``docs/observability.md`` is the metric catalogue
and event schema.
"""

from repro.obs.events import NULL_EVENTS, EventTrace, NullEventTrace
from repro.obs.registry import (
    NULL_METRIC,
    NULL_REGISTRY,
    CardinalityError,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetric,
    NullRegistry,
)

__all__ = [
    "DISABLED",
    "CardinalityError",
    "Counter",
    "EventTrace",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_EVENTS",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "NullEventTrace",
    "NullMetric",
    "NullRegistry",
    "Observability",
]


class Observability:
    """A machine's metrics registry + event trace, or their null twins."""

    __slots__ = ("enabled", "registry", "events")

    def __init__(self, clock=None, enabled=False, event_capacity=4096,
                 max_series=4096):
        self.enabled = enabled
        if enabled:
            self.registry = MetricsRegistry(clock=clock, max_series=max_series)
            self.events = EventTrace(clock=clock, capacity=event_capacity)
        else:
            self.registry = NULL_REGISTRY
            self.events = NULL_EVENTS

    def snapshot(self):
        """Registry snapshot rows (see MetricsRegistry.snapshot)."""
        return self.registry.snapshot()

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return f"<Observability {state} series={len(self.registry)}>"


#: Shared disabled instance for call sites given no machine-level handle.
DISABLED = Observability(enabled=False)
