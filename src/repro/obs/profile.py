"""Wall-clock self-profiling: where does *real* time go?

The ROADMAP's "fast as the hardware allows" goal needs a measurement
before any optimization PR can prove a speedup.  This module attributes
``time.perf_counter()`` elapsed time to named simulator subsystems —
the engine event loop, eBPF interpreter vs JIT, userspace map ops, hook
dispatch, the ghOSt agent — and reports the throughput that matters for
a simulator: **simulated microseconds per wall-clock second** and events
dispatched per second.

Attribution is a section stack with exclusive-time accounting: a
:class:`WallClockProfiler` section charges its own elapsed time minus the
time spent in nested sections, so ``engine`` ends up holding exactly the
loop + un-instrumented subsystem time, not a double count.  Instrumented
code paths check a ``profiler`` attribute that is ``None`` by default
(one attribute load + branch — the same nothing-when-disabled discipline
as :mod:`repro.obs.registry`); wall-clock reads never touch simulation
state, RNG streams, or the event heap, so profiling cannot change
results.

Usage::

    from repro.obs.profile import WallClockProfiler, attach, profile_run

    profiler = WallClockProfiler()
    attach(machine, profiler)          # wire every seam, incl. future deploys
    stats = profile_run(machine)       # machine.run() under the clock
    print(stats.render())

``tools/bench.py`` drives this over the canonical scenarios and writes
``BENCH_results.json``.
"""

import time

__all__ = ["RunStats", "WallClockProfiler", "attach", "profile_run"]

#: Canonical section names used by the built-in seams.
SECTION_ENGINE = "engine"
SECTION_INTERP = "ebpf_interp"
SECTION_JIT = "ebpf_jit"
SECTION_HOOKS = "hook_dispatch"
SECTION_MAPS = "map_ops"
SECTION_GHOST = "ghost_agent"


class WallClockProfiler:
    """Nested wall-clock sections with exclusive-time attribution.

    ``push(name)`` / ``pop()`` bracket a region; nesting is supported and
    each section accrues *exclusive* seconds (elapsed minus nested child
    time) plus inclusive seconds and a call count.  Single-threaded by
    design, like the simulator.
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._stack = []       # [name, start, child_seconds]
        self._sections = {}    # name -> [exclusive_s, inclusive_s, calls]

    def push(self, name):
        self._stack.append([name, self._clock(), 0.0])

    def pop(self):
        name, start, child = self._stack.pop()
        elapsed = self._clock() - start
        record = self._sections.get(name)
        if record is None:
            record = self._sections[name] = [0.0, 0.0, 0]
        record[0] += elapsed - child
        record[1] += elapsed
        record[2] += 1
        if self._stack:
            self._stack[-1][2] += elapsed
        return elapsed

    # ------------------------------------------------------------------
    def section(self, name):
        """Context manager form of push/pop."""
        return _Section(self, name)

    def sections(self):
        """``{name: {"wall_s", "inclusive_s", "calls"}}``, exclusive time."""
        return {
            name: {
                "wall_s": record[0],
                "inclusive_s": record[1],
                "calls": record[2],
            }
            for name, record in self._sections.items()
        }

    def total_s(self):
        """Total exclusive seconds across all sections."""
        return sum(record[0] for record in self._sections.values())

    def render(self):
        """ASCII table, widest section first."""
        total = self.total_s() or 1.0
        lines = ["== wall-clock profile =="]
        ordered = sorted(
            self._sections.items(), key=lambda kv: kv[1][0], reverse=True
        )
        lines.append(f"{'section':>14} {'excl_s':>9} {'incl_s':>9} "
                     f"{'calls':>10} {'pct':>6}")
        for name, (exclusive, inclusive, calls) in ordered:
            lines.append(
                f"{name:>14} {exclusive:9.4f} {inclusive:9.4f} "
                f"{calls:>10} {100.0 * exclusive / total:5.1f}%"
            )
        return "\n".join(lines)

    def __repr__(self):
        return f"<WallClockProfiler sections={len(self._sections)}>"


class _Section:
    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler, name):
        self._profiler = profiler
        self._name = name

    def __enter__(self):
        self._profiler.push(self._name)
        return self._profiler

    def __exit__(self, exc_type, exc, tb):
        self._profiler.pop()
        return False


# ----------------------------------------------------------------------
# Wiring
# ----------------------------------------------------------------------
def attach(machine, profiler):
    """Wire ``profiler`` into every instrumented seam of ``machine``.

    Covers the engine loop, already-deployed policy programs (interpreter
    and JIT split), provisioned hook sites, pinned maps, and live ghOSt
    agents; ``machine.profiler`` is set so syrupd wires the same profiler
    into anything deployed *after* this call (mid-run policy switches).

    Also accepts engine-owning objects without a syrupd — the fleet tier
    (:class:`repro.cluster.fleet.Fleet`) — in which case only the engine
    loop is bracketed (aggregate fleet machines run no hook sites).
    """
    machine.profiler = profiler
    machine.engine.profiler = profiler
    syrupd = getattr(machine, "syrupd", None)
    if syrupd is None:
        return profiler
    for site in syrupd._sites.values():
        site.profiler = profiler
    for deployed in syrupd.deployed:
        if deployed.program is not None:
            deployed.program.profiler = profiler
        if deployed.agent is not None:
            deployed.agent.profiler = profiler
    registry = syrupd.registry
    registry.profiler = profiler
    for syrup_map in registry._pinned.values():
        syrup_map.profiler = profiler
    return profiler


class RunStats:
    """One profiled run's throughput numbers + section breakdown."""

    def __init__(self, wall_s, sim_us, events, profiler):
        self.wall_s = wall_s
        self.sim_us = sim_us
        self.events = events
        self.profiler = profiler

    @property
    def sim_us_per_wall_s(self):
        """Simulated microseconds advanced per wall-clock second."""
        return self.sim_us / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def events_per_s(self):
        """Engine events dispatched per wall-clock second."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self):
        return {
            "wall_s": self.wall_s,
            "sim_us": self.sim_us,
            "sim_us_per_wall_s": self.sim_us_per_wall_s,
            "events": self.events,
            "events_per_s": self.events_per_s,
            "profile": self.profiler.sections() if self.profiler else {},
        }

    def render(self):
        lines = [
            f"wall {self.wall_s:.3f}s  sim {self.sim_us:,.0f}us  "
            f"({self.sim_us_per_wall_s:,.0f} sim-us/wall-s)  "
            f"{self.events:,} events ({self.events_per_s:,.0f}/s)"
        ]
        if self.profiler is not None:
            lines.append(self.profiler.render())
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"<RunStats wall={self.wall_s:.3f}s "
            f"sim_us_per_wall_s={self.sim_us_per_wall_s:,.0f}>"
        )


def profile_run(machine, profiler=None, until=None, clock=time.perf_counter):
    """Run ``machine`` to completion under a profiler; returns RunStats.

    Attaches ``profiler`` (a fresh one when None) unless the machine
    already carries it, then times ``machine.run(until)`` and reports
    simulated-us-per-wall-second and events-per-second.
    """
    if profiler is None:
        profiler = getattr(machine, "profiler", None) or WallClockProfiler()
    if getattr(machine, "profiler", None) is not profiler:
        attach(machine, profiler)
    engine = machine.engine
    sim_before = engine.now
    events_before = engine.events_dispatched
    wall_before = clock()
    machine.run(until=until)
    wall_s = clock() - wall_before
    return RunStats(
        wall_s=wall_s,
        sim_us=engine.now - sim_before,
        events=engine.events_dispatched - events_before,
        profiler=profiler,
    )
