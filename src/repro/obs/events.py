"""Structured event tracing: a bounded ring of scheduling decisions.

Counters (:mod:`repro.obs.registry`) answer "how many?"; the event trace
answers "what happened, in order?".  Instrumented layers emit flat,
JSON-safe records — a *kind*, the owning *app* and *hook/scope* when
known, the simulated timestamp, and free-form fields — into a fixed-size
ring buffer (old events are overwritten, never allocated without bound).

Event kinds emitted by the framework (schema in docs/observability.md):

- ``app_registered`` / ``deploy`` / ``undeploy`` — syrupd control plane
- ``isolation_denial`` / ``verifier_reject`` — rejected requests
- ``decision`` — one hook-site policy invocation (outcome + value)
- ``policy_error`` — a thread policy raised / violated its enclave
- ``request`` — one traced request's per-stage latency breakdown,
  bridged from :class:`repro.trace.RequestTracer` so request-lifecycle
  tracing and decision tracing share a single, merge-sorted timeline.
- ``fault_injected`` — the fault injector fired one planned fault
  (:mod:`repro.faults`); ``runtime_fault`` — a deployed program raised
  a :class:`repro.ebpf.errors.VmFault` at its hook site.
- ``quarantine`` / ``rollback`` / ``redeploy`` — policy lifecycle
  transitions driven by syrupd (docs/robustness.md).
- ``agent_crash`` / ``watchdog_restart`` / ``enclave_fallback`` — the
  ghOSt-agent watchdog: crash, bounded-backoff restart, and the final
  hand-back of enclave threads to a kernel scheduler.
- ``offload_fallback`` / ``offload_restore`` — an XDP_OFFLOAD program
  migrating to the XDP_SKB host path when the NIC fails, and back.

The exporter writes JSON lines (one event per line), the interchange
format everything downstream — jq, pandas, perfetto-style converters —
already speaks.  Like every exporter in the tree it takes a *destination*
— a path or an open file object — via
:func:`repro.obs.export.open_destination`.
"""

import json
from collections import deque

from repro.obs.export import open_destination

__all__ = ["EventTrace", "NULL_EVENTS", "NullEventTrace"]


def _zero_clock():
    return 0.0


class EventTrace:
    """Bounded ring buffer of structured events with a JSONL exporter."""

    enabled = True

    def __init__(self, clock=None, capacity=4096):
        self.clock = clock if clock is not None else _zero_clock
        self.capacity = capacity
        self._ring = deque(maxlen=capacity)
        self.emitted = 0

    # ------------------------------------------------------------------
    def emit(self, kind, app=None, hook=None, **fields):
        """Record one event stamped with the current simulated time."""
        self.emitted += 1
        event = {"ts": self.clock(), "kind": kind}
        if app is not None:
            event["app"] = app
        if hook is not None:
            event["hook"] = hook
        if fields:
            event.update(fields)
        self._ring.append(event)
        return event

    @property
    def dropped(self):
        """Events overwritten because the ring was full."""
        return self.emitted - len(self._ring)

    # ------------------------------------------------------------------
    def events(self, kind=None, app=None, since=None):
        """Buffered events, oldest first, optionally filtered.

        ``since`` keeps only events stamped at or after that simulated
        time (microseconds).
        """
        out = []
        for event in self._ring:
            if kind is not None and event["kind"] != kind:
                continue
            if app is not None and event.get("app") != app:
                continue
            if since is not None and event["ts"] < since:
                continue
            out.append(event)
        return out

    def tail(self, n=20):
        """The most recent ``n`` buffered events, oldest first."""
        if n <= 0:
            return []
        return list(self._ring)[-n:]

    def clear(self):
        self._ring.clear()

    def __len__(self):
        return len(self._ring)

    # ------------------------------------------------------------------
    def to_jsonl(self, destination):
        """Write buffered events as JSON lines; returns the event count.

        ``destination`` is a path (opened and closed here) or an open
        file-like object (written to, left open) — the
        :func:`repro.obs.export.open_destination` contract.
        """
        with open_destination(destination) as fh:
            n = 0
            for event in self._ring:
                fh.write(json.dumps(event, sort_keys=True))
                fh.write("\n")
                n += 1
            return n


class NullEventTrace:
    """Disabled trace: ``emit`` is a no-op, every view is empty."""

    enabled = False
    capacity = 0
    emitted = 0
    dropped = 0

    def emit(self, kind, app=None, hook=None, **fields):
        return None

    def events(self, kind=None, app=None, since=None):
        return []

    def tail(self, n=20):
        return []

    def clear(self):
        pass

    def to_jsonl(self, destination):
        return 0

    def __len__(self):
        return 0


#: Shared singleton used whenever observability is disabled.
NULL_EVENTS = NullEventTrace()
