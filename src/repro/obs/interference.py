"""Cross-tenant interference attribution: the pairwise blame matrix.

The :class:`~repro.obs.accounting.TenantAccountant` measures *how long*
each tenant's requests queued per layer; this module answers *because of
whom*.  At every softirq/socket enqueue the accountant snapshots which
tenants' work was ahead in that queue (weighted by the CPU time that
work imposes); when the request dequeues, the measured wait is split
pro rata across that snapshot and charged here::

    blame[victim][aggressor][layer] += wait_us * weight_share

Self-queueing lands on the diagonal (``victim == aggressor``), so the
matrix distinguishes "alpha is slow because alpha is overloaded" from
"alpha is slow because bravo's flood sat ahead of it" — the audit the
isolation claim needs, and the figure ``figure_interference`` renders.

The :class:`NoisyNeighborDetector` is the online consumer: a SignalBus
controller that windows the matrix every tick, publishes per-tenant
``(interference,tenant:<name>,*)`` gauges (``imposed_us``,
``suffered_us``, ``share``, ``noisy``), and flags the dominant
aggressor.  :class:`TenantShedController` closes the loop: while a
protected latency objective burns, it raises a per-tenant shed level —
written into a Map keyed by the *numeric* tenant id the datapath can
read from the payload — against flagged noisy tenants only, restoring
the victim's SLO without touching innocent traffic (where the load-only
:class:`~repro.policies.adaptive.ShedController` must shed blindly).
"""

__all__ = [
    "BlameMatrix",
    "NoisyNeighborDetector",
    "TenantShedController",
]


class BlameMatrix:
    """Cumulative pairwise queueing blame, in microseconds."""

    __slots__ = ("_cells",)

    def __init__(self):
        # (victim, aggressor, layer) -> imposed microseconds
        self._cells = {}

    def charge(self, victim, aggressor, layer, us):
        if us <= 0.0:
            return
        key = (victim, aggressor, layer)
        self._cells[key] = self._cells.get(key, 0.0) + us

    # ------------------------------------------------------------------
    def total(self):
        return sum(self._cells.values())

    def imposed_on(self, victim, layer=None):
        """``{aggressor: us}`` charged against ``victim`` (one layer or
        all layers summed)."""
        out = {}
        for (v, aggressor, lyr), us in self._cells.items():
            if v != victim or (layer is not None and lyr != layer):
                continue
            out[aggressor] = out.get(aggressor, 0.0) + us
        return out

    def imposed_by(self, aggressor):
        """Total µs this tenant inflicted on *others* (diagonal excluded)."""
        return sum(
            us for (victim, a, _lyr), us in self._cells.items()
            if a == aggressor and victim != aggressor
        )

    def suffered_by(self, victim):
        """Total µs *others* inflicted on this tenant (diagonal excluded)."""
        return sum(
            us for (v, aggressor, _lyr), us in self._cells.items()
            if v == victim and aggressor != victim
        )

    def top_aggressor(self, victim):
        """``(aggressor, layer, us, share)`` for the worst *other-tenant*
        cell charged against ``victim``; share is that cell over all
        blame at its layer (diagonal included, so a 0.9 share means 90%
        of the victim's queueing at that layer traces to one neighbor).
        Returns ``None`` when no cross-tenant blame exists."""
        worst = None
        for (v, aggressor, layer), us in sorted(self._cells.items()):
            if v != victim or aggressor == victim:
                continue
            if worst is None or us > worst[2]:
                worst = (aggressor, layer, us)
        if worst is None:
            return None
        aggressor, layer, us = worst
        layer_total = sum(
            cell for (v, _a, lyr), cell in self._cells.items()
            if v == victim and lyr == layer
        )
        share = us / layer_total if layer_total > 0.0 else 0.0
        return (aggressor, layer, us, share)

    def matrix(self):
        """JSON-safe nested view: ``{victim: {aggressor: {layer: us}}}``."""
        out = {}
        for (victim, aggressor, layer), us in sorted(self._cells.items()):
            out.setdefault(victim, {}).setdefault(aggressor, {})[layer] = us
        return out

    def __len__(self):
        return len(self._cells)

    def __repr__(self):
        return f"<BlameMatrix cells={len(self._cells)} total={self.total():.0f}us>"


class NoisyNeighborDetector:
    """SignalBus controller: window the blame matrix, flag aggressors.

    Every tick it diffs the cumulative matrix against the last tick and
    judges each ordered *pair*: tenant ``A`` is a noisy neighbor when,
    for some **other** tenant ``V``, ``A``'s windowed blame is at least
    ``share_threshold`` of *all* queueing ``V`` experienced in the
    window (diagonal included) — i.e. most of the victim's wait traces
    to that one neighbor.  The per-victim normalization is the point:
    absolute imposed-microseconds are volume-symmetric (a flooding
    tenant also *suffers* in aggregate, so its victims "impose" large
    absolute numbers right back), and a detector that compared absolute
    totals would flag the victim along with the aggressor.  Victims with
    under ``min_window_us`` of windowed queueing flag nobody (a quiet
    machine has no neighbors worth shedding).

    ``noisy`` maps each flagged tenant to its worst per-victim share;
    gauges publish under ``(interference, tenant:<name>, *)``
    (``imposed_us``, ``suffered_us``, ``share``, ``noisy``) when a
    registry is given.
    """

    def __init__(self, acct, registry=None, share_threshold=0.5,
                 min_window_us=1_000.0):
        self.acct = acct
        self.registry = registry
        self.share_threshold = share_threshold
        self.min_window_us = min_window_us
        self.noisy = {}          # tenant -> worst per-victim blame share
        self._last_cells = {}    # (victim, aggressor, layer) -> cumulative us

    def __call__(self):
        blame = self.acct.blame
        tenants = self.acct.tenants()
        cells = dict(blame._cells)
        window = {}              # (victim, aggressor) -> windowed us
        victim_total = {}        # victim -> windowed us incl. diagonal
        for (victim, aggressor, _layer), us in cells.items():
            delta = us - self._last_cells.get((victim, aggressor, _layer),
                                              0.0)
            if delta <= 0.0:
                continue
            pair = (victim, aggressor)
            window[pair] = window.get(pair, 0.0) + delta
            victim_total[victim] = victim_total.get(victim, 0.0) + delta
        self.noisy = {}
        shares = {t: 0.0 for t in tenants}
        for (victim, aggressor), us in window.items():
            if aggressor == victim:
                continue
            total = victim_total.get(victim, 0.0)
            if total < self.min_window_us:
                continue
            share = us / total
            if share > shares.get(aggressor, 0.0):
                shares[aggressor] = share
            if share >= self.share_threshold and \
                    share > self.noisy.get(aggressor, 0.0):
                self.noisy[aggressor] = share
        if self.registry is not None:
            for tenant in tenants:
                scope = f"tenant:{tenant}"
                self.registry.gauge(
                    "interference", scope, "imposed_us"
                ).set(blame.imposed_by(tenant))
                self.registry.gauge(
                    "interference", scope, "suffered_us"
                ).set(blame.suffered_by(tenant))
                self.registry.gauge(
                    "interference", scope, "share"
                ).set(shares.get(tenant, 0.0))
                self.registry.gauge(
                    "interference", scope, "noisy"
                ).set(1 if tenant in self.noisy else 0)
        self._last_cells = cells


class TenantShedController:
    """Blame-driven per-tenant shedding into a Map keyed by tenant id.

    The load-only :class:`~repro.policies.adaptive.ShedController` can
    only shed a *request type* — when an aggressor's traffic looks like
    the victim's, blind shedding spends the victim's own availability
    budget.  This controller sheds by *identity*: while the protected
    latency objective pages/warns, every tenant the detector flags as
    noisy has its shed level raised (``TENANT_SHED`` reads the level
    per-packet via the payload's tenant id); healthy windows decay all
    levels back to zero.  Tenants never flagged are never shed.
    """

    def __init__(self, shed_map, detector, latency_slo, tenant_ids,
                 step_up=25, warn_step=10, step_down=2, max_level=95):
        self.shed_map = shed_map
        self.detector = detector
        self.latency_slo = latency_slo
        self.tenant_ids = dict(tenant_ids)   # tenant name -> numeric id
        self.step_up = step_up
        self.warn_step = warn_step
        self.step_down = step_down
        self.max_level = max_level
        self.levels = {name: 0 for name in self.tenant_ids}

    def __call__(self):
        state = self.latency_slo.state()
        noisy = self.detector.noisy
        for name in sorted(self.tenant_ids):
            level = self.levels[name]
            if name in noisy and state == "page":
                level = min(self.max_level, level + self.step_up)
            elif name in noisy and state == "warn":
                level = min(self.max_level, level + self.warn_step)
            elif state == "ok":
                level = max(0, level - self.step_down)
            self.levels[name] = level
            self.shed_map.update(self.tenant_ids[name], level)
