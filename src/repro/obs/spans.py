"""Causal span tracing: one sampled request, every layer it touches.

Aggregates (:mod:`repro.obs.registry`) answer "how much, ever?" and the
:class:`repro.trace.RequestTracer` answers "what stages, on average?" —
neither can look at a *single* p99 request and say which hop queued it,
under which policy decision, behind which queue depth.  A
:class:`SpanTracer` follows each head-sampled request across the stack
and records a flat tree of **spans** (name, start, end, attrs), all in
simulated microseconds:

- ``nic_queue`` — wire arrival at the NIC until IRQ delivery into the
  kernel receive path (:meth:`repro.net.nic.Nic.receive`).
- ``decision:<hook>`` — one policy invocation at a hook site, a
  zero-duration span carrying the outcome, the returned value, the
  deployed policy ``fd``, and (when the event trace is live) the ``seq``
  of the matching ``decision`` event.
- ``softirq`` — softirq-core FIFO submission until protocol processing
  completes (queue wait + processing on the chosen core).
- ``socket_wait`` — datagram enqueue until a worker thread pulls it,
  annotated with ``depth``: the socket backlog *at enqueue*.
- ``runqueue_wait`` / ``placement`` — for thread-scheduled apps, the
  woken thread's wait for a scheduling decision and (ghOSt) the
  commit+IPI latency of the agent's transaction.
- ``service`` — work pulled until the item completes (context switch +
  syscalls + application service time).
- ``switch_steer`` / ``xnet_wait`` / ``machine_queue`` — fleet-tier
  spans (:mod:`repro.cluster.fleet`): the ToR steering decision (with
  the chosen machine and policy name, and ``resteer`` on failover), a
  cross-rack wire transit (request or response direction), and the
  chosen machine's aggregate queue wait.  Sampling for fleet requests
  happens at :meth:`SpanTracer.switch_arrival` instead of the NIC.

**Head sampling is deterministic**: every ``sample_every``-th
request-bearing packet at NIC arrival is traced — a counter, no RNG.
The tracer obeys the tree-wide determinism contract: it draws no
randomness, schedules no engine events, and mutates no simulation
state, so every simulation result is bit-identical with spans on or
off (``tests/test_spans.py`` locks this with paired runs).  Disabled
machines share the :data:`NULL_SPANS` singleton (the
:data:`~repro.obs.registry.NULL_REGISTRY` pattern).

Enable with ``Machine(spans=N)`` (``True`` ⇒ every request).  Completed
trees live in a bounded ring (``capacity``); export them for
``chrome://tracing`` / Perfetto with :meth:`SpanTracer.to_chrome_trace`
and feed them to :func:`repro.obs.tail.critical_path` for the p50-vs-p99
attribution table (``syrupctl spans`` / ``syrupctl tail``).
"""

import json
from collections import deque

from repro.obs.export import open_destination

__all__ = ["NULL_SPANS", "NullSpanTracer", "SpanTracer"]

DEFAULT_CAPACITY = 4096


class SpanTracer:
    """Cross-layer span trees for deterministically head-sampled requests."""

    enabled = True

    def __init__(self, clock=None, sample_every=1, capacity=DEFAULT_CAPACITY):
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.sample_every = int(sample_every)
        self.capacity = capacity
        self.seen = 0            # request-bearing packets observed at the NIC
        self.sampled = 0         # trees started
        self.completed_count = 0
        self.aborted_count = 0
        self._live = {}          # rid -> open tree
        self._done = deque(maxlen=capacity)
        # Thread-side pending state, consumed at service_begin: tid -> ts
        # of the wake that made the thread RUNNABLE, and tid -> (ts, core)
        # of an in-flight ghOSt commit transaction.
        self._wakes = {}
        self._placements = {}

    # ------------------------------------------------------------------
    # Tree bookkeeping
    # ------------------------------------------------------------------
    def _tree(self, packet):
        request = packet.request
        if request is None:
            return None
        return self._live.get(request.rid)

    def _open(self, tree, name, start, **attrs):
        span = {"name": name, "start": start, "end": None}
        if attrs:
            span["attrs"] = attrs
        tree["spans"].append(span)
        tree["_open"][name] = span
        return span

    def _close(self, tree, name, end, **attrs):
        span = tree["_open"].pop(name, None)
        if span is None:
            return None
        span["end"] = end
        if attrs:
            span.setdefault("attrs", {}).update(attrs)
        return span

    def _add(self, tree, name, start, end, **attrs):
        span = {"name": name, "start": start, "end": end}
        if attrs:
            span["attrs"] = attrs
        tree["spans"].append(span)
        return span

    def _finalize(self, tree, complete, reason=None):
        now = self.clock()
        for span in list(tree["_open"].values()):
            span["end"] = now
        del tree["_open"]
        tree["end"] = now
        tree["complete"] = complete
        if reason is not None:
            tree["abort_reason"] = reason
        self._live.pop(tree["rid"], None)
        self._done.append(tree)
        if complete:
            self.completed_count += 1
        else:
            self.aborted_count += 1

    # ------------------------------------------------------------------
    # NIC seams (repro.net.nic)
    # ------------------------------------------------------------------
    def nic_arrival(self, packet):
        """Head-sampling point: every Nth request-bearing packet."""
        request = packet.request
        if request is None:
            return
        self.seen += 1
        if (self.seen - 1) % self.sample_every:
            return
        if request.rid in self._live:
            return  # retransmit of an already-sampled rid
        self.sampled += 1
        now = self.clock()
        tree = {
            "rid": request.rid,
            "rtype": request.rtype,
            "start": now,
            "end": None,
            "complete": False,
            "abort_reason": None,
            "spans": [],
            "_open": {},
        }
        self._live[request.rid] = tree
        self._open(tree, "nic_queue", now)

    def nic_delivered(self, packet, queue_index):
        tree = self._tree(packet)
        if tree is None:
            return
        self._close(tree, "nic_queue", self.clock(), queue=queue_index)

    # ------------------------------------------------------------------
    # Hook sites (repro.core.hooks)
    # ------------------------------------------------------------------
    def decision(self, packet, hook, outcome, value=None, fd=None, seq=None):
        """A policy decided this packet's fate: a zero-duration span
        linked to the decision event (``seq``) and the deployed ``fd``."""
        tree = self._tree(packet)
        if tree is None:
            return
        now = self.clock()
        attrs = {"outcome": outcome}
        if value is not None:
            attrs["value"] = value
        if fd is not None:
            attrs["fd"] = fd
        if seq is not None:
            attrs["seq"] = seq
        self._add(tree, f"decision:{hook}", now, now, **attrs)

    # ------------------------------------------------------------------
    # Kernel receive path (repro.kernel.netstack / sockets)
    # ------------------------------------------------------------------
    def softirq_begin(self, packet, core_index, depth):
        tree = self._tree(packet)
        if tree is None:
            return
        self._open(tree, "softirq", self.clock(), core=core_index,
                   depth=depth)

    def softirq_end(self, packet):
        tree = self._tree(packet)
        if tree is None:
            return
        self._close(tree, "softirq", self.clock())

    def socket_enqueued(self, packet, sid, depth):
        """Datagram landed in a socket backlog ``depth`` entries deep."""
        tree = self._tree(packet)
        if tree is None:
            return
        self._open(tree, "socket_wait", self.clock(), sid=sid, depth=depth)

    def drop(self, packet, reason):
        """The stack dropped this packet; the tree ends incomplete."""
        tree = self._tree(packet)
        if tree is None:
            return
        self._finalize(tree, complete=False, reason=reason)

    # ------------------------------------------------------------------
    # Queueing disciplines (repro.qdisc)
    # ------------------------------------------------------------------
    def qdisc_enqueued(self, packet, layer, rank, backend):
        """A qdisc accepted this packet with ``rank`` (repro.qdisc).

        Opens a ``qdisc_wait`` span recording the assigned rank, the
        attachment layer, and the ordering backend; closed by
        :meth:`qdisc_dequeued` when the element is pulled in rank order.
        The NIC- and socket-layer waits never overlap, so one span name
        suffices.
        """
        tree = self._tree(packet)
        if tree is None:
            return
        self._open(tree, "qdisc_wait", self.clock(), layer=layer,
                   rank=rank, backend=backend)

    def qdisc_dequeued(self, packet):
        """The qdisc released this packet; close its ``qdisc_wait`` span."""
        tree = self._tree(packet)
        if tree is None:
            return
        self._close(tree, "qdisc_wait", self.clock())

    # ------------------------------------------------------------------
    # Fleet tier (repro.cluster.fleet): ToR steering + cross-rack wires
    # ------------------------------------------------------------------
    def _rtree(self, request):
        """Tree lookup keyed directly by a request (no packet wrapper)."""
        if request is None:
            return None
        return self._live.get(request.rid)

    def switch_arrival(self, request):
        """Fleet head-sampling point: every Nth request at the ToR switch.

        The fleet analogue of :meth:`nic_arrival` — the switch is the
        first hop a fleet request touches, so sampling happens here.
        """
        self.seen += 1
        if (self.seen - 1) % self.sample_every:
            return
        if request.rid in self._live:
            return
        self.sampled += 1
        now = self.clock()
        tree = {
            "rid": request.rid,
            "rtype": request.rtype,
            "start": now,
            "end": None,
            "complete": False,
            "abort_reason": None,
            "spans": [],
            "_open": {},
        }
        self._live[request.rid] = tree

    def switch_steer(self, request, machine, policy, resteer=False):
        """The ToR picked ``machine`` for this request: a zero-duration
        span carrying the policy name and whether this was a failover
        re-steer of an orphaned request."""
        tree = self._rtree(request)
        if tree is None:
            return
        now = self.clock()
        attrs = {"machine": machine, "policy": policy}
        if resteer:
            attrs["resteer"] = True
        self._add(tree, "switch_steer", now, now, **attrs)

    def xnet_begin(self, request, direction, machine):
        """The request (or its response) went onto a rack wire."""
        tree = self._rtree(request)
        if tree is None:
            return
        self._open(tree, "xnet_wait", self.clock(), direction=direction,
                   machine=machine)

    def xnet_end(self, request):
        """The rack wire delivered; close the in-flight ``xnet_wait``."""
        tree = self._rtree(request)
        if tree is None:
            return
        self._close(tree, "xnet_wait", self.clock())

    def machine_enqueued(self, request, machine, depth):
        """The request joined a fleet machine's queue ``depth`` deep."""
        tree = self._rtree(request)
        if tree is None:
            return
        self._open(tree, "machine_queue", self.clock(), machine=machine,
                   depth=depth)

    def machine_requeued(self, request):
        """The machine died with this request queued; reopen the clock.

        Closes any open ``machine_queue``/``service`` span so the
        re-steered attempt gets fresh ones.
        """
        tree = self._rtree(request)
        if tree is None:
            return
        now = self.clock()
        self._close(tree, "machine_queue", now, orphaned=True)
        self._close(tree, "service", now, orphaned=True)

    def fleet_service_begin(self, request, machine):
        tree = self._rtree(request)
        if tree is None:
            return
        now = self.clock()
        self._close(tree, "machine_queue", now)
        self._open(tree, "service", now, machine=machine)

    def fleet_service_end(self, request):
        tree = self._rtree(request)
        if tree is None:
            return
        self._close(tree, "service", self.clock())

    def fleet_complete(self, request):
        """The response reached the client; the tree is complete."""
        tree = self._rtree(request)
        if tree is None:
            return
        self._finalize(tree, complete=True)

    def fleet_drop(self, request, reason):
        """The fleet shed this request; the tree ends incomplete."""
        tree = self._rtree(request)
        if tree is None:
            return
        self._finalize(tree, complete=False, reason=reason)

    # ------------------------------------------------------------------
    # Thread scheduling (repro.kernel.sched / cfs, repro.ghost)
    # ------------------------------------------------------------------
    def thread_runnable(self, thread):
        """A blocked thread went RUNNABLE (CFS/ghOSt wake)."""
        self._wakes[thread.tid] = self.clock()

    def placement_begin(self, thread, core_id):
        """A ghOSt commit transaction is in flight for ``thread``."""
        self._placements[thread.tid] = (self.clock(), core_id)

    def placement_abort(self, thread):
        """The transaction aborted; discard the pending placement."""
        self._placements.pop(thread.tid, None)

    def service_begin(self, thread, token):
        """``thread`` pulled a work item; close the wait-side spans."""
        wake_ts = self._wakes.pop(thread.tid, None)
        placement = self._placements.pop(thread.tid, None)
        rid = getattr(token, "rid", None)
        if rid is None:
            return
        tree = self._live.get(rid)
        if tree is None:
            return
        now = self.clock()
        self._close(tree, "socket_wait", now)
        if wake_ts is not None:
            wait_end = placement[0] if placement is not None else now
            self._add(tree, "runqueue_wait", wake_ts, max(wake_ts, wait_end))
        if placement is not None:
            self._add(tree, "placement", placement[0], now,
                      core=placement[1])
        self._open(tree, "service", now, thread=thread.name)

    def service_end(self, thread, token):
        rid = getattr(token, "rid", None)
        if rid is None:
            return
        tree = self._live.get(rid)
        if tree is None:
            return
        self._close(tree, "service", self.clock())
        self._finalize(tree, complete=True)

    # ------------------------------------------------------------------
    # Views / export
    # ------------------------------------------------------------------
    def trees(self, complete=None):
        """Finished span trees, oldest first.

        ``complete=True`` keeps only trees whose request finished
        service; ``complete=False`` only dropped/aborted ones; ``None``
        returns both.
        """
        if complete is None:
            return list(self._done)
        return [t for t in self._done if t["complete"] is complete]

    @property
    def live(self):
        """Trees still in flight (sampled, not yet finished or dropped)."""
        return len(self._live)

    def __len__(self):
        return len(self._done)

    def to_chrome_trace(self, destination):
        """Write finished trees in the Chrome Trace Event Format.

        The output loads directly in ``chrome://tracing`` and Perfetto:
        one complete-event (``"ph": "X"``) per span, ``ts``/``dur`` in
        simulated microseconds (the format's native unit), ``pid`` 1 and
        one ``tid`` per request id so each request renders as its own
        track.  Decision spans are zero-duration slices carrying their
        outcome/fd/seq in ``args``.  ``destination`` follows the
        :func:`repro.obs.export.open_destination` contract (path or open
        file object); returns the number of trace events written.
        """
        events = []
        for tree in self._done:
            args = {"rid": tree["rid"], "rtype": tree["rtype"],
                    "complete": tree["complete"]}
            if tree["abort_reason"]:
                args["abort_reason"] = tree["abort_reason"]
            events.append({
                "name": "request",
                "ph": "X",
                "ts": tree["start"],
                "dur": max(0.0, tree["end"] - tree["start"]),
                "pid": 1,
                "tid": tree["rid"],
                "args": args,
            })
            for span in tree["spans"]:
                end = span["end"] if span["end"] is not None else tree["end"]
                events.append({
                    "name": span["name"],
                    "ph": "X",
                    "ts": span["start"],
                    "dur": max(0.0, end - span["start"]),
                    "pid": 1,
                    "tid": tree["rid"],
                    "args": span.get("attrs", {}),
                })
        document = {"traceEvents": events, "displayTimeUnit": "ms"}
        with open_destination(destination) as fh:
            json.dump(document, fh, sort_keys=True)
            fh.write("\n")
        return len(events)

    def __repr__(self):
        return (
            f"<SpanTracer every={self.sample_every} sampled={self.sampled} "
            f"done={len(self._done)} live={len(self._live)}>"
        )


class NullSpanTracer:
    """Disabled tracer: every seam call is a no-op, every view empty."""

    enabled = False
    sample_every = 0
    capacity = 0
    seen = 0
    sampled = 0
    completed_count = 0
    aborted_count = 0
    live = 0

    def nic_arrival(self, packet):
        pass

    def nic_delivered(self, packet, queue_index):
        pass

    def decision(self, packet, hook, outcome, value=None, fd=None, seq=None):
        pass

    def softirq_begin(self, packet, core_index, depth):
        pass

    def softirq_end(self, packet):
        pass

    def socket_enqueued(self, packet, sid, depth):
        pass

    def drop(self, packet, reason):
        pass

    def qdisc_enqueued(self, packet, layer, rank, backend):
        pass

    def qdisc_dequeued(self, packet):
        pass

    def switch_arrival(self, request):
        pass

    def switch_steer(self, request, machine, policy, resteer=False):
        pass

    def xnet_begin(self, request, direction, machine):
        pass

    def xnet_end(self, request):
        pass

    def machine_enqueued(self, request, machine, depth):
        pass

    def machine_requeued(self, request):
        pass

    def fleet_service_begin(self, request, machine):
        pass

    def fleet_service_end(self, request):
        pass

    def fleet_complete(self, request):
        pass

    def fleet_drop(self, request, reason):
        pass

    def thread_runnable(self, thread):
        pass

    def placement_begin(self, thread, core_id):
        pass

    def placement_abort(self, thread):
        pass

    def service_begin(self, thread, token):
        pass

    def service_end(self, thread, token):
        pass

    def trees(self, complete=None):
        return []

    def to_chrome_trace(self, destination):
        return 0

    def __len__(self):
        return 0

    def __repr__(self):
        return "<NullSpanTracer>"


#: Shared singleton used whenever span tracing is disabled.
NULL_SPANS = NullSpanTracer()
