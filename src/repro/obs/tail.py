"""Critical-path analysis: which span explains the p50 → p99 gap?

The span tracer (:mod:`repro.obs.spans`) records *what happened* to each
sampled request; this module computes *what matters*: it splits the
completed trees into a fast cohort (total latency ≤ the p50) and a slow
cohort (total ≥ the p99) and, for every span name, compares the mean
time spent in that span across the two cohorts.  The span with the
largest gap is the tail's critical path — "SCAN-Avoid collapses
``socket_wait``" as a computed table instead of folklore.

Entry points: :func:`critical_path` produces the analysis dict (JSON
safe), :func:`render_critical_path` the operator table
(``syrupctl tail`` and ``python -m repro figure_tail`` render it).
Percentiles use the nearest-rank method over the exact sampled totals,
so paired runs with identical simulations produce identical analyses.
"""

from repro.stats.results import Table

__all__ = ["critical_path", "percentile", "render_critical_path"]


def percentile(values, q):
    """Nearest-rank percentile of a sorted-or-not value list (0 < q ≤ 100)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil(n * q / 100)
    return ordered[int(rank) - 1]


def _span_totals(tree):
    """Per-name total duration inside one tree (repeat names summed)."""
    totals = {}
    end = tree["end"]
    for span in tree["spans"]:
        span_end = span["end"] if span["end"] is not None else end
        duration = max(0.0, span_end - span["start"])
        totals[span["name"]] = totals.get(span["name"], 0.0) + duration
    return totals


def critical_path(trees, lo_pct=50.0, hi_pct=99.0):
    """Split complete trees into latency cohorts; attribute the gap.

    Returns a JSON-safe dict::

        {
          "count": ...,                # complete trees analyzed
          "lo_pct": 50.0, "hi_pct": 99.0,
          "lo_us": ..., "hi_us": ...,  # the cohort boundary totals
          "lo_count": ..., "hi_count": ...,
          "gap_us": ...,               # hi cohort mean total - lo cohort mean
          "rows": [
            {"span": ..., "lo_mean_us": ..., "hi_mean_us": ...,
             "gap_us": ..., "gap_share": ...},   # sorted by gap desc
          ],
        }

    ``gap_share`` is each span's gap as a fraction of the total-latency
    gap between cohort means (can exceed 1.0 when spans overlap, e.g.
    ghOSt ``placement`` nested in ``runqueue_wait``).
    """
    complete = [t for t in trees if t.get("complete")]
    if not complete:
        return {
            "count": 0, "lo_pct": lo_pct, "hi_pct": hi_pct,
            "lo_us": 0.0, "hi_us": 0.0, "lo_count": 0, "hi_count": 0,
            "gap_us": 0.0, "rows": [],
        }
    totals = [t["end"] - t["start"] for t in complete]
    lo_edge = percentile(totals, lo_pct)
    hi_edge = percentile(totals, hi_pct)
    lo_cohort = [t for t, total in zip(complete, totals) if total <= lo_edge]
    hi_cohort = [t for t, total in zip(complete, totals) if total >= hi_edge]

    def cohort_means(cohort):
        sums = {}
        for tree in cohort:
            for name, duration in _span_totals(tree).items():
                sums[name] = sums.get(name, 0.0) + duration
        n = len(cohort) or 1
        return {name: total / n for name, total in sums.items()}

    lo_means = cohort_means(lo_cohort)
    hi_means = cohort_means(hi_cohort)
    lo_total = (sum(t["end"] - t["start"] for t in lo_cohort)
                / (len(lo_cohort) or 1))
    hi_total = (sum(t["end"] - t["start"] for t in hi_cohort)
                / (len(hi_cohort) or 1))
    total_gap = hi_total - lo_total
    rows = []
    for name in sorted(set(lo_means) | set(hi_means)):
        lo_mean = lo_means.get(name, 0.0)
        hi_mean = hi_means.get(name, 0.0)
        gap = hi_mean - lo_mean
        rows.append({
            "span": name,
            "lo_mean_us": lo_mean,
            "hi_mean_us": hi_mean,
            "gap_us": gap,
            "gap_share": (gap / total_gap) if total_gap > 0 else 0.0,
        })
    rows.sort(key=lambda r: (-r["gap_us"], r["span"]))
    return {
        "count": len(complete),
        "lo_pct": lo_pct,
        "hi_pct": hi_pct,
        "lo_us": lo_edge,
        "hi_us": hi_edge,
        "lo_count": len(lo_cohort),
        "hi_count": len(hi_cohort),
        "gap_us": total_gap,
        "rows": rows,
    }


def render_critical_path(analysis, title=None):
    """The analysis as an operator table (one row per span name)."""
    if title is None:
        title = (
            f"critical path: p{analysis['lo_pct']:g} vs "
            f"p{analysis['hi_pct']:g} cohorts"
        )
    table = Table(
        title,
        ["span", "p50_mean_us", "p99_mean_us", "gap_us", "gap_share_pct"],
    )
    for row in analysis["rows"]:
        table.add(
            span=row["span"],
            p50_mean_us=row["lo_mean_us"],
            p99_mean_us=row["hi_mean_us"],
            gap_us=row["gap_us"],
            gap_share_pct=100.0 * row["gap_share"],
        )
    footer = (
        f"{analysis['count']} sampled requests; "
        f"p{analysis['lo_pct']:g} <= {analysis['lo_us']:.1f}us "
        f"(n={analysis['lo_count']}), "
        f"p{analysis['hi_pct']:g} >= {analysis['hi_us']:.1f}us "
        f"(n={analysis['hi_count']}); "
        f"cohort-mean gap {analysis['gap_us']:.1f}us"
    )
    return table.render() + "\n" + footer
