"""Per-tenant resource accounting: who consumed what, at which layer.

Every metric, sketch and span in the base observability tiers is
*aggregate* — fine for one application, useless for auditing the paper's
isolation claim when several untrusting tenants share a machine.  The
:class:`TenantAccountant` closes that gap: it rides the same datapath
seams as the span tracer (NIC arrival/IRQ delivery, softirq begin/end,
socket enqueue/pop, qdisc offer/take, thread wake/service) and books
every microsecond into the responsible tenant's :class:`TenantLedger`:

- ``cpu_service_us`` — application CPU time (the modeled item cost,
  charged at completion so preemption never double-counts),
- ``policy_exec_us`` — the tenant's *own* policy execution time charged
  by the hook sites (the Syrup overhead each tenant pays for itself),
- per-layer queueing delay (``nic`` / ``softirq`` / ``socket`` /
  ``qdisc`` / ``runqueue``) with event counts, and
- ``drops`` by reason plus ``completed`` items.

Tenancy is carried by ``Request.tenant`` (a short string stamped by the
load generator, or propagated down from the ToR's per-port owners at
fleet scale).  Requests without a tenant are invisible to the
accountant: every seam returns before touching any structure, so a
live accountant over a tenant-less run books nothing.

Cross-tenant *attribution* is delegated to the companion module: each
softirq/socket queueing span also snapshots which tenants' work was
ahead in that queue at enqueue time, and on dequeue the measured wait
is charged to them pro rata in a pairwise
:class:`repro.obs.interference.BlameMatrix` ("tenant A imposed X µs on
tenant B at the socket layer").  See docs/multitenancy.md for the math.

Null-twin discipline (the registry/spans contract): machines built
without ``accounting=True`` hold the shared :data:`NULL_ACCOUNTING`
singleton, every seam is a no-op method on it, zero accounting objects
are allocated, and simulation output stays bit-identical — the audit
test in ``tests/test_accounting.py`` holds this line.  The accountant
itself only ever *reads* the datapath (timestamps, queue mirrors), so
enabling it changes no scheduling decision either: a run with
accounting on is bit-identical to the same run with it off.
"""

from repro.obs.interference import BlameMatrix

__all__ = [
    "LAYERS",
    "NULL_ACCOUNTING",
    "NullTenantAccountant",
    "TenantAccountant",
    "TenantLedger",
]

#: Queueing layers a ledger itemizes, in datapath order.  ``qdisc`` is
#: the time inside a programmable discipline's buffer and *overlaps* the
#: surrounding nic/socket wait (it is a sub-span, not an addend).
LAYERS = ("nic", "softirq", "socket", "qdisc", "runqueue")


class TenantLedger:
    """One tenant's resource consumption on one machine."""

    __slots__ = ("tenant", "cpu_service_us", "policy_exec_us", "completed",
                 "wait_us", "wait_events", "drops", "core_occupancy_us")

    def __init__(self, tenant):
        self.tenant = tenant
        self.cpu_service_us = 0.0
        self.policy_exec_us = 0.0
        self.completed = 0
        self.wait_us = {layer: 0.0 for layer in LAYERS}
        self.wait_events = {layer: 0 for layer in LAYERS}
        self.drops = {}  # reason -> count
        # Core-seconds held via elastic grants (repro.kernel.arbiter
        # books closed occupancy segments here); 0.0 without an arbiter.
        self.core_occupancy_us = 0.0

    def charge_wait(self, layer, us):
        self.wait_us[layer] += us
        self.wait_events[layer] += 1

    def total_wait_us(self):
        """Additive queueing delay (qdisc excluded: it is a sub-span)."""
        return sum(
            us for layer, us in self.wait_us.items() if layer != "qdisc"
        )

    def total_drops(self):
        return sum(self.drops.values())

    def as_dict(self):
        """JSON-safe row (``syrupctl tenants --json`` / syrupd view)."""
        return {
            "tenant": self.tenant,
            "cpu_service_us": self.cpu_service_us,
            "policy_exec_us": self.policy_exec_us,
            "completed": self.completed,
            "wait_us": dict(self.wait_us),
            "wait_events": dict(self.wait_events),
            "drops": dict(sorted(self.drops.items())),
            "core_occupancy_us": self.core_occupancy_us,
        }

    def __repr__(self):
        return (
            f"<TenantLedger {self.tenant} cpu={self.cpu_service_us:.0f}us "
            f"wait={self.total_wait_us():.0f}us drops={self.total_drops()}>"
        )


def _tenant_of(packet):
    request = packet.request
    if request is None:
        return None, None
    return request, request.tenant


class TenantAccountant:
    """Live per-tenant cost ledgers + blame feed over the span seams.

    In-flight state is keyed by request *object identity* (``id()``),
    never by rid — rids restart at zero per generator, and a
    multi-tenant machine runs one generator per tenant.  Entries are
    removed on dequeue or drop, before the request object can be
    collected, so ids are never stale.
    """

    enabled = True

    def __init__(self, clock):
        self._clock = clock
        self.ledgers = {}           # tenant -> TenantLedger
        self.blame = BlameMatrix()
        # In-flight queueing spans, keyed by id(request).
        self._nic = {}              # id -> enqueue ts
        self._softirq = {}          # id -> (ts, ahead, core_index)
        self._socket = {}           # id -> (ts, ahead, sid)
        self._qdisc = {}            # id -> enqueue ts
        # Occupancy mirrors for blame snapshots: who is in each queue
        # right now, with the weight their presence imposes on arrivals.
        self._cores = {}            # core_index -> {id: tenant}
        self._sockq = {}            # sid -> {id: (tenant, weight)}
        # Thread-layer state: wake timestamps (runqueue wait) and the
        # item cost captured at service begin (charged at completion).
        self._wakes = {}            # tid -> ts
        self._service = {}          # tid -> (tenant, cost_us)

    # ------------------------------------------------------------------
    def ledger(self, tenant):
        led = self.ledgers.get(tenant)
        if led is None:
            led = self.ledgers[tenant] = TenantLedger(tenant)
        return led

    def book_core_occupancy(self, tenant, us):
        """Credit ``us`` of held-core time to ``tenant`` (the arbiter
        calls this when an occupancy segment closes)."""
        if tenant is None or us <= 0.0:
            return
        self.ledger(tenant).core_occupancy_us += us

    def _charge_blame(self, victim, layer, wait_us, ahead):
        """Split a measured wait across the tenants whose work was ahead
        at enqueue time, pro rata by weight (self-queueing charges the
        diagonal)."""
        if wait_us <= 0.0 or not ahead:
            return
        total = 0.0
        for weight in ahead.values():
            total += weight
        if total <= 0.0:
            return
        scale = wait_us / total
        for aggressor, weight in ahead.items():
            self.blame.charge(victim, aggressor, layer, weight * scale)

    # -- NIC ------------------------------------------------------------
    def nic_arrival(self, packet):
        request, tenant = _tenant_of(packet)
        if tenant is None:
            return
        self._nic[id(request)] = self._clock()

    def nic_delivered(self, packet):
        request, tenant = _tenant_of(packet)
        if tenant is None:
            return
        ts = self._nic.pop(id(request), None)
        if ts is not None:
            self.ledger(tenant).charge_wait("nic", self._clock() - ts)

    # -- softirq --------------------------------------------------------
    def softirq_begin(self, packet, core_index):
        request, tenant = _tenant_of(packet)
        if tenant is None:
            return
        mirror = self._cores.setdefault(core_index, {})
        ahead = {}
        # Softirq work is near-uniform per packet: weight each occupant 1.
        for occupant in mirror.values():
            ahead[occupant] = ahead.get(occupant, 0.0) + 1.0
        self._softirq[id(request)] = (self._clock(), ahead, core_index)
        mirror[id(request)] = tenant

    def softirq_end(self, packet):
        request, tenant = _tenant_of(packet)
        if tenant is None:
            return
        entry = self._softirq.pop(id(request), None)
        if entry is None:
            return
        ts, ahead, core_index = entry
        mirror = self._cores.get(core_index)
        if mirror is not None:
            mirror.pop(id(request), None)
        wait = self._clock() - ts
        self.ledger(tenant).charge_wait("softirq", wait)
        self._charge_blame(tenant, "softirq", wait, ahead)

    # -- socket backlog -------------------------------------------------
    def socket_enqueued(self, packet, socket):
        request, tenant = _tenant_of(packet)
        if tenant is None:
            return
        mirror = self._sockq.setdefault(socket.sid, {})
        ahead = {}
        # Weight queued occupants by their service demand: that is the
        # CPU time the arrival must wait out before its own turn.
        for occupant, weight in mirror.values():
            ahead[occupant] = ahead.get(occupant, 0.0) + weight
        thread = socket.thread
        if thread is not None and thread.token is not None:
            in_service = getattr(thread.token, "tenant", None)
            if in_service is not None:
                ahead[in_service] = (
                    ahead.get(in_service, 0.0) + max(thread.remaining, 0.0)
                )
        self._socket[id(request)] = (self._clock(), ahead, socket.sid)
        mirror[id(request)] = (tenant, request.service_us)

    def socket_dequeued(self, packet, socket):
        request, tenant = _tenant_of(packet)
        if tenant is None:
            return
        entry = self._socket.pop(id(request), None)
        if entry is None:
            return
        ts, ahead, sid = entry
        mirror = self._sockq.get(sid)
        if mirror is not None:
            mirror.pop(id(request), None)
        wait = self._clock() - ts
        self.ledger(tenant).charge_wait("socket", wait)
        self._charge_blame(tenant, "socket", wait, ahead)

    # -- qdisc (sub-span of the surrounding nic/socket wait) ------------
    def qdisc_enqueued(self, packet):
        request, tenant = _tenant_of(packet)
        if tenant is None:
            return
        self._qdisc[id(request)] = self._clock()

    def qdisc_dequeued(self, packet):
        request, tenant = _tenant_of(packet)
        if tenant is None:
            return
        ts = self._qdisc.pop(id(request), None)
        if ts is not None:
            self.ledger(tenant).charge_wait("qdisc", self._clock() - ts)

    # -- thread layer ---------------------------------------------------
    def thread_runnable(self, thread):
        self._wakes[thread.tid] = self._clock()

    def service_begin(self, thread, token):
        ts = self._wakes.pop(thread.tid, None)
        tenant = getattr(token, "tenant", None)
        if tenant is None:
            return
        if ts is not None:
            self.ledger(tenant).charge_wait(
                "runqueue", self._clock() - ts
            )
        # Capture the item's modeled cost now; charge it at completion
        # so preemption/timeslicing never double-counts CPU time.
        self._service[thread.tid] = (tenant, thread.remaining)

    def service_end(self, thread, token):
        entry = self._service.pop(thread.tid, None)
        tenant = getattr(token, "tenant", None)
        if tenant is None:
            return
        led = self.ledger(tenant)
        led.completed += 1
        if entry is not None:
            led.cpu_service_us += entry[1]

    # -- hook dispatch --------------------------------------------------
    def policy_exec(self, packet, cost_us):
        if cost_us <= 0.0:
            return
        request, tenant = _tenant_of(packet)
        if tenant is None:
            return
        self.ledger(tenant).policy_exec_us += cost_us

    # -- drops ----------------------------------------------------------
    def drop(self, packet, reason):
        request, tenant = _tenant_of(packet)
        if tenant is None:
            return
        led = self.ledger(tenant)
        led.drops[reason] = led.drops.get(reason, 0) + 1
        # Retire any open queueing span (a qdisc eviction removes an
        # element that is still mirrored in its socket's occupancy).
        rid = id(request)
        self._nic.pop(rid, None)
        self._qdisc.pop(rid, None)
        entry = self._softirq.pop(rid, None)
        if entry is not None:
            mirror = self._cores.get(entry[2])
            if mirror is not None:
                mirror.pop(rid, None)
        entry = self._socket.pop(rid, None)
        if entry is not None:
            mirror = self._sockq.get(entry[2])
            if mirror is not None:
                mirror.pop(rid, None)

    # ------------------------------------------------------------------
    # Views / export
    # ------------------------------------------------------------------
    def tenants(self):
        return sorted(self.ledgers)

    def snapshot(self):
        """JSON-safe document: ledgers + the pairwise blame matrix."""
        return {
            "tenants": [
                self.ledgers[name].as_dict() for name in sorted(self.ledgers)
            ],
            "blame": self.blame.matrix(),
        }

    def publish(self, registry):
        """Mirror ledger totals into registry gauges.

        Series are scoped ``tenant:<name>`` — the OpenMetrics exporter
        splits that into ``scope="tenant",tenant="<name>"`` labels (see
        repro.obs.export).  Pure reads; call at view/export time so the
        datapath never pays for string formatting.
        """
        for name in sorted(self.ledgers):
            led = self.ledgers[name]
            scope = f"tenant:{name}"
            registry.gauge("tenants", scope, "cpu_service_us").set(
                led.cpu_service_us
            )
            registry.gauge("tenants", scope, "policy_exec_us").set(
                led.policy_exec_us
            )
            registry.gauge("tenants", scope, "completed").set(led.completed)
            registry.gauge("tenants", scope, "drops").set(led.total_drops())
            for layer in LAYERS:
                registry.gauge("tenants", scope, f"{layer}_wait_us").set(
                    led.wait_us[layer]
                )
            registry.gauge("tenants", scope, "imposed_us").set(
                self.blame.imposed_by(name)
            )
            registry.gauge("tenants", scope, "suffered_us").set(
                self.blame.suffered_by(name)
            )

    def __repr__(self):
        return f"<TenantAccountant tenants={len(self.ledgers)}>"


class NullTenantAccountant:
    """Disabled accountant: every seam is a no-op, views are empty."""

    enabled = False
    ledgers = {}

    def ledger(self, tenant):
        return None

    def nic_arrival(self, packet):
        pass

    def nic_delivered(self, packet):
        pass

    def softirq_begin(self, packet, core_index):
        pass

    def softirq_end(self, packet):
        pass

    def socket_enqueued(self, packet, socket):
        pass

    def socket_dequeued(self, packet, socket):
        pass

    def qdisc_enqueued(self, packet):
        pass

    def qdisc_dequeued(self, packet):
        pass

    def book_core_occupancy(self, tenant, us):
        pass

    def thread_runnable(self, thread):
        pass

    def service_begin(self, thread, token):
        pass

    def service_end(self, thread, token):
        pass

    def policy_exec(self, packet, cost_us):
        pass

    def drop(self, packet, reason):
        pass

    def tenants(self):
        return []

    def snapshot(self):
        return {"tenants": [], "blame": {}}

    def publish(self, registry):
        pass

    def __repr__(self):
        return "<NullTenantAccountant>"


#: Shared disabled instance — the default for every datapath object.
NULL_ACCOUNTING = NullTenantAccountant()
