"""The flight recorder: registry metrics sampled over simulated time.

Totals (:mod:`repro.obs.registry`) answer "how much, ever?"; Syrup's
headline results are *dynamics* — Figure 8's mid-run policy switch and
Figure 2's hash-imbalance drops only make sense as metrics **over sim
time**.  A :class:`FlightRecorder` samples a
:class:`~repro.obs.registry.MetricsRegistry` on a fixed simulated-time
interval and keeps, per metric series, a bounded ring of samples:

- **counters** — the per-interval *delta* (turn into a rate with
  :meth:`FlightRecorder.rate_per_s` or read raw deltas),
- **gauges** — the value at sample time,
- **histograms / sketches** — the per-interval observation-count delta
  plus the cumulative p50/p99 at sample time (sketch percentiles carry
  the DDSketch relative-error guarantee; see :mod:`repro.obs.sketch`).

Determinism contract (same as the rest of :mod:`repro.obs`): sampling
rides the engine's event loop but only *reads* — it draws no randomness,
mutates no simulation state, and re-arms itself only while other events
remain, so the run still terminates and every simulation output is
bit-identical with the recorder on or off.  (Recorder ticks do advance
``engine.now`` to the final tick instant and count in
``events_dispatched``; no workload-visible quantity depends on either.)

Disabled machines get the :data:`NULL_RECORDER` singleton, whose every
method is a no-op — the :data:`~repro.obs.registry.NULL_REGISTRY`
pattern.  Rendering lives in :func:`repro.syrupctl.render_timeline`
(``syrupctl timeline``).
"""

from collections import deque

__all__ = [
    "FlightRecorder",
    "NULL_RECORDER",
    "NullFlightRecorder",
    "SeriesSamples",
]

DEFAULT_INTERVAL_US = 1_000.0
DEFAULT_CAPACITY = 1_024


class SeriesSamples:
    """One metric's bounded sample ring: ``(ts, value)`` pairs.

    ``value`` is a number for counter deltas and gauges, and a dict
    ``{"count": delta, "p50": ..., "p99": ...}`` for histograms.
    """

    __slots__ = ("key", "kind", "samples")

    def __init__(self, key, kind, capacity):
        self.key = key
        self.kind = kind
        self.samples = deque(maxlen=capacity)

    def times(self):
        return [t for t, _v in self.samples]

    def values(self, field=None):
        """Sample values; ``field`` picks one key out of histogram dicts."""
        if field is None:
            return [v for _t, v in self.samples]
        return [v[field] for _t, v in self.samples]

    def __len__(self):
        return len(self.samples)

    def __repr__(self):
        return (
            f"<SeriesSamples {'/'.join(self.key)} kind={self.kind} "
            f"n={len(self.samples)}>"
        )


class FlightRecorder:
    """Samples a metrics registry every ``interval_us`` of simulated time.

    Arm it with :meth:`arm` (``Machine.run`` does this automatically for
    the machine-owned recorder); each tick samples every registered
    series, then re-arms only while the engine still has other pending
    events, so a drained heap ends the run exactly as before.
    """

    enabled = True

    def __init__(self, registry, engine, interval_us=DEFAULT_INTERVAL_US,
                 capacity=DEFAULT_CAPACITY):
        if interval_us <= 0:
            raise ValueError(f"interval_us must be positive, got {interval_us}")
        self.registry = registry
        self.engine = engine
        self.interval_us = float(interval_us)
        self.capacity = capacity
        self.samples_taken = 0
        self._series = {}       # key -> SeriesSamples
        self._last_cumulative = {}  # key -> last counter value / hist count
        self._armed = None      # the pending tick Event, if any
        #: Zero-arg callables run at the start of every sample(): the
        #: queue-state telemetry hook (Machine installs a probe that
        #: reads instantaneous queue depths into registry gauges).
        #: Probes must only *read* simulation state — the determinism
        #: contract above extends to them.
        self.probes = []

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def arm(self):
        """Schedule the next tick (idempotent; safe to call before runs)."""
        if self._armed is not None and not self._armed.cancelled:
            return
        self._armed = self.engine.schedule(self.interval_us, self._tick)

    def disarm(self):
        """Cancel the pending tick, if any."""
        if self._armed is not None:
            self._armed.cancel()
            self._armed = None

    def _tick(self):
        self._armed = None
        self.sample()
        # Re-arm only while other events remain: an idle heap must drain
        # so Machine.run() terminates.  len() over-approximates (cancelled
        # events linger until popped), costing at most a few empty ticks.
        if len(self.engine._heap) > 0:
            self.arm()

    def sample(self):
        """Take one sample of every registered series, stamped now."""
        for probe in self.probes:
            probe()
        now = self.engine.now
        self.samples_taken += 1
        for key, metric in self.registry._series.items():
            kind = metric.kind
            series = self._series.get(key)
            if series is None:
                series = SeriesSamples(key, kind, self.capacity)
                self._series[key] = series
            if kind == "counter":
                last = self._last_cumulative.get(key, 0)
                self._last_cumulative[key] = metric.value
                series.samples.append((now, metric.value - last))
            elif kind == "gauge":
                series.samples.append((now, metric.value))
            else:  # histogram or sketch: both expose count/percentile
                last = self._last_cumulative.get(key, 0)
                self._last_cumulative[key] = metric.count
                series.samples.append((now, {
                    "count": metric.count - last,
                    "p50": metric.percentile(50.0),
                    "p99": metric.percentile(99.0),
                }))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def keys(self):
        """All recorded series keys, sorted."""
        return sorted(self._series)

    def series(self, app, scope, name):
        """The :class:`SeriesSamples` at a key, or None."""
        return self._series.get((app, scope, name))

    def points(self, app, scope, name, field=None):
        """``[(ts, value)]`` for one series (empty when unrecorded)."""
        series = self._series.get((app, scope, name))
        if series is None:
            return []
        if field is None:
            return list(series.samples)
        return [(t, v[field]) for t, v in series.samples]

    def rate_per_s(self, app, scope, name):
        """Counter series as ``[(ts, events-per-second)]``."""
        scale = 1e6 / self.interval_us  # us intervals -> per-second
        return [(t, d * scale) for t, d in self.points(app, scope, name)]

    def snapshot(self):
        """JSON-safe dump: one row per series with its sample list."""
        rows = []
        for key in sorted(self._series):
            series = self._series[key]
            rows.append({
                "app": key[0],
                "scope": key[1],
                "metric": key[2],
                "kind": series.kind,
                "interval_us": self.interval_us,
                "samples": [[t, v] for t, v in series.samples],
            })
        return rows

    def __len__(self):
        return len(self._series)

    def __repr__(self):
        return (
            f"<FlightRecorder interval={self.interval_us:g}us "
            f"series={len(self._series)} ticks={self.samples_taken}>"
        )


class NullFlightRecorder:
    """Disabled recorder: arming and sampling are no-ops, views empty."""

    enabled = False
    interval_us = 0.0
    capacity = 0
    samples_taken = 0
    probes = ()

    def arm(self):
        pass

    def disarm(self):
        pass

    def sample(self):
        pass

    def keys(self):
        return []

    def series(self, app, scope, name):
        return None

    def points(self, app, scope, name, field=None):
        return []

    def rate_per_s(self, app, scope, name):
        return []

    def snapshot(self):
        return []

    def __len__(self):
        return 0

    def __repr__(self):
        return "<NullFlightRecorder>"


#: Shared singleton used whenever time-series recording is disabled.
NULL_RECORDER = NullFlightRecorder()
