"""Metric primitives keyed by ``(app, scope, metric)``.

Scheduler evaluation lives or dies on cheap, always-on per-decision
counters (RackSched, Eiffel): "is my policy even running?" should be a
counter read, not a debugger session.  This module provides the three
classic metric kinds —

- :class:`Counter` — monotonically increasing totals (schedule() calls,
  PASS/DROP decisions, map operations, verifier rejections),
- :class:`Gauge` — last-written values (program sizes, JIT code size),
- :class:`Histogram` — geometric-bucket distributions with approximate
  percentiles (map op latencies, batch sizes),

plus a fourth, :class:`~repro.obs.sketch.Sketch` — a mergeable
DDSketch-style streaming quantile sketch with a guaranteed relative
error bound (registered via ``registry.sketch(...)``; see
:mod:`repro.obs.sketch`) —

all registered in a :class:`MetricsRegistry` under a three-part key:
the owning **app**, a **scope** (a hook name like ``socket_select``, or a
subsystem like ``maps`` / ``syrupd`` / ``thread_sched``), and the metric
**name**.  Every update stamps the metric with the *simulated* clock, so
"when did this last move?" is answerable in sim time.

Zero-cost-when-disabled contract: instrumented code paths hold metric
objects obtained from a registry.  When observability is off they get the
:data:`NULL_METRIC` singleton from :data:`NULL_REGISTRY` instead — every
mutator is a no-op ``pass`` — so the datapath never branches on an
"enabled" flag and simulation results are bit-identical either way (no
RNG draws, no event scheduling, no behavioral change).
"""

import math

from repro.obs.sketch import Sketch

__all__ = [
    "CardinalityError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "NullMetric",
    "NullRegistry",
]

#: Number of geometric histogram buckets; bucket i covers values in
#: [2**(i-1), 2**i) with bucket 0 holding everything below 1.0.
N_BUCKETS = 64


def _zero_clock():
    return 0.0


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("key", "value", "updated_at", "_clock")

    def __init__(self, key, clock):
        self.key = key
        self.value = 0
        self.updated_at = None
        self._clock = clock

    def inc(self, n=1):
        self.value += n
        self.updated_at = self._clock()

    def __repr__(self):
        return f"<Counter {'/'.join(self.key)}={self.value}>"


class Gauge:
    """A last-written value."""

    kind = "gauge"
    __slots__ = ("key", "value", "updated_at", "_clock")

    def __init__(self, key, clock):
        self.key = key
        self.value = 0
        self.updated_at = None
        self._clock = clock

    def set(self, value):
        self.value = value
        self.updated_at = self._clock()

    def __repr__(self):
        return f"<Gauge {'/'.join(self.key)}={self.value}>"


class Histogram:
    """Geometric-bucket distribution (powers of two, 64 buckets).

    Exact count/sum/min/max; percentiles are approximate — the bucket
    upper edge — which is the standard trade for O(1) observation and a
    fixed footprint (how Prometheus and HdrHistogram-style recorders
    behave, coarser).
    """

    kind = "histogram"
    __slots__ = ("key", "count", "sum", "vmin", "vmax", "buckets",
                 "updated_at", "_clock")

    def __init__(self, key, clock):
        self.key = key
        self.count = 0
        self.sum = 0.0
        self.vmin = None
        self.vmax = None
        self.buckets = [0] * N_BUCKETS
        self.updated_at = None
        self._clock = clock

    def observe(self, value):
        self.count += 1
        self.sum += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        if value < 1.0:
            index = 0
        else:
            index = min(N_BUCKETS - 1, int(math.log2(value)) + 1)
        self.buckets[index] += 1
        self.updated_at = self._clock()

    def percentile(self, q):
        """Approximate percentile-q value (bucket upper edge)."""
        if self.count == 0:
            return 0.0
        target = self.count * q / 100.0
        seen = 0
        for index, n in enumerate(self.buckets):
            seen += n
            if seen >= target:
                upper = 1.0 if index == 0 else float(2 ** index)
                # never report beyond the exactly-tracked extremes
                return min(upper, self.vmax)
        return self.vmax  # pragma: no cover - seen always reaches count

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def summary(self):
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
            "min": self.vmin if self.vmin is not None else 0.0,
            "max": self.vmax if self.vmax is not None else 0.0,
        }

    def __repr__(self):
        return f"<Histogram {'/'.join(self.key)} n={self.count}>"


class NullMetric:
    """No-op stand-in for every metric kind (disabled observability)."""

    kind = "null"
    __slots__ = ()
    key = ("(null)", "(null)", "(null)")
    value = 0
    count = 0
    updated_at = None

    def inc(self, n=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    def percentile(self, q):
        return 0.0

    def quantile(self, p):
        return 0.0

    def summary(self):
        return {}

    def __repr__(self):
        return "<NullMetric>"


#: Shared singleton handed out by :class:`NullRegistry`.
NULL_METRIC = NullMetric()


class CardinalityError(RuntimeError):
    """The registry refused to create yet another metric series.

    Unbounded label cardinality is the classic way always-on metrics
    stop being cheap; the cap turns a leak (e.g. a per-request label)
    into a loud error instead of a slow death.
    """


class MetricsRegistry:
    """Counters/gauges/histograms keyed by ``(app, scope, metric)``.

    ``clock`` is a zero-argument callable returning the current simulated
    time in microseconds (``lambda: engine.now``); metric updates are
    stamped with it.
    """

    enabled = True
    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram,
              "sketch": Sketch}

    def __init__(self, clock=None, max_series=4096):
        self.clock = clock if clock is not None else _zero_clock
        self.max_series = max_series
        self._series = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, kind, app, scope, name):
        key = (app, scope, name)
        metric = self._series.get(key)
        if metric is not None:
            if metric.kind != kind:
                raise TypeError(
                    f"metric {key} already registered as {metric.kind}, "
                    f"requested {kind}"
                )
            return metric
        if len(self._series) >= self.max_series:
            raise CardinalityError(
                f"metric series limit ({self.max_series}) reached "
                f"registering {key}; a label is probably unbounded"
            )
        metric = self._KINDS[kind](key, self.clock)
        self._series[key] = metric
        return metric

    def counter(self, app, scope, name):
        return self._get_or_create("counter", app, scope, name)

    def gauge(self, app, scope, name):
        return self._get_or_create("gauge", app, scope, name)

    def histogram(self, app, scope, name):
        return self._get_or_create("histogram", app, scope, name)

    def sketch(self, app, scope, name):
        """A mergeable streaming quantile sketch (see repro.obs.sketch)."""
        return self._get_or_create("sketch", app, scope, name)

    # ------------------------------------------------------------------
    def get(self, app, scope, name):
        """The metric at a key, or None (never creates)."""
        return self._series.get((app, scope, name))

    def value(self, app, scope, name, default=None):
        """Counter/gauge value (histograms: observation count) at a key."""
        metric = self._series.get((app, scope, name))
        if metric is None:
            return default
        if metric.kind in ("histogram", "sketch"):
            return metric.count
        return metric.value

    def values_for(self, app, scope):
        """``{name: value}`` for every metric under (app, scope)."""
        out = {}
        for (m_app, m_scope, name), metric in self._series.items():
            if m_app == app and m_scope == scope:
                out[name] = (
                    metric.summary()
                    if metric.kind in ("histogram", "sketch")
                    else metric.value
                )
        return out

    def series(self):
        """All registered keys, sorted."""
        return sorted(self._series)

    def snapshot(self):
        """One plain-dict row per series, sorted by key (JSON-safe)."""
        rows = []
        for key in sorted(self._series):
            metric = self._series[key]
            row = {
                "app": key[0],
                "scope": key[1],
                "metric": key[2],
                "kind": metric.kind,
                "updated_at": metric.updated_at,
            }
            if metric.kind in ("histogram", "sketch"):
                row.update(metric.summary())
            else:
                row["value"] = metric.value
            rows.append(row)
        return rows

    def __len__(self):
        return len(self._series)


class NullRegistry:
    """Disabled registry: every accessor returns :data:`NULL_METRIC`."""

    enabled = False

    def counter(self, app, scope, name):
        return NULL_METRIC

    def gauge(self, app, scope, name):
        return NULL_METRIC

    def histogram(self, app, scope, name):
        return NULL_METRIC

    def sketch(self, app, scope, name):
        return NULL_METRIC

    def get(self, app, scope, name):
        return None

    def value(self, app, scope, name, default=None):
        return default

    def values_for(self, app, scope):
        return {}

    def series(self):
        return []

    def snapshot(self):
        return []

    def __len__(self):
        return 0


#: Shared singleton used whenever observability is disabled.
NULL_REGISTRY = NullRegistry()
