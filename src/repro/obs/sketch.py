"""Streaming quantile sketches and windowed estimators.

The recorder tier (PR 2) answers "what happened?"; closing the loop
(ROADMAP: adaptive scheduling) needs *online* statistics a controller
can read every few milliseconds of sim time without the memory cost of
retaining per-request samples.  Three primitives live here:

- :class:`DDSketch` — a relative-error streaming quantile sketch in the
  style of DDSketch (Masson et al., VLDB '19): logarithmic buckets with
  ratio ``gamma = (1+alpha)/(1-alpha)`` guarantee every quantile
  estimate ``est`` satisfies ``|est - true| <= alpha * true``, and two
  sketches over disjoint streams **merge** by bucket-count addition into
  exactly the sketch of the concatenated stream.  That mergeability is
  what lets per-machine latency sketches roll up through the PR-6 sync
  bus to a rack-level view.
- :class:`WindowedRate` — events-per-second over a sliding sim-time
  window, bucketed so old observations age out in O(1).
- :class:`Ewma` — an exponentially weighted moving average with a
  sim-time half-life (decay follows the *clock*, not the update count,
  so bursty streams do not skew the smoothing).

:class:`Sketch` adapts :class:`DDSketch` to the metrics-registry
contract (``key`` / ``kind`` / ``observe`` / ``updated_at``); the
registry exposes it via ``registry.sketch(app, scope, name)`` and the
flight recorder and OpenMetrics exporter understand the kind natively.
Like every obs primitive, disabled machines see only the registry's
``NULL_METRIC`` — no sketch object is ever allocated on a disabled
datapath.
"""

import math

__all__ = [
    "DDSketch",
    "DEFAULT_ALPHA",
    "Ewma",
    "Sketch",
    "WindowedRate",
]

#: Default relative-error bound for registry-created sketches: a
#: reported p99 of 1000us is guaranteed within [990, 1010]us of truth.
DEFAULT_ALPHA = 0.01


class DDSketch:
    """Mergeable relative-error quantile sketch (log-bucketed).

    Values ``<= 0`` land in a dedicated zero bucket (latencies and queue
    depths are non-negative; an exact-zero stream must still report 0).
    Positive values map to bucket ``ceil(log_gamma(v))`` and are
    reported back as the bucket midpoint ``2*gamma^i / (gamma+1)``,
    which is within ``alpha`` relative error of every value in the
    bucket.  Quantiles use the nearest-rank convention so tests can
    compare directly against a sorted-sample oracle.
    """

    __slots__ = ("alpha", "gamma", "_multiplier", "count", "sum",
                 "vmin", "vmax", "zero_count", "buckets")

    def __init__(self, alpha=DEFAULT_ALPHA):
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self.gamma = (1.0 + alpha) / (1.0 - alpha)
        self._multiplier = 1.0 / math.log(self.gamma)
        self.count = 0
        self.sum = 0.0
        self.vmin = None
        self.vmax = None
        self.zero_count = 0
        self.buckets = {}   # bucket index -> count

    # ------------------------------------------------------------------
    def add(self, value, n=1):
        """Fold ``n`` observations of ``value`` into the sketch."""
        self.count += n
        self.sum += value * n
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        if value <= 0.0:
            self.zero_count += n
            return
        index = math.ceil(math.log(value) * self._multiplier)
        self.buckets[index] = self.buckets.get(index, 0) + n

    def quantile(self, p):
        """The value at quantile ``p`` in [0, 1] (nearest-rank)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {p}")
        if self.count == 0:
            return 0.0
        # Nearest-rank: the ceil(p*n)-th smallest value (1-based), with
        # the rank floored at 1 so p=0 reads the minimum.
        rank = max(1, math.ceil(p * self.count))
        if rank <= self.zero_count:
            return min(0.0, self.vmax)
        seen = self.zero_count
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                estimate = (2.0 * self.gamma ** index) / (self.gamma + 1.0)
                # Exact extremes are tracked; never report beyond them.
                return min(max(estimate, self.vmin), self.vmax)
        return self.vmax  # pragma: no cover - seen always reaches count

    def percentile(self, q):
        """The value at percentile ``q`` in [0, 100]."""
        return self.quantile(q / 100.0)

    # ------------------------------------------------------------------
    def merge(self, other):
        """Fold ``other`` into this sketch (bucket-count addition).

        Merging sketches over disjoint streams yields the sketch of the
        concatenated stream exactly; both must share ``alpha``.
        """
        if not isinstance(other, DDSketch):
            raise TypeError(f"can only merge DDSketch, got {type(other)!r}")
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with different alpha "
                f"({self.alpha} vs {other.alpha})"
            )
        self.count += other.count
        self.sum += other.sum
        if other.vmin is not None and (self.vmin is None
                                       or other.vmin < self.vmin):
            self.vmin = other.vmin
        if other.vmax is not None and (self.vmax is None
                                       or other.vmax > self.vmax):
            self.vmax = other.vmax
        self.zero_count += other.zero_count
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        return self

    # ------------------------------------------------------------------
    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def summary(self):
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
            "min": self.vmin if self.vmin is not None else 0.0,
            "max": self.vmax if self.vmax is not None else 0.0,
        }

    def __len__(self):
        return len(self.buckets) + (1 if self.zero_count else 0)

    def __repr__(self):
        return (
            f"<DDSketch alpha={self.alpha:g} n={self.count} "
            f"buckets={len(self.buckets)}>"
        )


class Sketch(DDSketch):
    """A :class:`DDSketch` wearing the metrics-registry interface.

    Registered under kind ``"sketch"``; the flight recorder samples its
    p50/p99 per tick and the OpenMetrics exporter emits it as a
    ``summary`` family with ``quantile`` labels.
    """

    kind = "sketch"
    __slots__ = ("key", "updated_at", "_clock")

    def __init__(self, key, clock, alpha=DEFAULT_ALPHA):
        super().__init__(alpha=alpha)
        self.key = key
        self.updated_at = None
        self._clock = clock

    def observe(self, value):
        self.add(value)
        self.updated_at = self._clock()

    def __repr__(self):
        return f"<Sketch {'/'.join(self.key)} n={self.count}>"


class WindowedRate:
    """Events-per-second over a sliding sim-time window.

    Observations land in ``buckets`` fixed-width time bins; bins older
    than the window are discarded lazily on the next read or write, so
    the structure is O(buckets) regardless of event rate.
    """

    __slots__ = ("clock", "window_us", "_width", "_bins")

    def __init__(self, clock, window_us=100_000.0, buckets=20):
        if window_us <= 0:
            raise ValueError(f"window_us must be positive, got {window_us}")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.clock = clock
        self.window_us = float(window_us)
        self._width = self.window_us / buckets
        self._bins = {}   # bin index -> count

    def _evict(self, now):
        horizon = int((now - self.window_us) // self._width)
        for index in [i for i in self._bins if i <= horizon]:
            del self._bins[index]

    def observe(self, n=1):
        now = self.clock()
        self._evict(now)
        index = int(now // self._width)
        self._bins[index] = self._bins.get(index, 0) + n

    def events_in_window(self):
        self._evict(self.clock())
        return sum(self._bins.values())

    def rate_per_s(self):
        """Events per second over the (elapsed-clamped) window."""
        now = self.clock()
        self._evict(now)
        span_us = min(self.window_us, now) if now > 0 else self.window_us
        if span_us <= 0:
            return 0.0
        return sum(self._bins.values()) * 1e6 / span_us

    def __repr__(self):
        return (
            f"<WindowedRate window={self.window_us:g}us "
            f"events={sum(self._bins.values())}>"
        )


class Ewma:
    """Exponentially weighted moving average with a sim-time half-life.

    Decay is driven by elapsed *clock* time between updates, so the
    smoothing constant is independent of the observation rate: after one
    half-life without updates an old value contributes half its weight.
    """

    __slots__ = ("clock", "halflife_us", "value", "_last_at")

    def __init__(self, clock, halflife_us=50_000.0):
        if halflife_us <= 0:
            raise ValueError(
                f"halflife_us must be positive, got {halflife_us}"
            )
        self.clock = clock
        self.halflife_us = float(halflife_us)
        self.value = None
        self._last_at = None

    def update(self, sample):
        now = self.clock()
        if self.value is None:
            self.value = float(sample)
        else:
            dt = max(0.0, now - self._last_at)
            decay = 0.5 ** (dt / self.halflife_us)
            self.value = decay * self.value + (1.0 - decay) * float(sample)
        self._last_at = now
        return self.value

    def read(self, default=0.0):
        return self.value if self.value is not None else default

    def __repr__(self):
        return f"<Ewma halflife={self.halflife_us:g}us value={self.value}>"
