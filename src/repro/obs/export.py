"""Exporters: registry snapshots in OpenMetrics text, shared file plumbing.

Two things live here:

- :func:`open_destination` — the one way every exporter in the tree
  accepts output targets.  A *destination* is either a filesystem path
  (``str`` / ``os.PathLike``; opened, then closed) or an already-open
  file-like object with ``write`` (used as-is, left open — the caller
  owns it).  :meth:`repro.obs.events.EventTrace.to_jsonl`, the OpenMetrics
  exporter below, and ``tools/bench.py`` all route through it.
- :func:`to_openmetrics` / :func:`write_openmetrics` — a
  :class:`~repro.obs.registry.MetricsRegistry` snapshot in the
  OpenMetrics / Prometheus text exposition format, so a registry dump
  can be thrown straight at ``promtool``, a Pushgateway, or any of the
  text-format parsers.  Counters become ``syrup_<metric>_total``, gauges
  ``syrup_<metric>``, histograms the standard ``_bucket``/``_sum``/
  ``_count`` triplet over the registry's geometric (power-of-two)
  buckets, and sketches (:mod:`repro.obs.sketch`) a ``summary`` family
  with one series per ``quantile`` label (:data:`SUMMARY_QUANTILES`)
  plus ``_sum``/``_count``; the ``(app, scope)`` key becomes
  ``app``/``scope`` labels.
"""

import contextlib
import re

from repro.obs.registry import N_BUCKETS

__all__ = ["open_destination", "to_openmetrics", "write_openmetrics"]

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: Quantiles emitted for ``sketch`` series (the ``quantile`` label of a
#: ``summary`` family, per the exposition-format convention).
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)


@contextlib.contextmanager
def open_destination(destination, mode="w"):
    """Yield a writable file handle for a path or file-like destination.

    Paths are opened with ``mode`` and closed on exit; objects with a
    ``write`` method are yielded unchanged and **not** closed (the caller
    owns their lifetime).  This is the uniform contract for every
    exporter (``to_jsonl``, OpenMetrics, bench results).
    """
    if hasattr(destination, "write"):
        yield destination
    else:
        with open(destination, mode) as fh:
            yield fh


def _sanitize(name):
    """A metric name in the OpenMetrics grammar: [a-zA-Z0-9_:]."""
    name = _INVALID.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape(value):
    """A label value escaped per the exposition-format grammar.

    Backslash, double quote, and newline are the three characters the
    OpenMetrics/Prometheus text format requires escaping inside quoted
    label values; everything else passes through verbatim (app names
    like ``(root)`` are legal as-is).
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(app, scope, le=None, quantile=None):
    """Label set for one series.

    Scopes of the form ``tenant:<name>`` (the per-tenant accounting
    convention, see :mod:`repro.obs.accounting`) split into
    ``scope="tenant",tenant="<name>"`` so tenant-labeled series group
    per tenant in any Prometheus-compatible consumer; the tenant name
    is escaped like every other label value.
    """
    tenant = None
    if isinstance(scope, str) and scope.startswith("tenant:"):
        tenant = scope[len("tenant:"):]
        scope = "tenant"
    out = f'{{app="{_escape(app)}",scope="{_escape(scope)}"'
    if tenant is not None:
        out += f',tenant="{_escape(tenant)}"'
    if le is not None:
        out += f',le="{le}"'
    if quantile is not None:
        out += f',quantile="{quantile}"'
    return out + "}"


def _bucket_upper(index):
    """Upper edge of geometric bucket ``index`` (see registry.N_BUCKETS)."""
    return 1.0 if index == 0 else float(2 ** index)


def to_openmetrics(registry, prefix="syrup"):
    """The registry in OpenMetrics text format, as a string.

    One ``# TYPE`` line per distinct metric name; series sharing a name
    across ``(app, scope)`` keys become one family with distinct labels.
    """
    families = {}  # sanitized name -> (kind, [lines])
    for app, scope, name in registry.series():
        metric = registry.get(app, scope, name)
        kind = metric.kind
        base = f"{prefix}_{_sanitize(name)}"
        labels = _labels(app, scope)
        if kind == "counter":
            family = families.setdefault(base, ("counter", []))
            family[1].append(f"{base}_total{labels} {metric.value}")
        elif kind == "gauge":
            family = families.setdefault(base, ("gauge", []))
            family[1].append(f"{base}{labels} {metric.value}")
        elif kind == "sketch":  # summary: one series per tracked quantile
            family = families.setdefault(base, ("summary", []))
            lines = family[1]
            for q in SUMMARY_QUANTILES:
                q_labels = _labels(app, scope, quantile=q)
                lines.append(f"{base}{q_labels} {metric.quantile(q)}")
            lines.append(f"{base}_sum{labels} {metric.sum}")
            lines.append(f"{base}_count{labels} {metric.count}")
        else:  # histogram: cumulative buckets up to the last occupied one
            family = families.setdefault(base, ("histogram", []))
            lines = family[1]
            cumulative = 0
            last_occupied = max(
                (i for i, n in enumerate(metric.buckets) if n), default=-1
            )
            for index in range(min(last_occupied + 1, N_BUCKETS)):
                cumulative += metric.buckets[index]
                bucket_labels = _labels(app, scope, le=_bucket_upper(index))
                lines.append(f"{base}_bucket{bucket_labels} {cumulative}")
            inf_labels = _labels(app, scope, le="+Inf")
            lines.append(f"{base}_bucket{inf_labels} {metric.count}")
            lines.append(f"{base}_sum{labels} {metric.sum}")
            lines.append(f"{base}_count{labels} {metric.count}")
    out = []
    for base in sorted(families):
        kind, lines = families[base]
        out.append(f"# TYPE {base} {kind}")
        out.extend(lines)
    out.append("# EOF")
    return "\n".join(out) + "\n"


def write_openmetrics(registry, destination, prefix="syrup"):
    """Write :func:`to_openmetrics` output; returns the line count.

    ``destination`` follows the :func:`open_destination` contract
    (path or open file object).
    """
    text = to_openmetrics(registry, prefix=prefix)
    with open_destination(destination) as fh:
        fh.write(text)
    return text.count("\n")
