"""A real in-memory key-value engine.

Service *times* in the simulation come from the workload model (the paper's
measured 10-12 us GETs / ~700 us SCANs), but the servers execute real
operations against this engine so the datapath is genuinely exercised:
wrong-partition routing, missing keys, and scan ranges are observable
behaviours with tests, not placeholders.
"""

import bisect

__all__ = ["KVStore"]


class KVStore:
    """Dict-backed store with ordered-scan support (RocksDB-style API)."""

    def __init__(self):
        self._data = {}
        self._sorted_keys = []
        self._keys_dirty = False
        self.gets = 0
        self.puts = 0
        self.scans = 0

    def put(self, key, value):
        self.puts += 1
        if key not in self._data:
            self._keys_dirty = True
        self._data[key] = value

    def get(self, key):
        self.gets += 1
        return self._data.get(key)

    def delete(self, key):
        if key in self._data:
            del self._data[key]
            self._keys_dirty = True
            return True
        return False

    def _keys(self):
        if self._keys_dirty:
            self._sorted_keys = sorted(self._data)
            self._keys_dirty = False
        return self._sorted_keys

    def scan(self, start_key, count):
        """Return up to ``count`` (key, value) pairs from ``start_key`` on."""
        self.scans += 1
        keys = self._keys()
        i = bisect.bisect_left(keys, start_key)
        out = []
        for key in keys[i : i + count]:
            out.append((key, self._data[key]))
        return out

    def preload(self, n, value_fn=None):
        """Populate keys 0..n-1 (integer keys sort numerically)."""
        for key in range(n):
            self.put(key, value_fn(key) if value_fn else f"value-{key}")
        return self

    def __len__(self):
        return len(self._data)

    def __contains__(self, key):
        return key in self._data
