"""A RocksDB-like UDP server (paper §5.1.2).

Real point (GET) and range (SCAN) queries against the in-memory
:class:`~repro.apps.kvstore.KVStore`; simulated CPU time comes from the
request's calibrated service time (GET 10-12 us, SCAN ~700 us).

Two optional "userspace components" publish scheduling state into Syrup
Maps, enabling the paper's cross-layer policies:

- ``mark_scans`` — the SCAN Avoid userspace half (Fig. 5b): set
  ``scan_map[thread_index]`` while that thread serves a SCAN.
- ``mark_types`` — for the ghOSt GET-priority thread policy (§5.3): keep
  ``type_map[thread_index]`` at the request type the thread is processing
  (or about to process).
- ``mark_sizes`` — the userspace half of the SRPT queueing discipline
  (:data:`repro.qdisc.policies.SRPT_BY_SIZE`): publish the observed
  service time per request type into ``svc_time_map[rtype]``, so rank
  functions can order queues shortest-job-first from a measured,
  cross-layer signal.
"""

from repro.apps.kvstore import KVStore
from repro.apps.server import UdpServer
from repro.workload.requests import GET, SCAN

__all__ = ["RocksDbServer", "SCAN_MAP", "SVC_TIME_MAP", "TYPE_MAP"]

SCAN_MAP = "scan_map"
TYPE_MAP = "type_map"
SVC_TIME_MAP = "svc_time_map"

_SCAN_RANGE = 16  # real keys touched per SCAN


class RocksDbServer(UdpServer):
    def __init__(
        self,
        machine,
        app,
        port,
        num_threads,
        mark_scans=False,
        mark_types=False,
        mark_sizes=False,
        preload_keys=10000,
    ):
        super().__init__(machine, app, port, num_threads)
        self.store = KVStore().preload(preload_keys)
        self.key_space = preload_keys
        self.scan_map = (
            app.create_map(SCAN_MAP, size=max(64, num_threads), kind="array")
            if mark_scans
            else None
        )
        self.type_map = (
            app.create_map(TYPE_MAP, size=max(64, num_threads), kind="array")
            if mark_types
            else None
        )
        self.svc_time_map = (
            app.create_map(SVC_TIME_MAP, size=16, kind="hash")
            if mark_sizes
            else None
        )
        #: Optional service-time sketch (repro.obs.sketch.DDSketch or a
        #: registry Sketch): when set by the owner, every enqueued
        #: request's calibrated service time is folded in — the signal
        #: the SRPT auto-threshold controller tunes from.  None (the
        #: default) costs one attribute test and changes nothing.
        self.svc_sketch = None

    # ------------------------------------------------------------------
    def on_enqueue(self, thread_index, packet):
        if self.type_map is not None:
            thread = self.threads[thread_index]
            if thread.token is None:
                # idle thread: its next request is the one that just landed
                self.type_map.update(thread_index, packet.request.rtype)
        if self.svc_time_map is not None:
            request = packet.request
            # Latest observed service time per type; read by SRPT rank
            # functions.  The very first request of a type is ranked
            # before this lands (PASS -> FIFO) — conservative start.
            self.svc_time_map.update(request.rtype, int(request.service_us))
        if self.svc_sketch is not None:
            self.svc_sketch.add(packet.request.service_us)

    def on_request_start(self, thread_index, request):
        super().on_request_start(thread_index, request)
        key = request.key % self.key_space
        if request.rtype == SCAN:
            self.store.scan(key, _SCAN_RANGE)
        else:
            self.store.get(key)
        if self.scan_map is not None and request.rtype == SCAN:
            self.scan_map.update(thread_index, 1)
        if self.type_map is not None:
            self.type_map.update(thread_index, request.rtype)

    def on_request_complete(self, thread_index, request):
        if self.scan_map is not None and request.rtype == SCAN:
            self.scan_map.update(thread_index, 0)
        if self.type_map is not None and not len(self.sockets[thread_index]):
            self.type_map.update(thread_index, 0)
        super().on_request_complete(thread_index, request)
