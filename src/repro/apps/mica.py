"""A MICA-like partitioned key-value store (paper §5.1.2, §5.4).

MICA partitions data across cores; each request has a *home* core
(``key_hash % num_threads``).  What Figure 9 measures is where the
steering happens and how much data movement each choice costs:

- **sw_redirect** (original MICA without client-side steering): RSS lands
  the packet on an arbitrary thread, which parses it and — if it is not the
  home — hands it off over a DPDK-style inter-core queue.  Up to two data
  movements per request.
- **syrup_sw**: a Syrup policy at the kernel AF_XDP hook steers each packet
  to the home thread's AF_XDP socket.  The home core still pulls the packet
  from a remote NIC queue's buffers (one movement).
- **syrup_hw**: the same policy offloaded to the smartNIC picks the RX
  queue, so the packet lands in the home core's own queue — zero end-host
  movement.

The same policy source (:data:`repro.policies.builtin.MICA_HASH`) deploys
at both the kernel hook and the NIC hook — the paper's portability claim.
"""

from collections import deque
from dataclasses import dataclass

from repro.apps.kvstore import KVStore
from repro.kernel.threads import KThread
from repro.stats.meters import Counter
from repro.workload.requests import PUT

__all__ = ["MicaCosts", "MicaServer"]

MODES = ("sw_redirect", "syrup_sw", "syrup_hw")


@dataclass
class MicaCosts:
    """App-core CPU costs (us/request), calibrated so 8 cores saturate near
    the paper's 1.7-1.8M / 2.7-2.8M / 3.2-3.3M RPS for the three variants."""

    proc_us: float = 2.45          # hash-table op + response send
    put_extra_us: float = 0.10     # PUTs write; slightly dearer than GETs
    remote_pull_us: float = 0.45   # pulling packet data DMA'd to another
    #                                queue's buffers (syrup_sw, cache miss)
    parse_us: float = 1.00         # request parse on the RX thread
    handoff_send_us: float = 0.55  # enqueue to another core's DPDK queue
    handoff_recv_us: float = 0.55  # dequeue on the home core


class _MicaWorkSource:
    """Per-thread source: inter-core inbox first, then the AF_XDP socket."""

    __slots__ = ("server", "index", "socket", "inbox")

    def __init__(self, server, index, socket):
        self.server = server
        self.index = index
        self.socket = socket
        self.inbox = deque()

    def pull(self):
        if self.inbox:
            request = self.inbox.popleft()
            return self.server.handoff_work(self.index, request)
        packet = self.socket.pop()
        if packet is None:
            return None
        return self.server.packet_work(self.index, packet)

    def complete(self, token):
        self.server.complete(self.index, token)


class MicaServer:
    def __init__(self, machine, app, port, num_threads=8, mode="syrup_sw",
                 costs=None, preload_keys=10000):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        self.machine = machine
        self.app = app
        self.port = port
        self.num_threads = num_threads
        self.mode = mode
        self.costs = costs or MicaCosts()
        self.response_sink = None
        self.partitions = [KVStore() for _ in range(num_threads)]
        self.key_space = preload_keys
        for key in range(preload_keys):
            self.partitions[self._home_for_key(key)].put(key, f"value-{key}")
        self.stats = Counter()
        self.misroutes = 0
        self.handoffs = 0

        self.sockets = []
        self.threads = []
        self.sources = []
        for i in range(num_threads):
            socket = machine.create_udp_socket(app, port, is_af_xdp=True)
            thread = KThread(tid=i, name=f"mica-{i}", app=app.name)
            source = _MicaWorkSource(self, i, socket)
            thread.source = source
            socket.thread = thread
            app.register_thread(thread)
            machine.scheduler.attach(thread)
            self.sockets.append(socket)
            self.threads.append(thread)
            self.sources.append(source)

        if mode == "sw_redirect" or mode == "syrup_hw":
            # Plain AF_XDP: queue i's packets land in thread i's socket.
            for i in range(num_threads):
                machine.netstack.bind_af_xdp(i, self.sockets[i])
        if mode == "syrup_sw":
            # App registers its AF_XDP sockets as the policy's executors.
            hook = self.kernel_xdp_hook()
            for i, socket in enumerate(self.sockets):
                app.register_socket(socket, i, hook=hook)

    # ------------------------------------------------------------------
    def kernel_xdp_hook(self):
        """Best kernel XDP mode this NIC supports (native when zero-copy)."""
        from repro.core.hooks import Hook

        if self.machine.config.nic.zero_copy:
            return Hook.XDP_DRV
        return Hook.XDP_SKB

    def deploy_policy(self):
        """Deploy the hash steering policy at the layer ``mode`` calls for."""
        from repro.core.hooks import Hook
        from repro.policies.builtin import MICA_HASH

        if self.mode == "sw_redirect":
            return None
        if self.mode == "syrup_sw":
            hook = self.kernel_xdp_hook()
        else:
            hook = Hook.XDP_OFFLOAD
        return self.app.deploy_policy(
            MICA_HASH, hook, constants={"NUM_EXECUTORS": self.num_threads}
        )

    # ------------------------------------------------------------------
    def _home_for_key(self, key):
        key_hash = (key * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
        return key_hash % self.num_threads

    def home(self, request):
        return request.key_hash % self.num_threads

    # -- work-item construction ------------------------------------------
    def packet_work(self, index, packet):
        request = packet.request
        home = self.home(request)
        costs = self.costs
        if self.mode == "sw_redirect":
            if home == index:
                cost = costs.parse_us + self._proc_cost(request)
                return (cost, ("proc", request))
            cost = costs.parse_us + costs.handoff_send_us
            return (cost, ("forward", request))
        # Syrup modes: the policy should have steered us home already.
        if home != index:
            self.misroutes += 1
        cost = self._proc_cost(request)
        if self.mode == "syrup_sw" and packet.rx_queue is not None \
                and packet.rx_queue != index:
            cost += costs.remote_pull_us
        return (cost, ("proc", request))

    def handoff_work(self, index, request):
        cost = self.costs.handoff_recv_us + self._proc_cost(request)
        return (cost, ("proc", request))

    def _proc_cost(self, request):
        cost = self.costs.proc_us
        if request.rtype == PUT:
            cost += self.costs.put_extra_us
        return cost

    # -- completion --------------------------------------------------------
    def complete(self, index, token):
        kind, request = token
        if kind == "forward":
            self.handoffs += 1
            home = self.home(request)
            self.sources[home].inbox.append(request)
            self.threads[home].wake()
            return
        # real store op at the home partition
        partition = self.partitions[index % self.num_threads]
        key = request.key % self.key_space
        if request.rtype == PUT:
            partition.put(key, request.rid)
        else:
            partition.get(key)
        self.stats.add(self.machine.now, request.rtype)
        if self.response_sink is not None:
            self.response_sink(request)
