"""A netperf-style echo server (TCP_RR) with optional RFS publishing.

Paper §2.1 motivates scheduling *flexibility* with Receive Flow Steering:
"A netperf TCP_RR test that uses RFS has been shown to achieve up to 200%
higher throughput than one without RFS" — locality sometimes matters more
than balance, so no single policy wins everywhere.

With ``rfs=True`` the server publishes a flow→core steering table into a
Syrup Map on every datagram delivery (the analogue of the kernel updating
the RFS table at recvmsg time); the RFS_STEERING policy at the CPU Redirect
hook then keeps protocol processing on the consuming core's hyperthread
buddy.
"""

from repro.apps.server import UdpServer

__all__ = ["EchoServer", "RFS_TABLE_SIZE"]

RFS_TABLE_SIZE = 1024


class EchoServer(UdpServer):
    """Echoes tiny requests; transaction cost is syscalls + ~1 us of work."""

    def __init__(self, machine, app, port, num_threads, rfs=False):
        super().__init__(machine, app, port, num_threads)
        # hash kind: map_has must be able to miss for unknown flows
        self.rfs_map = (
            app.create_map("rfs_map", size=RFS_TABLE_SIZE, kind="hash")
            if rfs
            else None
        )

    def on_enqueue(self, thread_index, packet):
        if self.rfs_map is None:
            return
        key = packet.load(0, 4) % RFS_TABLE_SIZE
        thread = self.threads[thread_index]
        buddy = (
            thread.home_core if thread.home_core is not None else thread_index
        ) % len(self.machine.netstack.softirq)
        self.rfs_map.update(key, buddy)
