"""Applications: a real KV engine plus the paper's two server workloads."""

from repro.apps.kvstore import KVStore
from repro.apps.mica import MicaCosts, MicaServer
from repro.apps.rocksdb import RocksDbServer
from repro.apps.server import ServerStats, SocketWorkSource, UdpServer

__all__ = [
    "KVStore",
    "MicaCosts",
    "MicaServer",
    "RocksDbServer",
    "ServerStats",
    "SocketWorkSource",
    "UdpServer",
]
