"""Generic multi-threaded UDP server scaffolding.

A :class:`UdpServer` owns N server threads, each bound to its own
SO_REUSEPORT socket on the shared port (the paper's RocksDB setup).  Each
thread's work source is its socket queue; per-request CPU cost is
``recv syscall + application service time + send syscall``.

Subclasses hook :meth:`on_request_start` / :meth:`on_request_complete` to do
real application work and to publish scheduling state into Syrup Maps (the
"userspace component" of policies like SCAN Avoid, Fig. 5b).
"""

from repro.kernel.threads import KThread
from repro.stats.meters import Counter

__all__ = ["ServerStats", "SocketWorkSource", "UdpServer"]


class ServerStats:
    def __init__(self):
        self.completed = Counter()
        self.started = Counter()

    def __repr__(self):
        return f"<ServerStats completed={self.completed.total()}>"


class SocketWorkSource:
    """Thread work source backed by a socket queue."""

    __slots__ = ("server", "thread_index", "socket")

    def __init__(self, server, thread_index, socket):
        self.server = server
        self.thread_index = thread_index
        self.socket = socket

    def pull(self):
        packet = self.socket.pop()
        if packet is None:
            return None
        request = packet.request
        cost = self.server.request_cost(request, packet, self.thread_index)
        self.server.on_request_start(self.thread_index, request)
        return (cost, request)

    def complete(self, request):
        self.server.on_request_complete(self.thread_index, request)


class UdpServer:
    """N threads, N SO_REUSEPORT sockets, one port."""

    def __init__(self, machine, app, port, num_threads):
        self.machine = machine
        self.app = app
        self.port = port
        self.num_threads = num_threads
        self.stats = ServerStats()
        #: Wired to the load generator: callable(request) at server-send time.
        self.response_sink = None
        self.sockets = []
        self.threads = []
        for i in range(num_threads):
            socket = machine.create_udp_socket(app, port)
            # Paper §4.4: the app controls the executor-map index per socket.
            app.register_socket(socket, i)
            thread = KThread(tid=i, name=f"{app.name}-worker-{i}", app=app.name)
            thread.source = SocketWorkSource(self, i, socket)
            socket.thread = thread
            socket.on_enqueue = self._make_enqueue_hook(i)
            app.register_thread(thread)
            machine.scheduler.attach(thread)
            self.sockets.append(socket)
            self.threads.append(thread)

    # ------------------------------------------------------------------
    def _make_enqueue_hook(self, index):
        def hook(packet):
            self.on_enqueue(index, packet)
        return hook

    def request_cost(self, request, packet=None, thread_index=None):
        costs = self.machine.costs
        cost = costs.recv_syscall_us + request.service_us + costs.send_syscall_us
        if (
            costs.remote_softirq_us
            and packet is not None
            and packet.softirq_core is not None
            and thread_index is not None
        ):
            # locality (paper §2.1, RFS): protocol processing on the app
            # core's hyperthread buddy keeps the packet warm in cache
            thread = self.threads[thread_index]
            buddy = (thread.home_core if thread.home_core is not None
                     else thread_index) % len(self.machine.netstack.softirq)
            if packet.softirq_core != buddy:
                cost += costs.remote_softirq_us
        return cost

    # -- subclass hooks ---------------------------------------------------
    def on_enqueue(self, thread_index, packet):
        """Called when a datagram lands in thread ``thread_index``'s socket."""

    def on_request_start(self, thread_index, request):
        self.stats.started.add(self.machine.now, request.rtype)

    def on_request_complete(self, thread_index, request):
        self.stats.completed.add(self.machine.now, request.rtype)
        self.respond(request)

    # ------------------------------------------------------------------
    def respond(self, request):
        if self.response_sink is not None:
            self.response_sink(request)

    def total_socket_drops(self):
        return sum(s.drops for s in self.sockets)
