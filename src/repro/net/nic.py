"""NIC model: RX queues, RSS steering, optional on-NIC (offloaded) policies.

The XDP Offload hook site (``classifier``) follows the same duck-typed
protocol as the kernel hook sites (see :mod:`repro.kernel.netstack`): when a
Syrup program is offloaded, it picks the RX queue; otherwise RSS does.  A
smartNIC runs the policy at line rate, so no host CPU time is charged — the
price is paid elsewhere: userspace access to NIC-resident maps is ~25x
slower (Table 3), modeled in :mod:`repro.core.maps`.
"""

from repro.net.rss import rss_queue
from repro.obs.accounting import NULL_ACCOUNTING
from repro.obs.spans import NULL_SPANS

__all__ = ["Nic", "NicDropReason"]


class NicDropReason:
    OFFLOAD_DROP = "offload_drop"
    NO_HANDLER = "no_handler"
    QDISC_SHED = "qdisc_shed"


class Nic:
    def __init__(self, engine, spec, costs, salt=0):
        self.engine = engine
        self.spec = spec
        self.costs = costs
        self.salt = salt
        #: XDP Offload hook site (None, or requires spec.supports_offload).
        self.classifier = None
        #: Injected offload-engine failure (repro.faults): while True the
        #: classifier is bypassed and packets take RSS + the host path.
        self.offload_down = False
        #: Delivery callback: fn(queue_index, packet); normally
        #: NetStack.deliver_from_nic.
        self.deliver = None
        #: Span tracer (repro.obs.spans); NIC arrival is the head-sampling
        #: point and the start of each tree's nic_queue span.
        self.spans = NULL_SPANS
        #: Tenant accountant (repro.obs.accounting): books per-tenant
        #: NIC wait (arrival -> IRQ delivery) and NIC-level drops.
        self.acct = NULL_ACCOUNTING
        #: Packets accepted but not yet IRQ-delivered (queue occupancy,
        #: sampled by the flight recorder's queue-state probe).
        self.in_flight = 0
        self.rx_packets = 0
        self.drops = {
            NicDropReason.OFFLOAD_DROP: 0,
            NicDropReason.NO_HANDLER: 0,
            NicDropReason.QDISC_SHED: 0,
        }
        #: Per-RX-queue queueing disciplines (repro.qdisc), attached by
        #: syrupd.deploy_qdisc(layer="nic_rx").  With a qdisc on a queue
        #: each IRQ delivers the *minimum-rank* buffered packet instead of
        #: the FIFO head; a PASS-everywhere discipline reproduces FIFO
        #: delivery exactly.
        self.rx_qdiscs = {}

    def attach_classifier(self, hook_site):
        if not self.spec.supports_offload:
            raise ValueError(
                f"NIC {self.spec.model!r} does not support XDP offload"
            )
        self.classifier = hook_site

    def attach_qdisc(self, queue_index, qdisc):
        """Attach a queueing discipline to one RX queue (syrupd only)."""
        if not 0 <= queue_index < self.spec.num_queues:
            raise ValueError(
                f"RX queue {queue_index} out of range for "
                f"{self.spec.num_queues}-queue NIC"
            )
        qdisc.target = f"rxq:{queue_index}"
        self.rx_qdiscs[queue_index] = qdisc
        return qdisc

    def detach_qdisc(self, queue_index):
        """Detach a queue's discipline.  Buffered packets are *not*
        stranded: each accepted packet already scheduled an IRQ drain that
        captured the discipline object, so the queue keeps draining."""
        return self.rx_qdiscs.pop(queue_index, None)

    def receive(self, packet):
        """A packet arrives from the wire."""
        self.rx_packets += 1
        self.spans.nic_arrival(packet)
        self.acct.nic_arrival(packet)
        if self.deliver is None:
            self.drops[NicDropReason.NO_HANDLER] += 1
            self.spans.drop(packet, NicDropReason.NO_HANDLER)
            self.acct.drop(packet, NicDropReason.NO_HANDLER)
            return
        queue = None
        if self.classifier is not None and not self.offload_down:
            action, target = self.classifier.decide(packet)
            if action == "drop":
                self.drops[NicDropReason.OFFLOAD_DROP] += 1
                self.spans.drop(packet, NicDropReason.OFFLOAD_DROP)
                self.acct.drop(packet, NicDropReason.OFFLOAD_DROP)
                return
            if action == "target":
                queue = target % self.spec.num_queues
        if queue is None:
            queue = rss_queue(packet.flow, self.spec.num_queues, self.salt)
        packet.rx_queue = queue
        delay = self.spec.rx_process_us + self.costs.irq_delay_us
        qdisc = self.rx_qdiscs.get(queue)
        if qdisc is not None:
            result = qdisc.offer(packet)
            if not result.accepted:
                self.drops[NicDropReason.QDISC_SHED] += 1
                self.spans.drop(packet, NicDropReason.QDISC_SHED)
                self.acct.drop(packet, NicDropReason.QDISC_SHED)
                return
            self.spans.qdisc_enqueued(
                packet, qdisc.layer, result.rank, qdisc.backend_name
            )
            self.acct.qdisc_enqueued(packet)
            self.in_flight += 1
            self.engine.schedule(delay, self._irq_drain, queue, qdisc)
            return
        self.in_flight += 1
        self.engine.schedule(delay, self._irq_deliver, queue, packet)

    def _irq_deliver(self, queue, packet):
        """IRQ delivery into the kernel: occupancy drops, nic_queue ends."""
        self.in_flight -= 1
        self.spans.nic_delivered(packet, queue)
        self.acct.nic_delivered(packet)
        self.deliver(queue, packet)

    def _irq_drain(self, queue, qdisc):
        """IRQ delivery under a discipline: each accepted packet schedules
        one drain, and each drain delivers the queue's minimum-rank
        buffered packet — FIFO timing, programmable order."""
        self.in_flight -= 1
        packet = qdisc.take()
        if packet is None:
            return  # an eviction consumed this drain's element
        self.spans.qdisc_dequeued(packet)
        self.acct.qdisc_dequeued(packet)
        self.spans.nic_delivered(packet, queue)
        self.acct.nic_delivered(packet)
        self.deliver(queue, packet)

    def __repr__(self):
        return f"<Nic {self.spec.model} queues={self.spec.num_queues}>"
