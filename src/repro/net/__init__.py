"""Network substrate: packets, flows, RSS hashing, and the NIC model."""

from repro.net.nic import Nic, NicDropReason
from repro.net.packet import FiveTuple, Packet, build_payload
from repro.net.rss import rss_hash

__all__ = [
    "FiveTuple",
    "Nic",
    "NicDropReason",
    "Packet",
    "build_payload",
    "rss_hash",
]
