"""Packets and flows.

A simulated datagram carries real bytes so that Syrup policies genuinely
parse packet contents (the paper's SITA and token policies "peek into the
packet").  Layout (little-endian, documented divergence from network order):

====== ===== =====================================================
offset width field
====== ===== =====================================================
0      2     UDP source port
2      2     UDP destination port
4      2     UDP length
6      2     UDP checksum (always 0 here)
8      ...   application payload (see :func:`build_payload`)
====== ===== =====================================================

The standard application header used by the paper's workloads (RocksDB and
MICA requests) puts a u64 request type at payload offset 0 (packet offset
8, "First 8 bytes are UDP header" — Fig. 5d), then u64 user id, u64 key
hash, u64 request id.
"""

import struct
from collections import namedtuple

__all__ = [
    "APP_KEYHASH_OFF",
    "APP_REQID_OFF",
    "APP_TYPE_OFF",
    "APP_USER_OFF",
    "UDP_HEADER_LEN",
    "FiveTuple",
    "Packet",
    "PacketView",
    "build_payload",
]

UDP_HEADER_LEN = 8
APP_TYPE_OFF = 8
APP_USER_OFF = 16
APP_KEYHASH_OFF = 24
APP_REQID_OFF = 32

FiveTuple = namedtuple(
    "FiveTuple", ["src_ip", "src_port", "dst_ip", "dst_port", "proto"]
)

_HEADER = struct.Struct("<HHHH")
_APP = struct.Struct("<QQQQ")


def build_payload(req_type, user_id=0, key_hash=0, req_id=0, extra=b""):
    """Serialize the standard application header (+ optional extra bytes)."""
    return _APP.pack(req_type, user_id, key_hash, req_id) + extra


class Packet:
    """A UDP datagram in flight.

    ``data`` holds the full bytes (UDP header + payload); ``request`` is an
    optional reference to the application-level request object so the
    simulator does not need to re-parse bytes outside of policy code.
    """

    __slots__ = ("flow", "data", "length", "sent_at", "request", "rx_queue",
                 "softirq_core")

    def __init__(self, flow, payload, sent_at=0.0, request=None):
        header = _HEADER.pack(
            flow.src_port, flow.dst_port, UDP_HEADER_LEN + len(payload), 0
        )
        self.data = header + payload
        self.length = len(self.data)
        self.flow = flow
        self.sent_at = sent_at
        self.request = request
        self.rx_queue = None      # filled in by the NIC delivery path
        self.softirq_core = None  # which softirq core ran protocol processing

    @property
    def is_tcp(self):
        return self.flow.proto == 6

    def load(self, offset, width):
        """Read ``width`` bytes at ``offset`` (little-endian unsigned).

        Raises IndexError when out of bounds — the verifier guarantees
        policy code never triggers this.
        """
        end = offset + width
        if offset < 0 or end > self.length:
            raise IndexError(
                f"packet load [{offset}:{end}) out of bounds (len={self.length})"
            )
        return int.from_bytes(self.data[offset:end], "little")

    @property
    def dst_port(self):
        return self.flow.dst_port

    def __repr__(self):
        return f"<Packet {self.flow} len={self.length}>"


class PacketView:
    """A packet facade over an aggregate-flow request (no bytes up front).

    The fleet tier (:mod:`repro.cluster.fleet`) simulates hundreds of
    machines under millions of users, so it cannot afford to serialize a
    :class:`Packet` per request just in case a verified program wants to
    peek at it.  A ``PacketView`` carries only the header fields and
    materializes the standard wire layout lazily, the first time policy
    code calls ``load`` — which only happens for requests that actually
    reach a deployed program (a ToR steering program or a per-machine
    rank function).  Duck-type-compatible with :class:`Packet` for the
    VM, the JIT and :class:`repro.qdisc.discipline.Qdisc`.
    """

    __slots__ = ("src_port", "dst_port", "rtype", "user_id", "key_hash",
                 "rid", "_data")

    def __init__(self, rtype, user_id=0, key_hash=0, rid=0,
                 src_port=0, dst_port=0):
        self.src_port = src_port
        self.dst_port = dst_port
        self.rtype = rtype
        self.user_id = user_id
        self.key_hash = key_hash
        self.rid = rid
        self._data = None

    @property
    def length(self):
        return UDP_HEADER_LEN + _APP.size

    @property
    def data(self):
        if self._data is None:
            payload = build_payload(self.rtype, self.user_id,
                                    self.key_hash, self.rid)
            header = _HEADER.pack(
                self.src_port, self.dst_port,
                UDP_HEADER_LEN + len(payload), 0,
            )
            self._data = header + payload
        return self._data

    def load(self, offset, width):
        """Read ``width`` bytes at ``offset``, materializing lazily."""
        end = offset + width
        if offset < 0 or end > self.length:
            raise IndexError(
                f"packet load [{offset}:{end}) out of bounds "
                f"(len={self.length})"
            )
        return int.from_bytes(self.data[offset:end], "little")

    def __repr__(self):
        return (
            f"<PacketView rid={self.rid} rtype={self.rtype} "
            f"user={self.user_id}>"
        )
