"""Receive-Side Scaling: 5-tuple hashing.

Real NICs use a Toeplitz hash keyed by a random secret.  We use FNV-1a over
the packed 5-tuple plus a salt, which shares the properties that matter for
the paper's results: deterministic per flow, uniform over flows, and — with
few flows and few buckets — prone to exactly the imbalance that makes
"Vanilla Linux" drop requests in Figure 2.
"""

import struct

__all__ = ["rss_hash", "rss_queue"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1

_PACK = struct.Struct("<IHIHBI")


def rss_hash(flow, salt=0):
    """Hash a :class:`~repro.net.packet.FiveTuple` to a u32."""
    data = _PACK.pack(
        flow.src_ip & 0xFFFFFFFF,
        flow.src_port & 0xFFFF,
        flow.dst_ip & 0xFFFFFFFF,
        flow.dst_port & 0xFFFF,
        flow.proto & 0xFF,
        salt & 0xFFFFFFFF,
    )
    h = _FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * _FNV_PRIME) & _MASK
    # Fold to 32 bits; xor-fold keeps the avalanche of the top half.
    return (h ^ (h >> 32)) & 0xFFFFFFFF


def rss_queue(flow, num_queues, salt=0):
    """The RSS indirection: queue index for a flow."""
    return rss_hash(flow, salt) % num_queues
