"""The SignalBus: telemetry snapshots published into Syrup Maps.

The observability plane (PR 1–4) is operator-facing — counters, rings,
span trees an engineer reads after the fact.  Closing the loop (ROADMAP
"closed-loop adaptive scheduling"; RackSched's core argument) needs the
*datapath* to read telemetry, and in Syrup the one channel a verified
policy can read at decision time is a **Map**.  The
:class:`SignalBus` is the bridge: on a fixed simulated-time cadence it

1. reads each registered **signal** (a zero-arg callable over registry
   sketches/gauges, the SLO tracker, the tail analyzer — anything) and
   optionally publishes the value into a designated Map via syrupd's
   normal map-update path (so map-op metrics and placement costs apply
   like any other update), then
2. runs each registered **controller** — a closure implementing a
   control law (SLO-aware shed level, SRPT threshold auto-tuning,
   blame-aware steering weights) over the freshly read signals.

Fleet runs compose this with :class:`repro.cluster.sync.MapSyncBus`:
per-machine SignalBuses publish into local Maps and the sync bus
replicates them to the ToR with bounded staleness.

Determinism contract: the bus only ever runs when explicitly
constructed (``Machine(signals=...)``).  Its ticks ride the engine like
the flight recorder's and **do** change behavior — that is the point:
controllers write Maps the datapath reads.  When absent, the
:data:`NULL_SIGNALS` twin is a no-op and simulation output is
bit-identical to builds without this module (the audit test in
``tests/test_adaptive.py`` holds this line).
"""

__all__ = ["NULL_SIGNALS", "NullSignalBus", "SignalBus"]

DEFAULT_INTERVAL_US = 5_000.0


class SignalBus:
    """Periodic signal sampling + control laws over simulated time.

    ``active`` is an optional zero-arg predicate; the bus re-arms only
    while it returns True (and the engine heap is non-empty), so a
    drained simulation still terminates — the
    :class:`~repro.cluster.sync.MapSyncBus` idiom.
    """

    enabled = True

    def __init__(self, engine, interval_us=DEFAULT_INTERVAL_US, active=None):
        if interval_us <= 0:
            raise ValueError(f"interval_us must be positive, got {interval_us}")
        self.engine = engine
        self.interval_us = float(interval_us)
        self.active = active
        self.ticks = 0
        self.signals = []       # (name, read, publish-or-None)
        self.controllers = []   # (name, control)
        self.last = {}          # signal name -> last read value
        self.last_tick_at = None
        self._armed = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_signal(self, name, read, publish=None):
        """Register a signal: ``read()`` every tick, value cached in
        ``last[name]`` and handed to ``publish(value)`` when given.

        ``publish`` is typically a Map write — e.g.
        ``lambda v: shed_map.update(0, int(v))`` — which routes through
        the normal syrupd map-op accounting.
        """
        self.signals.append((name, read, publish))
        return self

    def add_controller(self, name, control):
        """Register a control law run (in order) after every sample.

        Controllers are zero-arg closures; they read ``bus.last`` or
        whatever telemetry they captured, decide, and write their
        actuation Maps.
        """
        self.controllers.append((name, control))
        return self

    def remove_controller(self, name):
        """Unregister every controller called ``name`` (missing is ok).

        Rebuilds the list, so a controller may remove *itself* from
        inside a tick — the in-flight pass finishes over the old list
        (the CanaryController's self-unregistration idiom).
        """
        self.controllers = [
            (n, control) for n, control in self.controllers if n != name
        ]
        return self

    # ------------------------------------------------------------------
    # Ticking
    # ------------------------------------------------------------------
    def arm(self):
        """Schedule the next tick (idempotent)."""
        if self._armed is not None and not self._armed.cancelled:
            return
        self._armed = self.engine.schedule(self.interval_us, self._tick)

    def disarm(self):
        if self._armed is not None:
            self._armed.cancel()
            self._armed = None

    def _tick(self):
        self._armed = None
        self.tick_once()
        # Re-arm while work remains (and the owner says so): the same
        # drain-to-termination rule as FlightRecorder / MapSyncBus.
        if len(self.engine._heap) > 0 and (
            self.active is None or self.active()
        ):
            self.arm()

    def tick_once(self):
        """One sample + control pass, outside the schedule (tests too)."""
        self.ticks += 1
        self.last_tick_at = self.engine.now
        for name, read, publish in self.signals:
            value = read()
            self.last[name] = value
            if publish is not None:
                publish(value)
        for _name, control in self.controllers:
            control()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def view(self):
        """JSON-safe operator snapshot (``syrupctl slo`` footer)."""
        return {
            "interval_us": self.interval_us,
            "ticks": self.ticks,
            "last_tick_at": self.last_tick_at,
            "signals": [name for name, _r, _p in self.signals],
            "controllers": [name for name, _c in self.controllers],
            "last": {
                name: value for name, value in sorted(self.last.items())
                if isinstance(value, (int, float, str, bool, type(None)))
            },
        }

    def __repr__(self):
        return (
            f"<SignalBus interval={self.interval_us:g}us "
            f"signals={len(self.signals)} "
            f"controllers={len(self.controllers)} ticks={self.ticks}>"
        )


class NullSignalBus:
    """Disabled bus: registration and arming are no-ops, views empty."""

    enabled = False
    interval_us = 0.0
    ticks = 0
    signals = ()
    controllers = ()
    last = {}
    last_tick_at = None

    def add_signal(self, name, read, publish=None):
        return self

    def add_controller(self, name, control):
        return self

    def remove_controller(self, name):
        return self

    def arm(self):
        pass

    def disarm(self):
        pass

    def tick_once(self):
        pass

    def view(self):
        return {
            "interval_us": 0.0, "ticks": 0, "last_tick_at": None,
            "signals": [], "controllers": [], "last": {},
        }

    def __repr__(self):
        return "<NullSignalBus>"


#: Shared singleton used whenever the signal plane is disabled.
NULL_SIGNALS = NullSignalBus()
