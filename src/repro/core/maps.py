"""The Syrup Map abstraction (paper §3.4).

Maps are the cross-layer communication channel: policies in the kernel/NIC
and application code in userspace share them.  This module wraps the raw
:mod:`repro.ebpf.maps` objects with what the framework adds:

- **pinning** to a sysfs-like path so programs of the same user can share
  them ("pinned to sysfs by syrupd"),
- **permissions** via the pin's mode (private to the owning app, or shared),
- **placement** and its access cost: userspace access to a host map costs
  ~1 us, to a NIC-resident (offloaded) map ~25 us — Table 3.  Access *from
  policy code* running in the same layer is an ordinary memory access and
  costs nothing extra, exactly as the paper notes.

Atomicity model (paper §4.1): no locks; per-key atomic read-modify-write via
``atomic_add``; benign races are expected and tolerated by policies.

Observability: with ``Machine(metrics=True)``, every userspace map
operation increments per-``(owner, "maps")`` counters
(``<map>.lookups`` / ``.updates`` / ``.deletes`` / ``.atomic_adds`` plus
``<map>.contended``) and feeds an ``<map>.op_latency_us`` histogram, so
map contention and placement cost are visible in ``syrupctl stats``
without touching Table-3 harness code.
"""

from repro.ebpf.maps import ArrayMap, HashMap

__all__ = ["MapRegistry", "PermissionDenied", "SyrupMap"]

HOST = "host"
OFFLOAD = "offload"


class PermissionDenied(PermissionError):
    """An app tried to open a map pinned by another app without permission."""


class SyrupMap:
    """A pinned map with placement-dependent userspace access costs.

    Userspace accessors (``lookup``/``update``/...) return immediately —
    the simulation is single-threaded — but every call accrues the modeled
    access latency in ``userspace_time_us`` so harnesses (and Table 3) can
    account for it, and callers running inside simulated processes can
    sleep ``op_latency_us()`` to model it inline.
    """

    def __init__(self, bpf_map, owner, path, placement=HOST, costs=None,
                 nic_spec=None, shared=False, metrics=None):
        self.bpf_map = bpf_map
        self.owner = owner
        self.path = path
        self.placement = placement
        self.costs = costs
        self.nic_spec = nic_spec
        self.shared = shared
        self.userspace_ops = 0
        self.userspace_time_us = 0.0
        # dict of obs metric objects (see MapRegistry.create), or None
        self._metrics = metrics
        # Optional repro.obs.profile.WallClockProfiler; when set, each
        # userspace op is attributed to a "map_ops" section.
        self.profiler = None

    @property
    def name(self):
        return self.bpf_map.name

    def op_latency_us(self, contended=False):
        """Modeled latency of one userspace map operation."""
        if self.placement == OFFLOAD:
            base = self.nic_spec.offload_map_access_us
            extra = self.nic_spec.offload_map_contended_extra_us
        else:
            base = self.costs.host_map_access_us
            extra = self.costs.host_map_contended_extra_us
        return base + (extra if contended else 0.0)

    def _account(self, contended, op):
        self.userspace_ops += 1
        latency = self.op_latency_us(contended)
        self.userspace_time_us += latency
        metrics = self._metrics
        if metrics is not None:
            metrics[op].inc()
            if contended:
                metrics["contended"].inc()
            metrics["op_latency_us"].observe(latency)

    # -- userspace API (syr_map_* of Table 1) ---------------------------
    def lookup(self, key, contended=False):
        profiler = self.profiler
        if profiler is None:
            self._account(contended, "lookups")
            return self.bpf_map.lookup(key)
        profiler.push("map_ops")
        try:
            self._account(contended, "lookups")
            return self.bpf_map.lookup(key)
        finally:
            profiler.pop()

    def update(self, key, value, contended=False):
        profiler = self.profiler
        if profiler is None:
            self._account(contended, "updates")
            self.bpf_map.update(key, value)
            return
        profiler.push("map_ops")
        try:
            self._account(contended, "updates")
            self.bpf_map.update(key, value)
        finally:
            profiler.pop()

    def delete(self, key, contended=False):
        profiler = self.profiler
        if profiler is None:
            self._account(contended, "deletes")
            return self.bpf_map.delete(key)
        profiler.push("map_ops")
        try:
            self._account(contended, "deletes")
            return self.bpf_map.delete(key)
        finally:
            profiler.pop()

    def atomic_add(self, key, delta, contended=False):
        profiler = self.profiler
        if profiler is None:
            self._account(contended, "atomic_adds")
            return self.bpf_map.atomic_add(key, delta)
        profiler.push("map_ops")
        try:
            self._account(contended, "atomic_adds")
            return self.bpf_map.atomic_add(key, delta)
        finally:
            profiler.pop()

    def items(self):
        return self.bpf_map.items()

    def __repr__(self):
        return f"<SyrupMap {self.path} placement={self.placement}>"


class MapRegistry:
    """Pin/open maps by path with owner-based permissions."""

    def __init__(self, costs, nic_spec, obs=None):
        self.costs = costs
        self.nic_spec = nic_spec
        self.obs = obs
        # Profiler propagated into maps created after attach (see
        # repro.obs.profile.attach).
        self.profiler = None
        self._pinned = {}

    @staticmethod
    def pin_path(app_name, map_name):
        return f"/sys/fs/bpf/syrup/{app_name}/{map_name}"

    def create(self, app_name, map_name, size=256, kind="hash",
               placement=HOST, shared=False):
        """Create and pin a map owned by ``app_name``.

        Re-creating an existing path returns the existing map (programs of
        one app share maps by name, paper §3.4).
        """
        path = self.pin_path(app_name, map_name)
        existing = self._pinned.get(path)
        if existing is not None:
            return existing
        if kind == "array":
            raw = ArrayMap(map_name, size)
        elif kind == "hash":
            raw = HashMap(map_name, size)
        else:
            raise ValueError(f"unknown map kind {kind!r}")
        metrics = None
        if self.obs is not None and self.obs.enabled:
            reg = self.obs.registry
            metrics = {
                op: reg.counter(app_name, "maps", f"{map_name}.{op}")
                for op in ("lookups", "updates", "deletes", "atomic_adds",
                           "contended")
            }
            metrics["op_latency_us"] = reg.histogram(
                app_name, "maps", f"{map_name}.op_latency_us"
            )
        syrup_map = SyrupMap(
            raw, owner=app_name, path=path, placement=placement,
            costs=self.costs, nic_spec=self.nic_spec, shared=shared,
            metrics=metrics,
        )
        syrup_map.profiler = self.profiler
        self._pinned[path] = syrup_map
        return syrup_map

    def open(self, path, app_name):
        """Open a pinned map; filesystem-permission check (paper §3.4)."""
        syrup_map = self._pinned.get(path)
        if syrup_map is None:
            raise KeyError(f"no map pinned at {path}")
        if syrup_map.owner != app_name and not syrup_map.shared:
            raise PermissionDenied(
                f"app {app_name!r} may not open {path} (owner "
                f"{syrup_map.owner!r}, private)"
            )
        return syrup_map

    def paths(self):
        return sorted(self._pinned)
