"""Executor maps (paper §3.3, §4.4).

A policy's ``schedule`` returns a ``uint32`` key into a hook-specific Map of
available executors, set up by syrupd at deploy time.  Applications control
the index each executor occupies ("the application controls the map index
used for each socket") — e.g. add sockets after ``bind()``.  For hardware
hooks, syrupd statically allocates core/queue ids per application.
"""

from repro.constants import MAX_EXECUTOR_INDEX

__all__ = ["ExecutorMap"]


class ExecutorMap:
    """index -> executor object (socket, core id, NIC queue id)."""

    def __init__(self, name, max_entries=256):
        self.name = name
        self.max_entries = max_entries
        self._slots = {}
        self.invalid_lookups = 0

    def set(self, index, executor):
        if not 0 <= index < min(self.max_entries, MAX_EXECUTOR_INDEX):
            raise KeyError(
                f"executor index {index} out of range for {self.name!r}"
            )
        self._slots[index] = executor

    def remove(self, index):
        self._slots.pop(index, None)

    def resolve(self, index):
        """Look up an executor; None when the policy returned an index the
        app never populated (the decision then falls back to PASS)."""
        executor = self._slots.get(index)
        if executor is None:
            self.invalid_lookups += 1
        return executor

    def populate(self, executors):
        """Bulk-populate indices 0..n-1."""
        for i, executor in enumerate(executors):
            self.set(i, executor)

    def indices(self):
        """Populated indices, ascending."""
        return sorted(self._slots)

    def values(self):
        """Executors in ascending index order."""
        return [self._slots[i] for i in self.indices()]

    def __len__(self):
        return len(self._slots)

    def __contains__(self, index):
        return index in self._slots

    def __repr__(self):
        return f"<ExecutorMap {self.name} entries={len(self._slots)}>"
