"""Late binding for socket selection (paper §6.3).

Why this module exists in the dispatch path: early binding (the default
:class:`~repro.core.hooks.HookSite` behavior) chooses a packet's executor
at *arrival* time, which can strand a short request behind a long one in
the chosen socket — the intra-socket head-of-line blocking Figure 6's
SCAN-heavy tails come from.  Late binding inverts the decision: inputs
are buffered centrally and the matching function runs when an *executor*
becomes available — "when a thread calls recvmsg on a socket" —
eliminating that blocking at the cost of a central queue.

Implementation, in dispatch order:

1. A :class:`LateBinder` installs a hook-site-compatible shim at the
   Socket Select slot (it satisfies the same ``decide``/``cost_us``
   protocol the netstack expects of a :class:`HookSite`), steering every
   owned-port datagram into a central buffer — a pseudo-socket with a
   large backlog.
2. Each server thread's work source is rewired to pull from that buffer
   when its own socket is empty, so a freed executor immediately runs the
   user-supplied ``pick(thread_index, buffered_packets)`` matching
   function to choose *which buffered input* it takes (default: FCFS;
   :func:`shortest_first_pick` models SITA-style service-time awareness).

Because the shim bypasses the regular hook site, it carries its own
observability: with machine ``metrics=True`` the binder counts
``late_bind_buffered`` / ``late_bind_drops`` under the deploying app's
``socket_select`` scope (docs/observability.md).
"""

from collections import deque

from repro.obs import DISABLED

__all__ = ["LateBinder", "fcfs_pick", "shortest_first_pick"]


def fcfs_pick(thread_index, packets):
    """Default late-binding policy: first come, first served."""
    return 0


def shortest_first_pick(thread_index, packets):
    """Prefer the buffered request with the smallest expected service time.

    Peeks at the request type like SITA does; a useful policy when a few
    long requests would otherwise delay many short ones.
    """
    best = 0
    best_service = None
    for i, packet in enumerate(packets):
        request = packet.request
        service = request.service_us if request is not None else 0.0
        if best_service is None or service < best_service:
            best, best_service = i, service
    return best


class _BufferTarget:
    """The pseudo-socket the hook steers into: append + wake an idle thread."""

    __slots__ = ("binder",)

    def __init__(self, binder):
        self.binder = binder

    def enqueue(self, packet):
        return self.binder._buffer_packet(packet)


class _HookSiteShim:
    """Socket-select hook protocol: always target the central buffer."""

    hook = "socket_select"

    def __init__(self, binder, ports):
        self.binder = binder
        self.ports = set(ports)
        self.target = _BufferTarget(binder)

    def decide(self, packet):
        if packet.dst_port in self.ports:
            return ("target", self.target)
        return ("none", None)

    def cost_us(self, packet):
        return 0.1 if packet.dst_port in self.ports else 0.0


class _ChainedSource:
    """Thread work source: own socket first, then the shared buffer."""

    __slots__ = ("binder", "index", "inner")

    def __init__(self, binder, index, inner):
        self.binder = binder
        self.index = index
        self.inner = inner

    def pull(self):
        item = self.inner.pull()
        if item is not None:
            return item
        packet = self.binder._take(self.index)
        if packet is None:
            return None
        # route through the server's costing/markings via the inner source
        self.inner.socket.queue.append(packet)
        return self.inner.pull()

    def complete(self, token):
        self.inner.complete(token)


class LateBinder:
    def __init__(self, machine, app, server, pick=None, capacity=4096):
        self.machine = machine
        self.server = server
        self.pick = pick or fcfs_pick
        self.capacity = capacity
        self.buffer = deque()
        self.drops = 0
        self.buffered_total = 0
        registry = (getattr(machine, "obs", None) or DISABLED).registry
        self._m_buffered = registry.counter(
            app.name, "socket_select", "late_bind_buffered"
        )
        self._m_drops = registry.counter(
            app.name, "socket_select", "late_bind_drops"
        )
        shim = _HookSiteShim(self, app.ports)
        if machine.netstack.socket_select_hook is not None:
            raise ValueError(
                "late binding replaces the Socket Select hook; undeploy the "
                "early-binding policy first"
            )
        machine.netstack.socket_select_hook = shim
        for i, thread in enumerate(server.threads):
            thread.source = _ChainedSource(self, i, thread.source)

    # ------------------------------------------------------------------
    def _buffer_packet(self, packet):
        if len(self.buffer) >= self.capacity:
            self.drops += 1
            self._m_drops.inc()
            return False
        self.buffer.append(packet)
        self.buffered_total += 1
        self._m_buffered.inc()
        for thread in self.server.threads:
            if thread.state == "blocked":
                thread.wake()
                break
        return True

    def _take(self, thread_index):
        if not self.buffer:
            return None
        index = self.pick(thread_index, self.buffer)
        if not 0 <= index < len(self.buffer):
            index = 0
        if index == 0:
            return self.buffer.popleft()
        packet = self.buffer[index]
        del self.buffer[index]
        return packet

    def __len__(self):
        return len(self.buffer)
