"""Late binding for socket selection (paper §6.3).

Early binding (the default): a packet's executor is chosen at arrival time,
which can strand a short request behind a long one in the chosen socket.
Late binding buffers inputs centrally and runs the matching function when an
*executor* becomes available — "when a thread calls recvmsg on a socket" —
eliminating intra-socket head-of-line blocking at the cost of a central
queue.

Implementation: a :class:`LateBinder` installs a hook-site-compatible object
at the Socket Select slot that steers every datagram into a central buffer
(a pseudo-socket with a large backlog), and rewires each server thread's
work source to pull from that buffer when its own socket is empty.  The
user-supplied ``pick(thread_index, buffered_packets)`` matching function
chooses *which buffered input* the free executor takes (default: FCFS).
"""

from collections import deque

__all__ = ["LateBinder", "fcfs_pick", "shortest_first_pick"]


def fcfs_pick(thread_index, packets):
    """Default late-binding policy: first come, first served."""
    return 0


def shortest_first_pick(thread_index, packets):
    """Prefer the buffered request with the smallest expected service time.

    Peeks at the request type like SITA does; a useful policy when a few
    long requests would otherwise delay many short ones.
    """
    best = 0
    best_service = None
    for i, packet in enumerate(packets):
        request = packet.request
        service = request.service_us if request is not None else 0.0
        if best_service is None or service < best_service:
            best, best_service = i, service
    return best


class _BufferTarget:
    """The pseudo-socket the hook steers into: append + wake an idle thread."""

    __slots__ = ("binder",)

    def __init__(self, binder):
        self.binder = binder

    def enqueue(self, packet):
        return self.binder._buffer_packet(packet)


class _HookSiteShim:
    """Socket-select hook protocol: always target the central buffer."""

    hook = "socket_select"

    def __init__(self, binder, ports):
        self.binder = binder
        self.ports = set(ports)
        self.target = _BufferTarget(binder)

    def decide(self, packet):
        if packet.dst_port in self.ports:
            return ("target", self.target)
        return ("none", None)

    def cost_us(self, packet):
        return 0.1 if packet.dst_port in self.ports else 0.0


class _ChainedSource:
    """Thread work source: own socket first, then the shared buffer."""

    __slots__ = ("binder", "index", "inner")

    def __init__(self, binder, index, inner):
        self.binder = binder
        self.index = index
        self.inner = inner

    def pull(self):
        item = self.inner.pull()
        if item is not None:
            return item
        packet = self.binder._take(self.index)
        if packet is None:
            return None
        # route through the server's costing/markings via the inner source
        self.inner.socket.queue.append(packet)
        return self.inner.pull()

    def complete(self, token):
        self.inner.complete(token)


class LateBinder:
    def __init__(self, machine, app, server, pick=None, capacity=4096):
        self.machine = machine
        self.server = server
        self.pick = pick or fcfs_pick
        self.capacity = capacity
        self.buffer = deque()
        self.drops = 0
        self.buffered_total = 0
        shim = _HookSiteShim(self, app.ports)
        if machine.netstack.socket_select_hook is not None:
            raise ValueError(
                "late binding replaces the Socket Select hook; undeploy the "
                "early-binding policy first"
            )
        machine.netstack.socket_select_hook = shim
        for i, thread in enumerate(server.threads):
            thread.source = _ChainedSource(self, i, thread.source)

    # ------------------------------------------------------------------
    def _buffer_packet(self, packet):
        if len(self.buffer) >= self.capacity:
            self.drops += 1
            return False
        self.buffer.append(packet)
        self.buffered_total += 1
        for thread in self.server.threads:
            if thread.state == "blocked":
                thread.wake()
                break
        return True

    def _take(self, thread_index):
        if not self.buffer:
            return None
        index = self.pick(thread_index, self.buffer)
        if not 0 <= index < len(self.buffer):
            index = 0
        if index == 0:
            return self.buffer.popleft()
        packet = self.buffer[index]
        del self.buffer[index]
        return packet

    def __len__(self):
        return len(self.buffer)
