"""Shadow deployment and SLO-gated canary promotion.

The PR-3 health layer (:mod:`repro.core.health`) can quarantine and
roll *back*; this module is the missing production primitive for
rolling *forward* safely.  A candidate policy enters the system in
**shadow**: it sees every live input the active policy sees — hook
events, qdisc rank calls, ToR steering decisions — but its verdicts
are only *recorded*, never enforced.  A :class:`DecisionDiff`
accumulates the agreement rate, a per-action confusion matrix, and the
would-have-dropped / would-have-kept deltas, plus a shadow latency
estimate from the candidate's cycle profile.  A
:class:`CanaryController` registered on the PR-7 ``SignalBus`` then
walks the candidate through the stages

    shadow → canary (N% of flows) → active

gating every transition on an SLO guard (burn rate ok, agreement ≥
threshold, zero candidate runtime faults in the window) and rejecting
— or, post-promotion, demoting through the PR-3 ``LifecycleManager``
— on any breach.  The canary split is a **deterministic flow hash**:
one request is in the cohort on every machine and at every layer, and
the bucket is stamped on the request the first time it is computed so
per-port ToR rules never double-hash a flow.

Nothing here touches a default run: taps, records, and controllers are
only allocated by ``Syrupd.deploy_shadow`` /
``Fleet.deploy_shadow_steering``, and runs with no shadow deployments
are bit-identical to pre-shadow builds (audited in
``tests/test_promote.py``).
"""

from repro.constants import DROP, PASS
from repro.obs.sketch import DDSketch

__all__ = [
    "STAGES",
    "STAGE_CODES",
    "CanaryController",
    "CanarySplit",
    "DecisionDiff",
    "PromotionRecord",
    "ShadowTap",
    "cohort_bucket",
    "hook_label",
    "rank_label",
    "steer_label",
]

#: Stages a candidate can be in.  ``rejected`` and ``demoted`` are
#: terminal; ``active`` becomes terminal once probation expires.
STAGES = ("shadow", "canary", "active", "rejected", "demoted")
STAGE_CODES = {stage: i for i, stage in enumerate(STAGES)}

#: Distinct golden-ratio multiplier (plus an avalanche finisher) so the
#: canary split is statistically independent of ``FlowHashSteering``'s
#: placement hash — a flow's machine must not predict its cohort.
_CANARY_GOLDEN = 0x9E3779B9
_DEFAULT_SALT = 0x5EED


def cohort_bucket(key, salt=_DEFAULT_SALT):
    """Deterministic bucket in [0, 100) for one flow key."""
    h = ((key ^ salt) * _CANARY_GOLDEN) & 0xFFFFFFFF
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & 0xFFFFFFFF
    h ^= h >> 16
    return h % 100


def hook_label(value):
    """Classify a network-hook verdict for the confusion matrix."""
    if value == PASS:
        return "pass"
    if value == DROP:
        return "drop"
    return "steer"


def rank_label(value):
    """Classify a qdisc rank verdict for the confusion matrix."""
    if value == PASS:
        return "fifo"
    if value == DROP:
        return "shed"
    return "rank"


def steer_label(value):
    """Classify a ToR steering verdict for the confusion matrix."""
    if value is None or value == PASS:
        return "pass"
    if value == DROP:
        return "drop"
    return "steer"


class CanarySplit:
    """Deterministic flow-hash cohort assignment, stamped once.

    The bucket is computed from the flow identity — ``(src_ip,
    src_port)`` for packets, ``user_id`` for fleet requests — and
    written to ``request.cohort`` on first use.  Every later layer
    (per-port ToR rules, qdisc taps, the controller's latency
    bookkeeping) reads the stamp instead of re-hashing, which is what
    keeps per-port switch isolation from double-hashing canary flows.
    """

    __slots__ = ("salt",)

    def __init__(self, salt=_DEFAULT_SALT):
        self.salt = salt

    def bucket(self, element):
        request = getattr(element, "request", None)
        if request is not None:
            if request.cohort is None:
                request.cohort = self._bucket_of(element)
            return request.cohort
        cohort = getattr(element, "cohort", None)
        if cohort is not None:
            return cohort
        bucket = self._bucket_of(element)
        try:
            element.cohort = bucket
        except AttributeError:
            pass  # bare test inputs without a cohort slot
        return bucket

    def _bucket_of(self, element):
        flow = getattr(element, "flow", None)
        if flow is not None:
            key = ((flow.src_ip & 0xFFFFFFFF) << 16) ^ flow.src_port
        else:
            key = getattr(element, "user_id", None)
            if key is None:
                return 100  # no flow identity: never in any cohort
        return cohort_bucket(key, self.salt)


class DecisionDiff:
    """Shadow-vs-active decision log: agreement, confusion, deltas."""

    __slots__ = ("decisions", "agreements", "confusion",
                 "would_drop", "would_keep", "shadow_faults",
                 "shadow_cycles")

    def __init__(self):
        self.decisions = 0
        self.agreements = 0
        #: ``(active_label, shadow_label) -> count``
        self.confusion = {}
        #: active kept it, shadow would have dropped/shed it
        self.would_drop = 0
        #: active dropped/shed it, shadow would have kept it
        self.would_keep = 0
        self.shadow_faults = 0
        self.shadow_cycles = 0.0

    def record(self, active_value, shadow_value, active_label,
               shadow_label, cycles):
        self.decisions += 1
        if active_value == shadow_value:
            self.agreements += 1
        key = (active_label, shadow_label)
        self.confusion[key] = self.confusion.get(key, 0) + 1
        dropped = ("drop", "shed")
        if shadow_label in dropped and active_label not in dropped:
            self.would_drop += 1
        elif active_label in dropped and shadow_label not in dropped:
            self.would_keep += 1
        self.shadow_cycles += cycles

    def agreement(self):
        return self.agreements / self.decisions if self.decisions else 1.0

    def mean_cycles(self):
        return self.shadow_cycles / self.decisions if self.decisions else 0.0

    def snapshot(self):
        return {
            "decisions": self.decisions,
            "agreement": round(self.agreement(), 4),
            "confusion": {f"{a}->{s}": n
                          for (a, s), n in sorted(self.confusion.items())},
            "would_drop": self.would_drop,
            "would_keep": self.would_keep,
            "shadow_faults": self.shadow_faults,
            "mean_cycles": round(self.mean_cycles(), 1),
        }


class ShadowTap:
    """Per-attachment (or per-qdisc) tap running one candidate.

    ``pick_program`` sits on the dispatch path: during the canary
    stage it swaps the candidate in for cohort flows (enforced, so its
    faults surface through the normal ``fault_listener`` path with the
    faulting program attached); otherwise the active program runs.
    ``observe`` then shadow-executes the candidate on every input the
    active program decided, with exceptions contained and counted —
    a shadow fault can never drop a live packet.
    """

    __slots__ = ("record", "candidate", "classify", "split")

    def __init__(self, record, classify):
        self.record = record
        self.candidate = record.candidate
        self.classify = classify
        self.split = record.split

    def pick_program(self, active_program, element):
        record = self.record
        if record.stage != "canary":
            return active_program
        if self.split.bucket(element) < record.canary_pct:
            record.canary_enforced += 1
            return self.candidate
        return active_program

    def observe(self, active_value, element, ctx=None):
        record = self.record
        try:
            shadow_value = self.candidate.run(
                ctx if ctx is not None else element)
        except Exception as exc:  # VmFault or candidate bug: contained
            record.note_candidate_fault(exc, enforced=False)
            return
        classify = self.classify
        record.diff.record(
            active_value, shadow_value,
            classify(active_value), classify(shadow_value),
            self.candidate.cycle_estimate,
        )


class PromotionRecord:
    """One candidate's journey through the promotion pipeline."""

    def __init__(self, name, app_name, hook, candidate, deployed,
                 canary_pct=10, salt=_DEFAULT_SALT, created_at=0.0):
        self.name = name
        self.app_name = app_name
        self.hook = hook
        self.candidate = candidate
        #: the active ``DeployedPolicy`` being challenged
        self.deployed = deployed
        self.stage = "shadow"
        self.stage_since = created_at
        self.canary_pct = canary_pct
        self.split = CanarySplit(salt)
        self.diff = DecisionDiff()
        self.canary_enforced = 0
        #: faults while *enforced* (canary cohort); shadow-stage faults
        #: are contained and counted in ``diff.shadow_faults``.
        self.canary_faults = 0
        self.outcome_reason = None
        self.history = [(created_at, "shadow", "deployed")]
        #: dispatch points (attachments / qdiscs / steering wrappers)
        #: carrying this record's tap; cleared on promote/reject.
        self.tap_points = []
        self.controller = None

    def note_candidate_fault(self, exc, enforced):
        if enforced:
            self.canary_faults += 1
        else:
            self.diff.shadow_faults += 1

    def total_faults(self):
        return self.canary_faults + self.diff.shadow_faults

    def advance(self, stage, now, reason):
        self.stage = stage
        self.stage_since = now
        if stage in ("rejected", "demoted"):
            self.outcome_reason = reason
        self.history.append((now, stage, reason))

    def snapshot(self):
        return {
            "name": self.name,
            "app": self.app_name,
            "hook": self.hook,
            "stage": self.stage,
            "stage_since_us": self.stage_since,
            "canary_pct": self.canary_pct,
            "canary_enforced": self.canary_enforced,
            "canary_faults": self.canary_faults,
            "reason": self.outcome_reason,
            "diff": self.diff.snapshot(),
            "history": [{"t_us": t, "stage": s, "reason": r}
                        for t, s, r in self.history],
        }


class CanaryController:
    """SLO-gated promotion state machine, run on the SignalBus cadence.

    Registered as a zero-arg controller named ``promo:<name>``.  Each
    tick it publishes ``(promo, <name>, *)`` gauges, then evaluates the
    current stage's gate:

    - **shadow → canary** once ``min_decisions`` decisions accumulated
      with agreement ≥ ``agreement_min``, zero candidate faults, the
      SLO guard green, and ``hold_ticks`` ticks in stage.  Agreement
      below threshold or any shadow fault rejects immediately.
    - **canary → active** once ``min_canary`` cohort latencies are
      recorded and the cohort p99 is within ``latency_ratio`` × the
      control cohort's p99 (plus ``latency_slack_us``), still
      zero candidate faults and guard green.  A cohort p99 blowout,
      a candidate fault while enforced, or a guard breach rejects.
    - **active (probation)** for ``probation_ticks`` ticks a guard
      breach demotes through ``LifecycleManager`` (last-known-good
      rollback); after probation the controller unregisters itself.
    """

    def __init__(self, syrupd, record, guard=None, agreement_min=0.98,
                 min_decisions=200, min_canary=100, latency_ratio=1.5,
                 latency_slack_us=50.0, hold_ticks=2, probation_ticks=4,
                 registry=None):
        self.syrupd = syrupd
        self.record = record
        self.guard = guard
        self.agreement_min = agreement_min
        self.min_decisions = min_decisions
        self.min_canary = min_canary
        self.latency_ratio = latency_ratio
        self.latency_slack_us = latency_slack_us
        self.hold_ticks = hold_ticks
        self.probation_ticks = probation_ticks
        self.registry = registry
        self.control_sketch = DDSketch()
        self.canary_sketch = DDSketch()
        self.bus = None
        self._ticks_in_stage = 0
        self._probation_left = probation_ticks
        self._done = False

    @property
    def ctl_name(self):
        return f"promo:{self.record.name}"

    # ------------------------------------------------------------------
    # latency bookkeeping (wired to the generator's on_latency callback)

    def observe(self, request, latency_us):
        """Record one completed request into its cohort sketch."""
        record = self.record
        if record.stage != "canary":
            return
        cohort = getattr(request, "cohort", None)
        if cohort is None:
            return
        if cohort < record.canary_pct:
            self.canary_sketch.add(latency_us)
        else:
            self.control_sketch.add(latency_us)

    # ------------------------------------------------------------------
    # gate evaluation

    def guard_ok(self):
        return True if self.guard is None else bool(self.guard())

    def __call__(self):
        if self._done:
            return
        record = self.record
        self._ticks_in_stage += 1
        stage = record.stage
        if stage == "shadow":
            self._tick_shadow(record)
        elif stage == "canary":
            self._tick_canary(record)
        elif stage == "active":
            self._tick_probation(record)
        else:  # rejected / demoted behind our back
            self._finish()
        self.publish()

    def _tick_shadow(self, record):
        if record.total_faults() > 0:
            self._reject("shadow_fault")
            return
        diff = record.diff
        if diff.decisions < self.min_decisions:
            return
        if diff.agreement() < self.agreement_min:
            self._reject("agreement")
            return
        if self._ticks_in_stage >= self.hold_ticks and self.guard_ok():
            self.syrupd.advance_shadow(record, "canary")
            self._ticks_in_stage = 0

    def _tick_canary(self, record):
        if record.canary_faults > 0:
            self._reject("canary_fault")
            return
        if record.diff.shadow_faults > 0:
            self._reject("shadow_fault")
            return
        if not self.guard_ok():
            self._reject("slo_guard")
            return
        if (self.canary_sketch.count < self.min_canary
                or self.control_sketch.count < self.min_canary
                or self._ticks_in_stage < self.hold_ticks):
            return
        canary_p99 = self.canary_sketch.percentile(99.0)
        control_p99 = self.control_sketch.percentile(99.0)
        ceiling = self.latency_ratio * control_p99 + self.latency_slack_us
        if canary_p99 > ceiling:
            self._reject("canary_p99")
            return
        self.syrupd.promote_shadow(record)
        self._ticks_in_stage = 0
        self._probation_left = self.probation_ticks
        if self._probation_left == 0:
            self._finish()

    def _tick_probation(self, record):
        if not self.guard_ok():
            self.syrupd.demote_shadow(record, "slo_breach")
            self._finish()
            return
        self._probation_left -= 1
        if self._probation_left <= 0:
            self._finish()

    def _reject(self, reason):
        self.syrupd.reject_shadow(self.record, reason)
        self._finish()

    def _finish(self):
        self._done = True
        if self.bus is not None:
            self.bus.remove_controller(self.ctl_name)

    # ------------------------------------------------------------------
    # gauges

    def publish(self):
        registry = self.registry
        if registry is None:
            return
        record = self.record
        name = record.name
        diff = record.diff
        gauge = registry.gauge
        gauge("promo", name, "stage").set(STAGE_CODES[record.stage])
        gauge("promo", name, "decisions").set(diff.decisions)
        gauge("promo", name, "agreement").set(round(diff.agreement(), 4))
        gauge("promo", name, "shadow_faults").set(diff.shadow_faults)
        gauge("promo", name, "canary_faults").set(record.canary_faults)
        gauge("promo", name, "canary_enforced").set(record.canary_enforced)
        if self.canary_sketch.count:
            gauge("promo", name, "canary_p99_us").set(
                round(self.canary_sketch.percentile(99.0), 1))
        if self.control_sketch.count:
            gauge("promo", name, "control_p99_us").set(
                round(self.control_sketch.percentile(99.0), 1))
        costs = getattr(self.syrupd.machine, "costs", None)
        if costs is not None:
            gauge("promo", name, "shadow_cost_us").set(
                round(costs.cycles_to_us(diff.mean_cycles()), 4))
