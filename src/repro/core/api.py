"""The application-facing Syrup API (paper Table 1).

An :class:`App` is what ``syr_register`` hands back: the object through
which an application deploys policies, opens/creates Maps, registers its
sockets as executors, and registers threads for thread scheduling.  The
free functions at the bottom mirror Table 1's C names one-to-one for
readers following along with the paper.
"""

from repro.core.executors import ExecutorMap
from repro.core.hooks import Hook

__all__ = [
    "App",
    "syr_map_close",
    "syr_map_lookup_elem",
    "syr_map_open",
    "syr_map_update_elem",
]


class App:
    """A registered application and its Syrup resources."""

    def __init__(self, syrupd, name, ports):
        self.syrupd = syrupd
        self.name = name
        self.ports = list(ports)
        self.threads = []
        self.enclave = None
        self._executor_maps = {}

    # ------------------------------------------------------------------
    # Table 1: syr_deploy_policy
    # ------------------------------------------------------------------
    def deploy_policy(self, policy, hook, constants=None, ports=None):
        """Deploy a scheduling policy to a hook (see Syrupd.deploy_policy)."""
        return self.syrupd.deploy_policy(
            self, policy, hook, constants=constants, ports=ports
        )

    def undeploy_policy(self, hook):
        """Remove this app's deployment(s) at ``hook`` (Syrupd.undeploy)."""
        return self.syrupd.undeploy(self, hook)

    def redeploy_policy(self, policy, hook, constants=None, ports=None):
        """Hot-swap the program at an active hook (Syrupd.redeploy)."""
        return self.syrupd.redeploy(
            self, policy, hook, constants=constants, ports=ports
        )

    def deploy_qdisc(self, policy, layer, backend="pifo", constants=None,
                     ports=None, targets=None, backend_kwargs=None):
        """Deploy a rank function as a queueing discipline at ``layer``
        (see :meth:`repro.core.syrupd.Syrupd.deploy_qdisc`)."""
        return self.syrupd.deploy_qdisc(
            self, policy, layer, backend=backend, constants=constants,
            ports=ports, targets=targets, backend_kwargs=backend_kwargs,
        )

    def undeploy_qdisc(self, layer):
        """Remove this app's discipline(s) at ``layer``."""
        from repro.qdisc.discipline import qdisc_hook

        return self.syrupd.undeploy(self, qdisc_hook(layer))

    def deploy_shadow(self, policy, hook=None, layer=None, **kwargs):
        """Run a candidate policy in shadow against this app's active
        deployment at ``hook`` or qdisc ``layer``; returns the
        :class:`~repro.core.promote.PromotionRecord` (see
        :meth:`repro.core.syrupd.Syrupd.deploy_shadow`)."""
        return self.syrupd.deploy_shadow(
            self, policy, hook=hook, layer=layer, **kwargs
        )

    # ------------------------------------------------------------------
    # Maps
    # ------------------------------------------------------------------
    def create_map(self, name, size=256, kind="hash", placement="host",
                   shared=False):
        """Create (or reopen) a map pinned under this app's path."""
        return self.syrupd.registry.create(
            self.name, name, size=size, kind=kind, placement=placement,
            shared=shared,
        )

    def map_open(self, path):
        """Open a pinned map by path; permission-checked (Table 1)."""
        return self.syrupd.registry.open(path, self.name)

    def map_path(self, map_name):
        return self.syrupd.registry.pin_path(self.name, map_name)

    # ------------------------------------------------------------------
    # Executors (paper §4.4)
    # ------------------------------------------------------------------
    def executor_map(self, hook):
        """The executor Map for one hook (created on first use)."""
        executors = self._executor_maps.get(hook)
        if executors is None:
            executors = ExecutorMap(f"{self.name}:{hook}:executors")
            self._executor_maps[hook] = executors
        return executors

    def register_socket(self, socket, index, hook=Hook.SOCKET_SELECT):
        """Register a socket at an executor-map index the app chooses."""
        if socket.app not in (None, self.name):
            raise PermissionError(
                f"socket belongs to app {socket.app!r}, not {self.name!r}"
            )
        socket.app = self.name
        self.executor_map(hook).set(index, socket)

    def register_thread(self, thread):
        """Register a thread for Thread Scheduler policies (ghOSt)."""
        thread.app = self.name
        self.threads.append(thread)
        if self.enclave is not None:
            self.enclave.register(thread)

    def __repr__(self):
        return f"<App {self.name!r} ports={self.ports}>"


# ----------------------------------------------------------------------
# Table-1-style free functions (thin veneers over the object API)
# ----------------------------------------------------------------------
def syr_map_open(app, path):
    """Open the Map pinned to ``path``; returns a map handle (map_fd)."""
    return app.map_open(path)


def syr_map_close(map_handle):
    """Close a map handle.  Handles hold no OS state here; provided for
    API parity with Table 1."""
    return 0


def syr_map_lookup_elem(map_handle, key):
    """Return the value associated with ``key`` (None when absent)."""
    return map_handle.lookup(key)


def syr_map_update_elem(map_handle, key, value):
    """Store ``value`` at ``key``; returns 0 on success."""
    map_handle.update(key, value)
    return 0
