"""Hook sites with per-application dispatch — the datapath's front door.

Every scheduling decision in the system flows through one of these
objects.  A policy deployed by :mod:`repro.core.syrupd` never attaches to
a hook directly; it is installed behind the hook site's *root dispatcher*,
which implements §4.3's isolation mechanism literally: the site holds a
``PROG_ARRAY`` map of loaded policy programs plus port-matching rules, and
for each input the dispatcher matches the destination port and tail-calls
the owning application's program.  A policy therefore only ever sees
inputs destined to its own application's ports.

Dispatch path for one packet (the place to look when a decision seems
wrong):

1. ``decide(packet)`` looks up the packet's destination port in the port
   rules.  No rule → ``("none", None)`` and the substrate falls back to
   its default behavior (a *dispatch miss*, counted per hook).
2. The matched attachment's program is fetched from the ``PROG_ARRAY``
   and run (:class:`repro.ebpf.program.LoadedProgram` — interpreter while
   profiling, JIT after).
3. The u32 decision is enforced: ``PASS`` defers to the default policy,
   ``DROP`` discards, and any other value indexes the app's executor map.
   An index the app never populated (an *index miss*) falls back to PASS,
   the safest default.

The site exposes the substrate-facing protocol expected by
:mod:`repro.kernel.netstack` and :mod:`repro.net.nic`:
``decide(packet) -> (action, target)`` and ``cost_us(packet)``.

Observability: when the machine runs with ``metrics=True``, every
attachment carries per-``(app, hook)`` counters — ``schedule_calls``,
``pass`` / ``drop`` / ``steer`` outcomes, ``index_miss`` — and each
decision is recorded in the structured event trace (kind ``decision``).
With observability off these are shared no-op objects
(:data:`repro.obs.registry.NULL_METRIC`), keeping the per-packet path
allocation-free.  See docs/observability.md for the full catalogue.
"""

from repro.constants import DROP, PASS
from repro.ebpf.errors import VmFault
from repro.ebpf.maps import ProgArrayMap
from repro.obs import DISABLED

__all__ = ["Hook", "HookSite"]

#: App label for site-level metrics not attributable to one application.
ROOT_APP = "(root)"


class Hook:
    """The hooks of paper Figure 4."""

    THREAD_SCHED = "thread_sched"
    SOCKET_SELECT = "socket_select"
    CPU_REDIRECT = "cpu_redirect"
    XDP_SKB = "xdp_skb"
    XDP_DRV = "xdp_drv"
    XDP_OFFLOAD = "xdp_offload"

    NETWORK = (SOCKET_SELECT, CPU_REDIRECT, XDP_SKB, XDP_DRV, XDP_OFFLOAD)
    ALL = (THREAD_SCHED,) + NETWORK

    #: Hooks whose executor targets are plain integers (core / queue ids)
    #: rather than app-registered objects.
    INTEGER_EXECUTORS = (CPU_REDIRECT, XDP_OFFLOAD)


class _Attachment:
    __slots__ = ("app_name", "program", "executors", "prog_index", "fd",
                 "m_sched", "m_pass", "m_drop", "m_steer", "m_miss",
                 "m_fault", "shadow")

    def __init__(self, app_name, program, executors, prog_index, registry,
                 hook):
        self.app_name = app_name
        self.program = program
        self.executors = executors
        self.prog_index = prog_index
        self.fd = None  # deployed-policy fd, stamped by syrupd post-install
        # Optional repro.core.promote.ShadowTap running a candidate
        # policy side-by-side; installed/cleared by Syrupd.deploy_shadow.
        self.shadow = None
        self.m_sched = registry.counter(app_name, hook, "schedule_calls")
        self.m_pass = registry.counter(app_name, hook, "pass")
        self.m_drop = registry.counter(app_name, hook, "drop")
        self.m_steer = registry.counter(app_name, hook, "steer")
        self.m_miss = registry.counter(app_name, hook, "index_miss")
        self.m_fault = registry.counter(app_name, hook, "runtime_faults")


class HookSite:
    """One hook point's dispatcher (root matcher + PROG_ARRAY)."""

    def __init__(self, hook, costs, max_programs=64, obs=None):
        self.hook = hook
        self.costs = costs
        self.obs = obs if obs is not None else DISABLED
        self.prog_array = ProgArrayMap(f"{hook}:prog_array", max_programs)
        self._port_rules = {}       # dst port -> _Attachment
        self._next_index = 0
        self.pass_decisions = 0
        self.drop_decisions = 0
        self.runtime_faults = 0
        # Optional callback fn(attachment, exc, program) invoked after a
        # program raises VmFault; syrupd wires this to the lifecycle
        # manager so repeated faults can quarantine/roll back the
        # deployment (or charge a canary candidate's promotion record).
        self.fault_listener = None
        self._events = self.obs.events
        self._spans = self.obs.spans
        self._acct = self.obs.acct
        self._m_dispatch_miss = self.obs.registry.counter(
            ROOT_APP, hook, "dispatch_miss"
        )
        # Optional repro.obs.profile.WallClockProfiler; when set, each
        # decide() is attributed to a "hook_dispatch" section (program
        # execution nests into its own ebpf_* sections).
        self.profiler = None

    # ------------------------------------------------------------------
    def install(self, app_name, ports, loaded_program, executors):
        """Insert port-matching rules tail-calling the app's program."""
        index = self._next_index
        self._next_index += 1
        self.prog_array.update(index, loaded_program)
        attachment = _Attachment(
            app_name, loaded_program, executors, index, self.obs.registry,
            self.hook,
        )
        for port in ports:
            existing = self._port_rules.get(port)
            if existing is not None and existing.app_name != app_name:
                raise PermissionError(
                    f"port {port} already claimed by app "
                    f"{existing.app_name!r} at hook {self.hook}"
                )
            self._port_rules[port] = attachment
        return attachment

    def uninstall(self, app_name, ports):
        for port in ports:
            attachment = self._port_rules.get(port)
            if attachment is not None and attachment.app_name == app_name:
                del self._port_rules[port]

    def replace(self, app_name, loaded_program):
        """Hot-swap ``app_name``'s program in place (redeploy/rollback).

        Port rules, executor maps and PROG_ARRAY slots are kept; only the
        tail-call target changes — packets in flight before the swap ran
        the old program, packets after run the new one.  Returns the
        number of attachments updated.
        """
        swapped = []
        for port in sorted(self._port_rules):
            attachment = self._port_rules[port]
            if attachment.app_name != app_name or attachment in swapped:
                continue
            self.prog_array.update(attachment.prog_index, loaded_program)
            attachment.program = loaded_program
            swapped.append(attachment)
        return len(swapped)

    def attachment_for_port(self, port):
        return self._port_rules.get(port)

    def attachments_for(self, app_name):
        """The app's distinct attachments, in port order (shadow taps)."""
        seen = []
        for port in sorted(self._port_rules):
            attachment = self._port_rules[port]
            if attachment.app_name == app_name and attachment not in seen:
                seen.append(attachment)
        return seen

    # -- substrate-facing protocol --------------------------------------
    def decide(self, packet):
        profiler = self.profiler
        if profiler is None:
            return self._decide(packet)
        profiler.push("hook_dispatch")
        try:
            return self._decide(packet)
        finally:
            profiler.pop()

    def _decide(self, packet):
        attachment = self._port_rules.get(packet.dst_port)
        if attachment is None:
            self._m_dispatch_miss.inc()
            return ("none", None)
        # root dispatcher tail call
        program = self.prog_array.lookup(attachment.prog_index)
        shadow = attachment.shadow
        if shadow is not None:
            # Canary stage: cohort flows run the candidate *enforced*;
            # everything else stays on the active program.
            program = shadow.pick_program(program, packet)
        try:
            value = program.run(packet)
        except VmFault as exc:
            # A faulting policy costs its *own* app the packet — the
            # XDP_ABORTED analogue — and never escapes the dispatcher
            # (§4.3 isolation).  The lifecycle manager may quarantine
            # the deployment after repeated faults (docs/robustness.md).
            return self._on_fault(attachment, packet, exc, program)
        if shadow is not None and program is attachment.program:
            # Shadow-execute the candidate on the same input; its
            # verdict is recorded in the decision diff, never enforced,
            # and its faults are contained inside the tap.
            shadow.observe(value, packet)
        attachment.m_sched.inc()
        events = self._events
        spans = self._spans
        if value == PASS:
            self.pass_decisions += 1
            attachment.m_pass.inc()
            if events.enabled:
                events.emit("decision", app=attachment.app_name,
                            hook=self.hook, port=packet.dst_port,
                            outcome="pass")
            if spans.enabled:
                spans.decision(packet, self.hook, "pass", fd=attachment.fd,
                               seq=events.emitted if events.enabled else None)
            return ("pass", None)
        if value == DROP:
            self.drop_decisions += 1
            attachment.m_drop.inc()
            if events.enabled:
                events.emit("decision", app=attachment.app_name,
                            hook=self.hook, port=packet.dst_port,
                            outcome="drop")
            if spans.enabled:
                spans.decision(packet, self.hook, "drop", fd=attachment.fd,
                               seq=events.emitted if events.enabled else None)
            return ("drop", None)
        executor = attachment.executors.resolve(value)
        if executor is None:
            # index the app never populated: safest is the default policy
            self.pass_decisions += 1
            attachment.m_miss.inc()
            if events.enabled:
                events.emit("decision", app=attachment.app_name,
                            hook=self.hook, port=packet.dst_port,
                            outcome="index_miss", value=value)
            if spans.enabled:
                spans.decision(packet, self.hook, "index_miss", value=value,
                               fd=attachment.fd,
                               seq=events.emitted if events.enabled else None)
            return ("pass", None)
        attachment.m_steer.inc()
        if events.enabled:
            events.emit("decision", app=attachment.app_name, hook=self.hook,
                        port=packet.dst_port, outcome="steer", value=value)
        if spans.enabled:
            spans.decision(packet, self.hook, "steer", value=value,
                           fd=attachment.fd,
                           seq=events.emitted if events.enabled else None)
        return ("target", executor)

    def _on_fault(self, attachment, packet, exc, program=None):
        """Contain a runtime fault: count, trace, notify, drop the input.

        ``program`` is the program that actually raised — normally the
        attachment's active program, but during a canary stage it may
        be the shadow candidate, and the listener uses the distinction
        to charge the fault to the promotion record instead of the
        active deployment's health window.
        """
        self.runtime_faults += 1
        self.drop_decisions += 1
        attachment.m_sched.inc()
        attachment.m_fault.inc()
        events = self._events
        if events.enabled:
            events.emit(
                "runtime_fault", app=attachment.app_name, hook=self.hook,
                port=packet.dst_port, error=type(exc).__name__,
                detail=str(exc),
            )
        if self._spans.enabled:
            self._spans.decision(
                packet, self.hook, "fault", fd=attachment.fd,
                seq=events.emitted if events.enabled else None,
            )
        listener = self.fault_listener
        if listener is not None:
            listener(attachment, exc, program)
        return ("drop", None)

    def cost_us(self, packet):
        attachment = self._port_rules.get(packet.dst_port)
        if attachment is None:
            return 0.0
        cost = self.costs.cycles_to_us(attachment.program.cycle_estimate)
        # Policy execution time is part of the owning tenant's bill: the
        # substrate charges this cost on the datapath, so the accountant
        # books it against the tenant whose packet triggered the program.
        self._acct.policy_exec(packet, cost)
        return cost

    def __repr__(self):
        return f"<HookSite {self.hook} ports={sorted(self._port_rules)}>"
