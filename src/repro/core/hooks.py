"""Hook sites with per-application dispatch.

Implements §4.3's isolation mechanism literally: each hook site holds a
``PROG_ARRAY`` map of loaded policy programs plus port-matching rules; the
root dispatcher matches the destination port of each input and tail-calls
the owning application's program.  A policy therefore only ever sees inputs
destined to its own application's ports.

The site exposes the substrate-facing protocol expected by
:mod:`repro.kernel.netstack` and :mod:`repro.net.nic`:
``decide(packet) -> (action, target)`` and ``cost_us(packet)``.
"""

from repro.constants import DROP, PASS
from repro.ebpf.maps import ProgArrayMap

__all__ = ["Hook", "HookSite"]


class Hook:
    """The hooks of paper Figure 4."""

    THREAD_SCHED = "thread_sched"
    SOCKET_SELECT = "socket_select"
    CPU_REDIRECT = "cpu_redirect"
    XDP_SKB = "xdp_skb"
    XDP_DRV = "xdp_drv"
    XDP_OFFLOAD = "xdp_offload"

    NETWORK = (SOCKET_SELECT, CPU_REDIRECT, XDP_SKB, XDP_DRV, XDP_OFFLOAD)
    ALL = (THREAD_SCHED,) + NETWORK

    #: Hooks whose executor targets are plain integers (core / queue ids)
    #: rather than app-registered objects.
    INTEGER_EXECUTORS = (CPU_REDIRECT, XDP_OFFLOAD)


class _Attachment:
    __slots__ = ("app_name", "program", "executors", "prog_index")

    def __init__(self, app_name, program, executors, prog_index):
        self.app_name = app_name
        self.program = program
        self.executors = executors
        self.prog_index = prog_index


class HookSite:
    """One hook point's dispatcher (root matcher + PROG_ARRAY)."""

    def __init__(self, hook, costs, max_programs=64):
        self.hook = hook
        self.costs = costs
        self.prog_array = ProgArrayMap(f"{hook}:prog_array", max_programs)
        self._port_rules = {}       # dst port -> _Attachment
        self._next_index = 0
        self.pass_decisions = 0
        self.drop_decisions = 0

    # ------------------------------------------------------------------
    def install(self, app_name, ports, loaded_program, executors):
        """Insert port-matching rules tail-calling the app's program."""
        index = self._next_index
        self._next_index += 1
        self.prog_array.update(index, loaded_program)
        attachment = _Attachment(app_name, loaded_program, executors, index)
        for port in ports:
            existing = self._port_rules.get(port)
            if existing is not None and existing.app_name != app_name:
                raise PermissionError(
                    f"port {port} already claimed by app "
                    f"{existing.app_name!r} at hook {self.hook}"
                )
            self._port_rules[port] = attachment
        return attachment

    def uninstall(self, app_name, ports):
        for port in ports:
            attachment = self._port_rules.get(port)
            if attachment is not None and attachment.app_name == app_name:
                del self._port_rules[port]

    def attachment_for_port(self, port):
        return self._port_rules.get(port)

    # -- substrate-facing protocol --------------------------------------
    def decide(self, packet):
        attachment = self._port_rules.get(packet.dst_port)
        if attachment is None:
            return ("none", None)
        # root dispatcher tail call
        program = self.prog_array.lookup(attachment.prog_index)
        value = program.run(packet)
        if value == PASS:
            self.pass_decisions += 1
            return ("pass", None)
        if value == DROP:
            self.drop_decisions += 1
            return ("drop", None)
        executor = attachment.executors.resolve(value)
        if executor is None:
            # index the app never populated: safest is the default policy
            self.pass_decisions += 1
            return ("pass", None)
        return ("target", executor)

    def cost_us(self, packet):
        attachment = self._port_rules.get(packet.dst_port)
        if attachment is None:
            return 0.0
        return self.costs.cycles_to_us(attachment.program.cycle_estimate)

    def __repr__(self):
        return f"<HookSite {self.hook} ports={sorted(self._port_rules)}>"
