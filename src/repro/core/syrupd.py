"""syrupd: the system-wide Syrup daemon (paper §3.5, §4.3).

Applications never load programs into hooks themselves; they send a request
to syrupd (in the real system over a Unix domain socket — here, a method
call standing in for that RPC).  The daemon:

1. tracks which UDP ports belong to which application and rejects
   cross-application port claims,
2. compiles the policy file to bytecode and runs the verifier,
3. creates/pins the policy's declared Maps under the owning app's path
   (NIC-resident placement for offloaded programs),
4. installs the program behind the hook's root port-matching dispatcher so
   it only ever handles the owning app's inputs, and
5. for the Thread Scheduler hook, launches a ghOSt agent restricted to the
   app's enclave.

Control-plane observability (machine ``metrics=True``): deploys,
undeploys, isolation denials and verifier rejections are counted under
the ``syrupd`` scope and recorded in the machine's event trace, and
``status()`` rows carry the live per-``(app, hook)`` metric values that
``syrupctl stats`` renders.  See docs/observability.md.
"""

from repro.core.hooks import ROOT_APP, Hook, HookSite
from repro.core.maps import HOST, OFFLOAD, MapRegistry
from repro.ebpf.compiler import compile_policy
from repro.ebpf.errors import CompileError, VerifierError
from repro.ebpf.insn import Program
from repro.ebpf.program import load_program
from repro.ghost.agent import GhostAgent
from repro.ghost.enclave import Enclave
from repro.ghost.sched import GhostScheduler
from repro.obs import DISABLED

__all__ = ["DeployedPolicy", "IsolationError", "Syrupd"]


class IsolationError(PermissionError):
    """A request violated Syrup's multi-tenancy guarantees."""


class DeployedPolicy:
    """Handle returned by deploy_policy (the paper's prog_fd)."""

    _next_fd = [3]

    def __init__(self, app_name, hook, program=None, agent=None):
        self.fd = DeployedPolicy._next_fd[0]
        DeployedPolicy._next_fd[0] += 1
        self.app_name = app_name
        self.hook = hook
        self.program = program    # LoadedProgram (network hooks)
        self.agent = agent        # GhostAgent (thread hook)

    def __repr__(self):
        return f"<DeployedPolicy fd={self.fd} app={self.app_name} hook={self.hook}>"


class Syrupd:
    def __init__(self, machine):
        self.machine = machine
        self.obs = getattr(machine, "obs", None) or DISABLED
        self.registry = MapRegistry(
            machine.costs, machine.config.nic, obs=self.obs
        )
        self.apps = {}
        self._port_owner = {}
        self._sites = {}
        self.deployed = []

    def _deny(self, detail, app=None):
        """Count + trace an isolation denial, then raise."""
        self.obs.registry.counter(
            ROOT_APP, "syrupd", "isolation_denials"
        ).inc()
        self.obs.events.emit("isolation_denial", app=app, detail=detail)
        raise IsolationError(detail)

    # ------------------------------------------------------------------
    # App registration
    # ------------------------------------------------------------------
    def register_app(self, name, ports):
        from repro.core.api import App  # local import: api builds on syrupd

        if name in self.apps:
            raise ValueError(f"app {name!r} already registered")
        for port in ports:
            owner = self._port_owner.get(port)
            if owner is not None:
                self._deny(
                    f"port {port} already owned by app {owner!r}", app=name
                )
        for port in ports:
            self._port_owner[port] = name
        app = App(self, name, ports)
        self.apps[name] = app
        self.obs.events.emit("app_registered", app=name, ports=list(ports))
        return app

    def _check_ports(self, app, ports):
        for port in ports:
            if self._port_owner.get(port) != app.name:
                self._deny(
                    f"app {app.name!r} does not own port {port}",
                    app=app.name,
                )

    # ------------------------------------------------------------------
    # Hook sites
    # ------------------------------------------------------------------
    def _site(self, hook):
        site = self._sites.get(hook)
        if site is not None:
            return site
        site = HookSite(hook, self.machine.costs, obs=self.obs)
        site.profiler = self.machine.profiler
        machine = self.machine
        if hook == Hook.SOCKET_SELECT:
            machine.netstack.socket_select_hook = site
        elif hook == Hook.CPU_REDIRECT:
            machine.netstack.cpu_redirect_hook = site
        elif hook in (Hook.XDP_SKB, Hook.XDP_DRV):
            if hook == Hook.XDP_DRV and not machine.config.nic.zero_copy:
                raise ValueError(
                    f"NIC {machine.config.nic.model!r} has no native "
                    "(driver) XDP support; use xdp_skb"
                )
            existing = machine.netstack.xdp_hook
            if existing is not None and existing.hook != hook:
                raise ValueError(
                    f"XDP hook already provisioned in {existing.hook} mode"
                )
            machine.netstack.xdp_hook = site
        elif hook == Hook.XDP_OFFLOAD:
            machine.nic.attach_classifier(site)
        else:
            raise ValueError(f"unknown network hook {hook!r}")
        self._sites[hook] = site
        return site

    # ------------------------------------------------------------------
    # Deployment (syr_deploy_policy)
    # ------------------------------------------------------------------
    def deploy_policy(self, app, policy, hook, constants=None, ports=None):
        """Deploy ``policy`` for ``app`` at ``hook``.

        ``policy`` is policy source text / a Python function in the safe
        subset (network hooks), or a thread-policy object with a
        ``schedule(status)`` method (the Thread Scheduler hook).

        ``hook`` may be a list/tuple of hooks (paper §3.1: syr_deploy_policy
        takes "one or more target deployment hooks"); each target gets its
        own program instance, all sharing the policy's declared maps.
        """
        if isinstance(hook, (list, tuple)):
            return [
                self.deploy_policy(app, policy, one, constants=constants,
                                   ports=ports)
                for one in hook
            ]
        if hook not in Hook.ALL:
            raise ValueError(f"unknown hook {hook!r}")
        ports = list(ports) if ports is not None else list(app.ports)
        self._check_ports(app, ports)
        if hook == Hook.THREAD_SCHED:
            return self._deploy_thread_policy(app, policy)
        return self._deploy_network_policy(app, policy, hook, constants, ports)

    def _deploy_network_policy(self, app, policy, hook, constants, ports):
        try:
            if isinstance(policy, Program):
                program = policy
            else:
                program = compile_policy(policy, constants=constants)
            placement = OFFLOAD if hook == Hook.XDP_OFFLOAD else HOST
            maps = {}
            for map_name, size in zip(program.map_names, program.map_sizes):
                syrup_map = self.registry.create(
                    app.name, map_name, size=size, placement=placement
                )
                maps[map_name] = syrup_map.bpf_map
            loaded = load_program(
                program, maps=maps,
                rng=self.machine.streams.get(f"policy/{app.name}"),
            )
        except (CompileError, VerifierError) as exc:
            self.obs.registry.counter(
                app.name, "syrupd", "verifier_rejections"
            ).inc()
            self.obs.events.emit(
                "verifier_reject", app=app.name, hook=hook,
                error=type(exc).__name__, detail=str(exc),
            )
            raise
        self._attach_program_metrics(app.name, hook, loaded)
        # Propagate the machine's wall-clock profiler (if attached) so
        # mid-run deploys are profiled like boot-time ones.
        loaded.profiler = self.machine.profiler
        executors = app.executor_map(hook)
        self._prepopulate_executors(hook, executors)
        site = self._site(hook)
        site.install(app.name, ports, loaded, executors)
        deployed = DeployedPolicy(app.name, hook, program=loaded)
        self.deployed.append(deployed)
        self._note_deploy(deployed, ports=ports, name=loaded.name)
        return deployed

    def _attach_program_metrics(self, app_name, hook, loaded):
        """Wire per-program counters into the VM/JIT dispatch path."""
        if not self.obs.enabled:
            return
        reg = self.obs.registry
        loaded.metrics = {
            name: reg.counter(app_name, hook, name)
            for name in ("invocations", "insns_interp", "cycles_interp",
                         "jit_runs")
        }
        reg.gauge(app_name, hook, "prog_n_insns").set(loaded.program.n_insns)
        if loaded._jit is not None:
            reg.gauge(app_name, hook, "jit_code_lines").set(
                loaded._jit.jit_n_lines
            )

    def _note_deploy(self, deployed, **fields):
        self.obs.registry.counter(
            deployed.app_name, "syrupd", "deploys"
        ).inc()
        self.obs.events.emit(
            "deploy", app=deployed.app_name, hook=deployed.hook,
            fd=deployed.fd, **fields,
        )

    def _prepopulate_executors(self, hook, executors):
        """Hardware executors are allocated by syrupd, not the app (§4.4)."""
        if len(executors):
            return
        if hook == Hook.CPU_REDIRECT:
            executors.populate(range(self.machine.config.num_softirq_cores))
        elif hook == Hook.XDP_OFFLOAD:
            executors.populate(range(self.machine.config.nic.num_queues))

    def _deploy_thread_policy(self, app, policy):
        scheduler = self.machine.scheduler
        if not isinstance(scheduler, GhostScheduler):
            raise ValueError(
                "Thread Scheduler hook requires the machine to run the "
                "ghOSt scheduling class (Machine(scheduler='ghost'))"
            )
        if not hasattr(policy, "schedule"):
            raise TypeError(
                "thread policies must expose schedule(status) -> placements"
            )
        enclave = Enclave(app.name)
        for thread in app.threads:
            enclave.register(thread)
        app.enclave = enclave
        metrics = None
        if self.obs.enabled:
            reg = self.obs.registry
            metrics = {
                name: reg.counter(app.name, Hook.THREAD_SCHED, name)
                for name in ("messages", "preemptions", "commits",
                             "failed_commits", "policy_errors")
            }
        agent = GhostAgent(
            self.machine.engine, scheduler, enclave, policy,
            self.machine.costs, metrics=metrics, events=self.obs.events,
        )
        agent.profiler = self.machine.profiler
        deployed = DeployedPolicy(app.name, Hook.THREAD_SCHED, agent=agent)
        self.deployed.append(deployed)
        self._note_deploy(deployed, policy=type(policy).__name__)
        return deployed

    # ------------------------------------------------------------------
    def undeploy(self, app, hook):
        site = self._sites.get(hook)
        if site is not None:
            site.uninstall(app.name, app.ports)
            self.obs.registry.counter(app.name, "syrupd", "undeploys").inc()
            self.obs.events.emit("undeploy", app=app.name, hook=hook)

    # ------------------------------------------------------------------
    def status(self):
        """Inspection (bpftool-style): every deployment with live stats."""
        rows = []
        for deployed in self.deployed:
            row = {
                "fd": deployed.fd,
                "app": deployed.app_name,
                "hook": deployed.hook,
            }
            if deployed.program is not None:
                row.update(
                    name=deployed.program.name,
                    invocations=deployed.program.invocations,
                    insns=deployed.program.program.n_insns,
                    cycle_estimate=deployed.program.cycle_estimate,
                    maps=[m.name for m in deployed.program.maps],
                )
            if deployed.agent is not None:
                agent = deployed.agent
                row.update(
                    messages=agent.messages_processed,
                    commits=agent.commits,
                    failed_commits=agent.failed_commits,
                    preemptions=agent.preemptions,
                    policy_errors=agent.policy_errors,
                )
            if self.obs.enabled:
                row["metrics"] = self.obs.registry.values_for(
                    deployed.app_name, deployed.hook
                )
            rows.append(row)
        return rows
