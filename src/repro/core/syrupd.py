"""syrupd: the system-wide Syrup daemon (paper §3.5, §4.3).

Applications never load programs into hooks themselves; they send a request
to syrupd (in the real system over a Unix domain socket — here, a method
call standing in for that RPC).  The daemon:

1. tracks which UDP ports belong to which application and rejects
   cross-application port claims,
2. compiles the policy file to bytecode and runs the verifier,
3. creates/pins the policy's declared Maps under the owning app's path
   (NIC-resident placement for offloaded programs),
4. installs the program behind the hook's root port-matching dispatcher so
   it only ever handles the owning app's inputs, and
5. for the Thread Scheduler hook, launches a ghOSt agent restricted to the
   app's enclave.

Policy lifecycle (docs/robustness.md): every deployment carries a
:class:`repro.core.health.DeploymentHealth` record and a ``state``
(``active`` / ``quarantined`` / ``fallback`` / ``undeployed``).  Runtime
faults escaping a program are contained by the hook site and reported
here; the :class:`repro.core.health.LifecycleManager` may **quarantine**
a repeatedly-faulting policy (uninstall → kernel-default behaviour),
**roll back** a faulting :meth:`redeploy` to the last-known-good
program, **restart** a crashed ghOSt agent with bounded backoff, and
migrate XDP_OFFLOAD deployments to the XDP_SKB host path when the NIC's
offload engine fails (:meth:`handle_offload_failure`).

Control-plane observability (machine ``metrics=True``): deploys,
undeploys, redeploys, quarantines, rollbacks, isolation denials and
verifier rejections are counted under the ``syrupd`` scope and recorded
in the machine's event trace, and ``status()`` / ``health()`` rows carry
the live per-``(app, hook)`` values that ``syrupctl stats`` /
``syrupctl health`` render.  See docs/observability.md.
"""

from repro.core.health import LifecycleManager
from repro.core.hooks import ROOT_APP, Hook, HookSite
from repro.core.loader import PolicyValidationError, check_policy_source
from repro.core.maps import HOST, OFFLOAD, MapRegistry
from repro.core.promote import (
    CanaryController,
    PromotionRecord,
    ShadowTap,
    hook_label,
    rank_label,
)
from repro.ebpf.compiler import compile_policy
from repro.ebpf.errors import CompileError, VerifierError
from repro.ebpf.insn import Program
from repro.ebpf.program import load_program
from repro.ghost.agent import GhostAgent
from repro.ghost.enclave import Enclave
from repro.ghost.sched import GhostScheduler
from repro.obs import DISABLED
from repro.qdisc.discipline import (
    LAYERS,
    LAYER_NIC_RX,
    LAYER_RUNQUEUE,
    LAYER_SOCKET,
    Qdisc,
    compile_rank,
    qdisc_hook,
)

__all__ = ["DeployedPolicy", "IsolationError", "Syrupd"]


class IsolationError(PermissionError):
    """A request violated Syrup's multi-tenancy guarantees."""


class DeployedPolicy:
    """Handle returned by deploy_policy (the paper's prog_fd).

    ``fd`` values are allocated by the owning daemon (one counter per
    machine), so concurrently-built machines get independent,
    deterministic fd sequences.
    """

    def __init__(self, fd, app_name, hook, program=None, agent=None,
                 ports=None, executors=None):
        self.fd = fd
        self.app_name = app_name
        self.hook = hook
        self.program = program    # LoadedProgram (network hooks)
        self.agent = agent        # GhostAgent (thread hook)
        self.ports = list(ports) if ports is not None else []
        self.executors = executors
        self.qdiscs = []          # Qdisc instances (qdisc:<layer> hooks)
        # Lifecycle (docs/robustness.md)
        self.state = "active"     # active | quarantined | fallback | undeployed
        self.last_good = None     # previous program kept across redeploy()
        self.health = None        # DeploymentHealth, set by the lifecycle mgr
        self.fallback_from = None # original hook when offload fell back
        self.fallback_scheduler = None  # CFS instance after agent fallback

    def __repr__(self):
        return (
            f"<DeployedPolicy fd={self.fd} app={self.app_name} "
            f"hook={self.hook} state={self.state}>"
        )


class Syrupd:
    def __init__(self, machine, health=None):
        self.machine = machine
        self.obs = getattr(machine, "obs", None) or DISABLED
        self.registry = MapRegistry(
            machine.costs, machine.config.nic, obs=self.obs
        )
        self.apps = {}
        self._port_owner = {}
        self._sites = {}
        self.deployed = []
        #: PromotionRecords, in deploy_shadow order (``syrupctl promote``).
        self._promotions = []
        self._next_fd = 3
        # Self-healing lifecycle: health is a HealthPolicy (or None for
        # the defaults).  Purely event-driven — with no faults injected
        # it schedules nothing and results stay bit-identical.
        self.lifecycle = LifecycleManager(self, policy=health)

    def _alloc_fd(self):
        fd = self._next_fd
        self._next_fd += 1
        return fd

    def _deny(self, detail, app=None):
        """Count + trace an isolation denial, then raise."""
        self.obs.registry.counter(
            ROOT_APP, "syrupd", "isolation_denials"
        ).inc()
        self.obs.events.emit("isolation_denial", app=app, detail=detail)
        raise IsolationError(detail)

    # ------------------------------------------------------------------
    # App registration
    # ------------------------------------------------------------------
    def register_app(self, name, ports):
        from repro.core.api import App  # local import: api builds on syrupd

        if name in self.apps:
            raise ValueError(f"app {name!r} already registered")
        for port in ports:
            owner = self._port_owner.get(port)
            if owner is not None:
                self._deny(
                    f"port {port} already owned by app {owner!r}", app=name
                )
        for port in ports:
            self._port_owner[port] = name
        app = App(self, name, ports)
        self.apps[name] = app
        self.obs.events.emit("app_registered", app=name, ports=list(ports))
        return app

    def _check_ports(self, app, ports):
        for port in ports:
            if self._port_owner.get(port) != app.name:
                self._deny(
                    f"app {app.name!r} does not own port {port}",
                    app=app.name,
                )

    # ------------------------------------------------------------------
    # Hook sites
    # ------------------------------------------------------------------
    def _site(self, hook):
        site = self._sites.get(hook)
        if site is not None:
            return site
        site = HookSite(hook, self.machine.costs, obs=self.obs)
        site.profiler = self.machine.profiler
        site.fault_listener = self._on_runtime_fault
        machine = self.machine
        if hook == Hook.SOCKET_SELECT:
            machine.netstack.socket_select_hook = site
        elif hook == Hook.CPU_REDIRECT:
            machine.netstack.cpu_redirect_hook = site
        elif hook in (Hook.XDP_SKB, Hook.XDP_DRV):
            if hook == Hook.XDP_DRV and not machine.config.nic.zero_copy:
                raise ValueError(
                    f"NIC {machine.config.nic.model!r} has no native "
                    "(driver) XDP support; use xdp_skb"
                )
            existing = machine.netstack.xdp_hook
            if existing is not None and existing.hook != hook:
                raise ValueError(
                    f"XDP hook already provisioned in {existing.hook} mode"
                )
            machine.netstack.xdp_hook = site
        elif hook == Hook.XDP_OFFLOAD:
            machine.nic.attach_classifier(site)
        else:
            raise ValueError(f"unknown network hook {hook!r}")
        self._sites[hook] = site
        return site

    # ------------------------------------------------------------------
    # Deployment (syr_deploy_policy)
    # ------------------------------------------------------------------
    def deploy_policy(self, app, policy, hook, constants=None, ports=None):
        """Deploy ``policy`` for ``app`` at ``hook``.

        ``policy`` is policy source text / a Python function in the safe
        subset (network hooks), or a thread-policy object with a
        ``schedule(status)`` method (the Thread Scheduler hook).

        ``hook`` may be a list/tuple of hooks (paper §3.1: syr_deploy_policy
        takes "one or more target deployment hooks"); each target gets its
        own program instance, all sharing the policy's declared maps.
        """
        if isinstance(hook, (list, tuple)):
            return [
                self.deploy_policy(app, policy, one, constants=constants,
                                   ports=ports)
                for one in hook
            ]
        if hook not in Hook.ALL:
            raise ValueError(f"unknown hook {hook!r}")
        ports = list(ports) if ports is not None else list(app.ports)
        self._check_ports(app, ports)
        if hook == Hook.THREAD_SCHED:
            return self._deploy_thread_policy(app, policy)
        return self._deploy_network_policy(app, policy, hook, constants, ports)

    def _load_network_policy(self, app, policy, hook, constants,
                             scope=None, stream=None):
        """Compile → create/pin maps → verify + JIT.  Shared by deploy
        and redeploy; raises CompileError/VerifierError after counting
        the rejection.

        ``scope`` / ``stream`` override the metrics + fault-plan scope
        and RNG stream name — shadow candidates load under
        ``shadow:<hook>`` / ``shadow/<app>/<hook>`` so their metrics,
        injected faults, and random draws never mix with the active
        deployment's.
        """
        scope = scope if scope is not None else hook
        stream = stream if stream is not None else f"policy/{app.name}"
        try:
            if isinstance(policy, Program):
                program = policy
            else:
                program = compile_policy(policy, constants=constants)
            placement = OFFLOAD if hook == Hook.XDP_OFFLOAD else HOST
            maps = {}
            for map_name, size in zip(program.map_names, program.map_sizes):
                syrup_map = self.registry.create(
                    app.name, map_name, size=size, placement=placement
                )
                maps[map_name] = syrup_map.bpf_map
            loaded = load_program(
                program, maps=maps,
                rng=self.machine.streams.get(stream),
            )
        except (CompileError, VerifierError) as exc:
            self.obs.registry.counter(
                app.name, "syrupd", "verifier_rejections"
            ).inc()
            self.obs.events.emit(
                "verifier_reject", app=app.name, hook=scope,
                error=type(exc).__name__, detail=str(exc),
            )
            raise
        self._attach_program_metrics(app.name, scope, loaded)
        # Propagate the machine's wall-clock profiler (if attached) so
        # mid-run deploys are profiled like boot-time ones.
        loaded.profiler = self.machine.profiler
        # Fault plan (Machine(faults=...)): wrap the program *after*
        # metrics/profiler attachment so the proxy delegates everything.
        injector = getattr(self.machine, "faults", None)
        if injector is not None:
            loaded = injector.wrap_program(loaded, app.name, scope)
        return loaded

    def _deploy_network_policy(self, app, policy, hook, constants, ports):
        loaded = self._load_network_policy(app, policy, hook, constants)
        executors = app.executor_map(hook)
        self._prepopulate_executors(hook, executors)
        site = self._site(hook)
        attachment = site.install(app.name, ports, loaded, executors)
        deployed = DeployedPolicy(
            self._alloc_fd(), app.name, hook, program=loaded, ports=ports,
            executors=executors,
        )
        # Decision spans (repro.obs.spans) link each policy invocation to
        # the deployed fd, so the attachment learns it post-allocation.
        attachment.fd = deployed.fd
        self.lifecycle.track(deployed)
        self.deployed.append(deployed)
        self._note_deploy(deployed, ports=ports, name=loaded.name)
        return deployed

    def _attach_program_metrics(self, app_name, hook, loaded):
        """Wire per-program counters into the VM/JIT dispatch path."""
        if not self.obs.enabled:
            return
        reg = self.obs.registry
        loaded.metrics = {
            name: reg.counter(app_name, hook, name)
            for name in ("invocations", "insns_interp", "cycles_interp",
                         "jit_runs")
        }
        reg.gauge(app_name, hook, "prog_n_insns").set(loaded.program.n_insns)
        if loaded._jit is not None:
            reg.gauge(app_name, hook, "jit_code_lines").set(
                loaded._jit.jit_n_lines
            )

    def _note_deploy(self, deployed, **fields):
        self.obs.registry.counter(
            deployed.app_name, "syrupd", "deploys"
        ).inc()
        self.obs.events.emit(
            "deploy", app=deployed.app_name, hook=deployed.hook,
            fd=deployed.fd, **fields,
        )

    def _prepopulate_executors(self, hook, executors):
        """Hardware executors are allocated by syrupd, not the app (§4.4)."""
        if len(executors):
            return
        if hook == Hook.CPU_REDIRECT:
            executors.populate(range(self.machine.config.num_softirq_cores))
        elif hook == Hook.XDP_OFFLOAD:
            executors.populate(range(self.machine.config.nic.num_queues))

    def _deploy_thread_policy(self, app, policy):
        scheduler = self.machine.scheduler
        # Elastic machines (repro.kernel.arbiter) front a facade; the
        # app's own scheduling class is what the agent drives.
        resolve = getattr(scheduler, "class_for_app", None)
        if resolve is not None:
            scheduler = resolve(app.name)
        if not isinstance(scheduler, GhostScheduler):
            raise ValueError(
                "Thread Scheduler hook requires the app's threads to run "
                "under the ghOSt scheduling class (Machine("
                "scheduler='ghost'), or an elastic ghost class)"
            )
        if not hasattr(policy, "schedule"):
            raise TypeError(
                "thread policies must expose schedule(status) -> placements"
            )
        enclave = Enclave(app.name)
        for thread in app.threads:
            enclave.register(thread)
        app.enclave = enclave
        metrics = None
        if self.obs.enabled:
            reg = self.obs.registry
            metrics = {
                name: reg.counter(app.name, Hook.THREAD_SCHED, name)
                for name in ("messages", "preemptions", "commits",
                             "failed_commits", "policy_errors")
            }
        agent = GhostAgent(
            self.machine.engine, scheduler, enclave, policy,
            self.machine.costs, metrics=metrics, events=self.obs.events,
        )
        agent.profiler = self.machine.profiler
        deployed = DeployedPolicy(
            self._alloc_fd(), app.name, Hook.THREAD_SCHED, agent=agent,
        )
        self.lifecycle.track(deployed)
        self.deployed.append(deployed)
        self._note_deploy(deployed, policy=type(policy).__name__)
        return deployed

    # ------------------------------------------------------------------
    # Queueing disciplines (syr_deploy_qdisc; repro.qdisc)
    # ------------------------------------------------------------------
    def deploy_qdisc(self, app, policy, layer, backend="pifo", constants=None,
                     ports=None, targets=None, backend_kwargs=None):
        """Deploy a rank function as a queueing discipline at ``layer``.

        ``policy`` is rank-function source (``def rank(pkt):``) in the
        same safe subset as matching functions; it travels the identical
        compile → verify → map-pinning → JIT path.  ``layer`` is one of
        :data:`repro.qdisc.discipline.LAYERS`:

        - ``"socket"`` — attach to the app's registered Socket Select
          executors (or an explicit ``targets`` list of sockets),
        - ``"nic_rx"`` — attach to NIC RX queues (``targets``: queue
          indices; default all) with port-based isolation, so foreign
          apps' packets on a shared ring stay FIFO,
        - ``"runqueue"`` — order the app's ghOSt runnable snapshot
          (requires an active Thread Scheduler deployment).

        Returns a :class:`DeployedPolicy` whose ``qdiscs`` lists the
        per-queue discipline instances; the deployment is tracked by the
        lifecycle manager, so a repeatedly-faulting rank function is
        quarantined (every queue reverts to FIFO and keeps draining).
        """
        hook = qdisc_hook(layer)
        ports = list(ports) if ports is not None else list(app.ports)
        if layer != LAYER_RUNQUEUE:
            self._check_ports(app, ports)
        loaded = self._load_rank_policy(app, policy, layer, constants)
        deployed = DeployedPolicy(
            self._alloc_fd(), app.name, hook, program=loaded, ports=ports,
        )
        self.lifecycle.track(deployed)
        qdisc_ports = ports if layer == LAYER_NIC_RX else None
        attach = {
            LAYER_SOCKET: self._attach_socket_qdiscs,
            LAYER_NIC_RX: self._attach_nic_qdiscs,
            LAYER_RUNQUEUE: self._attach_runqueue_qdisc,
        }[layer]
        qdiscs = attach(
            app, deployed, backend, loaded, qdisc_ports, targets,
            backend_kwargs,
        )
        if not qdiscs:
            raise ValueError(
                f"no attachable queues for qdisc layer {layer!r} "
                f"(app {app.name!r}): register executors first"
            )
        deployed.qdiscs = qdiscs
        self.deployed.append(deployed)
        self._note_deploy(
            deployed, layer=layer, backend=backend, queues=len(qdiscs),
            name=loaded.name,
        )
        return deployed

    def _load_rank_policy(self, app, policy, layer, constants,
                          scope=None, stream=None):
        """Compile a rank function through the policy pipeline (rename
        ``rank`` → ``schedule``, then the standard verify + maps + JIT).

        ``scope`` / ``stream`` override the metrics + fault-plan scope
        and RNG stream name (shadow candidates; see
        :meth:`_load_network_policy`).
        """
        hook = qdisc_hook(layer)
        scope = scope if scope is not None else hook
        stream = stream if stream is not None else f"qdisc/{app.name}/{layer}"
        try:
            if isinstance(policy, Program):
                program = policy
            else:
                program = compile_rank(policy, constants=constants)
            maps = {}
            for map_name, size in zip(program.map_names, program.map_sizes):
                syrup_map = self.registry.create(
                    app.name, map_name, size=size, placement=HOST
                )
                maps[map_name] = syrup_map.bpf_map
            loaded = load_program(
                program, maps=maps,
                rng=self.machine.streams.get(stream),
            )
        except (CompileError, VerifierError) as exc:
            self.obs.registry.counter(
                app.name, "syrupd", "verifier_rejections"
            ).inc()
            self.obs.events.emit(
                "verifier_reject", app=app.name, hook=scope,
                error=type(exc).__name__, detail=str(exc),
            )
            raise
        self._attach_program_metrics(app.name, scope, loaded)
        loaded.profiler = self.machine.profiler
        injector = getattr(self.machine, "faults", None)
        if injector is not None:
            loaded = injector.wrap_program(loaded, app.name, scope)
        return loaded

    def _new_qdisc(self, deployed, layer, backend, loaded, ports,
                   backend_kwargs):
        qdisc = Qdisc(
            deployed.app_name, layer, backend=backend, program=loaded,
            ports=ports, backend_kwargs=backend_kwargs,
        )
        qdisc.fault_listener = (
            lambda q, exc: self._on_qdisc_fault(deployed, q, exc)
        )
        return qdisc

    def _attach_qdisc_metrics(self, qdisc):
        if not self.obs.enabled:
            return
        reg = self.obs.registry
        app, hook = qdisc.app_name, qdisc.hook
        qdisc.metrics = {
            name: reg.counter(app, hook, name)
            for name in ("enqueues", "dequeues", "sched_drops",
                         "overflow_drops", "evictions", "runtime_faults")
        }
        qdisc.metrics["rank"] = reg.histogram(app, hook, "rank")
        qdisc.depth_gauge = reg.gauge(app, hook, f"depth:{qdisc.target}")

    def _attach_socket_qdiscs(self, app, deployed, backend, loaded, ports,
                              targets, backend_kwargs):
        if targets is None:
            targets = app.executor_map(Hook.SOCKET_SELECT).values()
        qdiscs = []
        for socket in targets:
            if socket.app not in (None, app.name):
                self._deny(
                    f"socket {socket.sid} belongs to app {socket.app!r}",
                    app=app.name,
                )
            qdisc = self._new_qdisc(
                deployed, LAYER_SOCKET, backend, loaded, ports,
                backend_kwargs,
            )
            socket.set_qdisc(qdisc)
            qdisc._detach = socket.clear_qdisc
            self._attach_qdisc_metrics(qdisc)
            qdiscs.append(qdisc)
        return qdiscs

    def _attach_nic_qdiscs(self, app, deployed, backend, loaded, ports,
                           targets, backend_kwargs):
        nic = self.machine.nic
        if targets is None:
            targets = range(nic.spec.num_queues)
        qdiscs = []
        for queue_index in targets:
            qdisc = self._new_qdisc(
                deployed, LAYER_NIC_RX, backend, loaded, ports,
                backend_kwargs,
            )
            nic.attach_qdisc(queue_index, qdisc)
            qdisc._detach = (
                lambda i=queue_index: nic.detach_qdisc(i)
            )
            self._attach_qdisc_metrics(qdisc)
            qdiscs.append(qdisc)
        return qdiscs

    def _attach_runqueue_qdisc(self, app, deployed, backend, loaded, ports,
                               targets, backend_kwargs):
        sched = self._active_deployment(app.name, Hook.THREAD_SCHED)
        if sched is None or sched.agent is None:
            raise ValueError(
                f"qdisc layer 'runqueue' requires app {app.name!r} to have "
                "an active Thread Scheduler deployment (ghOSt agent)"
            )
        agent = sched.agent
        qdisc = self._new_qdisc(
            deployed, LAYER_RUNQUEUE, backend, loaded, ports, backend_kwargs,
        )
        qdisc.target = f"enclave:{app.name}"
        agent.runqueue_qdisc = qdisc

        def detach():
            if agent.runqueue_qdisc is qdisc:
                agent.runqueue_qdisc = None

        qdisc._detach = detach
        self._attach_qdisc_metrics(qdisc)
        return [qdisc]

    def _on_qdisc_fault(self, deployed, qdisc, exc):
        """A rank function faulted (already contained by the Qdisc: the
        element was enqueued FIFO).  Route into the lifecycle, which may
        quarantine the deployment — reverting every queue to pure FIFO."""
        self.obs.events.emit(
            "qdisc_fault", app=deployed.app_name, hook=deployed.hook,
            fd=deployed.fd, target=qdisc.target,
            error=type(exc).__name__, detail=str(exc),
        )
        self.lifecycle.note_runtime_fault(deployed, exc)

    def qdiscs(self):
        """One row per installed discipline (``syrupctl qdisc``)."""
        rows = []
        for deployed in self.deployed:
            for qdisc in deployed.qdiscs:
                row = qdisc.snapshot()
                row["fd"] = deployed.fd
                row["deployment_state"] = deployed.state
                rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # Lifecycle: undeploy / redeploy / rollback / quarantine
    # ------------------------------------------------------------------
    def _lifecycle_event(self, action, deployed, reason=None, **fields):
        """One schema for every lifecycle transition (kind ``lifecycle``).

        Quarantine, rollback, demotion, and every promotion-stage change
        emit through here, so ``syrupctl health`` and ``syrupctl
        promote`` render from a single shape: ``action`` names the
        transition, ``reason`` why it fired, plus the deployment's
        app/hook/fd/state.
        """
        self.obs.events.emit(
            "lifecycle", app=deployed.app_name, hook=deployed.hook,
            action=action, fd=deployed.fd, state=deployed.state,
            reason=reason, **fields,
        )

    def _deployments(self, app_name, hook, states=("active",)):
        return [
            d for d in self.deployed
            if d.app_name == app_name and d.hook == hook
            and (states is None or d.state in states)
        ]

    def _active_deployment(self, app_name, hook):
        for deployed in self._deployments(app_name, hook):
            return deployed
        return None

    def undeploy(self, app, hook):
        """Remove ``app``'s deployment(s) at ``hook`` (syr_undeploy).

        Uninstalls the site's port rules, detaches any ghOSt agent, and
        removes the entries from the deployment table so ``status()``
        stops reporting them.
        """
        site = self._sites.get(hook)
        victims = self._deployments(
            app.name, hook, states=("active", "quarantined", "fallback")
        )
        for deployed in victims:
            if site is not None and deployed.state == "active":
                ports = set(deployed.ports) | set(app.ports)
                site.uninstall(app.name, ports)
            agent = deployed.agent
            if agent is not None and agent.scheduler.agent is agent:
                agent.scheduler.agent = None
            for qdisc in deployed.qdiscs:
                # Detach from the queue; buffered elements drain (socket
                # qdiscs spill into the FIFO backlog, NIC qdiscs drain
                # via their already-scheduled IRQs) — never stranded.
                if qdisc._detach is not None:
                    qdisc._detach()
            deployed.state = "undeployed"
            self.deployed.remove(deployed)
            self.obs.registry.counter(app.name, "syrupd", "undeploys").inc()
            self.obs.events.emit(
                "undeploy", app=app.name, hook=hook, fd=deployed.fd
            )
        return len(victims)

    def redeploy(self, app, policy, hook, constants=None, ports=None):
        """Hot-swap the program behind an active network deployment.

        The previous program is kept as ``last_good``: if the
        replacement fails verification nothing is swapped (the rollback
        is trivially the still-installed program), and if it raises a
        runtime fault once live the lifecycle manager swaps the old
        program back (docs/robustness.md).
        """
        if hook == Hook.THREAD_SCHED or hook not in Hook.ALL:
            raise ValueError(
                f"redeploy targets network hooks, got {hook!r}"
            )
        deployed = self._active_deployment(app.name, hook)
        if deployed is None:
            raise ValueError(
                f"app {app.name!r} has no active deployment at {hook}"
            )
        if ports is not None:
            self._check_ports(app, list(ports))
        try:
            loaded = self._load_network_policy(app, policy, hook, constants)
        except (CompileError, VerifierError) as exc:
            deployed.health.rollbacks += 1
            self.obs.registry.counter(
                app.name, "syrupd", "rollbacks"
            ).inc()
            self._lifecycle_event(
                "rollback", deployed, reason="verify_failed",
                error=type(exc).__name__,
            )
            raise
        site = self._site(hook)
        site.replace(app.name, loaded)
        deployed.last_good = deployed.program
        deployed.program = loaded
        self.obs.registry.counter(app.name, "syrupd", "redeploys").inc()
        self.obs.events.emit(
            "redeploy", app=app.name, hook=hook, fd=deployed.fd,
            name=loaded.name,
        )
        return deployed

    def rollback(self, deployed, reason):
        """Swap ``last_good`` back in after a bad redeploy/promotion."""
        if deployed.last_good is None:
            raise ValueError(f"{deployed!r} has no last-known-good program")
        site = self._sites.get(deployed.hook)
        if site is not None:
            site.replace(deployed.app_name, deployed.last_good)
        for qdisc in deployed.qdiscs:
            # Qdisc deployments (hook "qdisc:<layer>") have no HookSite;
            # swap the rank function on every attached queue directly.
            qdisc.program = deployed.last_good
        deployed.program = deployed.last_good
        deployed.last_good = None
        deployed.health.rollbacks += 1
        self.obs.registry.counter(
            deployed.app_name, "syrupd", "rollbacks"
        ).inc()
        self._lifecycle_event("rollback", deployed, reason=reason)
        return deployed

    def quarantine(self, deployed, reason):
        """Uninstall a sick policy; its traffic reverts to kernel defaults.

        The deployment stays in the table (state ``quarantined``) so
        ``status()`` / ``syrupctl health`` show what happened and why.
        """
        site = self._sites.get(deployed.hook)
        if site is not None:
            site.uninstall(deployed.app_name, deployed.ports)
        for qdisc in deployed.qdiscs:
            # Sick rank function: every queue reverts to pure FIFO.
            # Already-queued elements keep their ranks and keep draining
            # — a quarantined queue is never wedged.
            qdisc.revert_to_fifo()
        deployed.state = "quarantined"
        self.obs.registry.counter(
            deployed.app_name, "syrupd", "quarantines"
        ).inc()
        self._lifecycle_event(
            "quarantine", deployed, reason=reason,
            runtime_faults=deployed.health.runtime_faults,
        )
        return deployed

    def _on_runtime_fault(self, attachment, exc, program=None):
        """HookSite fault listener: route the fault to the lifecycle.

        ``program`` is the program that actually raised.  When it is a
        canary candidate running enforced on cohort flows, the fault is
        charged to its promotion record (the controller rejects on the
        next tick) — the *active* deployment's health window is not
        touched, because the active program did nothing wrong.
        """
        if program is not None:
            for record in self._promotions:
                if (record.candidate is program
                        and record.stage in ("shadow", "canary")):
                    record.note_candidate_fault(exc, enforced=True)
                    return
        for deployed in self.deployed:
            if (deployed.program is attachment.program
                    and deployed.app_name == attachment.app_name):
                self.lifecycle.note_runtime_fault(deployed, exc)
                return

    # ------------------------------------------------------------------
    # Shadow deployment + canary promotion (docs/robustness.md)
    # ------------------------------------------------------------------
    def deploy_shadow(self, app, policy, hook=None, layer=None,
                      constants=None, name=None, canary_pct=10,
                      salt=0x5EED, validate=True, allow_imports=(),
                      guard=None, **gates):
        """Run a candidate policy in shadow against an active deployment.

        Exactly one of ``hook`` (a network hook) or ``layer`` (a qdisc
        layer) selects the target, which must already have an active
        deployment for ``app`` — the candidate taps its dispatch path,
        sees every live input, and has its verdicts recorded into a
        decision diff, never enforced.  A
        :class:`~repro.core.promote.CanaryController` registered on the
        machine's SignalBus then walks it shadow → canary-``canary_pct``%
        of flows (deterministic flow-hash split) → active, gating each
        step on the SLO ``guard`` (default: the machine tracker's
        :meth:`~repro.obs.slo.SloTracker.guard`), the agreement
        threshold, and zero candidate faults; extra ``gates`` kwargs are
        forwarded to the controller.

        When ``validate`` is on, source text runs through the hardened
        restricted loader (:mod:`repro.core.loader`) *before* touching
        the compile pipeline; a rejected source counts
        ``loader_rejections`` and raises
        :class:`~repro.core.loader.PolicyValidationError`.

        Returns the :class:`~repro.core.promote.PromotionRecord`.
        """
        if (hook is None) == (layer is None):
            raise ValueError("deploy_shadow takes exactly one of hook/layer")
        if validate and isinstance(policy, str):
            try:
                check_policy_source(policy, allow_imports=allow_imports)
            except PolicyValidationError as exc:
                self.obs.registry.counter(
                    app.name, "syrupd", "loader_rejections"
                ).inc()
                self.obs.events.emit(
                    "loader_reject", app=app.name,
                    hook=hook if hook is not None else qdisc_hook(layer),
                    issues=list(exc.issues),
                )
                raise
        if hook is not None:
            if hook not in Hook.NETWORK:
                raise ValueError(
                    f"deploy_shadow targets network hooks or qdisc "
                    f"layers, got {hook!r}"
                )
            target_hook = hook
        else:
            target_hook = qdisc_hook(layer)
        deployed = self._active_deployment(app.name, target_hook)
        if deployed is None or deployed.program is None:
            raise ValueError(
                f"app {app.name!r} has no active program at {target_hook} "
                "to shadow"
            )
        scope = f"shadow:{target_hook}"
        stream = f"shadow/{app.name}/{target_hook}"
        if hook is not None:
            candidate = self._load_network_policy(
                app, policy, hook, constants, scope=scope, stream=stream,
            )
            classify = hook_label
        else:
            candidate = self._load_rank_policy(
                app, policy, layer, constants, scope=scope, stream=stream,
            )
            classify = rank_label
        record = PromotionRecord(
            name if name is not None else candidate.name,
            app.name, target_hook, candidate, deployed,
            canary_pct=canary_pct, salt=salt,
            created_at=self.machine.now,
        )
        tap = ShadowTap(record, classify)
        if hook is not None:
            site = self._site(target_hook)
            for attachment in site.attachments_for(app.name):
                attachment.shadow = tap
                record.tap_points.append(attachment)
        else:
            for qdisc in deployed.qdiscs:
                qdisc.shadow = tap
                record.tap_points.append(qdisc)
        if guard is None:
            tracker = getattr(self.machine, "slo", None)
            if tracker is not None:
                guard = tracker.guard()
        controller = CanaryController(
            self, record, guard=guard,
            registry=self.obs.registry if self.obs.enabled else None,
            **gates,
        )
        record.controller = controller
        signals = self.machine.signals
        if signals.enabled:
            signals.add_controller(controller.ctl_name, controller)
            controller.bus = signals
        self._promotions.append(record)
        self.obs.registry.counter(
            app.name, "syrupd", "shadow_deploys"
        ).inc()
        self._lifecycle_event(
            "shadow", deployed, reason="deployed", candidate=record.name,
        )
        return record

    def _clear_taps(self, record):
        for point in record.tap_points:
            shadow = point.shadow
            if shadow is not None and shadow.record is record:
                point.shadow = None
        record.tap_points = []

    def advance_shadow(self, record, stage):
        """Shadow → canary: start enforcing on the cohort flows."""
        if stage != "canary" or record.stage != "shadow":
            raise ValueError(
                f"cannot advance {record.name!r} from {record.stage!r} "
                f"to {stage!r}"
            )
        record.advance("canary", self.machine.now, "shadow_gates_passed")
        self.obs.registry.counter(
            record.app_name, "syrupd", "canary_starts"
        ).inc()
        self._lifecycle_event(
            "canary", record.deployed, reason="shadow_gates_passed",
            candidate=record.name, canary_pct=record.canary_pct,
        )
        return record

    def promote_shadow(self, record):
        """Canary → active: the candidate becomes the deployed program.

        The displaced program is kept as ``last_good``, so a probation
        breach (or any later runtime fault) rolls straight back through
        the normal lifecycle path.
        """
        deployed = record.deployed
        self._clear_taps(record)
        site = self._sites.get(deployed.hook)
        if site is not None:
            site.replace(deployed.app_name, record.candidate)
        for qdisc in deployed.qdiscs:
            qdisc.program = record.candidate
        deployed.last_good = deployed.program
        deployed.program = record.candidate
        record.advance("active", self.machine.now, "slo_gates_passed")
        self.obs.registry.counter(
            record.app_name, "syrupd", "promotions"
        ).inc()
        self._lifecycle_event(
            "promote", deployed, reason="slo_gates_passed",
            candidate=record.name,
        )
        return record

    def reject_shadow(self, record, reason):
        """Remove the candidate's taps; the record keeps the verdict."""
        self._clear_taps(record)
        record.advance("rejected", self.machine.now, reason)
        self.obs.registry.counter(
            record.app_name, "syrupd", "shadow_rejects"
        ).inc()
        self._lifecycle_event(
            "reject", record.deployed, reason=reason, candidate=record.name,
        )
        return record

    def demote_shadow(self, record, reason):
        """Back out a promoted candidate (probation breach).

        Marks the record demoted, then enforces through
        :meth:`~repro.core.health.LifecycleManager.demote` — last-known-
        good rollback when available, quarantine otherwise.
        """
        record.advance("demoted", self.machine.now, reason)
        self.obs.registry.counter(
            record.app_name, "syrupd", "demotions"
        ).inc()
        self._lifecycle_event(
            "demote", record.deployed, reason=reason, candidate=record.name,
        )
        self.lifecycle.demote(record.deployed, reason)
        return record

    def promotions(self):
        """One row per promotion attempt (``syrupctl promote``)."""
        return [record.snapshot() for record in self._promotions]

    # ------------------------------------------------------------------
    # Fault-driven transitions (called by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def inject_agent_crash(self, app_name):
        """Crash ``app_name``'s ghOSt agent; the watchdog takes over."""
        deployed = self._active_deployment(app_name, Hook.THREAD_SCHED)
        if deployed is None or deployed.agent is None:
            return None
        deployed.agent.crash()
        self.obs.registry.counter(
            app_name, "syrupd", "agent_crashes"
        ).inc()
        self.obs.events.emit(
            "agent_crash", app=app_name, hook=Hook.THREAD_SCHED,
            fd=deployed.fd,
        )
        self.lifecycle.note_agent_crash(deployed)
        return deployed

    def handle_offload_failure(self):
        """NIC offload engine died: migrate offloaded deployments to the
        XDP_SKB host path (graceful degradation, docs/robustness.md)."""
        for deployed in list(self.deployed):
            if deployed.hook == Hook.XDP_OFFLOAD and deployed.state == "active":
                self._offload_to_host(deployed)

    def handle_offload_restore(self):
        """Offload engine back: migrate fallen-back deployments home."""
        for deployed in list(self.deployed):
            if (deployed.fallback_from == Hook.XDP_OFFLOAD
                    and deployed.state == "active"):
                self._host_to_offload(deployed)

    def _offload_to_host(self, deployed):
        offload_site = self._sites.get(Hook.XDP_OFFLOAD)
        if offload_site is not None:
            offload_site.uninstall(deployed.app_name, deployed.ports)
        try:
            host_site = self._site(Hook.XDP_SKB)
        except ValueError:
            # XDP already provisioned in DRV mode for another app: no
            # compatible host path — safest is to quarantine.
            self.quarantine(deployed, reason="no_host_xdp")
            return
        # Offload executors are NIC queue indices; on the host path the
        # same indices must resolve to AF_XDP sockets.  The app's
        # queue→socket bindings (netstack.bind_af_xdp) provide exactly
        # that mapping; unbound indices become index misses (PASS).
        from repro.core.executors import ExecutorMap

        bindings = self.machine.netstack.afxdp_bindings
        fallback_execs = ExecutorMap(
            f"{deployed.app_name}:{Hook.XDP_SKB}:offload_fallback"
        )
        for index, socket in sorted(bindings.items()):
            fallback_execs.set(index, socket)
        if not len(fallback_execs):
            self.quarantine(deployed, reason="no_afxdp_sockets")
            return
        fallback_attachment = host_site.install(
            deployed.app_name, deployed.ports, deployed.program,
            fallback_execs,
        )
        fallback_attachment.fd = deployed.fd
        deployed.fallback_from = Hook.XDP_OFFLOAD
        deployed.hook = Hook.XDP_SKB
        self.obs.registry.counter(
            deployed.app_name, "syrupd", "offload_fallbacks"
        ).inc()
        self.obs.events.emit(
            "offload_fallback", app=deployed.app_name, hook=Hook.XDP_SKB,
            fd=deployed.fd, from_hook=Hook.XDP_OFFLOAD,
        )

    def _host_to_offload(self, deployed):
        host_site = self._sites.get(deployed.hook)
        if host_site is not None:
            host_site.uninstall(deployed.app_name, deployed.ports)
        offload_site = self._site(Hook.XDP_OFFLOAD)
        restored_attachment = offload_site.install(
            deployed.app_name, deployed.ports, deployed.program,
            deployed.executors,
        )
        restored_attachment.fd = deployed.fd
        deployed.hook = Hook.XDP_OFFLOAD
        deployed.fallback_from = None
        self.obs.events.emit(
            "offload_restore", app=deployed.app_name,
            hook=Hook.XDP_OFFLOAD, fd=deployed.fd,
        )

    # ------------------------------------------------------------------
    def status(self):
        """Inspection (bpftool-style): every deployment with live stats."""
        rows = []
        for deployed in self.deployed:
            row = {
                "fd": deployed.fd,
                "app": deployed.app_name,
                "hook": deployed.hook,
                "state": deployed.state,
            }
            if deployed.program is not None:
                row.update(
                    name=deployed.program.name,
                    invocations=deployed.program.invocations,
                    insns=deployed.program.program.n_insns,
                    cycle_estimate=deployed.program.cycle_estimate,
                    maps=[m.name for m in deployed.program.maps],
                )
            if deployed.agent is not None:
                agent = deployed.agent
                row.update(
                    messages=agent.messages_processed,
                    commits=agent.commits,
                    failed_commits=agent.failed_commits,
                    preemptions=agent.preemptions,
                    policy_errors=agent.policy_errors,
                )
            if self.obs.enabled:
                row["metrics"] = self.obs.registry.values_for(
                    deployed.app_name, deployed.hook
                )
            rows.append(row)
        return rows

    def slo(self):
        """SLO objective rows (``syrupctl slo``); [] when untracked."""
        tracker = getattr(self.machine, "slo", None)
        return tracker.snapshot() if tracker is not None else []

    def signals(self):
        """SignalBus view (``syrupctl slo`` footer; empty when absent)."""
        return self.machine.signals.view()

    def tenants(self):
        """Per-tenant accounting snapshot (``syrupctl tenants``).

        Ledgers plus the pairwise blame matrix from
        :class:`repro.obs.accounting.TenantAccountant`; the empty shape
        ``{"tenants": [], "blame": {}}`` when accounting is disabled.
        """
        return self.obs.acct.snapshot()

    def health(self):
        """Per-deployment health rows (``syrupctl health``)."""
        now = self.machine.now
        rows = []
        for deployed in self.deployed:
            row = {
                "fd": deployed.fd,
                "app": deployed.app_name,
                "hook": deployed.hook,
                "state": deployed.state,
            }
            if deployed.fallback_from is not None:
                row["fallback_from"] = deployed.fallback_from
            if deployed.health is not None:
                row.update(deployed.health.as_dict(now=now))
            if deployed.agent is not None:
                row["agent_crashed"] = deployed.agent.crashed
                row["policy_errors"] = deployed.agent.policy_errors
            rows.append(row)
        return rows
