"""Deployment health tracking + self-healing lifecycle (docs/robustness.md).

The paper's isolation story (§4.3) bounds the *blast radius* of a bad
policy; this module bounds its *duration*.  Three mechanisms, all driven
by existing signals (hook-site runtime faults, agent crash
notifications) — never by polling timers, so a machine with no faults
schedules zero extra events and stays bit-identical:

- **Quarantine** — each network deployment carries a
  :class:`DeploymentHealth` sliding window of runtime-fault timestamps;
  when more than ``HealthPolicy.max_faults`` land within
  ``window_us``, syrupd uninstalls the policy and the hook falls back
  to kernel-default behaviour (a dispatch miss → default socket hash /
  RSS), exactly the degraded-but-correct mode Vanilla Linux runs in.
- **Rollback** — ``Syrupd.redeploy`` keeps the previous program as
  ``last_good``; if the replacement raises a runtime fault the
  lifecycle manager swaps the old program back (verification failures
  never swap in the first place).
- **Watchdog** — a crashed ghOSt agent is restarted with bounded
  exponential backoff (``backoff_base_us * factor^attempt``, capped);
  after ``max_restarts`` the enclave's threads are re-attached to a
  fresh CFS scheduler on the same cores so no thread is ever stranded
  unrunnable.
"""

from collections import deque

from repro.kernel.cfs import CfsScheduler
from repro.kernel.threads import BLOCKED

__all__ = ["DeploymentHealth", "HealthPolicy", "LifecycleManager"]


class HealthPolicy:
    """Thresholds for the self-healing lifecycle (see docs/robustness.md).

    ``quarantine=False`` disables automatic uninstall (the control arm
    of experiments/figure_faults.py); fault accounting still runs.
    """

    __slots__ = ("quarantine", "window_us", "max_faults", "max_restarts",
                 "backoff_base_us", "backoff_factor", "backoff_cap_us")

    def __init__(self, quarantine=True, window_us=20_000.0, max_faults=8,
                 max_restarts=3, backoff_base_us=200.0, backoff_factor=2.0,
                 backoff_cap_us=20_000.0):
        self.quarantine = quarantine
        self.window_us = window_us
        self.max_faults = max_faults
        self.max_restarts = max_restarts
        self.backoff_base_us = backoff_base_us
        self.backoff_factor = backoff_factor
        self.backoff_cap_us = backoff_cap_us

    def backoff_us(self, attempt):
        """Restart delay for the ``attempt``-th watchdog restart (0-based)."""
        delay = self.backoff_base_us * (self.backoff_factor ** attempt)
        return min(delay, self.backoff_cap_us)

    def __repr__(self):
        return (
            f"<HealthPolicy quarantine={self.quarantine} "
            f"window={self.window_us:.0f}us max_faults={self.max_faults} "
            f"max_restarts={self.max_restarts}>"
        )


class DeploymentHealth:
    """Per-deployment fault accounting over a sliding time window."""

    __slots__ = ("window_us", "max_faults", "_window", "runtime_faults",
                 "crashes", "restarts", "rollbacks")

    def __init__(self, window_us, max_faults):
        self.window_us = window_us
        self.max_faults = max_faults
        self._window = deque()
        self.runtime_faults = 0
        self.crashes = 0
        self.restarts = 0
        self.rollbacks = 0

    def record_fault(self, now):
        """Record one runtime fault; True when the window threshold breaks."""
        self.runtime_faults += 1
        window = self._window
        window.append(now)
        horizon = now - self.window_us
        while window and window[0] < horizon:
            window.popleft()
        return len(window) > self.max_faults

    def faults_in_window(self, now):
        horizon = now - self.window_us
        return sum(1 for ts in self._window if ts >= horizon)

    def as_dict(self, now=None):
        out = {
            "runtime_faults": self.runtime_faults,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "rollbacks": self.rollbacks,
        }
        if now is not None:
            out["faults_in_window"] = self.faults_in_window(now)
        return out

    def __repr__(self):
        return f"<DeploymentHealth {self.as_dict()}>"


class LifecycleManager:
    """Reacts to per-deployment failure signals on behalf of syrupd.

    Owned by :class:`repro.core.syrupd.Syrupd`; entirely event-driven —
    the only events it ever schedules are watchdog restarts, and only
    after an actual crash.
    """

    def __init__(self, syrupd, policy=None):
        self.syrupd = syrupd
        self.policy = policy if policy is not None else HealthPolicy()

    # ------------------------------------------------------------------
    def track(self, deployed):
        """Attach a fresh health record to a new deployment."""
        deployed.health = DeploymentHealth(
            self.policy.window_us, self.policy.max_faults
        )
        return deployed.health

    # -- network-policy runtime faults ---------------------------------
    def note_runtime_fault(self, deployed, exc):
        """One VmFault escaped ``deployed``'s program at its hook site."""
        now = self.syrupd.machine.now
        breach = deployed.health.record_fault(now)
        if deployed.state != "active":
            return
        if deployed.last_good is not None:
            # A replacement program faulting is sufficient cause: swap
            # the last-known-good program back immediately.
            self.syrupd.rollback(deployed, reason="runtime_fault")
            return
        if breach and self.policy.quarantine:
            self.syrupd.quarantine(deployed, reason="fault_window")

    # -- canary demotion -----------------------------------------------
    def demote(self, deployed, reason):
        """Back out a freshly-promoted policy (canary probation breach).

        The enforcement is the same machinery as a runtime-fault
        reaction — last-known-good rollback when one exists, quarantine
        otherwise — but driven by the :class:`CanaryController`'s SLO
        gate rather than a fault window, so ``reason`` carries the gate
        that fired.  Emits one structured ``lifecycle`` event through
        whichever path runs (the unified schema satellite).
        """
        if deployed.state != "active":
            return
        if deployed.last_good is not None:
            self.syrupd.rollback(deployed, reason=reason)
        elif self.policy.quarantine:
            self.syrupd.quarantine(deployed, reason=reason)

    # -- ghOSt agent watchdog ------------------------------------------
    def note_agent_crash(self, deployed):
        """The agent for ``deployed`` crashed; restart or fall back."""
        health = deployed.health
        health.crashes += 1
        if deployed.state != "active":
            return
        if health.restarts >= self.policy.max_restarts:
            self._fallback_to_cfs(deployed)
            return
        attempt = health.restarts
        health.restarts += 1
        delay = self.policy.backoff_us(attempt)
        self.syrupd.machine.engine.schedule(
            delay, self._restart_agent, deployed, attempt
        )

    def _restart_agent(self, deployed, attempt):
        if deployed.state != "active" or deployed.agent is None:
            return
        deployed.agent.restart()
        obs = self.syrupd.obs
        obs.registry.counter(
            deployed.app_name, "syrupd", "watchdog_restarts"
        ).inc()
        obs.events.emit(
            "watchdog_restart", app=deployed.app_name, hook=deployed.hook,
            fd=deployed.fd, attempt=attempt,
            backoff_us=self.policy.backoff_us(attempt),
        )

    def _fallback_to_cfs(self, deployed):
        """Give the enclave's threads back to a working scheduler.

        The ghOSt agent is gone for good: detach it, clear any in-flight
        commits, preempt enclave threads still running under ghOSt
        dispatch (their run-end events belong to the old scheduler), and
        re-attach every enclave thread to a fresh CFS instance on the
        same cores.  Invariant: afterwards no thread is left RUNNABLE
        without a scheduler that will eventually run it.
        """
        agent = deployed.agent
        scheduler = agent.scheduler
        engine = self.syrupd.machine.engine
        agent.crash()  # idempotent: clears inbox/pending state
        scheduler.agent = None
        enclave = agent.enclave
        members = set(enclave.threads())
        for core in scheduler.cores:
            core.pending_commit = None
            if core.thread is not None and core.thread in members:
                scheduler.preempt(core)
        fallback = CfsScheduler(
            engine, scheduler.cores, self.syrupd.machine.costs
        )
        for thread in enclave.threads():
            thread.state = BLOCKED
            fallback.attach(thread)
        for thread in enclave.threads():
            if thread.ensure_work():
                fallback.wake(thread)
        deployed.state = "fallback"
        deployed.fallback_scheduler = fallback
        machine = self.syrupd.machine
        if machine.scheduler is scheduler:
            machine.scheduler = fallback
        obs = self.syrupd.obs
        obs.registry.counter(
            deployed.app_name, "syrupd", "agent_fallbacks"
        ).inc()
        obs.events.emit(
            "enclave_fallback", app=deployed.app_name, hook=deployed.hook,
            fd=deployed.fd, threads=len(enclave),
            restarts=deployed.health.restarts,
        )
        return fallback
