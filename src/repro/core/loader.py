"""Hardened policy loading: AST-validated restricted Python.

The compile → verify → JIT pipeline (:mod:`repro.ebpf`) already rejects
anything outside the safe policy subset, but it does so by *executing
the compiler* over the source.  For trusted built-in policies that is
fine; for the shadow-deployment path (docs/robustness.md "Promotion
lifecycle") the whole point is that **arbitrary user policy files**
enter the system, and the authoring path must reject hostile or sloppy
input *before* any part of it is interpreted:

- **size limits** — a source blob over ``max_bytes`` / ``max_lines`` is
  refused unparsed (no quadratic-parse or memory-amplification games),
- **import allow/deny-list** — the policy subset needs no imports at
  all, so ``import``/``from … import`` is refused unless the module is
  explicitly allowed by the caller,
- **banned constructs** — classes, async/lambda/closures, generators,
  ``nonlocal``, ``try``/``raise``/``with``, ``del``, and star-args are
  structural red flags for sandbox escapes and are refused at the AST
  level (``global`` stays: module-level counters are part of the
  subset),
- **denied names** — ``eval`` / ``exec`` / ``__import__`` / ``open`` /
  ``getattr`` and friends never appear in a legitimate policy, and any
  dunder attribute access (``x.__class__``) is refused outright.

Validation returns *every* issue found (not just the first), so a
rejected file's event carries an actionable list.  The checks are
purely syntactic — the verifier still runs afterwards; this layer only
guarantees that nothing outside the declared subset is ever *fed to*
the compile pipeline.  Modeled on luthien-proxy's ``dynamic_loader``
idiom (SNIPPETS.md): frozenset allow/deny lists plus an ``ast.walk``
over the parse tree.
"""

import ast

__all__ = [
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MAX_LINES",
    "DENIED_NAMES",
    "PolicyLoadError",
    "PolicyValidationError",
    "check_policy_source",
    "load_policy_file",
    "validate_policy_source",
]

#: Hard ceilings for one policy file; generous — the largest built-in
#: policy source is well under 2 KB.
DEFAULT_MAX_BYTES = 64 * 1024
DEFAULT_MAX_LINES = 512

#: Builtins that never appear in a legitimate policy and are classic
#: sandbox-escape primitives.  Checked against every ``Name`` node, so
#: shadowing tricks (``e = eval``) are caught at the reference site.
DENIED_NAMES = frozenset({
    "eval", "exec", "compile", "__import__", "__builtins__",
    "open", "input", "breakpoint", "exit", "quit",
    "globals", "locals", "vars", "dir",
    "getattr", "setattr", "delattr", "hasattr",
    "type", "super", "object", "memoryview", "bytearray",
    "staticmethod", "classmethod", "property",
})

#: AST node types with no place in the policy subset.  Built with
#: ``getattr`` so the list tracks the running interpreter's grammar.
#: ``Global`` is deliberately absent: the policy subset's stateful
#: counters (e.g. ROUND_ROBIN) are module-level ints mutated via
#: ``global`` — the verifier bounds what they can do.
_BANNED_NODE_NAMES = (
    "ClassDef", "AsyncFunctionDef", "AsyncFor", "AsyncWith", "Await",
    "Lambda", "GeneratorExp", "Yield", "YieldFrom",
    "Nonlocal", "Try", "TryStar", "Raise", "With", "Delete",
    "Starred", "NamedExpr", "Match",
)
BANNED_NODES = tuple(
    node for node in (getattr(ast, name, None) for name in _BANNED_NODE_NAMES)
    if node is not None
)
_BANNED_LABELS = {node: name for name, node in
                  ((n, getattr(ast, n, None)) for n in _BANNED_NODE_NAMES)
                  if node is not None}


class PolicyLoadError(ValueError):
    """A policy file could not be loaded (size, encoding, I/O)."""


class PolicyValidationError(PolicyLoadError):
    """A policy source failed restricted-subset validation.

    ``issues`` carries every violation found, in source order.
    """

    def __init__(self, issues):
        self.issues = list(issues)
        preview = "; ".join(self.issues[:3])
        if len(self.issues) > 3:
            preview += f"; … ({len(self.issues)} issues)"
        super().__init__(f"policy source rejected: {preview}")


def _issue(node, message):
    line = getattr(node, "lineno", None)
    return (line if line is not None else 0,
            f"line {line}: {message}" if line is not None else message)


def validate_policy_source(source, allow_imports=(),
                           max_bytes=DEFAULT_MAX_BYTES,
                           max_lines=DEFAULT_MAX_LINES):
    """Validate one policy source blob; returns the list of issues.

    An empty list means the source is inside the restricted subset and
    safe to hand to :func:`repro.ebpf.compiler.compile_policy`.  Checks
    are purely syntactic: nothing in ``source`` is ever executed.
    """
    issues = []
    if not isinstance(source, str):
        return [f"policy source must be str, got {type(source).__name__}"]
    raw = source.encode("utf-8", errors="replace")
    if len(raw) > max_bytes:
        return [f"source is {len(raw)} bytes (limit {max_bytes})"]
    n_lines = source.count("\n") + 1
    if n_lines > max_lines:
        return [f"source is {n_lines} lines (limit {max_lines})"]
    if "\x00" in source:
        return ["source contains NUL bytes"]
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [f"line {exc.lineno}: syntax error: {exc.msg}"]
    allowed = frozenset(allow_imports)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root not in allowed:
                    issues.append(_issue(
                        node, f"import of {alias.name!r} is not allowed"
                    ))
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root not in allowed:
                issues.append(_issue(
                    node, f"import from {node.module!r} is not allowed"
                ))
        elif isinstance(node, BANNED_NODES):
            issues.append(_issue(
                node,
                f"{_BANNED_LABELS[type(node)]} is outside the policy subset",
            ))
        elif isinstance(node, ast.Name) and node.id in DENIED_NAMES:
            issues.append(_issue(node, f"use of {node.id!r} is denied"))
        elif isinstance(node, ast.Attribute) and node.attr.startswith("__"):
            issues.append(_issue(
                node, f"dunder attribute access {node.attr!r} is denied"
            ))
    # ast.walk is breadth-first; report in source order regardless
    return [message for _, message in sorted(issues, key=lambda i: i[0])]


def check_policy_source(source, allow_imports=(),
                        max_bytes=DEFAULT_MAX_BYTES,
                        max_lines=DEFAULT_MAX_LINES):
    """Raise :class:`PolicyValidationError` unless ``source`` is clean."""
    issues = validate_policy_source(
        source, allow_imports=allow_imports, max_bytes=max_bytes,
        max_lines=max_lines,
    )
    if issues:
        raise PolicyValidationError(issues)
    return source


def load_policy_file(path, allow_imports=(), max_bytes=DEFAULT_MAX_BYTES,
                     max_lines=DEFAULT_MAX_LINES):
    """Read + validate a policy file; returns the source text.

    The byte limit is enforced on the raw read (``max_bytes + 1`` cap),
    so an oversized file is rejected without buffering it whole.
    """
    try:
        with open(path, "rb") as fh:
            raw = fh.read(max_bytes + 1)
    except OSError as exc:
        raise PolicyLoadError(f"cannot read policy file {path!r}: {exc}")
    if len(raw) > max_bytes:
        raise PolicyLoadError(
            f"policy file {path!r} exceeds {max_bytes} bytes"
        )
    try:
        source = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise PolicyLoadError(f"policy file {path!r} is not UTF-8: {exc}")
    return check_policy_source(
        source, allow_imports=allow_imports, max_bytes=max_bytes,
        max_lines=max_lines,
    )
