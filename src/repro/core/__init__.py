"""The Syrup framework: the paper's primary contribution.

Layers the user-facing pieces over the substrates:

- :mod:`repro.core.maps` — the Map abstraction (Table 1): pinned, permission
  -checked key-value stores shared between userspace and deployed policies,
  with host/NIC placement latencies (Table 3).
- :mod:`repro.core.executors` — executor maps: the hook-specific Map of
  available executors a policy indexes into (§3.3, §4.4).
- :mod:`repro.core.hooks` — hook sites with per-application dispatch: the
  root port-matching program + PROG_ARRAY tail calls of §4.3.
- :mod:`repro.core.syrupd` — the system-wide daemon: compiles, verifies and
  deploys policies; enforces isolation; owns map pinning.
- :mod:`repro.core.api` — the application-facing API of Table 1
  (``deploy_policy``, ``map_open``, ``map_lookup``, ...).
"""

from repro.constants import DROP, PASS
from repro.core.api import App
from repro.core.executors import ExecutorMap
from repro.core.hooks import Hook, HookSite
from repro.core.maps import MapRegistry, SyrupMap
from repro.core.syrupd import IsolationError, Syrupd

__all__ = [
    "App",
    "DROP",
    "ExecutorMap",
    "Hook",
    "HookSite",
    "IsolationError",
    "MapRegistry",
    "PASS",
    "SyrupMap",
    "Syrupd",
]
