"""Command-line interface for the experiment harnesses.

Regenerate any of the paper's tables/figures from a shell::

    python -m repro figure2
    python -m repro figure6 --loads 100000 200000 --duration-ms 150
    python -m repro table2
    python -m repro all --quick

``--quick`` shrinks load grids and windows for a fast sanity pass; the
defaults match the benchmark suite's paper-scale sweeps.

``python -m repro stats`` renders the observability demo (per-hook
metric counters from a Figure-6-style run with metrics enabled),
``python -m repro timeline`` the flight-recorder demo (the dynamic
Figure-8 run with a mid-run policy switch), and ``python -m repro
qdisc`` the queueing-discipline view (an SRPT figure_order point; see
docs/scheduling-order.md), ``python -m repro slo`` the SLO/signal
view (one closed-loop figure_adaptive point), and ``python -m repro
promote`` the shadow/canary promotion pipeline (a figure_canary-style
run; see docs/robustness.md), and ``python -m repro cores`` the
elastic core-arbitration view (one figure_oversub elastic point; see
docs/oversubscription.md); all are the same surfaces as the
``syrupctl`` console script — see docs/observability.md.
"""

import argparse
import sys

from repro.experiments import (
    run_figure2,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure_adaptive,
    run_figure_canary,
    run_figure_faults,
    run_figure_fleet,
    run_figure_interference,
    run_figure_order,
    run_figure_oversub,
    run_figure_tail,
    run_table2,
    run_table3,
)

__all__ = ["main"]

_QUICK = {
    "figure2": dict(loads=[150_000, 450_000], duration_us=120_000.0,
                    warmup_us=30_000.0),
    "figure6": dict(loads=[100_000, 250_000], duration_us=120_000.0,
                    warmup_us=30_000.0),
    "figure7": dict(ls_loads=[100_000, 300_000], duration_us=120_000.0,
                    warmup_us=30_000.0),
    "figure8": dict(loads=[4_000, 10_000], duration_us=300_000.0,
                    warmup_us=75_000.0),
    "figure9": dict(loads=[1_000_000, 2_500_000], duration_us=20_000.0,
                    warmup_us=5_000.0),
    "figure_adaptive": dict(loads=[240_000], duration_us=120_000.0,
                            warmup_us=30_000.0,
                            variants=["fifo", "adaptive"]),
    "figure_canary": dict(duration_us=250_000.0, warmup_us=60_000.0),
    "figure_faults": dict(loads=[50_000, 100_000], duration_us=120_000.0,
                          warmup_us=30_000.0),
    "figure_fleet": dict(num_machines=24, rps=280_000, num_users=100_000,
                         duration_us=60_000.0, warmup_us=10_000.0),
    "figure_interference": dict(loads=[(60_000, 420_000)],
                                duration_us=120_000.0, warmup_us=30_000.0,
                                variants=["isolated", "contended",
                                          "blame_shed"]),
    "figure_order": dict(loads=[120_000, 240_000], duration_us=120_000.0,
                         warmup_us=30_000.0),
    "figure_oversub": dict(duration_us=160_000.0, warmup_us=16_000.0,
                           variants=["static_2_3", "static_3_2",
                                     "elastic"]),
    "figure_tail": dict(loads=[120_000], duration_us=120_000.0,
                        warmup_us=30_000.0),
    "table2": dict(samples=128),
    "table3": dict(n_ops=500),
}

_RUNNERS = {
    "figure2": run_figure2,
    "figure6": run_figure6,
    "figure7": run_figure7,
    "figure8": run_figure8,
    "figure9": run_figure9,
    "figure_adaptive": run_figure_adaptive,
    "figure_canary": run_figure_canary,
    "figure_faults": run_figure_faults,
    "figure_fleet": run_figure_fleet,
    "figure_interference": run_figure_interference,
    "figure_order": run_figure_order,
    "figure_oversub": run_figure_oversub,
    "figure_tail": run_figure_tail,
    "table2": run_table2,
    "table3": run_table3,
}


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate Syrup (SOSP 2021) tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_RUNNERS) + ["all", "stats", "timeline", "health",
                                    "qdisc", "fleet", "slo", "promote",
                                    "tenants", "cores"],
        help=(
            "which experiment to run ('all' runs every one; 'stats', "
            "'timeline', 'health', 'qdisc', 'fleet', 'slo', 'promote', "
            "'tenants' and 'cores' render the syrupctl demos)"
        ),
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced grids/windows for a fast sanity pass",
    )
    parser.add_argument(
        "--loads", type=int, nargs="+", default=None,
        help="override the load grid (RPS); for figure7 these are LS loads",
    )
    parser.add_argument(
        "--duration-ms", type=float, default=None,
        help="measurement window per point, in milliseconds",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the RNG seed"
    )
    parser.add_argument(
        "--out", type=str, default=None,
        help="also write the rendered table(s) to this file",
    )
    parser.add_argument(
        "--plot", action="store_true",
        help="render an ASCII latency-vs-load plot for figure experiments",
    )
    parser.add_argument(
        "--export-spans", type=str, default=None, metavar="DIR",
        help=(
            "figure_tail only: also write Chrome span traces and raw "
            "tail-analysis JSON per policy/load point into DIR"
        ),
    )
    return parser


def _kwargs_for(name, args):
    kwargs = dict(_QUICK[name]) if args.quick else {}
    if args.loads is not None and name.startswith("figure"):
        if name == "figure_fleet":
            kwargs["rps"] = args.loads[0]  # one aggregate rack load
        elif name == "figure_canary":
            kwargs["load"] = args.loads[0]  # one calibrated load point
        elif name == "figure_interference":
            # two loads = one (victim, aggressor) pair
            kwargs["loads"] = [(args.loads[0],
                                args.loads[1 if len(args.loads) > 1 else 0])]
        elif name == "figure_oversub":
            kwargs["base_rps"] = args.loads[0]  # per-app baseline RPS
        else:
            key = "ls_loads" if name == "figure7" else "loads"
            kwargs[key] = args.loads
    if args.duration_ms is not None and name.startswith("figure"):
        kwargs["duration_us"] = args.duration_ms * 1000.0
        kwargs["warmup_us"] = args.duration_ms * 250.0  # 25% warmup
    if args.seed is not None and name.startswith("figure"):
        kwargs["seed"] = args.seed
    if name == "figure_tail" and args.export_spans is not None:
        kwargs["export_dir"] = args.export_spans
    return kwargs


#: plot axes per figure: (series column, x column, y column)
_PLOT_AXES = {
    "figure2": ("policy", "load_rps", "p99_us"),
    "figure6": ("policy", "load_rps", "p99_us"),
    "figure7": ("policy", "ls_load_rps", "ls_p99_us"),
    "figure8": ("variant", "load_rps", "get_p99_us"),
    "figure9": ("mode", "load_rps", "p999_us"),
    "figure_adaptive": ("variant", "load_rps", "get_p99_us"),
    "figure_faults": ("variant", "load_rps", "p99_us"),
    "figure_order": ("discipline", "load_rps", "get_p99_us"),
}


def main(argv=None):
    args = _build_parser().parse_args(argv)
    if args.experiment in ("stats", "timeline", "health", "qdisc", "fleet",
                           "slo", "promote", "tenants", "cores"):
        from repro import syrupctl

        kwargs = {}
        if args.loads is not None:
            kwargs["load"] = args.loads[0]
        if args.duration_ms is not None:
            kwargs["duration_ms"] = args.duration_ms
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.experiment == "stats":
            machine = syrupctl.run_stats_demo(**kwargs)
            text = syrupctl.render_stats(machine)
        elif args.experiment == "health":
            machine = syrupctl.run_faults_demo(**kwargs)
            text = syrupctl.render_health(machine)
        elif args.experiment == "qdisc":
            machine = syrupctl.run_qdisc_demo(**kwargs)
            text = syrupctl.render_qdisc(machine)
        elif args.experiment == "fleet":
            fleet = syrupctl.run_fleet_demo(**kwargs)
            text = syrupctl.render_fleet(fleet)
        elif args.experiment == "slo":
            machine = syrupctl.run_slo_demo(**kwargs)
            text = syrupctl.render_slo(machine)
        elif args.experiment == "promote":
            machine = syrupctl.run_promote_demo(**kwargs)
            text = syrupctl.render_promote(machine)
        elif args.experiment == "tenants":
            machine = syrupctl.run_tenants_demo(**kwargs)
            text = syrupctl.render_tenants(machine)
        elif args.experiment == "cores":
            machine = syrupctl.run_cores_demo(**kwargs)
            text = syrupctl.render_cores(machine)
        else:
            machine = syrupctl.run_timeline_demo(**kwargs)
            text = syrupctl.render_timeline(machine)
        print(text)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
        return 0
    names = sorted(_RUNNERS) if args.experiment == "all" else [args.experiment]
    rendered = []
    for name in names:
        table = _RUNNERS[name](**_kwargs_for(name, args))
        text = table.render()
        if args.plot and name in _PLOT_AXES:
            from repro.stats.plot import plot_table

            series, x_col, y_col = _PLOT_AXES[name]
            text += "\n\n" + plot_table(table, series, x_col, y_col)
        print(text)
        print()
        rendered.append(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n\n".join(rendered) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
