"""Framework-wide constants.

``schedule`` returns a ``uint32`` index into the hook's executor map, or one
of two special action values (paper §3.3):

- :data:`PASS` — fall back to the system's default policy for this input.
- :data:`DROP` — drop the input (used e.g. by the token-based QoS policy).

The values sit at the top of the u32 space so they can never collide with a
legal executor-map index.
"""

PASS = 0xFFFFFFFF
DROP = 0xFFFFFFFE

#: Executor indices must be strictly below this bound.
MAX_EXECUTOR_INDEX = 0xFFFFFF00

__all__ = ["DROP", "MAX_EXECUTOR_INDEX", "PASS"]
