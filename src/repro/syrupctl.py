"""syrupctl: operator-facing inspection of a running machine.

The bpftool/`ghostctl` analogue — renders what syrupd knows about a live
machine: deployed policies (with run counts and costs), pinned maps (with
contents), hook sites and port rules, executor maps, and scheduler state.
Used interactively from examples/notebooks and by operators debugging a
policy that "deployed fine but does nothing".
"""

from repro.stats.results import Table

__all__ = ["dump_map", "render_deployments", "render_maps", "render_status"]


def render_deployments(machine):
    """One row per deployed policy, bpftool-prog-show style."""
    table = Table(
        "deployed policies",
        ["fd", "app", "hook", "name", "invocations", "insns",
         "cycle_estimate", "commits", "policy_errors"],
    )
    for row in machine.syrupd.status():
        table.add(**{k: v for k, v in row.items() if k in table.columns})
    return table.render()


def render_maps(machine, max_entries=8):
    """Every pinned map: path, placement, size, and leading entries."""
    registry = machine.syrupd.registry
    lines = ["== pinned maps =="]
    for path in registry.paths():
        syrup_map = registry._pinned[path]
        entries = syrup_map.items()
        preview = ", ".join(f"{k}:{v}" for k, v in entries[:max_entries])
        if len(entries) > max_entries:
            preview += ", ..."
        lines.append(
            f"{path}  [{syrup_map.bpf_map.kind}, "
            f"{len(entries)}/{syrup_map.bpf_map.max_entries}, "
            f"{syrup_map.placement}]  {{{preview}}}"
        )
    if len(lines) == 1:
        lines.append("(none)")
    return "\n".join(lines)


def dump_map(machine, app_name, map_name):
    """Full contents of one app's pinned map, as a dict."""
    registry = machine.syrupd.registry
    path = registry.pin_path(app_name, map_name)
    syrup_map = registry.open(path, app_name)
    return dict(syrup_map.items())


def _hook_lines(machine):
    lines = ["== hook sites =="]
    sites = machine.syrupd._sites
    if not sites:
        lines.append("(none provisioned)")
    for hook, site in sorted(sites.items()):
        ports = sorted(site._port_rules)
        lines.append(
            f"{hook}: ports={ports} pass={site.pass_decisions} "
            f"drop={site.drop_decisions}"
        )
    return lines


def _core_lines(machine):
    lines = ["== cores =="]
    now = machine.now or 1.0
    for core in machine.cores:
        who = core.thread.name if core.thread else "idle"
        tag = " [ghOSt agent]" if core is machine.agent_core else ""
        lines.append(
            f"core {core.cid}: {who}  util={core.busy_us / now:.1%}{tag}"
        )
    return lines


def render_status(machine):
    """The full picture: deployments, maps, hooks, cores, drops."""
    sections = [
        f"machine {machine.config.name!r} t={machine.now:.0f}us "
        f"sched={machine.scheduler_kind}",
        render_deployments(machine),
        render_maps(machine),
        "\n".join(_hook_lines(machine)),
        "\n".join(_core_lines(machine)),
        f"== drops == {machine.netstack.drops}",
    ]
    return "\n\n".join(sections)
