"""syrupctl: operator-facing inspection of a running machine.

The bpftool/`ghostctl` analogue — renders what syrupd knows about a live
machine: deployed policies (with run counts and costs), pinned maps (with
contents), hook sites and port rules, executor maps, scheduler state, and
— on machines running with ``metrics=True`` — the full observability
layer: per-``(app, hook)`` metric tables (:func:`render_stats`) and the
structured decision-event trace (:func:`render_events`).  Used
interactively from examples/notebooks and by operators debugging a policy
that "deployed fine but does nothing".

Also a CLI (``syrupctl`` console script / ``python -m repro stats``):
since there is no long-running daemon to attach to in a simulation,
the CLI drives a canned Figure-6-style RocksDB scenario with metrics
enabled and renders the requested view — the documented, runnable
demonstration of the stats surface (docs/observability.md walks through
the output).
"""

import argparse
import json
import sys

from repro.stats.results import Table

__all__ = [
    "dump_map",
    "main",
    "render_deployments",
    "render_events",
    "render_maps",
    "render_stats",
    "render_status",
    "run_stats_demo",
]


def render_deployments(machine):
    """One row per deployed policy, bpftool-prog-show style."""
    table = Table(
        "deployed policies",
        ["fd", "app", "hook", "name", "invocations", "insns",
         "cycle_estimate", "commits", "policy_errors"],
    )
    for row in machine.syrupd.status():
        table.add(**{k: v for k, v in row.items() if k in table.columns})
    return table.render()


def render_maps(machine, max_entries=8):
    """Every pinned map: path, placement, size, and leading entries."""
    registry = machine.syrupd.registry
    lines = ["== pinned maps =="]
    for path in registry.paths():
        syrup_map = registry._pinned[path]
        entries = syrup_map.items()
        preview = ", ".join(f"{k}:{v}" for k, v in entries[:max_entries])
        if len(entries) > max_entries:
            preview += ", ..."
        lines.append(
            f"{path}  [{syrup_map.bpf_map.kind}, "
            f"{len(entries)}/{syrup_map.bpf_map.max_entries}, "
            f"{syrup_map.placement}]  {{{preview}}}"
        )
    if len(lines) == 1:
        lines.append("(none)")
    return "\n".join(lines)


def dump_map(machine, app_name, map_name):
    """Full contents of one app's pinned map, as a dict."""
    registry = machine.syrupd.registry
    path = registry.pin_path(app_name, map_name)
    syrup_map = registry.open(path, app_name)
    return dict(syrup_map.items())


def _hook_lines(machine):
    lines = ["== hook sites =="]
    sites = machine.syrupd._sites
    if not sites:
        lines.append("(none provisioned)")
    for hook, site in sorted(sites.items()):
        ports = sorted(site._port_rules)
        lines.append(
            f"{hook}: ports={ports} pass={site.pass_decisions} "
            f"drop={site.drop_decisions}"
        )
    return lines


def _core_lines(machine):
    lines = ["== cores =="]
    now = machine.now or 1.0
    for core in machine.cores:
        who = core.thread.name if core.thread else "idle"
        tag = " [ghOSt agent]" if core is machine.agent_core else ""
        lines.append(
            f"core {core.cid}: {who}  util={core.busy_us / now:.1%}{tag}"
        )
    return lines


def render_status(machine):
    """The full picture: deployments, maps, hooks, cores, drops."""
    sections = [
        f"machine {machine.config.name!r} t={machine.now:.0f}us "
        f"sched={machine.scheduler_kind}",
        render_deployments(machine),
        render_maps(machine),
        "\n".join(_hook_lines(machine)),
        "\n".join(_core_lines(machine)),
        f"== drops == {machine.netstack.drops}",
    ]
    return "\n\n".join(sections)


# ----------------------------------------------------------------------
# Observability surface (`syrupctl stats`, docs/observability.md)
# ----------------------------------------------------------------------
def _fmt_metric(metric):
    if metric.kind == "histogram":
        s = metric.summary()
        return (
            f"n={s['count']} mean={s['mean']:.2f} p50={s['p50']:.2f} "
            f"p99={s['p99']:.2f} max={s['max']:.2f}"
        )
    return metric.value


def render_stats(machine):
    """Per-app per-hook metric summary of an observability-enabled machine.

    One row per metric series, grouped by (app, scope) where scope is a
    hook name or subsystem (``maps`` / ``syrupd`` / ``thread_sched``).
    """
    obs = machine.obs
    if not obs.enabled:
        return (
            "observability disabled on this machine "
            "(construct it with Machine(metrics=True))"
        )
    table = Table(
        f"syrup stats t={machine.now:.0f}us",
        ["app", "scope", "metric", "value", "updated_us"],
    )
    registry = obs.registry
    for app, scope, name in registry.series():
        metric = registry.get(app, scope, name)
        updated = metric.updated_at
        table.add(
            app=app, scope=scope, metric=name, value=_fmt_metric(metric),
            updated_us=None if updated is None else round(updated, 1),
        )
    events = obs.events
    footer = (
        f"events: {events.emitted} emitted, {len(events)} buffered, "
        f"{events.dropped} overwritten (capacity {events.capacity})"
    )
    return table.render() + "\n" + footer


def render_events(machine, last=20, kind=None):
    """The tail of the structured event trace, one JSON object per line."""
    obs = machine.obs
    if not obs.enabled:
        return (
            "observability disabled on this machine "
            "(construct it with Machine(metrics=True))"
        )
    events = obs.events.events(kind=kind) if kind else obs.events.tail(last)
    if kind:
        events = events[-last:]
    return "\n".join(json.dumps(event, sort_keys=True) for event in events)


def run_stats_demo(load=120_000, duration_ms=100.0, seed=7):
    """Drive the canned observability demo: one Figure-6-style point.

    A RocksDB server under the 99.5% GET / 0.5% SCAN mix with the SCAN
    Avoid policy at the Socket Select hook, metrics enabled, and a
    request tracer bridged into the event trace.  Returns the finished
    machine for rendering.
    """
    from repro.experiments.runner import RocksDbTestbed
    from repro.policies.builtin import SCAN_AVOID
    from repro.trace import RequestTracer
    from repro.workload.mixes import GET_SCAN_995_005

    testbed = RocksDbTestbed(
        policy=(SCAN_AVOID, "socket_select", {"NUM_THREADS": 6}),
        mark_scans=True, seed=seed, metrics=True,
    )
    duration_us = duration_ms * 1000.0
    RequestTracer(testbed.machine, testbed.server,
                  warmup_us=duration_us * 0.25)
    gen = testbed.drive(load, GET_SCAN_995_005, duration_us,
                        warmup_us=duration_us * 0.25)
    gen.start()
    testbed.machine.run()
    testbed.machine.demo_generator = gen
    return testbed.machine


def main(argv=None):
    """CLI: ``syrupctl {stats,status,maps,events} [options]``."""
    parser = argparse.ArgumentParser(
        prog="syrupctl",
        description=(
            "Inspect a Syrup machine's observability layer.  Runs the "
            "canned RocksDB demo scenario (metrics enabled) and renders "
            "the requested view; see docs/observability.md."
        ),
    )
    parser.add_argument(
        "view", choices=["stats", "status", "maps", "events"],
        help="which surface to render",
    )
    parser.add_argument("--load", type=int, default=120_000,
                        help="demo offered load (RPS)")
    parser.add_argument("--duration-ms", type=float, default=100.0,
                        help="demo run length in milliseconds")
    parser.add_argument("--seed", type=int, default=7,
                        help="demo RNG seed")
    parser.add_argument("--last", type=int, default=20,
                        help="events: how many trailing events to print")
    parser.add_argument("--kind", type=str, default=None,
                        help="events: filter by event kind")
    parser.add_argument("--json", action="store_true",
                        help="stats: print the raw snapshot as JSON")
    parser.add_argument("--export-events", type=str, default=None,
                        metavar="PATH",
                        help="also export the full event ring as JSON lines")
    args = parser.parse_args(argv)

    machine = run_stats_demo(load=args.load, duration_ms=args.duration_ms,
                             seed=args.seed)
    if args.view == "stats":
        if args.json:
            print(json.dumps(machine.obs.snapshot(), indent=2))
        else:
            print(render_stats(machine))
    elif args.view == "status":
        print(render_status(machine))
    elif args.view == "maps":
        print(render_maps(machine))
    else:
        print(render_events(machine, last=args.last, kind=args.kind))
    if args.export_events:
        n = machine.obs.events.to_jsonl(args.export_events)
        print(f"wrote {n} events to {args.export_events}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
