"""syrupctl: operator-facing inspection of a running machine.

The bpftool/`ghostctl` analogue — renders what syrupd knows about a live
machine: deployed policies (with run counts and costs), pinned maps (with
contents), hook sites and port rules, executor maps, scheduler state, and
— on machines running with ``metrics=True`` — the full observability
layer: per-``(app, hook)`` metric tables (:func:`render_stats`) and the
structured decision-event trace (:func:`render_events`).  Used
interactively from examples/notebooks and by operators debugging a policy
that "deployed fine but does nothing".

Also a CLI (``syrupctl`` console script / ``python -m repro stats``):
since there is no long-running daemon to attach to in a simulation,
the CLI drives a canned Figure-6-style RocksDB scenario with metrics
enabled and renders the requested view — the documented, runnable
demonstration of the stats surface (docs/observability.md walks through
the output).
"""

import argparse
import json
import sys

from repro.stats.results import Table

__all__ = [
    "dump_map",
    "main",
    "render_cores",
    "render_deployments",
    "render_events",
    "render_fleet",
    "render_health",
    "render_maps",
    "render_promote",
    "render_qdisc",
    "render_slo",
    "render_spans",
    "render_stats",
    "render_status",
    "render_tail",
    "render_tenants",
    "render_timeline",
    "run_cores_demo",
    "run_faults_demo",
    "run_fleet_demo",
    "run_promote_demo",
    "run_qdisc_demo",
    "run_slo_demo",
    "run_spans_demo",
    "run_stats_demo",
    "run_tenants_demo",
    "run_timeline_demo",
]


def render_deployments(machine):
    """One row per deployed policy, bpftool-prog-show style."""
    table = Table(
        "deployed policies",
        ["fd", "app", "hook", "name", "invocations", "insns",
         "cycle_estimate", "commits", "policy_errors"],
    )
    for row in machine.syrupd.status():
        table.add(**{k: v for k, v in row.items() if k in table.columns})
    return table.render()


def render_health(machine):
    """Per-deployment lifecycle health (docs/robustness.md).

    One row per deployment: its state (``active`` / ``quarantined`` /
    ``fallback``), runtime-fault totals and the count inside the current
    sliding window, watchdog crash/restart totals, and rollbacks.
    """
    table = Table(
        f"deployment health t={machine.now:.0f}us",
        ["fd", "app", "hook", "state", "runtime_faults",
         "faults_in_window", "crashes", "restarts", "rollbacks"],
    )
    rows = machine.syrupd.health()
    for row in rows:
        table.add(**{k: v for k, v in row.items() if k in table.columns})
    rendered = table.render()
    if not rows:
        rendered += "\n(no deployments)"
    injector = machine.faults
    if injector is not None:
        rendered += (
            f"\nfault plan: seed={injector.plan.seed} "
            f"specs={len(injector.plan)} injected={injector.injected}"
        )
    return rendered


def render_qdisc(machine):
    """Installed queueing disciplines, one row per attached queue.

    The ``tc qdisc show`` analogue for :mod:`repro.qdisc`: per hook and
    per target queue (socket sid / NIC rx queue / enclave runqueue) the
    backend, lifecycle state (``active`` or reverted-to-``fifo``),
    current depth, enqueue/dequeue/drop counters, and a summary of the
    rank distribution the rank function has assigned so far.
    """
    table = Table(
        f"queueing disciplines t={machine.now:.0f}us",
        ["fd", "app", "layer", "target", "backend", "state", "depth",
         "enqueues", "dequeues", "sched_drops", "overflow_drops",
         "evictions", "runtime_faults", "rank_mean", "rank_min",
         "rank_max"],
    )
    rows = machine.syrupd.qdiscs()
    for row in rows:
        table.add(**{k: v for k, v in row.items() if k in table.columns})
    rendered = table.render()
    if not rows:
        rendered += "\n(no disciplines installed)"
    return rendered


def render_promote(machine):
    """Promotion pipeline state: one row per shadow/canary attempt.

    The ``syrupctl promote`` view (docs/robustness.md "Promotion
    lifecycle"): each candidate's current stage, decision-diff
    agreement, canary cohort exposure, fault counts, and the rejection
    or demotion reason, followed by the per-candidate stage history the
    lifecycle events recorded.
    """
    table = Table(
        f"promotion pipeline t={machine.now:.0f}us",
        ["name", "app", "hook", "stage", "reason", "canary_pct",
         "canary_enforced", "canary_faults", "agreement", "decisions",
         "shadow_faults"],
    )
    rows = machine.syrupd.promotions()
    for row in rows:
        diff = row["diff"]
        table.add(
            name=row["name"], app=row["app"], hook=row["hook"],
            stage=row["stage"], reason=row["reason"] or "-",
            canary_pct=row["canary_pct"],
            canary_enforced=row["canary_enforced"],
            canary_faults=row["canary_faults"],
            agreement=diff["agreement"], decisions=diff["decisions"],
            shadow_faults=diff["shadow_faults"],
        )
    rendered = table.render()
    if not rows:
        return rendered + "\n(no promotion attempts)"
    for row in rows:
        rendered += f"\n{row['name']}:"
        for step in row["history"]:
            rendered += (f"\n  {step['t_us']:>10.0f}us  "
                         f"{step['stage']:<8s} {step['reason']}")
        confusion = row["diff"]["confusion"]
        if confusion:
            pairs = ", ".join(f"{k}:{v}" for k, v in confusion.items())
            rendered += f"\n  decision diff: {pairs}"
    return rendered


def render_fleet(fleet, width=60):
    """The rack console: steering, staleness, liveness, load balance.

    Renders a :class:`repro.cluster.fleet.Fleet` — the header shows the
    installed steering policy and the sync-bus staleness window, then
    per-machine sparklines over *machine index* (served totals and
    instantaneous load) expose how evenly the policy spread the rack,
    and a footer reports failover activity and the client-observed tail.
    """
    view = fleet.fleet_view()
    staleness = view["staleness_us"]
    lines = [
        f"== syrup fleet t={fleet.engine.now:.0f}us ==",
        (
            f"machines={view['machines']} x{view['workers_per_machine']} "
            f"workers  steering={view['steering']}  "
            f"sync={view['sync_delay_us']:g}+{view['sync_interval_us']:g}us"
            + (f"  staleness={staleness:.0f}us" if staleness is not None
               else "")
        ),
    ]
    if view["down"]:
        lines.append(f"DOWN: machines {view['down']}")
    lines.append(
        f"offered={view['offered']}  completed={view['completed']}  "
        f"dropped={view['dropped']}  resteers={view['resteers']}  "
        f"outstanding={view['outstanding']}"
    )
    served = view["served"]
    lines.append(f"served/machine   {_sparkline(served, width)}  "
                 f"min={min(served)} max={max(served)}")
    lines.append(f"load now         {_sparkline(view['load_now'], width)}  "
                 f"total={sum(view['load_now'])}")
    p50, p99 = view["p50_us"], view["p99_us"]
    if p50 == p50:  # not NaN
        lines.append(f"latency  p50={p50:.0f}us  p99={p99:.0f}us")
    return "\n".join(lines)


def render_slo(machine):
    """Per-objective SLO table plus the signal-bus footer.

    One row per objective from :meth:`repro.obs.slo.SloTracker.snapshot`
    — lifetime compliance, short/long-window burn rates, remaining error
    budget, and the alert state — followed by what the
    :class:`~repro.core.signals.SignalBus` last observed (tick count and
    the latest scalar signal values).
    """
    rows = machine.syrupd.slo()
    if not rows:
        return (
            "no SLO objectives on this machine "
            "(construct it with Machine(slo=True) and register "
            "objectives on machine.slo)"
        )
    table = Table(
        f"syrup slo t={machine.now:.0f}us",
        ["name", "kind", "target", "good", "total", "compliance",
         "burn_short", "burn_long", "budget_remaining", "state"],
    )
    for row in rows:
        table.add(**{k: v for k, v in row.items() if k in table.columns})
    view = machine.syrupd.signals()
    footer = (
        f"signals: interval={view['interval_us']:g}us "
        f"ticks={view['ticks']} "
        f"controllers={view['controllers']}"
    )
    last = view["last"]
    if last:
        footer += "\nlast: " + "  ".join(
            f"{name}={value:g}" if isinstance(value, float)
            else f"{name}={value}"
            for name, value in last.items()
        )
    return table.render() + "\n" + footer


def render_tenants(machine):
    """The multi-tenant console: per-tenant bills plus the blame matrix.

    One row per tenant from the
    :class:`~repro.obs.accounting.TenantAccountant` ledgers — CPU
    service time, policy-execution overhead, per-layer queueing delay,
    completions and drops — followed by the pairwise interference
    matrix ("A imposed X us on B at layer L", diagonal = self-queueing)
    and each tenant's worst aggressor.
    """
    acct = machine.obs.acct
    if not acct.enabled:
        return (
            "tenant accounting disabled on this machine "
            "(construct it with Machine(accounting=True))"
        )
    snap = acct.snapshot()
    table = Table(
        f"syrup tenants t={machine.now:.0f}us",
        ["tenant", "completed", "drops", "cpu_us", "policy_us",
         "nic_wait_us", "softirq_wait_us", "socket_wait_us",
         "qdisc_wait_us", "runq_wait_us"],
    )
    for entry in snap["tenants"]:
        wait = entry["wait_us"]
        table.add(
            tenant=entry["tenant"],
            completed=entry["completed"],
            drops=sum(entry["drops"].values()),
            cpu_us=round(entry["cpu_service_us"], 1),
            policy_us=round(entry["policy_exec_us"], 1),
            nic_wait_us=round(wait["nic"], 1),
            softirq_wait_us=round(wait["softirq"], 1),
            socket_wait_us=round(wait["socket"], 1),
            qdisc_wait_us=round(wait["qdisc"], 1),
            runq_wait_us=round(wait["runqueue"], 1),
        )
    rendered = table.render()
    if not snap["tenants"]:
        return rendered + "\n(no tenant-labeled traffic)"
    blame = snap["blame"]
    if blame:
        rendered += "\n== blame matrix (victim <- aggressor, us) =="
        for victim in sorted(blame):
            for aggressor in sorted(blame[victim]):
                for layer, us in sorted(blame[victim][aggressor].items()):
                    marker = " (self)" if victim == aggressor else ""
                    rendered += (f"\n{victim:<10} <- {aggressor:<10} "
                                 f"{layer:<9} {us:>12.1f}{marker}")
        for entry in snap["tenants"]:
            top = acct.blame.top_aggressor(entry["tenant"])
            if top is not None:
                aggressor, layer, us, share = top
                rendered += (
                    f"\nworst aggressor for {entry['tenant']}: "
                    f"{aggressor} at {layer} "
                    f"({us:.0f}us, {100.0 * share:.0f}% of that layer)"
                )
    return rendered


def render_cores(machine, width=64):
    """The elastic-core console: per-class grants plus occupancy lanes.

    One row per scheduling class registered with the
    :class:`~repro.kernel.arbiter.CoreArbiter` — floor, currently held
    cores, cumulative grants/revocations, time-averaged occupancy (in
    cores) and instantaneous pressure — followed by one ASCII lane per
    pool core showing which class owned it over the run (legend letter
    per class, ``.`` = unowned / before the recorded window).
    """
    arbiter = getattr(machine, "arbiter", None)
    if arbiter is None:
        return (
            "no core arbiter on this machine (construct it with "
            "Machine(scheduler='elastic', elastic=ElasticSpec()...))"
        )
    snap = arbiter.view()
    now = max(snap["now_us"], 1e-9)
    table = Table(
        f"syrup cores t={snap['now_us']:.0f}us "
        f"pool={len(snap['pool'])} moves={snap['moves']} "
        f"stalls={snap['stalls']}",
        ["class", "floor", "cores", "grants", "revocations",
         "occ_cores", "pressure"],
    )
    letters = {}
    for index, entry in enumerate(snap["classes"]):
        letters[entry["name"]] = chr(ord("A") + index % 26)
        table.add(**{
            "class": entry["name"],
            "floor": entry["floor"],
            "cores": ",".join(str(c) for c in entry["cores"]) or "-",
            "grants": entry["grants"],
            "revocations": entry["revocations"],
            "occ_cores": round(entry["occupancy_us"] / now, 2),
            "pressure": entry["pressure"],
        })
    lines = [table.render(), "", "== occupancy timeline =="]
    lines.append("  ".join(
        f"{letter}={name}" for name, letter in letters.items()
    ) + "  .=unowned")
    bucket = now / width
    for cid in snap["pool"]:
        segments = snap["timeline"].get(cid, [])
        lane = []
        for col in range(width):
            t = (col + 0.5) * bucket
            char = "."
            for seg in segments:
                if seg["start_us"] <= t < seg["end_us"]:
                    char = letters.get(seg["owner"], "?")
                    break
            lane.append(char)
        stalled = " [stalled]" if cid in snap["stalled"] else ""
        lines.append(f"core {cid:>2} |{''.join(lane)}|{stalled}")
    return "\n".join(lines)


def render_maps(machine, max_entries=8):
    """Every pinned map: path, placement, size, and leading entries."""
    registry = machine.syrupd.registry
    lines = ["== pinned maps =="]
    for path in registry.paths():
        syrup_map = registry._pinned[path]
        entries = syrup_map.items()
        preview = ", ".join(f"{k}:{v}" for k, v in entries[:max_entries])
        if len(entries) > max_entries:
            preview += ", ..."
        lines.append(
            f"{path}  [{syrup_map.bpf_map.kind}, "
            f"{len(entries)}/{syrup_map.bpf_map.max_entries}, "
            f"{syrup_map.placement}]  {{{preview}}}"
        )
    if len(lines) == 1:
        lines.append("(none)")
    return "\n".join(lines)


def dump_map(machine, app_name, map_name):
    """Full contents of one app's pinned map, as a dict."""
    registry = machine.syrupd.registry
    path = registry.pin_path(app_name, map_name)
    syrup_map = registry.open(path, app_name)
    return dict(syrup_map.items())


def _hook_lines(machine):
    lines = ["== hook sites =="]
    sites = machine.syrupd._sites
    if not sites:
        lines.append("(none provisioned)")
    for hook, site in sorted(sites.items()):
        ports = sorted(site._port_rules)
        lines.append(
            f"{hook}: ports={ports} pass={site.pass_decisions} "
            f"drop={site.drop_decisions}"
        )
    return lines


def _core_lines(machine):
    lines = ["== cores =="]
    now = machine.now or 1.0
    for core in machine.cores:
        who = core.thread.name if core.thread else "idle"
        tag = " [ghOSt agent]" if core is machine.agent_core else ""
        lines.append(
            f"core {core.cid}: {who}  util={core.busy_us / now:.1%}{tag}"
        )
    return lines


def render_status(machine):
    """The full picture: deployments, maps, hooks, cores, drops."""
    sections = [
        f"machine {machine.config.name!r} t={machine.now:.0f}us "
        f"sched={machine.scheduler_kind}",
        render_deployments(machine),
        render_maps(machine),
        "\n".join(_hook_lines(machine)),
        "\n".join(_core_lines(machine)),
        f"== drops == {machine.netstack.drops}",
    ]
    return "\n\n".join(sections)


# ----------------------------------------------------------------------
# Observability surface (`syrupctl stats`, docs/observability.md)
# ----------------------------------------------------------------------
def _fmt_metric(metric):
    if metric.kind == "histogram":
        s = metric.summary()
        return (
            f"n={s['count']} mean={s['mean']:.2f} p50={s['p50']:.2f} "
            f"p99={s['p99']:.2f} max={s['max']:.2f}"
        )
    return metric.value


def render_stats(machine):
    """Per-app per-hook metric summary of an observability-enabled machine.

    One row per metric series, grouped by (app, scope) where scope is a
    hook name or subsystem (``maps`` / ``syrupd`` / ``thread_sched``).
    """
    obs = machine.obs
    if not obs.enabled:
        return (
            "observability disabled on this machine "
            "(construct it with Machine(metrics=True))"
        )
    table = Table(
        f"syrup stats t={machine.now:.0f}us",
        ["app", "scope", "metric", "value", "updated_us"],
    )
    registry = obs.registry
    for app, scope, name in registry.series():
        metric = registry.get(app, scope, name)
        updated = metric.updated_at
        table.add(
            app=app, scope=scope, metric=name, value=_fmt_metric(metric),
            updated_us=None if updated is None else round(updated, 1),
        )
    events = obs.events
    footer = (
        f"events: {events.emitted} emitted, {len(events)} buffered, "
        f"{events.dropped} dropped (capacity {events.capacity})"
    )
    return table.render() + "\n" + footer


# ----------------------------------------------------------------------
# Time-series surface (`syrupctl timeline`, repro.obs.timeseries)
# ----------------------------------------------------------------------
#: Sparkline intensity ramp, lowest to highest.
_SPARK = " .:-=+*#%@"


def _sparkline(values, width, pad=0):
    """One line of ASCII intensity characters for a numeric series.

    ``pad`` left-pads with spaces (series born mid-run stay aligned to
    the shared time axis).  Non-negative series scale from a zero
    baseline so "nothing" reads as blank and steady values as solid.
    """
    if not values:
        return " " * (pad + width)
    if len(values) > width:
        # resample: mean per column keeps rates honest
        per_col = len(values) / width
        resampled = []
        for col in range(width):
            lo = int(col * per_col)
            hi = max(lo + 1, int((col + 1) * per_col))
            chunk = values[lo:hi]
            resampled.append(sum(chunk) / len(chunk))
        values = resampled
    vmin = min(min(values), 0)
    vmax = max(values)
    span = (vmax - vmin) or 1.0
    top = len(_SPARK) - 1
    return " " * pad + "".join(
        _SPARK[int((v - vmin) / span * top)] for v in values
    )


def _series_values(series):
    """Numeric values for sparklining: counters/gauges as-is, hist p99."""
    if series.kind == "histogram":
        return series.values(field="p99")
    return series.values()


def render_timeline(machine, app=None, scope=None, width=60,
                    include_zero=False):
    """Recorded time series as labeled sparklines, one row per metric.

    Counters show per-interval deltas, gauges sampled values, histograms
    the cumulative p99 at each sample.  All-zero series are skipped
    unless ``include_zero``; filter with ``app``/``scope``.
    """
    recorder = machine.obs.recorder
    if not recorder.enabled:
        return (
            "time-series recording disabled on this machine (construct "
            "it with Machine(metrics=True, timeseries=<interval_us>))"
        )
    keys = [
        key for key in recorder.keys()
        if (app is None or key[0] == app)
        and (scope is None or key[1] == scope)
    ]
    if not keys:
        return "(no recorded series)"
    # span from the longest series (ones born mid-run start later)
    longest = max((recorder.series(*key) for key in keys), key=len)
    times = longest.times()
    header = (
        f"== syrup timeline ==  interval={recorder.interval_us:g}us  "
        f"samples={len(times)}  span=[{times[0]:.0f}, {times[-1]:.0f}]us"
        if times else "== syrup timeline ==  (no samples yet)"
    )
    lines = [header]
    label_width = max(len("/".join(key)) for key in keys)
    n_cols = min(len(times), width) or 1
    for key in keys:
        series = recorder.series(*key)
        values = _series_values(series)
        if not include_zero and not any(values):
            continue
        suffix = ".p99" if series.kind == "histogram" else ""
        label = "/".join(key) + suffix
        peak = max(values) if values else 0
        # align to the shared axis: late-born series are left-padded
        pad = round(n_cols * (1 - len(series) / len(times))) if times else 0
        lines.append(
            f"{label:<{label_width + 4}} max={peak:>10.6g} "
            f"|{_sparkline(values, n_cols - pad, pad=pad)}|"
        )
    if len(lines) == 1:
        lines.append("(all series zero; pass include_zero=True to see them)")
    return "\n".join(lines)


def render_events(machine, last=20, kind=None, since=None):
    """The tail of the structured event trace, one JSON object per line.

    ``kind`` filters by event kind, ``since`` keeps only events stamped
    at or after that simulated time (us), ``last`` caps how many of the
    trailing matches are printed.
    """
    obs = machine.obs
    if not obs.enabled:
        return (
            "observability disabled on this machine "
            "(construct it with Machine(metrics=True))"
        )
    if kind is not None or since is not None:
        events = obs.events.events(kind=kind, since=since)[-last:]
    else:
        events = obs.events.tail(last)
    return "\n".join(json.dumps(event, sort_keys=True) for event in events)


# ----------------------------------------------------------------------
# Causal-span surface (`syrupctl spans` / `syrupctl tail`, repro.obs.spans)
# ----------------------------------------------------------------------
def render_spans(machine, last=10):
    """Sampler state plus the last ``last`` completed request trees.

    One line per request — rid, total latency, completion state — then
    one indented line per span with its duration and attributes.
    """
    tracer = machine.obs.spans
    if not tracer.enabled:
        return (
            "span tracing disabled on this machine "
            "(construct it with Machine(spans=<sample-every>))"
        )
    lines = [
        f"== syrup spans ==  every={tracer.sample_every} "
        f"seen={tracer.seen} sampled={tracer.sampled} "
        f"completed={tracer.completed_count} aborted={tracer.aborted_count} "
        f"buffered={len(tracer)}"
    ]
    for tree in tracer.trees()[-last:]:
        total = tree["end"] - tree["start"]
        state = ("complete" if tree["complete"]
                 else f"aborted:{tree['abort_reason']}")
        lines.append(
            f"rid={tree['rid']} t=[{tree['start']:.1f}, {tree['end']:.1f}]us "
            f"total={total:.2f}us {state}"
        )
        for span in tree["spans"]:
            dur = span["end"] - span["start"]
            attrs = span.get("attrs")
            suffix = f"  {attrs}" if attrs else ""
            lines.append(f"  {span['name']:<24} {dur:>10.3f}us{suffix}")
    if len(lines) == 1:
        lines.append("(no sampled requests)")
    return "\n".join(lines)


def render_tail(machine, lo_pct=50.0, hi_pct=99.0):
    """The p50-vs-p99 critical-path table for the sampled requests."""
    from repro.obs.tail import critical_path, render_critical_path

    tracer = machine.obs.spans
    if not tracer.enabled:
        return (
            "span tracing disabled on this machine "
            "(construct it with Machine(spans=<sample-every>))"
        )
    analysis = critical_path(
        tracer.trees(complete=True), lo_pct=lo_pct, hi_pct=hi_pct
    )
    return render_critical_path(
        analysis, title=f"syrup tail t={machine.now:.0f}us"
    )


def run_stats_demo(load=120_000, duration_ms=100.0, seed=7):
    """Drive the canned observability demo: one Figure-6-style point.

    A RocksDB server under the 99.5% GET / 0.5% SCAN mix with the SCAN
    Avoid policy at the Socket Select hook, metrics enabled, and a
    request tracer bridged into the event trace.  Returns the finished
    machine for rendering.
    """
    from repro.experiments.runner import RocksDbTestbed
    from repro.policies.builtin import SCAN_AVOID
    from repro.trace import RequestTracer
    from repro.workload.mixes import GET_SCAN_995_005

    testbed = RocksDbTestbed(
        policy=(SCAN_AVOID, "socket_select", {"NUM_THREADS": 6}),
        mark_scans=True, seed=seed, metrics=True,
    )
    duration_us = duration_ms * 1000.0
    RequestTracer(testbed.machine, testbed.server,
                  warmup_us=duration_us * 0.25)
    gen = testbed.drive(load, GET_SCAN_995_005, duration_us,
                        warmup_us=duration_us * 0.25)
    gen.start()
    testbed.machine.run()
    testbed.machine.demo_generator = gen
    return testbed.machine


def run_spans_demo(load=120_000, duration_ms=100.0, seed=7, spans_every=1):
    """Drive the causal-span demo: the stats scenario with tracing on.

    The same Figure-6-style SCAN Avoid point as :func:`run_stats_demo`,
    with head-sampled span tracing (``spans_every`` keeps every Nth
    request) *and* metrics enabled, so decision spans carry event
    sequence numbers linking them back to the decision trace.  Returns
    the finished machine for rendering (``syrupctl spans`` /
    ``syrupctl tail``).
    """
    from repro.experiments.runner import RocksDbTestbed
    from repro.policies.builtin import SCAN_AVOID
    from repro.workload.mixes import GET_SCAN_995_005

    testbed = RocksDbTestbed(
        policy=(SCAN_AVOID, "socket_select", {"NUM_THREADS": 6}),
        mark_scans=True, seed=seed, metrics=True,
        spans=spans_every, spans_capacity=1 << 16,
    )
    duration_us = duration_ms * 1000.0
    gen = testbed.drive(load, GET_SCAN_995_005, duration_us,
                        warmup_us=duration_us * 0.25)
    gen.start()
    testbed.machine.run()
    testbed.machine.demo_generator = gen
    return testbed.machine


def run_faults_demo(load=100_000, duration_ms=80.0, seed=3,
                    fault_rate=0.05):
    """Drive the canned robustness demo: a fault plan vs the lifecycle.

    The Figure-6 SCAN Avoid point with a seeded
    :class:`repro.faults.FaultPlan` injecting runtime faults into the
    Socket Select program; the default
    :class:`repro.core.health.HealthPolicy` quarantines the deployment
    once the sliding-window threshold breaks, so ``syrupctl health``
    shows a ``quarantined`` row and the event trace carries the
    ``fault_injected`` → ``runtime_fault`` → ``quarantine`` sequence.
    Returns the finished machine for rendering.
    """
    from repro.core.health import HealthPolicy
    from repro.experiments.runner import RocksDbTestbed
    from repro.faults import FaultPlan
    from repro.policies.builtin import SCAN_AVOID
    from repro.workload.mixes import GET_SCAN_995_005

    plan = FaultPlan(seed=11).vmfault(
        fault_rate, app="rocksdb", hook="socket_select"
    )
    testbed = RocksDbTestbed(
        policy=(SCAN_AVOID, "socket_select", {"NUM_THREADS": 6}),
        mark_scans=True, seed=seed, metrics=True, faults=plan,
        health=HealthPolicy(window_us=10_000.0, max_faults=5),
    )
    duration_us = duration_ms * 1000.0
    gen = testbed.drive(load, GET_SCAN_995_005, duration_us,
                        warmup_us=duration_us * 0.25)
    gen.start()
    testbed.machine.run()
    testbed.machine.demo_generator = gen
    return testbed.machine


def run_qdisc_demo(load=240_000, duration_ms=100.0, seed=3):
    """Drive the canned queueing-discipline demo: one figure_order point.

    The RocksDB bimodal mix with the SRPT-by-request-size rank function
    (:data:`repro.qdisc.policies.SRPT_BY_SIZE`) deployed on the exact
    PIFO backend at every socket backlog, metrics enabled, at a load
    where queues actually form.  Returns the finished machine for
    rendering (``syrupctl qdisc`` / ``python -m repro qdisc``).
    """
    from repro.experiments.runner import RocksDbTestbed
    from repro.qdisc.policies import SRPT_BY_SIZE
    from repro.workload.mixes import GET_SCAN_995_005

    testbed = RocksDbTestbed(
        qdisc=(SRPT_BY_SIZE, "socket", "pifo"), mark_sizes=True,
        seed=seed, metrics=True,
    )
    duration_us = duration_ms * 1000.0
    gen = testbed.drive(load, GET_SCAN_995_005, duration_us,
                        warmup_us=duration_us * 0.25)
    gen.start()
    testbed.machine.run()
    testbed.machine.demo_generator = gen
    return testbed.machine


def run_timeline_demo(load=6_000, duration_ms=600.0, seed=5,
                      interval_ms=10.0):
    """Drive the canned time-series demo: the dynamic Figure-8 scenario.

    50/50 GET/SCAN on Vanilla Linux with SCAN Avoid deployed *mid-run*
    (:func:`repro.experiments.figure8.run_figure8_dynamic`), metrics and
    the flight recorder enabled — the policy switch shows up as hook
    decision rates jumping from zero halfway through the timeline.
    Returns the finished machine for rendering.
    """
    from repro.experiments.figure8 import run_figure8_dynamic

    testbed, gen = run_figure8_dynamic(
        load=load, duration_us=duration_ms * 1000.0, seed=seed,
        metrics=True, timeseries=interval_ms * 1000.0,
    )
    testbed.machine.demo_generator = gen
    return testbed.machine


def run_slo_demo(load=240_000, duration_ms=120.0, seed=3):
    """Drive the canned closed-loop demo: one adaptive figure point.

    One ``figure_adaptive`` load point past the knee with the full
    control loop — streaming sketches and SLO objectives sampled by the
    :class:`~repro.core.signals.SignalBus`, burn-rate-driven shedding,
    SRPT threshold auto-tuning, and blame steering — so ``syrupctl slo``
    shows live burn rates, budget spend, and the controllers' last
    actuation.  Returns the finished machine for rendering.
    """
    from repro.experiments.figure_adaptive import _build, _wire_adaptive
    from repro.workload.mixes import GET_SCAN_995_005

    duration_us = duration_ms * 1000.0
    testbed = _build("adaptive", seed)
    gen = testbed.drive(load, GET_SCAN_995_005, duration_us,
                        warmup_us=duration_us * 0.25)
    gen.start()
    _wire_adaptive(testbed, gen, duration_us, shedding=True)
    testbed.machine.run()
    testbed.machine.demo_generator = gen
    return testbed.machine


def run_promote_demo(load=260_000, duration_ms=300.0, seed=3):
    """Drive the canned promotion demo: two candidates, one machine.

    A figure_canary-style run where the *broken* SRPT variant is
    submitted first (shadow at 80 ms, auto-rejected in its canary
    window) and the *good* tiered variant second (shadow at 170 ms,
    auto-promoted to active and through probation) — so
    ``syrupctl promote`` renders a rejected row and an active row with
    their full stage histories side by side.  Returns the finished
    machine for rendering.
    """
    from repro.experiments.figure_canary import (
        CANDIDATES, GATES, SHORT_US, _build, _wire,
    )
    from repro.workload.mixes import GET_SCAN_995_005

    duration_us = duration_ms * 1000.0
    testbed = _build(seed)
    machine = testbed.machine
    gen = testbed.drive(load, GET_SCAN_995_005, duration_us,
                        warmup_us=duration_us * 0.2).start()
    holder = {}
    _wire(testbed, gen, duration_us, holder)

    def submit(name):
        holder["record"] = testbed.app.deploy_shadow(
            CANDIDATES[name], layer="socket",
            constants={"SHORT_US": SHORT_US}, name=name, **GATES,
        )

    machine.engine.at(duration_us * 0.27, lambda: submit("broken"))
    machine.engine.at(duration_us * 0.57, lambda: submit("good"))
    machine.run()
    machine.demo_generator = gen
    return machine


def run_tenants_demo(load=60_000, duration_ms=120.0, seed=3,
                     aggressor_load=420_000):
    """Drive the canned multi-tenant demo: one blame_shed point.

    The ``figure_interference`` closed loop — victim *alpha* under an
    identical-looking GET flood from *bravo*, per-tenant accounting on,
    the :class:`~repro.obs.interference.NoisyNeighborDetector` flagging
    the aggressor from windowed blame, and the
    :class:`~repro.obs.interference.TenantShedController` shedding only
    bravo — so ``syrupctl tenants`` renders both tenants' bills and a
    blame matrix fingering bravo at the socket layer.  Returns the
    finished machine for rendering.
    """
    from repro.experiments.figure_interference import run_variant

    duration_us = duration_ms * 1000.0
    testbed, gen_alpha, _gen_bravo, detector = run_variant(
        "blame_shed", load, aggressor_load, duration_us,
        duration_us * 0.25, seed,
    )
    machine = testbed.machine
    machine.demo_generator = gen_alpha
    machine.demo_detector = detector
    return machine


def run_cores_demo(load=25_000, duration_ms=200.0, seed=5):
    """Drive the canned elastic-arbitration demo: one figure_oversub point.

    The ``elastic`` variant of ``figure_oversub`` — *search* (a ghOSt
    enclave) and *batch* (CFS) sharing the arbitrated core pool under
    anti-correlated flash crowds, with the
    :class:`~repro.kernel.arbiter.ElasticCoreController` chasing the
    bursts — so ``syrupctl cores`` renders grants moving back and
    forth between the classes.  ``load`` is each app's baseline RPS.
    Returns the finished machine for rendering.
    """
    from repro.experiments.figure_oversub import PEAK_FACTOR, run_variant

    duration_us = duration_ms * 1000.0
    machine, gen_search, _gen_batch, controller = run_variant(
        "elastic", load, PEAK_FACTOR, duration_us, duration_us * 0.1, seed,
    )
    machine.demo_generator = gen_search
    machine.demo_controller = controller
    return machine


def run_fleet_demo(load=500_000, duration_ms=60.0, seed=7,
                   num_machines=48, steering="power_of_two"):
    """Drive the canned rack demo: one figure_fleet-style run.

    ``num_machines`` aggregate machines under a diurnal open-loop load
    from a million sampled users, power-of-two-choices steering at the
    ToR, metrics + flight recorder on, and a mid-run machine kill (with
    reboot) so the failover path shows up in the console.  Returns the
    finished :class:`repro.cluster.fleet.Fleet` for rendering
    (``syrupctl fleet`` / ``python -m repro fleet``).
    """
    from repro.cluster.fleet import Fleet
    from repro.faults import FaultPlan

    duration_us = duration_ms * 1000.0
    plan = FaultPlan(seed=11).machine_kill(
        num_machines // 3, at_us=duration_us * 0.4,
        restore_at_us=duration_us * 0.75,
    )
    fleet = Fleet(
        num_machines=num_machines, seed=seed, steering=steering,
        metrics=True, timeseries=True, faults=plan,
        warmup_us=duration_us * 0.2,
    )
    fleet.drive(
        duration_us=duration_us, rps=load, num_users=1_000_000,
        diurnal_period_us=duration_us, diurnal_depth=0.4,
    )
    fleet.run()
    return fleet


def main(argv=None):
    """CLI: ``syrupctl {stats,status,maps,events,timeline,health,spans,
    tail,qdisc,fleet,slo,promote,tenants}``."""
    parser = argparse.ArgumentParser(
        prog="syrupctl",
        description=(
            "Inspect a Syrup machine's observability layer.  Runs a "
            "canned RocksDB demo scenario (metrics enabled) and renders "
            "the requested view — the steady Figure-6-style point for "
            "stats/status/maps/events, the dynamic Figure-8 policy "
            "switch for timeline, a fault-injection run for health; "
            "see docs/observability.md and docs/robustness.md."
        ),
    )
    parser.add_argument(
        "view",
        choices=["stats", "status", "maps", "events", "timeline", "health",
                 "spans", "tail", "qdisc", "fleet", "slo", "promote",
                 "tenants", "cores"],
        help="which surface to render",
    )
    parser.add_argument("--load", type=int, default=None,
                        help="demo offered load (RPS)")
    parser.add_argument("--duration-ms", type=float, default=None,
                        help="demo run length in milliseconds")
    parser.add_argument("--seed", type=int, default=None,
                        help="demo RNG seed")
    parser.add_argument("--last", type=int, default=20,
                        help="events/spans: how many trailing entries")
    parser.add_argument("--kind", type=str, default=None,
                        help="events: filter by event kind")
    parser.add_argument("--since", type=float, default=None, metavar="US",
                        help="events: only events at/after this sim time")
    parser.add_argument("--limit", type=int, default=None, metavar="N",
                        help="events: cap printed events (overrides --last)")
    parser.add_argument("--spans-every", type=int, default=1, metavar="N",
                        help="spans/tail: head-sample every Nth request")
    parser.add_argument("--export-trace", type=str, default=None,
                        metavar="PATH",
                        help=("spans/tail: also export the sampled spans "
                              "as a Chrome/Perfetto trace"))
    parser.add_argument("--json", action="store_true",
                        help="print the view's raw snapshot as JSON "
                             "(every view supports it)")
    parser.add_argument("--interval-ms", type=float, default=10.0,
                        help="timeline: flight-recorder sample interval")
    parser.add_argument("--app", type=str, default=None,
                        help="timeline: only series owned by this app")
    parser.add_argument("--scope", type=str, default=None,
                        help="timeline: only series under this hook/scope")
    parser.add_argument("--export-events", type=str, default=None,
                        metavar="PATH",
                        help="also export the full event ring as JSON lines")
    parser.add_argument("--openmetrics", type=str, default=None,
                        metavar="PATH",
                        help=("also export the metrics registry in "
                              "OpenMetrics text format"))
    args = parser.parse_args(argv)

    if args.view == "timeline":
        kwargs = {"interval_ms": args.interval_ms}
        if args.load is not None:
            kwargs["load"] = args.load
        if args.duration_ms is not None:
            kwargs["duration_ms"] = args.duration_ms
        if args.seed is not None:
            kwargs["seed"] = args.seed
        machine = run_timeline_demo(**kwargs)
        if args.json:
            print(json.dumps(machine.obs.recorder.snapshot(), indent=2))
        else:
            print(render_timeline(machine, app=args.app, scope=args.scope))
    elif args.view == "health":
        kwargs = {}
        if args.load is not None:
            kwargs["load"] = args.load
        if args.duration_ms is not None:
            kwargs["duration_ms"] = args.duration_ms
        if args.seed is not None:
            kwargs["seed"] = args.seed
        machine = run_faults_demo(**kwargs)
        if args.json:
            print(json.dumps(machine.syrupd.health(), indent=2))
        else:
            print(render_health(machine))
    elif args.view == "qdisc":
        kwargs = {}
        if args.load is not None:
            kwargs["load"] = args.load
        if args.duration_ms is not None:
            kwargs["duration_ms"] = args.duration_ms
        if args.seed is not None:
            kwargs["seed"] = args.seed
        machine = run_qdisc_demo(**kwargs)
        if args.json:
            print(json.dumps(machine.syrupd.qdiscs(), indent=2,
                             sort_keys=True))
        else:
            print(render_qdisc(machine))
    elif args.view == "slo":
        kwargs = {}
        if args.load is not None:
            kwargs["load"] = args.load
        if args.duration_ms is not None:
            kwargs["duration_ms"] = args.duration_ms
        if args.seed is not None:
            kwargs["seed"] = args.seed
        machine = run_slo_demo(**kwargs)
        if args.json:
            print(json.dumps(
                {"slo": machine.syrupd.slo(),
                 "signals": machine.syrupd.signals()},
                indent=2, sort_keys=True,
            ))
        else:
            print(render_slo(machine))
    elif args.view == "promote":
        kwargs = {}
        if args.load is not None:
            kwargs["load"] = args.load
        if args.duration_ms is not None:
            kwargs["duration_ms"] = args.duration_ms
        if args.seed is not None:
            kwargs["seed"] = args.seed
        machine = run_promote_demo(**kwargs)
        if args.json:
            print(json.dumps(machine.syrupd.promotions(), indent=2,
                             sort_keys=True))
        else:
            print(render_promote(machine))
    elif args.view == "fleet":
        kwargs = {}
        if args.load is not None:
            kwargs["load"] = args.load
        if args.duration_ms is not None:
            kwargs["duration_ms"] = args.duration_ms
        if args.seed is not None:
            kwargs["seed"] = args.seed
        fleet = run_fleet_demo(**kwargs)
        if args.json:
            print(json.dumps(fleet.fleet_view(), indent=2, sort_keys=True))
        else:
            print(render_fleet(fleet))
        return 0
    elif args.view == "tenants":
        kwargs = {}
        if args.load is not None:
            kwargs["load"] = args.load
        if args.duration_ms is not None:
            kwargs["duration_ms"] = args.duration_ms
        if args.seed is not None:
            kwargs["seed"] = args.seed
        machine = run_tenants_demo(**kwargs)
        if args.json:
            print(json.dumps(machine.syrupd.tenants(), indent=2,
                             sort_keys=True))
        else:
            print(render_tenants(machine))
    elif args.view == "cores":
        kwargs = {}
        if args.load is not None:
            kwargs["load"] = args.load
        if args.duration_ms is not None:
            kwargs["duration_ms"] = args.duration_ms
        if args.seed is not None:
            kwargs["seed"] = args.seed
        machine = run_cores_demo(**kwargs)
        if args.json:
            print(json.dumps(machine.arbiter.view(), indent=2,
                             sort_keys=True))
        else:
            print(render_cores(machine))
    elif args.view in ("spans", "tail"):
        kwargs = {"spans_every": args.spans_every}
        if args.load is not None:
            kwargs["load"] = args.load
        if args.duration_ms is not None:
            kwargs["duration_ms"] = args.duration_ms
        if args.seed is not None:
            kwargs["seed"] = args.seed
        machine = run_spans_demo(**kwargs)
        if args.view == "spans":
            if args.json:
                print(json.dumps(machine.obs.spans.trees()[-args.last:],
                                 indent=2, sort_keys=True))
            else:
                print(render_spans(machine, last=args.last))
        elif args.json:
            from repro.obs.tail import critical_path

            analysis = critical_path(machine.obs.spans.trees(complete=True))
            print(json.dumps(analysis, indent=2, sort_keys=True))
        else:
            print(render_tail(machine))
        if args.export_trace:
            n = machine.obs.spans.to_chrome_trace(args.export_trace)
            print(f"wrote {n} trace events to {args.export_trace}",
                  file=sys.stderr)
    else:
        machine = run_stats_demo(
            load=args.load if args.load is not None else 120_000,
            duration_ms=(args.duration_ms
                         if args.duration_ms is not None else 100.0),
            seed=args.seed if args.seed is not None else 7,
        )
        if args.view == "stats":
            if args.json:
                print(json.dumps(machine.obs.snapshot(), indent=2))
            else:
                print(render_stats(machine))
        elif args.view == "status":
            if args.json:
                print(json.dumps(machine.syrupd.status(), indent=2,
                                 sort_keys=True))
            else:
                print(render_status(machine))
        elif args.view == "maps":
            if args.json:
                registry = machine.syrupd.registry
                print(json.dumps(
                    {path: dict(registry._pinned[path].items())
                     for path in registry.paths()},
                    indent=2, sort_keys=True,
                ))
            else:
                print(render_maps(machine))
        else:
            last = args.limit if args.limit is not None else args.last
            if args.json:
                events = machine.obs.events.events(
                    kind=args.kind, since=args.since
                )[-last:]
                print(json.dumps(events, indent=2, sort_keys=True))
            else:
                print(render_events(machine, last=last, kind=args.kind,
                                    since=args.since))
    if args.export_events:
        n = machine.obs.events.to_jsonl(args.export_events)
        print(f"wrote {n} events to {args.export_events}", file=sys.stderr)
    if args.openmetrics:
        from repro.obs.export import write_openmetrics

        n = write_openmetrics(machine.obs.registry, args.openmetrics)
        print(f"wrote {n} OpenMetrics lines to {args.openmetrics}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
