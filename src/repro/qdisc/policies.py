"""Rank-function sources for programmable queueing disciplines.

Each is a policy file in the same safe subset as the matching-function
policies (:mod:`repro.policies.builtin`) except the entry point is named
``rank`` — :func:`repro.qdisc.discipline.compile_rank` renames it to the
compiler's expected ``schedule`` before running the identical
compile/verify/JIT pipeline.  Deploy with::

    app.deploy_qdisc(SRPT_BY_SIZE, layer="socket", backend="pifo")

Rank semantics (PIFO): **smaller rank dequeues first**; equal ranks stay
FIFO by arrival.  ``PASS`` means "no opinion" (rank 0 — FIFO among
passed elements) and ``DROP`` sheds the element at enqueue time.

Packet layout (see :mod:`repro.net.packet`): 8-byte UDP header, then
u64 request type at offset 8, u64 user id at 16, u64 key hash at 24.
"""

__all__ = [
    "EDF_BY_DEADLINE",
    "FIFO_RANK",
    "RANK_BY_FLAG",
    "SRPT_BY_SIZE",
    "SRPT_MISRANK_GETS",
    "SRPT_TIERED",
]

#: The identity discipline: every element PASSes, so the queue stays
#: strictly FIFO.  Deploying this must be bit-identical to deploying no
#: qdisc at all (tests/test_qdisc_integration.py locks that pairing).
FIFO_RANK = '''
def rank(pkt):
    return PASS
'''

#: Shortest-Remaining-Processing-Time by *measured* size: the userspace
#: half (RocksDbServer(mark_sizes=True)) publishes the observed service
#: time per request type into svc_time_map — a cross-layer Map signal, the
#: paper's §4 story extended from placement to ordering.  Unknown types
#: PASS (rank 0), so the discipline is conservative until the app has
#: measured each type once.
SRPT_BY_SIZE = '''
svc_map = syr_map("svc_time_map", 16)

def rank(pkt):
    if pkt_len(pkt) < 16:
        return PASS
    rtype = load_u64(pkt, 8)
    if map_has(svc_map, rtype):
        return map_lookup(svc_map, rtype)
    return PASS
'''

#: Two-class priority from an app-written flag map (the SCAN-marking
#: pattern of Figure 5b reused for ordering): flagged request types sink
#: to a low-priority rank, everything else is served first.
RANK_BY_FLAG = '''
flag_map = syr_map("scan_map", 64)

def rank(pkt):
    if pkt_len(pkt) < 16:
        return PASS
    rtype = load_u64(pkt, 8)
    if map_lookup(flag_map, rtype) > 0:
        return 1000
    return 0
'''

#: SRPT collapsed to two tiers: requests measured at or under SHORT_US
#: keep their measured rank, everything longer shares one background
#: rank.  Same ordering as SRPT_BY_SIZE for the short class (GETs) and
#: coarser among the long class — a well-behaved *candidate* for the
#: shadow/canary promotion pipeline (figure_canary's "good" policy):
#: high decision agreement, indistinguishable cohort tail.
SRPT_TIERED = '''
svc_map = syr_map("svc_time_map", 16)

def rank(pkt):
    if pkt_len(pkt) < 16:
        return PASS
    rtype = load_u64(pkt, 8)
    if map_has(svc_map, rtype):
        svc = map_lookup(svc_map, rtype)
        if svc <= SHORT_US:
            return svc
        return 1000
    return PASS
'''

#: A subtly-broken SRPT variant: it mis-ranks a slice of GETs (every
#: 16th key) to the worst possible priority, behind every SCAN.  The
#: bug is rare enough (~6% of GETs) to sail through the shadow
#: agreement gate, but on the canary cohort those GETs inherit the full
#: SCAN queueing delay and the cohort p99 blows up — figure_canary's
#: "broken" candidate, auto-rejected at the canary stage before it can
#: touch more than the cohort.
SRPT_MISRANK_GETS = '''
svc_map = syr_map("svc_time_map", 16)

def rank(pkt):
    if pkt_len(pkt) < 32:
        return PASS
    rtype = load_u64(pkt, 8)
    key_hash = load_u64(pkt, 24)
    if rtype == 1:
        if key_hash % 16 == 0:
            return 100000
    if map_has(svc_map, rtype):
        svc = map_lookup(svc_map, rtype)
        if svc <= SHORT_US:
            return svc
        return 1000
    return PASS
'''

#: Earliest-Deadline-First: the app publishes a per-user deadline class
#: (smaller = tighter) into deadline_map; users without an entry are
#: best-effort and rank behind every deadline class.
EDF_BY_DEADLINE = '''
deadline_map = syr_map("deadline_map", 16)

def rank(pkt):
    if pkt_len(pkt) < 24:
        return PASS
    user = load_u64(pkt, 16)
    if map_has(deadline_map, user):
        return map_lookup(deadline_map, user)
    return 100000
'''
