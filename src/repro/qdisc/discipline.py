"""The qdisc runtime: rank compilation, the Qdisc object, layer glue.

A :class:`Qdisc` pairs one compiled **rank function** with one ordering
backend (:mod:`repro.qdisc.backends`) and hangs off a single queue of the
stack — a socket backlog, a NIC RX queue, or a ghOSt runqueue.  The
substrate stays the owner of its elements; the qdisc only decides *order*
(and, under overflow, *which* element to shed).

Rank execution charges **zero simulated time**: PIFO's premise is rank
computation at line rate, and keeping the datapath timing untouched is
what makes "no qdisc" vs "PASS-everywhere qdisc" bit-identical — the
paired-run determinism contract (docs/scheduling-order.md, locked by
tests/test_qdisc_integration.py).

Fault containment mirrors the hook sites (docs/robustness.md): a rank
function raising :class:`~repro.ebpf.errors.VmFault` never loses the
element — it is enqueued with the FIFO rank instead (ordering is advisory;
correctness never depends on it) — and the fault is reported to syrupd's
lifecycle manager, which may quarantine the discipline back to pure FIFO
(:meth:`Qdisc.revert_to_fifo`).  Already-queued elements keep their ranks
and drain normally, so a quarantined queue is never wedged.
"""

import re

from repro.constants import DROP, PASS
from repro.ebpf.compiler import compile_policy
from repro.ebpf.errors import CompileError
from repro.qdisc.backends import make_backend

__all__ = [
    "LAYERS",
    "LAYER_NIC_RX",
    "LAYER_RUNQUEUE",
    "LAYER_SOCKET",
    "OfferResult",
    "Qdisc",
    "ThreadCtx",
    "compile_rank",
    "qdisc_hook",
]

#: Attachment layers (the ``layer=`` argument of ``deploy_qdisc``).
LAYER_NIC_RX = "nic_rx"
LAYER_SOCKET = "socket"
LAYER_RUNQUEUE = "runqueue"
LAYERS = (LAYER_NIC_RX, LAYER_SOCKET, LAYER_RUNQUEUE)

#: Rank assigned to PASS / foreign / faulting elements: front bucket,
#: FIFO among themselves by the backends' arrival tie-break.
FIFO = 0

_RANK_DEF = re.compile(r"^def\s+rank\s*\(", flags=re.MULTILINE)


def qdisc_hook(layer):
    """The hook label a qdisc deployment is tracked under (``qdisc:<layer>``).

    Distinct from the matching-function hooks in :class:`repro.core.hooks.Hook`
    — qdisc deployments never install into a HookSite dispatcher — but used
    the same way everywhere else: metric scopes, event fields, fault-plan
    targeting (``FaultPlan.vmfault(hook=qdisc_hook("socket"))``).
    """
    if layer not in LAYERS:
        raise ValueError(f"unknown qdisc layer {layer!r}; known: {LAYERS}")
    return f"qdisc:{layer}"


def compile_rank(source, name=None, constants=None, unroll_limit=64):
    """Compile a rank function to a Program via the policy pipeline.

    Rank files define ``def rank(pkt):`` (so a policy file can't be
    deployed as a qdisc by accident, and vice versa); this renames the
    module-level definition to the compiler's expected ``schedule`` and
    reuses :func:`repro.ebpf.compiler.compile_policy` unchanged — same
    safe subset, same verifier, same JIT.
    """
    if callable(source):
        import inspect
        import textwrap

        if name is None:
            name = getattr(source, "__name__", "rank")
        source = textwrap.dedent(inspect.getsource(source))
    renamed, n = _RANK_DEF.subn("def schedule(", source, count=1)
    if n == 0:
        raise CompileError(
            "a rank policy must define a module-level 'rank' function"
        )
    return compile_policy(
        renamed, name=name or "rank", constants=constants,
        unroll_limit=unroll_limit,
    )


class ThreadCtx:
    """Packet-shaped view of a thread for runqueue-layer rank functions.

    Rank functions always read their element through the packet builtins;
    at the runqueue layer the element is a :class:`~repro.kernel.threads.KThread`,
    so the agent wraps it in this 16-byte context: u64 thread id at offset
    0, 8 reserved zero bytes after — ``load_u64(t, 0)`` is the Map key an
    app uses to publish per-thread signals (service class, measured burst).
    """

    __slots__ = ("data",)

    def __init__(self, tid):
        self.data = int(tid).to_bytes(8, "little") + b"\x00" * 8

    @property
    def length(self):
        return len(self.data)

    def load(self, offset, width):
        end = offset + width
        if offset < 0 or end > len(self.data):
            raise IndexError(
                f"thread ctx load [{offset}:{end}) out of bounds (len=16)"
            )
        return int.from_bytes(self.data[offset:end], "little")

    def __repr__(self):
        return f"<ThreadCtx tid={self.load(0, 8)}>"


class OfferResult:
    """Outcome of :meth:`Qdisc.offer` for one arriving element."""

    __slots__ = ("accepted", "evicted", "rank", "reason")

    def __init__(self, accepted, evicted=None, rank=None, reason=None):
        self.accepted = accepted   # arriving element is now queued
        self.evicted = evicted     # previously-queued element shed, or None
        self.rank = rank           # rank assigned to the arriving element
        self.reason = reason       # None | "sched_drop" | "overflow"

    def __repr__(self):
        return (
            f"<OfferResult accepted={self.accepted} rank={self.rank} "
            f"reason={self.reason}>"
        )


class Qdisc:
    """One rank function + one ordering backend on one queue.

    ``program`` is the loaded rank function (or None — pure FIFO, the
    quarantined/default mode).  ``ports`` restricts ranking to the owning
    app's traffic: elements whose ``flow.dst_port`` is elsewhere get the
    FIFO rank without the program ever seeing them (per-app isolation at
    shared queues, e.g. a NIC RX ring carrying several apps).  Pass
    ``ports=None`` for element types without ports (threads).
    """

    def __init__(self, app_name, layer, backend="pifo", program=None,
                 ports=None, backend_kwargs=None):
        if layer not in LAYERS:
            raise ValueError(f"unknown qdisc layer {layer!r}; known: {LAYERS}")
        self.app_name = app_name
        self.layer = layer
        self.hook = qdisc_hook(layer)
        self.backend_name = backend
        self.queue = make_backend(backend, **(backend_kwargs or {}))
        self.program = program
        self.ports = None if ports is None else set(ports)
        #: Label of the queue this qdisc hangs off ("sid:3", "rxq:1",
        #: "enclave:rocksdb"); set by the attach point, shown by syrupctl.
        self.target = None
        #: callable(qdisc, exc): syrupd routes rank-function faults into
        #: the lifecycle manager (quarantine on window breach).
        self.fault_listener = None
        #: Optional repro.core.promote.ShadowTap running a candidate
        #: rank function side-by-side; set by Syrupd.deploy_shadow.
        self.shadow = None
        #: callable(): undo this qdisc's attachment; set by syrupd's
        #: attach helpers, invoked by undeploy.
        self._detach = None
        # Always-on plain counters (the syrupctl view must work with the
        # obs registry disabled).
        self.enqueues = 0
        self.dequeues = 0
        self.sched_drops = 0      # rank function returned DROP
        self.overflow_drops = 0   # capacity shed (arriving or evicted)
        self.evictions = 0        # overflow victims that were *queued*
        self.runtime_faults = 0
        self.rank_count = 0
        self.rank_sum = 0
        self.rank_min = None
        self.rank_max = None
        #: Optional dict of obs counters + a "rank" histogram; set by
        #: syrupd at deploy time when the machine runs with metrics on.
        self.metrics = None
        self.depth_gauge = None

    # ------------------------------------------------------------------
    @property
    def state(self):
        return "active" if self.program is not None else "fifo"

    def __len__(self):
        return len(self.queue)

    # ------------------------------------------------------------------
    def rank_of(self, item, ctx=None):
        """Run the rank function; returns an int rank or ``DROP``.

        Faults are contained here: the element gets the FIFO rank, the
        fault is counted and reported, the caller never sees it.
        """
        program = self.program
        if program is None:
            return FIFO
        if self.ports is not None:
            flow = getattr(item, "flow", None)
            if flow is None or flow.dst_port not in self.ports:
                return FIFO  # foreign traffic: never shown to the program
        shadow = self.shadow
        if shadow is not None:
            # Canary stage: cohort flows are ranked by the candidate.
            program = shadow.pick_program(program, item)
        try:
            decision = program.run(ctx if ctx is not None else item)
        except Exception as exc:  # noqa: BLE001 - untrusted rank function
            if shadow is not None and program is not self.program:
                # Enforced candidate faulted: charge the promotion
                # record, not the active deployment's health window —
                # the element still gets the safe FIFO rank.
                shadow.record.note_candidate_fault(exc, enforced=True)
                return FIFO
            self.runtime_faults += 1
            if self.metrics is not None:
                self.metrics["runtime_faults"].inc()
            if self.fault_listener is not None:
                self.fault_listener(self, exc)
            return FIFO  # ordering is advisory: never lose the element
        if shadow is not None and program is self.program:
            shadow.observe(decision, item, ctx)
        if decision == PASS:
            return FIFO
        if decision == DROP:
            return DROP
        return decision

    def _note_rank(self, rank):
        self.rank_count += 1
        self.rank_sum += rank
        if self.rank_min is None or rank < self.rank_min:
            self.rank_min = rank
        if self.rank_max is None or rank > self.rank_max:
            self.rank_max = rank
        if self.metrics is not None:
            self.metrics["rank"].observe(rank)

    # ------------------------------------------------------------------
    def offer(self, item, capacity=None, ctx=None):
        """Rank + enqueue one element, honouring ``capacity``.

        Overflow policy (the satellite contract): under a non-FIFO
        discipline the *lowest-priority* element is shed — push the
        arrival, then evict the backend's ``worst()`` (numerically
        largest rank, newest on ties).  With every rank equal (pure FIFO,
        PASS-everywhere, quarantined) the worst entry *is* the newest, so
        the policy collapses to the substrate's historical drop-tail.
        """
        rank = self.rank_of(item, ctx=ctx)
        if rank == DROP:
            self.sched_drops += 1
            if self.metrics is not None:
                self.metrics["sched_drops"].inc()
            return OfferResult(False, rank=None, reason="sched_drop")
        if capacity is not None and len(self.queue) >= capacity:
            self.queue.push(rank, item)
            _worst_rank, victim = self.queue.worst()
            self.overflow_drops += 1
            if self.metrics is not None:
                self.metrics["overflow_drops"].inc()
            if victim is item:
                self._set_depth()
                return OfferResult(False, rank=None, reason="overflow")
            # An older, lower-priority element made room for the arrival.
            self.evictions += 1
            if self.metrics is not None:
                self.metrics["evictions"].inc()
            self.enqueues += 1
            self._note_rank(rank)
            self._set_depth()
            return OfferResult(True, evicted=victim, rank=rank,
                               reason="overflow")
        self.queue.push(rank, item)
        self.enqueues += 1
        if self.metrics is not None:
            self.metrics["enqueues"].inc()
        self._note_rank(rank)
        self._set_depth()
        return OfferResult(True, rank=rank)

    def take(self):
        """Dequeue the minimum-rank element (None if empty)."""
        item = self.queue.pop()
        if item is not None:
            self.dequeues += 1
            if self.metrics is not None:
                self.metrics["dequeues"].inc()
            self._set_depth()
        return item

    def drain(self):
        """Remove and return every queued element in rank order."""
        out = []
        while True:
            item = self.take()
            if item is None:
                return out
            out.append(item)

    def order(self, items, ctx_factory=None):
        """Transiently rank a snapshot (the runqueue layer's mode).

        A ghOSt runqueue is rebuilt from kernel state on every agent
        decision, so instead of owning elements the qdisc sorts each
        snapshot: push all, pop all.  ``DROP`` is meaningless for threads
        (work can't be shed) and is treated as PASS.  Uses a scratch
        backend instance so queued-element state is untouched.
        """
        if len(items) < 2:
            return list(items)
        scratch = make_backend(self.backend_name)
        for item in items:
            ctx = ctx_factory(item) if ctx_factory is not None else item
            rank = self.rank_of(item, ctx=ctx)
            if rank == DROP:
                rank = FIFO
            self._note_rank(rank)
            scratch.push(rank, item)
        ordered = []
        while True:
            item = scratch.pop()
            if item is None:
                break
            ordered.append(item)
        self.enqueues += len(ordered)
        self.dequeues += len(ordered)
        return ordered

    # ------------------------------------------------------------------
    def revert_to_fifo(self):
        """Quarantine: drop the rank program; the queue becomes FIFO.

        Elements already queued keep their assigned ranks and drain in
        that order — nothing is re-ranked, nothing is stranded.  New
        arrivals get the FIFO rank (and drop-tail overflow).
        """
        self.program = None
        return self

    def _set_depth(self):
        if self.depth_gauge is not None:
            self.depth_gauge.set(len(self.queue))

    # ------------------------------------------------------------------
    def snapshot(self):
        """One row for ``syrupctl qdisc``."""
        row = {
            "app": self.app_name,
            "layer": self.layer,
            "hook": self.hook,
            "target": self.target,
            "backend": self.backend_name,
            "state": self.state,
            "depth": len(self.queue),
            "enqueues": self.enqueues,
            "dequeues": self.dequeues,
            "sched_drops": self.sched_drops,
            "overflow_drops": self.overflow_drops,
            "evictions": self.evictions,
            "runtime_faults": self.runtime_faults,
            "rank_count": self.rank_count,
            "rank_mean": (self.rank_sum / self.rank_count
                          if self.rank_count else None),
            "rank_min": self.rank_min,
            "rank_max": self.rank_max,
        }
        if self.program is not None:
            row["program"] = self.program.name
        return row

    def __repr__(self):
        return (
            f"<Qdisc app={self.app_name} layer={self.layer} "
            f"backend={self.backend_name} state={self.state} "
            f"depth={len(self.queue)}>"
        )
