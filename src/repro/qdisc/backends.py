"""Ordering backends: exact PIFO heap vs Eiffel-style bucketed queue.

Both implement one protocol — ``push(rank, item)``, ``pop() -> item``,
``worst() -> (rank, item)`` (remove the lowest-priority entry, the
overflow victim), ``__len__`` — and both are deterministic: ties and
bucket collisions break by a monotone arrival sequence number, never by
hash order or randomness, so paired runs are bit-identical
(tests/test_qdisc.py locks the tie-break).

Rank convention (PIFO): **smaller rank dequeues first**.  "Lowest
priority" therefore means *numerically largest* rank; among equal worst
ranks the most recent arrival is the victim, which makes a
rank-everywhere-equal discipline's overflow behaviour collapse to plain
drop-tail (the determinism requirement for PASS-everywhere rank
functions).

- :class:`PifoQueue` — binary heap keyed ``(rank, seq)``: exact total
  order, O(log n) push/pop, O(n) victim search (bounded by the queue's
  capacity, which substrates keep small — a socket backlog, a NIC ring).
- :class:`BucketQueue` — Eiffel's circular bucket array with a
  find-first-set occupancy bitmap: O(1) push/pop/victim, but ranks are
  coarsened to ``bucket_width`` granularity and ranks beyond the horizon
  clamp into the last bucket.  The fidelity cost of that approximation
  is exactly what :mod:`repro.experiments.figure_order` measures.
"""

import heapq
from collections import deque

__all__ = ["BucketQueue", "PifoQueue", "make_backend"]


class PifoQueue:
    """Exact push-in-first-out queue: a heap of ``(rank, seq, item)``.

    ``seq`` is the per-queue arrival sequence number; it makes the heap
    order *total* (stable on rank ties by arrival) and therefore
    deterministic across runs.
    """

    backend = "pifo"

    def __init__(self):
        self._heap = []
        self._seq = 0

    def push(self, rank, item):
        heapq.heappush(self._heap, (rank, self._seq, item))
        self._seq += 1

    def pop(self):
        """Remove and return the minimum-rank (oldest on ties) item."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def worst(self):
        """Remove and return ``(rank, item)`` for the overflow victim.

        The victim is the maximum-rank entry; among equals, the most
        recent arrival (max seq) — so an all-equal-rank queue evicts the
        newest element, i.e. behaves as drop-tail.
        """
        if not self._heap:
            return None
        index = max(range(len(self._heap)),
                    key=lambda i: self._heap[i][:2])
        rank, _seq, item = self._heap[index]
        last = self._heap.pop()
        if index < len(self._heap):
            self._heap[index] = last
            heapq.heapify(self._heap)
        return (rank, item)

    def __len__(self):
        return len(self._heap)

    def __repr__(self):
        return f"<PifoQueue len={len(self._heap)}>"


class BucketQueue:
    """Eiffel-style approximate PIFO: FIFO buckets + an FFS bitmap.

    Ranks map to bucket ``min(rank // bucket_width, num_buckets - 1)``;
    within a bucket order is FIFO (arrival seq).  An integer occupancy
    bitmap makes dequeue a find-first-set — O(1) for the bucket counts
    used here — and the victim search a find-*last*-set.  Coarsening and
    horizon clamping are the approximation Eiffel trades for constant
    time; :mod:`repro.experiments.figure_order` reports its fidelity
    against the exact heap.
    """

    backend = "bucket"

    def __init__(self, num_buckets=256, bucket_width=8):
        if num_buckets < 1 or bucket_width < 1:
            raise ValueError(
                f"need num_buckets >= 1 and bucket_width >= 1, got "
                f"{num_buckets}/{bucket_width}"
            )
        self.num_buckets = num_buckets
        self.bucket_width = bucket_width
        self._buckets = [deque() for _ in range(num_buckets)]
        self._occupied = 0  # bit b set <=> bucket b non-empty
        self._seq = 0
        self._len = 0

    def _bucket_index(self, rank):
        return min(rank // self.bucket_width, self.num_buckets - 1)

    def push(self, rank, item):
        b = self._bucket_index(rank)
        self._buckets[b].append((rank, self._seq, item))
        self._seq += 1
        self._occupied |= 1 << b
        self._len += 1

    def pop(self):
        """Remove and return an item from the lowest occupied bucket."""
        if not self._occupied:
            return None
        b = (self._occupied & -self._occupied).bit_length() - 1  # ffs
        bucket = self._buckets[b]
        _rank, _seq, item = bucket.popleft()
        if not bucket:
            self._occupied &= ~(1 << b)
        self._len -= 1
        return item

    def worst(self):
        """Remove and return ``(rank, item)`` from the highest occupied
        bucket — the newest entry there, so all-in-one-bucket queues
        evict drop-tail style."""
        if not self._occupied:
            return None
        b = self._occupied.bit_length() - 1  # find-last-set
        bucket = self._buckets[b]
        rank, _seq, item = bucket.pop()
        if not bucket:
            self._occupied &= ~(1 << b)
        self._len -= 1
        return (rank, item)

    def __len__(self):
        return self._len

    def __repr__(self):
        return (
            f"<BucketQueue len={self._len} buckets={self.num_buckets} "
            f"width={self.bucket_width}>"
        )


#: Registered backend constructors for deploy_qdisc(backend=...).
_BACKENDS = {
    "pifo": PifoQueue,
    "bucket": BucketQueue,
}


def make_backend(name, **kwargs):
    """Construct one ordering backend instance by registered name."""
    factory = _BACKENDS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown qdisc backend {name!r}; known: {sorted(_BACKENDS)}"
        )
    return factory(**kwargs)
