"""Programmable queueing disciplines: a second axis of user-defined
scheduling.

Syrup's matching functions decide *where* an input runs (which socket,
core, or NIC queue); every queue in the stack still drains strictly FIFO,
so a policy cannot express *in what order* queued work is served.  This
package adds that axis, following PIFO (Programmable Packet Scheduling at
Line Rate) and Eiffel (efficient software packet scheduling): applications
deploy a **rank function** — same compile/verify/deploy path as matching
functions (:meth:`repro.core.syrupd.Syrupd.deploy_qdisc`) — that assigns
each queued element an integer rank; the queue dequeues in ascending rank
order (ties broken by arrival, so equal-rank traffic stays FIFO).

Two backends (:mod:`repro.qdisc.backends`):

- :class:`~repro.qdisc.backends.PifoQueue` — an exact priority queue
  (binary heap) with a deterministic arrival-sequence tie-break.
- :class:`~repro.qdisc.backends.BucketQueue` — an Eiffel-style bucketed
  approximation (circular find-first-set bucket array, O(1) enqueue and
  dequeue) that coarsens ranks to bucket granularity.

Attachable at three layers (:mod:`repro.qdisc.discipline`): NIC RX queues
(:meth:`repro.net.nic.Nic.attach_qdisc`), socket backlogs
(:meth:`repro.kernel.sockets.UdpSocket.set_qdisc`), and ghOSt runqueues
(the agent's runnable-thread ordering, :class:`repro.ghost.agent.GhostAgent`).
Rank functions read Maps, so cross-layer signals written by the
application (a SCAN flag, a measured service time) drive ordering — the
paper's §4 Maps story extended from placement to order.  See
docs/scheduling-order.md and :mod:`repro.experiments.figure_order`.
"""

from repro.qdisc.backends import BucketQueue, PifoQueue, make_backend
from repro.qdisc.discipline import (
    LAYERS,
    LAYER_NIC_RX,
    LAYER_RUNQUEUE,
    LAYER_SOCKET,
    OfferResult,
    Qdisc,
    ThreadCtx,
    compile_rank,
    qdisc_hook,
)
from repro.qdisc.policies import (
    EDF_BY_DEADLINE,
    FIFO_RANK,
    RANK_BY_FLAG,
    SRPT_BY_SIZE,
)

__all__ = [
    "BucketQueue",
    "EDF_BY_DEADLINE",
    "FIFO_RANK",
    "LAYERS",
    "LAYER_NIC_RX",
    "LAYER_RUNQUEUE",
    "LAYER_SOCKET",
    "OfferResult",
    "PifoQueue",
    "Qdisc",
    "RANK_BY_FLAG",
    "SRPT_BY_SIZE",
    "ThreadCtx",
    "compile_rank",
    "make_backend",
    "qdisc_hook",
]
